"""Per-operation processing model (paper §2.2).

Each computational operation is fed to a processing model that determines its
duration from both the raw compute time (FLOPs through the matrix or vector
engine at its size-dependent efficiency) and the raw memory-access time
(traffic through tier-1 memory).  The two are assumed to overlap (roofline),
so the operation takes the maximum of the two.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.memory import MemoryTier
from ..hardware.processor import Processor
from ..llm.layers import Layer


@dataclass(frozen=True)
class OpTime:
    """Timing detail of one operation."""

    total: float
    compute: float
    memory: float

    @property
    def compute_bound(self) -> bool:
        return self.compute >= self.memory


def op_time(
    processor: Processor,
    mem: MemoryTier,
    flops: float,
    traffic: float,
    engine: str,
) -> OpTime:
    """Roofline time of one op: ``max(compute_time, memory_time)``."""
    compute = processor.compute_time(engine, flops)
    memory = mem.access_time(traffic)
    return OpTime(total=max(compute, memory), compute=compute, memory=memory)


def layer_fw_time(processor: Processor, mem: MemoryTier, layer: Layer) -> OpTime:
    """Forward-pass time of one layer."""
    return op_time(processor, mem, layer.flops_fw, layer.traffic_fw, layer.engine.value)


def layer_bw_time(processor: Processor, mem: MemoryTier, layer: Layer) -> OpTime:
    """Backward-pass time of one layer."""
    return op_time(processor, mem, layer.flops_bw, layer.traffic_bw, layer.engine.value)
