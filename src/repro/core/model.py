"""The core analytical performance model (paper §2.4) — stable wrapper.

Given the three specifications — LLM, system, execution strategy — a single
call to :func:`calculate` returns the full time and resource estimation.  The
implementation lives in :mod:`repro.engine`, which decomposes the calculation
into five composable stages (validate → profile → memory plan → comm
exposure → time assembly); this module keeps the historical entry point and
the internal names older code imports (``_profile_block``,
``_in_flight_microbatches``, ...) pointing at the staged engine, so outputs
stay numerically identical to the original monolith.

Sweep-shaped callers should prefer the engine's batched API
(:func:`repro.engine.evaluate_many`) or the feasibility fast path
(:func:`repro.engine.check_feasible`) over per-candidate ``calculate`` loops.
"""

from __future__ import annotations

import os

from ..engine.api import evaluate
from ..engine.profile import BlockProfile, profile_block
from ..engine.stages import (
    OFFLOAD_WORKING_BLOCKS as _OFFLOAD_WORKING_BLOCKS,  # noqa: F401
    TP_OVERLAP_WINDOW as _TP_OVERLAP_WINDOW,  # noqa: F401
    exposed_and_tax,
    in_flight_microbatches,
)
from ..execution.strategy import ExecutionStrategy
from ..hardware.system import System
from ..llm.config import LLMConfig
from .results import PerformanceResult

# Historical internal names; the canonical definitions moved to repro.engine.
_BlockProfile = BlockProfile
_profile_block = profile_block
_exposed_and_tax = exposed_and_tax
_in_flight_microbatches = in_flight_microbatches

# When REPRO_DEBUG_CHECK is set, every calculate() output is run through the
# internal-consistency checker (repro.core.consistency) before returning —
# a tripwire for development; off by default for search throughput.
_DEBUG_CHECK = bool(os.environ.get("REPRO_DEBUG_CHECK"))


def calculate(
    llm: LLMConfig, system: System, strategy: ExecutionStrategy
) -> PerformanceResult:
    """Run the full analytical model for one configuration.

    Returns an infeasible :class:`PerformanceResult` (never raises) when the
    strategy violates a constraint or exceeds a memory capacity, so search
    engines can sweep the space without exception handling.
    """
    result = evaluate(llm, system, strategy)
    if _DEBUG_CHECK and result.feasible:
        from .consistency import assert_consistent

        assert_consistent(result)
    return result
