"""The core analytical performance model (paper §2.4).

Given the three specifications — LLM, system, execution strategy — this module
performs a single calculation of time and resource usage.  It exploits the
regular structure of the transformer: one sharded block is profiled once and
its results reused for every block/microbatch, which keeps a full analysis
well under a millisecond.

The calculation captures the interactions the paper calls out explicitly:

* DP communication may overlap the backward pass, but the all-gather phase of
  sharded optimizer state never overlaps the optimizer step;
* offload traffic is throttled while tier-1 (HBM) memory is in active use —
  only HBM-idle portions of a block's execution window hide transfers;
* driving a network at full bandwidth taxes the processor
  (``Network.processor_usage``), degrading overlapped computation;
* recomputation replays forward compute *and* forward TP communication.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from ..execution.strategy import ExecutionStrategy, StrategyError
from ..hardware.network import Network
from ..hardware.system import System
from ..llm.blocks import build_block
from ..llm.config import LLMConfig
from .flops import layer_bw_time, layer_fw_time
from .results import (
    MemoryBreakdown,
    OffloadStats,
    PerformanceResult,
    TimeBreakdown,
)

# Fraction of a block's compute window usable to hide TP collectives.
_TP_OVERLAP_WINDOW = {"none": 0.0, "pipe": 0.5, "ring": 0.8}

# Blocks of working set kept resident when a tensor class is offloaded:
# the block being computed plus one prefetch and one writeback buffer (Fig. 8).
_OFFLOAD_WORKING_BLOCKS = 3

# When REPRO_DEBUG_CHECK is set, every calculate() output is run through the
# internal-consistency checker (repro.core.consistency) before returning —
# a tripwire for development; off by default for search throughput.
_DEBUG_CHECK = bool(os.environ.get("REPRO_DEBUG_CHECK"))


@dataclass(frozen=True)
class _BlockProfile:
    """Cached per-block timing and footprint figures (per microbatch)."""

    fw_time: float
    bw_time: float
    recompute_time: float
    fw_hbm_idle: float  # portion of fw window with tier-1 memory idle
    bw_hbm_idle: float
    flops_fw: float
    flops_bw: float
    weight_bytes: float
    weight_grad_bytes: float
    optimizer_bytes: float
    stash_bytes: float
    input_bytes: float
    act_grad_bytes: float
    tp_fw_comm: float
    tp_bw_comm: float
    tp_recompute_comm: float


@lru_cache(maxsize=65536)
def _profile_block(
    llm: LLMConfig,
    system: System,
    microbatch: int,
    tensor_par: int,
    seq_par: bool,
    fused: bool,
    tp_redo_sp: bool,
    recompute: str,
    tp_mode: str = "1d",
) -> _BlockProfile:
    """Profile one sharded transformer block on one processor."""
    block = build_block(
        llm,
        microbatch=microbatch,
        tensor_par=tensor_par,
        seq_par=seq_par,
        fused_activations=fused,
        tp_redo_sp=tp_redo_sp,
        tp_mode=tp_mode,
    )
    proc, hbm = system.processor, system.mem1

    fw_time = bw_time = 0.0
    fw_idle = bw_idle = 0.0
    recompute_time = 0.0
    for layer in block.layers:
        f = layer_fw_time(proc, hbm, layer)
        b = layer_bw_time(proc, hbm, layer)
        fw_time += f.total
        bw_time += b.total
        fw_idle += f.total - f.memory
        bw_idle += b.total - b.memory
        replayed = recompute == "full" or (recompute == "attn_only" and layer.attn_only)
        if replayed:
            recompute_time += f.total

    tp_net = system.network_for_span(tensor_par) if tensor_par > 1 else None

    def comm_time(events) -> float:
        if tp_net is None:
            return 0.0
        return sum(
            tp_net.collective_time(ev.op, ev.nbytes, ev.group or tensor_par)
            for ev in events
        )

    tp_fw = comm_time(block.tp_comm_fw)
    tp_bw = comm_time(block.tp_comm_bw)
    # Full recompute replays the forward pass communication as well; the
    # attention core contains no TP boundary, so selective recompute adds none.
    tp_recompute = tp_fw if recompute == "full" else 0.0

    return _BlockProfile(
        fw_time=fw_time,
        bw_time=bw_time,
        recompute_time=recompute_time,
        fw_hbm_idle=fw_idle,
        bw_hbm_idle=bw_idle,
        flops_fw=block.flops_fw(),
        flops_bw=block.flops_bw(),
        weight_bytes=block.weight_bytes(),
        weight_grad_bytes=block.weight_grad_bytes(),
        optimizer_bytes=block.optimizer_bytes(),
        stash_bytes=block.stash_bytes(recompute),
        input_bytes=block.input_bytes,
        act_grad_bytes=2.0 * block.max_output_bytes(),
        tp_fw_comm=tp_fw,
        tp_bw_comm=tp_bw,
        tp_recompute_comm=tp_recompute,
    )


def _exposed_and_tax(
    comm: float, window: float, net: Network | None
) -> tuple[float, float]:
    """Split a communication time into exposed part + compute-slowdown tax.

    ``window`` is the compute time available for hiding.  The hidden portion
    steals ``processor_usage`` of the processor, slowing concurrent compute by
    ``pu / (1 - pu)`` of the hidden duration.
    """
    if net is None or comm <= 0:
        return max(comm, 0.0), 0.0
    exposed = max(0.0, comm - window)
    hidden = comm - exposed
    pu = net.processor_usage
    tax = hidden * pu / (1.0 - pu) if pu > 0 else 0.0
    return exposed, tax


def calculate(
    llm: LLMConfig, system: System, strategy: ExecutionStrategy
) -> PerformanceResult:
    """Run the full analytical model for one configuration.

    Returns an infeasible :class:`PerformanceResult` (never raises) when the
    strategy violates a constraint or exceeds a memory capacity, so search
    engines can sweep the space without exception handling.
    """
    try:
        strategy.validate(llm, system)
    except StrategyError as err:
        return PerformanceResult.infeasible(
            llm.name, system.name, strategy.short_name(), strategy.batch, str(err)
        )

    t, p, d = strategy.tensor_par, strategy.pipeline_par, strategy.data_par
    v = strategy.pp_interleaving
    M = strategy.num_microbatches
    L = llm.num_blocks
    bpstage = strategy.blocks_per_stage(L)
    e = llm.bytes_per_element
    b = strategy.microbatch

    prof = _profile_block(
        llm,
        system,
        b,
        t,
        strategy.seq_par,
        strategy.fused_activations,
        strategy.tp_redo_sp,
        strategy.recompute,
        strategy.tp_mode,
    )

    tp_net = system.network_for_span(t) if t > 1 else None
    pp_net = system.network_for_span(min(system.num_procs, t * p)) if p > 1 else None
    dp_net = (
        system.network_for_span(min(system.num_procs, t * p * d)) if d > 1 else None
    )

    training = strategy.training

    # ---- per-block TP communication exposure --------------------------------
    win_frac = _TP_OVERLAP_WINDOW[strategy.tp_overlap]
    tp_fw_exp, tp_fw_tax = _exposed_and_tax(
        prof.tp_fw_comm, win_frac * prof.fw_time, tp_net
    )
    tp_bw_exp, tp_bw_tax = _exposed_and_tax(
        prof.tp_bw_comm, win_frac * prof.bw_time, tp_net
    )
    tp_rc_exp, tp_rc_tax = _exposed_and_tax(
        prof.tp_recompute_comm, win_frac * prof.recompute_time, tp_net
    )

    # ---- per-microbatch stage times ------------------------------------------
    t_f_mb = bpstage * (prof.fw_time + tp_fw_exp + tp_fw_tax)
    if training:
        t_b_mb = bpstage * (
            prof.bw_time
            + prof.recompute_time
            + tp_bw_exp
            + tp_bw_tax
            + tp_rc_exp
            + tp_rc_tax
        )
    else:
        t_b_mb = 0.0

    # ---- pipeline point-to-point ---------------------------------------------
    # In the 1F1B steady state the asynchronous sends/receives hide behind the
    # per-chunk compute of other microbatches; a crossing is exposed only when
    # the transfer outlasts the chunk it overlaps.  The (p-1) fill (and drain)
    # crossings of the prologue/epilogue are serial and always exposed.
    pp_total = pp_exposed = 0.0
    if pp_net is not None:
        full_act = b * llm.seq_size * llm.hidden * e
        pp_bytes = full_act / t if strategy.pp_rs_ag else full_act
        p2p = pp_net.collective_time("p2p", pp_bytes, 2)
        if strategy.pp_rs_ag and tp_net is not None:
            # Re-gather / scatter around the transfer rides the TP network.
            p2p += tp_net.collective_time("all_gather", full_act, t)
            p2p += tp_net.collective_time("reduce_scatter", full_act, t)
        crossings = v * (2 if training else 1)  # fw (+ bw) per chunk boundary
        pp_total = M * crossings * p2p
        chunk_f = t_f_mb / v
        chunk_b = t_b_mb / v if training else 0.0
        pp_exposed = M * v * max(0.0, p2p - chunk_f)
        if training:
            pp_exposed += M * v * max(0.0, p2p - chunk_b)
        pp_exposed += (p - 1) * p2p  # pipeline fill hand-offs

    # ---- pipeline bubble -------------------------------------------------------
    if p > 1:
        chunk = (t_f_mb + t_b_mb) / v
        pp_bubble = (p - 1) * chunk
    else:
        pp_bubble = 0.0

    # ---- data-parallel gradient communication ---------------------------------
    dp_total = dp_exposed = dp_tax = 0.0
    if training and dp_net is not None:
        grad_bytes = bpstage * prof.weight_grad_bytes
        if strategy.optimizer_sharding:
            rs = dp_net.collective_time("reduce_scatter", grad_bytes, d)
            ag = dp_net.collective_time("all_gather", grad_bytes, d)
            dp_total = rs + ag
        else:
            rs = dp_net.collective_time("all_reduce", grad_bytes, d)
            ag = 0.0
            dp_total = rs
        if strategy.dp_overlap and bpstage > 0:
            # The gradient reduction overlaps layer-wise with the last
            # microbatch's backward pass (Fig. 2b); the final block's
            # communication is always exposed.  With optimizer sharding, the
            # weight all-gather never overlaps the optimizer step itself but
            # hides behind the next iteration's forward pass (ZeRO prefetch).
            blocks = bpstage * v
            win_bw = t_b_mb * (blocks - 1) / blocks if blocks > 1 else 0.0
            exp_rs, tax_rs = _exposed_and_tax(rs, win_bw, dp_net)
            dp_exposed = max(rs / blocks, exp_rs)
            dp_tax = tax_rs
            if ag > 0:
                win_fw = t_f_mb * (blocks - 1) / blocks if blocks > 1 else 0.0
                exp_ag, tax_ag = _exposed_and_tax(ag, win_fw, dp_net)
                dp_exposed += max(ag / blocks, exp_ag)
                dp_tax += tax_ag
        else:
            dp_exposed = dp_total

    # ---- optimizer step ---------------------------------------------------------
    optim_time = 0.0
    opt_shard = d if strategy.optimizer_sharding else 1
    opt_bytes = bpstage * prof.optimizer_bytes / opt_shard
    if training:
        params = opt_bytes / 12.0
        opt_flops = 12.0 * params  # Adam: moments update, bias-correct, apply
        traffic = (
            2.0 * opt_bytes
            + bpstage * (prof.weight_grad_bytes + prof.weight_bytes) / opt_shard
        )
        opt_mem = system.mem2 if strategy.optimizer_offload and system.mem2 else system.mem1
        compute_t = system.processor.compute_time("vector", opt_flops)
        optim_time = max(compute_t, traffic / opt_mem.effective_bandwidth(traffic))

    # ---- memory accounting -------------------------------------------------------
    in_flight = _in_flight_microbatches(M, p, v, strategy.pp_1f1b)
    stash_total = prof.stash_bytes * bpstage * in_flight
    weight_total = bpstage * prof.weight_bytes
    grad_total = bpstage * prof.weight_grad_bytes if training else 0.0

    tier2_used = 0.0
    if strategy.weight_offload:
        weight_res = min(bpstage, _OFFLOAD_WORKING_BLOCKS) * prof.weight_bytes
        tier2_used += weight_total
    else:
        weight_res = weight_total
    if training and strategy.activation_offload:
        act_res = min(bpstage * in_flight, _OFFLOAD_WORKING_BLOCKS) * prof.stash_bytes
        tier2_used += stash_total
    else:
        act_res = stash_total if training else prof.stash_bytes
    if training and strategy.optimizer_offload:
        opt_res = min(bpstage, 1) * prof.optimizer_bytes / opt_shard
        grad_res = min(bpstage, _OFFLOAD_WORKING_BLOCKS) * prof.weight_grad_bytes
        # With the distributed (sharded) optimizer, gradients are
        # reduce-scattered before being stashed, so the tier-2 copy is
        # sharded across the data-parallel group.
        tier2_used += opt_bytes + grad_total / opt_shard
    else:
        opt_res = opt_bytes if training else 0.0
        grad_res = grad_total

    mem1 = MemoryBreakdown(
        weight=weight_res,
        activation=act_res,
        weight_grad=grad_res,
        activation_grad=prof.act_grad_bytes if training else 0.0,
        optimizer=opt_res,
    )

    # ---- offload traffic, bandwidth requirement, exposure -------------------------
    offload_total = offload_exposed = 0.0
    required_bw = 0.0
    if strategy.offloading and system.mem2 is not None:
        mem2_bw = system.mem2.effective_bandwidth(float("inf"))
        bytes_fw = (prof.stash_bytes if strategy.activation_offload else 0.0) + (
            prof.weight_bytes if strategy.weight_offload else 0.0
        )
        bytes_bw = (
            (prof.stash_bytes if strategy.activation_offload else 0.0)
            + (prof.weight_bytes if strategy.weight_offload else 0.0)
            + (prof.weight_grad_bytes if strategy.optimizer_offload else 0.0)
        )
        win_fw = prof.fw_time + tp_fw_exp  # HBM idles during exposed comm too
        win_bw = prof.bw_time + prof.recompute_time + tp_bw_exp + tp_rc_exp
        # Throttled overlap: only HBM-idle portions of the window hide traffic.
        idle_fw = prof.fw_hbm_idle + tp_fw_exp
        idle_bw = prof.bw_hbm_idle + tp_bw_exp + tp_rc_exp
        if bytes_fw > 0 and win_fw > 0:
            required_bw = max(required_bw, bytes_fw / win_fw)
        if training and bytes_bw > 0 and win_bw > 0:
            required_bw = max(required_bw, bytes_bw / win_bw)
        n_fw = M * bpstage
        n_bw = M * bpstage if training else 0
        offload_total = (n_fw * bytes_fw + n_bw * bytes_bw) / mem2_bw
        offload_exposed = n_fw * max(0.0, bytes_fw / mem2_bw - idle_fw)
        offload_exposed += n_bw * max(0.0, bytes_bw / mem2_bw - idle_bw)

    # ---- feasibility ----------------------------------------------------------------
    if mem1.total > system.mem1.capacity:
        return PerformanceResult.infeasible(
            llm.name,
            system.name,
            strategy.short_name(),
            strategy.batch,
            f"tier-1 memory {mem1.total / 2**30:.1f} GiB exceeds capacity "
            f"{system.mem1.capacity / 2**30:.1f} GiB",
        )
    if system.mem2 is not None and tier2_used > system.mem2.capacity:
        return PerformanceResult.infeasible(
            llm.name,
            system.name,
            strategy.short_name(),
            strategy.batch,
            f"tier-2 memory {tier2_used / 2**30:.1f} GiB exceeds capacity "
            f"{system.mem2.capacity / 2**30:.1f} GiB",
        )

    # ---- assemble the time breakdown ---------------------------------------------
    time = TimeBreakdown(
        fw_pass=M * bpstage * prof.fw_time,
        bw_pass=M * bpstage * prof.bw_time if training else 0.0,
        fw_recompute=M * bpstage * prof.recompute_time if training else 0.0,
        optim_step=optim_time,
        pp_bubble=pp_bubble,
        tp_comm_exposed=M
        * bpstage
        * (tp_fw_exp + (tp_bw_exp + tp_rc_exp if training else 0.0)),
        pp_comm_exposed=pp_exposed,
        dp_comm_exposed=dp_exposed,
        offload_exposed=offload_exposed,
        overlap_tax=M
        * bpstage
        * (tp_fw_tax + (tp_bw_tax + tp_rc_tax if training else 0.0))
        + dp_tax,
        tp_comm_total=M
        * bpstage
        * (
            prof.tp_fw_comm
            + (prof.tp_bw_comm + prof.tp_recompute_comm if training else 0.0)
        ),
        pp_comm_total=pp_total,
        dp_comm_total=dp_total,
        offload_total=offload_total,
    )

    # ---- model FLOPs utilization ----------------------------------------------------
    useful_flops = (
        (prof.flops_fw + (prof.flops_bw if training else 0.0)) * t * L * M * d
    )
    peak = system.processor.matrix_flops * system.num_procs
    mfu = useful_flops / (time.batch_time * peak) if time.batch_time > 0 else 0.0

    result = PerformanceResult(
        llm_name=llm.name,
        system_name=system.name,
        strategy_name=strategy.short_name(),
        batch=strategy.batch,
        time=time,
        mem1=mem1,
        offload=OffloadStats(used_bytes=tier2_used, required_bandwidth=required_bw),
        mfu=mfu,
    )
    if _DEBUG_CHECK:
        from .consistency import assert_consistent

        assert_consistent(result)
    return result


def _in_flight_microbatches(M: int, p: int, v: int, one_f_one_b: bool) -> float:
    """Microbatches whose activations are simultaneously stashed per stage.

    1F1B bounds in-flight microbatches by the pipeline depth ``p``; the
    interleaved variant stores an extra ``(p-1)/v`` partial set (Korthikanti
    et al. '22, Eq. 6).  Without 1F1B (GPipe-style), every microbatch of the
    flush is live at the fill peak.
    """
    if p == 1:
        return 1.0
    if not one_f_one_b:
        return float(M)
    base = float(p) if v == 1 else p + (p - 1) / v
    return min(float(M) if v == 1 else M + (p - 1) / v, base)
