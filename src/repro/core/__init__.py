"""Core analytical performance model: LLM x System x Execution -> statistics."""

from .consistency import assert_consistent, check_result
from .layers_report import LayerProfile, hottest_layers, profile_layers
from .flops import OpTime, layer_bw_time, layer_fw_time, op_time
from .model import calculate
from .results import (
    MemoryBreakdown,
    OffloadStats,
    PerformanceResult,
    TimeBreakdown,
)

__all__ = [
    "MemoryBreakdown",
    "OffloadStats",
    "OpTime",
    "assert_consistent",
    "check_result",
    "PerformanceResult",
    "TimeBreakdown",
    "LayerProfile",
    "calculate",
    "hottest_layers",
    "layer_bw_time",
    "layer_fw_time",
    "op_time",
    "profile_layers",
]
