"""Result structures returned by the performance model (paper §2.4).

The model outputs total performance (batch time, sample rate, MFU), a time
breakdown (forward, backward, recompute, optimizer, pipeline bubble, exposed
TP/PP/DP communication, exposed offload), and a memory breakdown per tier
(weights, activations, gradients, optimizer state) — mirroring Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar

from ..units import human_bytes, human_time


@dataclass(frozen=True)
class TimeBreakdown:
    """Where one training batch's time goes (seconds, per device).

    The ``*_comm_exposed`` fields are the portions blocking computation; the
    matching ``*_comm_total`` fields record the full time on the wire.
    ``batch_time`` is the sum of the exposed components.
    """

    fw_pass: float = 0.0
    bw_pass: float = 0.0
    fw_recompute: float = 0.0
    optim_step: float = 0.0
    pp_bubble: float = 0.0
    tp_comm_exposed: float = 0.0
    pp_comm_exposed: float = 0.0
    dp_comm_exposed: float = 0.0
    offload_exposed: float = 0.0
    overlap_tax: float = 0.0  # compute slowdown from driving the network
    tp_comm_total: float = 0.0
    pp_comm_total: float = 0.0
    dp_comm_total: float = 0.0
    offload_total: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValueError(f"TimeBreakdown.{f.name} must be non-negative")

    @property
    def batch_time(self) -> float:
        return (
            self.fw_pass
            + self.bw_pass
            + self.fw_recompute
            + self.optim_step
            + self.pp_bubble
            + self.tp_comm_exposed
            + self.pp_comm_exposed
            + self.dp_comm_exposed
            + self.offload_exposed
            + self.overlap_tax
        )

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def stacked(self) -> list[tuple[str, float]]:
        """The Fig. 3 / Fig. 4 stacked-bar components, in plot order."""
        return [
            ("FW pass", self.fw_pass),
            ("BW pass", self.bw_pass),
            ("Optim step", self.optim_step),
            ("PP bubble", self.pp_bubble),
            ("FW recompute", self.fw_recompute),
            ("TP comm", self.tp_comm_exposed),
            ("PP comm", self.pp_comm_exposed),
            ("DP comm", self.dp_comm_exposed),
            ("Offload", self.offload_exposed),
            ("Overlap tax", self.overlap_tax),
        ]


@dataclass(frozen=True)
class MemoryBreakdown:
    """Bytes resident per device, by data type (the Fig. 3 HBM chart)."""

    weight: float = 0.0
    activation: float = 0.0
    weight_grad: float = 0.0
    activation_grad: float = 0.0
    optimizer: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValueError(f"MemoryBreakdown.{f.name} must be non-negative")

    @property
    def total(self) -> float:
        return (
            self.weight
            + self.activation
            + self.weight_grad
            + self.activation_grad
            + self.optimizer
        )

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def stacked(self) -> list[tuple[str, float]]:
        return [
            ("Weight", self.weight),
            ("Activation", self.activation),
            ("Weight gradients", self.weight_grad),
            ("Activation gradients", self.activation_grad),
            ("Optimizer space", self.optimizer),
        ]


@dataclass(frozen=True)
class OffloadStats:
    """Tier-2 memory usage and the bandwidth needed for seamless offload."""

    used_bytes: float = 0.0
    required_bandwidth: float = 0.0  # bytes/s for fully-hidden transfers (Eq. 1)

    def __post_init__(self) -> None:
        if self.used_bytes < 0 or self.required_bandwidth < 0:
            raise ValueError("offload stats must be non-negative")


@dataclass(frozen=True)
class PerformanceResult:
    """Complete output of one performance calculation."""

    llm_name: str
    system_name: str
    strategy_name: str
    batch: int
    time: TimeBreakdown
    mem1: MemoryBreakdown
    offload: OffloadStats
    mfu: float
    feasible: bool = True
    infeasibility: str = ""

    # Fully-evaluated results are never bound-pruned; the class attribute
    # (not a dataclass field, so serialization and equality are untouched)
    # lets ranking code ask `result.pruned` uniformly across this class and
    # the engine's lightweight PrunedResult marker.
    pruned: ClassVar[bool] = False

    @property
    def batch_time(self) -> float:
        return self.time.batch_time

    @property
    def sample_rate(self) -> float:
        """Samples processed per second of training."""
        if not self.feasible or self.batch_time == 0:
            return 0.0
        return self.batch / self.batch_time

    def summary(self) -> str:
        """Multi-line human-readable report (the Fig. 3-style output)."""
        lines = [
            f"{self.llm_name} on {self.system_name} [{self.strategy_name}]",
        ]
        if not self.feasible:
            lines.append(f"  INFEASIBLE: {self.infeasibility}")
            return "\n".join(lines)
        lines.append(
            f"  batch time {human_time(self.batch_time)}  "
            f"sample rate {self.sample_rate:.1f}/s  MFU {self.mfu * 100:.2f}%"
        )
        for label, val in self.time.stacked():
            if val > 0:
                lines.append(
                    f"    {label:<16} {human_time(val):>10}"
                    f"  ({val / self.batch_time * 100:5.1f}%)"
                )
        lines.append(f"  HBM used {human_bytes(self.mem1.total)}")
        for label, val in self.mem1.stacked():
            if val > 0:
                lines.append(
                    f"    {label:<20} {human_bytes(val):>12}"
                    f"  ({val / self.mem1.total * 100:5.1f}%)"
                )
        if self.offload.used_bytes > 0:
            lines.append(
                f"  offload used {human_bytes(self.offload.used_bytes)}"
                f"  required BW {self.offload.required_bandwidth / 1e9:.1f} GB/s"
            )
        return "\n".join(lines)

    @classmethod
    def infeasible(
        cls, llm_name: str, system_name: str, strategy_name: str, batch: int, reason: str
    ) -> "PerformanceResult":
        return cls(
            llm_name=llm_name,
            system_name=system_name,
            strategy_name=strategy_name,
            batch=batch,
            time=TimeBreakdown(),
            mem1=MemoryBreakdown(),
            offload=OffloadStats(),
            mfu=0.0,
            feasible=False,
            infeasibility=reason,
        )
