"""Internal-consistency checks for model outputs.

A :class:`~repro.core.results.PerformanceResult` must satisfy a set of
identities regardless of configuration (exposed communication never exceeds
the wire time, the batch time is exactly the sum of its components, MFU is a
physical fraction, ...).  :func:`check_result` verifies them all and returns
the violations; property tests and downstream pipelines use it as a tripwire
against regressions that individual assertions would miss.
"""

from __future__ import annotations

from .results import PerformanceResult

_TOL = 1e-9


def check_result(result: PerformanceResult) -> list[str]:
    """Return a list of violated invariants (empty means consistent)."""
    problems: list[str] = []
    if not result.feasible:
        if not result.infeasibility:
            problems.append("infeasible result must carry a reason")
        if result.sample_rate != 0.0:
            problems.append("infeasible result must have zero sample rate")
        return problems

    t = result.time
    components = (
        t.fw_pass,
        t.bw_pass,
        t.fw_recompute,
        t.optim_step,
        t.pp_bubble,
        t.tp_comm_exposed,
        t.pp_comm_exposed,
        t.dp_comm_exposed,
        t.offload_exposed,
        t.overlap_tax,
    )
    if any(c < -_TOL for c in components):
        problems.append("negative time component")
    if abs(sum(components) - t.batch_time) > max(_TOL, 1e-9 * t.batch_time):
        problems.append("batch_time is not the sum of its components")
    if t.batch_time <= 0:
        problems.append("feasible result must have positive batch time")

    if t.tp_comm_exposed > t.tp_comm_total + _TOL:
        problems.append("exposed TP communication exceeds wire time")
    if t.dp_comm_exposed > t.dp_comm_total + _TOL:
        problems.append("exposed DP communication exceeds wire time")
    if t.pp_comm_exposed > t.pp_comm_total + t.pp_comm_total / max(1, 1) + _TOL:
        # fill hand-offs are part of the wire total; exposure cannot exceed it
        if t.pp_comm_exposed > t.pp_comm_total * 1.5 + _TOL:
            problems.append("exposed PP communication far exceeds wire time")
    if t.offload_exposed > t.offload_total + _TOL:
        problems.append("exposed offload time exceeds transfer time")

    if not 0.0 < result.mfu <= 1.0:
        problems.append(f"MFU outside (0, 1]: {result.mfu}")
    expected_rate = result.batch / t.batch_time
    if abs(result.sample_rate - expected_rate) > 1e-6 * expected_rate:
        problems.append("sample rate inconsistent with batch time")

    m = result.mem1
    if any(
        v < -_TOL
        for v in (m.weight, m.activation, m.weight_grad, m.activation_grad,
                  m.optimizer)
    ):
        problems.append("negative memory component")
    if m.total <= 0:
        problems.append("feasible result must use some memory")

    if result.offload.used_bytes < -_TOL:
        problems.append("negative tier-2 usage")
    if result.offload.required_bandwidth < -_TOL:
        problems.append("negative required offload bandwidth")
    return problems


def assert_consistent(result: PerformanceResult) -> None:
    """Raise ``AssertionError`` listing every violated invariant."""
    problems = check_result(result)
    if problems:
        raise AssertionError(
            f"{result.llm_name}/{result.strategy_name}: " + "; ".join(problems)
        )
