"""Per-layer profiling: where inside the block does the time go?

The block-level model aggregates fifteen layers; this module exposes the
per-layer view — forward/backward time, FLOPs, traffic, rooflines — for one
configuration, the report an engineer reads before deciding which kernel to
fuse or which dimension to shard next.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..execution.strategy import ExecutionStrategy
from ..hardware.system import System
from ..llm.blocks import build_block
from ..llm.config import LLMConfig
from .flops import layer_bw_time, layer_fw_time


@dataclass(frozen=True)
class LayerProfile:
    """Analytical figures for one layer of the sharded block."""

    name: str
    engine: str
    fw_time: float
    bw_time: float
    fw_flops: float
    fw_traffic: float
    fw_compute_bound: bool
    weight_bytes: float
    stash_bytes: float

    @property
    def total_time(self) -> float:
        return self.fw_time + self.bw_time


def profile_layers(
    llm: LLMConfig, system: System, strategy: ExecutionStrategy
) -> list[LayerProfile]:
    """Per-layer profile of one transformer block under the strategy.

    Raises:
        ValueError: if the strategy is structurally invalid for the system.
    """
    strategy.validate(llm, system)
    block = build_block(
        llm,
        microbatch=strategy.microbatch,
        tensor_par=strategy.tensor_par,
        seq_par=strategy.seq_par,
        fused_activations=strategy.fused_activations,
        tp_redo_sp=strategy.tp_redo_sp,
        tp_mode=strategy.tp_mode,
    )
    out = []
    for layer in block.layers:
        f = layer_fw_time(system.processor, system.mem1, layer)
        b = layer_bw_time(system.processor, system.mem1, layer)
        out.append(
            LayerProfile(
                name=layer.name,
                engine=layer.engine.value,
                fw_time=f.total,
                bw_time=b.total,
                fw_flops=layer.flops_fw,
                fw_traffic=layer.traffic_fw,
                fw_compute_bound=f.compute_bound,
                weight_bytes=layer.weight_bytes,
                stash_bytes=layer.stash_bytes,
            )
        )
    return out


def hottest_layers(
    profiles: list[LayerProfile], k: int = 3
) -> list[LayerProfile]:
    """The ``k`` layers with the largest combined forward+backward time."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return sorted(profiles, key=lambda p: -p.total_time)[:k]
