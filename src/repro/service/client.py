"""HTTP client for the evaluation service (stdlib ``urllib`` only).

Transient failure handling reuses the sweep layer's
:class:`repro.search.faults.RetryPolicy`: connection errors and 5xx
responses are retried with the same bounded exponential backoff a chunked
search applies to crashed workers, and a 503 carrying ``Retry-After``
(the server's backpressure signal) waits at least that long before the
next attempt.  400s are the caller's fault and never retried.

Passing a :class:`~repro.obs.Tracer` to :meth:`ServiceClient.evaluate` /
:meth:`~ServiceClient.evaluate_many` propagates its trace context to the
server in the ``X-Repro-Trace`` header; the server's ``service.request``
span rides back on the response and is merged into the tracer under a
``server`` process lane, so one Chrome trace shows both sides of every
query.
"""

from __future__ import annotations

import json
import logging
import urllib.error
import urllib.request
from time import sleep
from typing import Any, Sequence

from ..execution.strategy import ExecutionStrategy
from ..obs import TRACE_HEADER, Tracer
from ..search.faults import RetryPolicy

logger = logging.getLogger(__name__)

# Service-appropriate defaults: quicker first retry than the sweep default,
# same cap, a couple of attempts.
DEFAULT_RETRY = RetryPolicy(max_retries=3, backoff_base=0.1, backoff_max=2.0)


class ServiceUnavailable(RuntimeError):
    """The service could not be reached or kept failing across retries."""


class RequestFailed(RuntimeError):
    """The service answered with a non-retryable error (4xx)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """A thin JSON client over the service's five endpoints."""

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8100",
        *,
        retry: RetryPolicy | None = None,
        timeout: float = 60.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.timeout = timeout

    # -- endpoints -----------------------------------------------------------

    def evaluate(
        self,
        llm: str | dict,
        system: str | dict,
        strategy: ExecutionStrategy | dict,
        *,
        tracer: Tracer | None = None,
    ) -> dict:
        """Evaluate one configuration; returns the service's response payload
        (``result`` holds the flat result dict, ``cache`` says which tier —
        or coalesced peer — served it).  With a ``tracer``, the request
        carries its trace context and the server's spans are merged back
        into it (see the module docstring)."""
        response = self._request(
            "POST",
            "/evaluate",
            {"llm": llm, "system": system, "strategy": _strategy_dict(strategy)},
            headers=_trace_headers(tracer),
        )
        _merge_server_trace(tracer, response)
        return response

    def evaluate_many(
        self,
        llm: str | dict,
        system: str | dict,
        strategies: Sequence[ExecutionStrategy | dict],
        *,
        tracer: Tracer | None = None,
    ) -> list[dict]:
        """Evaluate a list of strategies; response payloads align with input.
        ``tracer`` propagates trace context exactly as in :meth:`evaluate`."""
        response = self._request(
            "POST",
            "/evaluate_many",
            {
                "llm": llm,
                "system": system,
                "strategies": [_strategy_dict(s) for s in strategies],
            },
            headers=_trace_headers(tracer),
        )
        _merge_server_trace(tracer, response)
        return response["results"]

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def presets(self) -> list[dict]:
        return self._request("GET", "/presets")["presets"]

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics", raw=True)

    def post(self, path: str, payload: dict) -> Any:
        """POST a JSON body to an arbitrary path (fabric protocol routes)."""
        return self._request("POST", path, payload)

    def get(self, path: str) -> Any:
        """GET a JSON payload from an arbitrary path."""
        return self._request("GET", path)

    def metric_value(self, name: str, default: float = 0.0) -> float:
        """One sample from ``/metrics`` by its Prometheus name."""
        for line in self.metrics_text().splitlines():
            if line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) == 2 and parts[0] == name:
                return float(parts[1])
        return default

    # -- transport -----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        raw: bool = False,
        headers: dict | None = None,
    ) -> Any:
        url = self.base_url + path
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        last_error: Exception | None = None
        for attempt in range(self.retry.max_retries + 1):
            if attempt:
                sleep(max(self.retry.delay(attempt - 1), _retry_after(last_error)))
            request = urllib.request.Request(
                url,
                data=body,
                method=method,
                headers={"Content-Type": "application/json", **(headers or {})},
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                    text = resp.read().decode("utf-8")
                    return text if raw else json.loads(text)
            except urllib.error.HTTPError as err:
                message = _error_message(err)
                if err.code < 500 and err.code != 503:
                    raise RequestFailed(err.code, message) from None
                logger.debug("attempt %d: HTTP %d (%s)", attempt, err.code, message)
                last_error = err
            except (urllib.error.URLError, OSError) as err:
                logger.debug("attempt %d: %s", attempt, err)
                last_error = err
        raise ServiceUnavailable(
            f"{method} {url} failed after {self.retry.max_retries + 1} attempts: "
            f"{last_error}"
        )


def _trace_headers(tracer: Tracer | None) -> dict | None:
    if tracer is None or not tracer.enabled:
        return None
    return {TRACE_HEADER: tracer.context().to_header()}


def _merge_server_trace(tracer: Tracer | None, response: Any) -> None:
    """Fold the server's span events (if any) into the caller's tracer.

    The ``"trace"`` key is popped either way so response payloads stay
    schema-stable for callers that only want results.
    """
    if not isinstance(response, dict):
        return
    trace = response.pop("trace", None)
    if tracer is None or not tracer.enabled or not trace:
        return
    tracer.add_events(trace.get("events", []), label="server")


def _strategy_dict(strategy: ExecutionStrategy | dict) -> dict:
    return strategy.to_dict() if isinstance(strategy, ExecutionStrategy) else dict(strategy)


def _error_message(err: urllib.error.HTTPError) -> str:
    try:
        return json.loads(err.read().decode("utf-8")).get("error", str(err))
    except Exception:
        return str(err)


def _retry_after(err: Exception | None) -> float:
    if isinstance(err, urllib.error.HTTPError):
        value = err.headers.get("Retry-After")
        if value:
            try:
                return float(value)
            except ValueError:
                pass
    return 0.0
