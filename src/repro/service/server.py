"""The evaluation service: a long-lived daemon around the staged engine.

``repro.service`` converts the batch tool into shared infrastructure: a
process that stays up, remembers every evaluation it has ever done, and
serves interactive what-if queries over a stdlib-only HTTP JSON API.

:class:`EvaluationService` is the transport-free core (tests drive it
directly); :class:`ServiceHTTPServer` + :func:`serve` wrap it in a
``ThreadingHTTPServer``.  The request path composes three mechanisms:

* **content-addressed caching** — the request's (LLM, system, strategy)
  triple is hashed with :func:`repro.cachekey.run_key` (engine version
  included) and looked up in the two-tier :class:`ResultCache`; hits never
  touch the engine;
* **in-flight coalescing** — concurrent identical misses rendezvous on one
  future: the first requester (the *leader*) evaluates, every follower
  waits and shares the answer, so N identical queries cost one engine call;
* **micro-batched dispatch** — leader misses queue into the
  :class:`~repro.service.dispatch.MicroBatcher`, which feeds a short
  arrival window of distinct candidates through ``evaluate_many`` to
  exploit profile-group and memory-bucket dedup across *different* queries.

Capacity is bounded: when the dispatch backlog reaches ``max_pending`` the
service answers 503 with a ``Retry-After`` hint instead of queueing without
limit, and a draining server (SIGTERM) finishes in-flight work while
rejecting new evaluations.  See ``docs/SERVICE.md``.

``POST /serve`` runs the serving-deployment simulator
(:func:`repro.serving.simulate_plan`) for one plan/workload/SLO triple.
It shares the content-addressed cache (``kind="service.serve"`` keys) and
draining behaviour, but evaluates synchronously in the handler thread —
one simulation is one cohesive discrete-event run, so there is nothing for
the micro-batcher to dedup.  See ``docs/SERVING.md``.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
from concurrent.futures import Future
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter, sleep
from typing import Any

from ..cachekey import content_key, run_key
from ..execution.strategy import ExecutionStrategy, StrategyError
from ..io.report import result_to_flat_dict
from ..io.specs import llm_from_spec, system_from_spec, system_to_dict
from ..llm.config import iter_presets
from ..obs import (
    TRACE_HEADER,
    EventJournal,
    MetricsRegistry,
    TraceContext,
    Tracer,
    render_prometheus,
)
from ..serving.stats import M_SERVE_REQUESTS, M_SERVE_SECONDS
from .cache import (
    M_CACHE_HIT_DISK,
    M_CACHE_HIT_MEMORY,
    M_CACHE_MISS,
    ResultCache,
)
from .dispatch import MicroBatcher

logger = logging.getLogger(__name__)

SERVICE_VERSION = 1

# -- service metric names -----------------------------------------------------
M_REQUESTS = "service.requests"
M_COALESCED = "service.coalesced"
M_REJECT_OVERLOAD = "service.rejected.overload"
M_REJECT_DRAINING = "service.rejected.draining"
M_BAD_REQUESTS = "service.rejected.bad_request"
M_REQUEST_SECONDS = "service.request.seconds"


class ServiceError(RuntimeError):
    """Base of the errors the HTTP layer maps onto status codes."""

    status = 500


class BadRequest(ServiceError):
    """Malformed payload or unresolvable spec."""

    status = 400


class Overloaded(ServiceError):
    """The dispatch backlog is full; retry after ``retry_after`` seconds."""

    status = 503

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class Draining(Overloaded):
    """The server is shutting down gracefully; new evaluations are refused."""


class EvaluationService:
    """Transport-agnostic request pipeline: cache → coalesce → micro-batch."""

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        batcher: MicroBatcher | None = None,
        metrics: MetricsRegistry | None = None,
        max_pending: int = 256,
        request_timeout: float = 60.0,
        events: EventJournal | None = None,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.events = events
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = cache if cache is not None else ResultCache(metrics=self.metrics)
        self.batcher = (
            batcher if batcher is not None else MicroBatcher(metrics=self.metrics)
        )
        self.max_pending = max_pending
        self.request_timeout = request_timeout
        self._inflight: dict[str, "Future[dict]"] = {}
        self._inflight_lock = threading.Lock()
        self._draining = threading.Event()
        self._started = perf_counter()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "EvaluationService":
        self.batcher.start()
        return self

    def begin_drain(self) -> None:
        """Refuse new evaluations; queued and in-flight work still completes."""
        self._draining.set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the backlog empties; True when fully drained."""
        deadline = None if timeout is None else perf_counter() + timeout
        while self.batcher.depth or self._inflight:
            if deadline is not None and perf_counter() > deadline:
                return False
            sleep(0.01)
        return True

    def stop(self, *, drain: bool = True) -> None:
        self.begin_drain()
        if drain:
            self.drain(timeout=self.request_timeout)
        self.batcher.stop(drain=drain)

    # -- request parsing -----------------------------------------------------

    def _parse(self, payload: Any) -> tuple[Any, Any, list[ExecutionStrategy], bool]:
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        for field in ("llm", "system"):
            if field not in payload:
                raise BadRequest(f"missing required field {field!r}")
        try:
            llm = llm_from_spec(payload["llm"])
            system = system_from_spec(payload["system"])
        except (ValueError, KeyError, TypeError) as err:
            raise BadRequest(f"unresolvable spec: {err}") from None
        if "strategies" in payload:
            raw, many = payload["strategies"], True
            if not isinstance(raw, list) or not raw:
                raise BadRequest("'strategies' must be a non-empty list")
        elif "strategy" in payload:
            raw, many = [payload["strategy"]], False
        else:
            raise BadRequest("missing required field 'strategy' (or 'strategies')")
        strategies = []
        for entry in raw:
            try:
                strategies.append(ExecutionStrategy.from_dict(dict(entry)))
            except (StrategyError, TypeError, ValueError) as err:
                raise BadRequest(f"bad execution strategy: {err}") from None
        return llm, system, strategies, many

    def _emit(self, kind: str, **fields: Any) -> None:
        if self.events is not None:
            self.events.emit(kind, **fields)

    # -- evaluation ----------------------------------------------------------

    def evaluate_payload(
        self, payload: Any, *, trace_context: TraceContext | None = None
    ) -> dict:
        """Serve one ``POST /evaluate`` or ``/evaluate_many`` body.

        With a ``trace_context`` (deserialized from the ``X-Repro-Trace``
        header), the request is wrapped in a ``service.request`` span in a
        tracer that joins the caller's trace, and the span events ride back
        on the response under a top-level ``"trace"`` key — the client
        merges them into its own tracer, so the stitched Chrome trace shows
        the server's lane next to the coordinator's (both clocks are the
        same machine-wide ``perf_counter``).
        """
        t0 = perf_counter()
        self.metrics.inc(M_REQUESTS)
        llm, system, strategies, many = self._parse(payload)
        group = content_key(
            {"llm": llm.to_dict(), "system": system_to_dict(system)}
        )
        entries = []
        try:
            for strategy in strategies:
                key = run_key(
                    llm, system, strategy.batch, strategy, kind="service.evaluate"
                )
                entries.append(self._resolve(key, llm, system, strategy, group))
            results = [self._finish(entry) for entry in entries]
        except BaseException as err:
            # A failure anywhere in the request — a mid-request rejection
            # (e.g. backlog full on the 3rd of 5 strategies) or a _finish
            # error on an earlier entry — must not strand leaders that are
            # still registered: settle their rendezvous futures so coalesced
            # followers (and later identical queries) fail fast instead of
            # waiting forever on a future nobody will resolve.  _settle is
            # a no-op for entries that already settled.
            for entry in entries:
                if entry[1] == "miss":
                    self._settle(entry[0], error=err)
            raise
        elapsed = perf_counter() - t0
        self.metrics.observe(M_REQUEST_SECONDS, elapsed)
        sources = [r["cache"] for r in results]
        self._emit(
            "request.done", seconds=elapsed, strategies=len(strategies),
            hits=sum(s in ("memory", "disk") for s in sources),
            coalesced=sources.count("coalesced"),
            misses=sources.count("miss"),
            trace_id=trace_context.trace_id if trace_context else None,
        )
        out = {"results": results, "count": len(results)} if many else results[0]
        if trace_context is not None:
            tracer = Tracer(trace_id=trace_context.trace_id)
            tracer.add_span(
                "evaluate", "service.request", t0, elapsed,
                strategies=len(strategies), cache=",".join(sources),
                trace_id=tracer.trace_id,
            )
            out["trace"] = {"trace_id": tracer.trace_id, "events": tracer.events()}
        return out

    def _resolve(self, key, llm, system, strategy, group):
        """Phase 1 of one keyed evaluation: hit, follow, or lead.

        Returns ``(key, source, value)`` where ``value`` is the payload for
        a cache hit, the shared future for a coalesced follower, or the
        engine future for the leader.  Leaders submit *before* any waiting
        happens so the whole request batch can share one dispatch window.
        """
        tier = self.cache.tier(key)
        if tier is not None:
            value = self.cache.get(key)
            if value is not None:
                self._emit("cache.hit", tier=tier, key=key[:16])
                return key, tier, value
        with self._inflight_lock:
            shared = self._inflight.get(key)
            if shared is not None:
                self.metrics.inc(M_COALESCED)
                self._emit("coalesce", key=key[:16])
                return key, "coalesced", shared
            if self.draining:
                self.metrics.inc(M_REJECT_DRAINING)
                self._emit("draining.reject", key=key[:16])
                raise Draining("server is draining; no new evaluations")
            if self.batcher.depth >= self.max_pending:
                self.metrics.inc(M_REJECT_OVERLOAD)
                self._emit(
                    "backpressure.reject", key=key[:16],
                    depth=self.batcher.depth, max_pending=self.max_pending,
                )
                raise Overloaded(
                    f"dispatch backlog full ({self.max_pending} pending)"
                )
            shared = Future()
            self._inflight[key] = shared
        # tier() moves no counters, so count the miss here: one per leader
        # (followers coalesce; they never consulted the cache).
        self.metrics.inc(M_CACHE_MISS)
        self._emit("cache.miss", key=key[:16])
        try:
            engine_future = self.batcher.submit(llm, system, strategy, group=group)
        except BaseException as err:
            self._settle(key, error=err)
            raise
        return key, "miss", (shared, engine_future)

    def _finish(self, entry) -> dict:
        """Phase 2: turn a resolve entry into a response payload."""
        key, source, value = entry
        if source in ("memory", "disk"):
            return self._respond(key, source, value)
        if source == "coalesced":
            try:
                payload = value.result(timeout=self.request_timeout)
            except ServiceError:
                raise
            except BaseException as err:
                raise ServiceError(f"evaluation failed: {err}") from err
            return self._respond(key, "coalesced", payload["result"])
        shared, engine_future = value
        try:
            result = engine_future.result(timeout=self.request_timeout)
            flat = result_to_flat_dict(result)
            try:
                self.cache.put(key, flat)
            except Exception:
                # A cache-write failure (disk full, permissions) must not
                # fail the request: the result is in hand, serve it uncached.
                logger.exception("cache put failed for %s…", key[:12])
            payload = self._respond(key, "miss", flat)
        except BaseException as err:
            # Settle on every exit path — engine failure, future timeout,
            # anything else — so followers never inherit a future nobody
            # will resolve.
            self._settle(key, error=err)
            raise ServiceError(f"evaluation failed: {err}") from err
        self._settle(key, payload=payload)
        return payload

    # -- serving simulation (POST /serve) ------------------------------------

    def _parse_serve(self, payload: Any):
        """Validate a ``/serve`` body into typed serving objects."""
        from ..serving import ServePlan, ServeWorkload, SLOSpec

        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        for field in ("llm", "system", "plan", "workload"):
            if field not in payload:
                raise BadRequest(f"missing required field {field!r}")
        try:
            llm = llm_from_spec(payload["llm"])
            system = system_from_spec(payload["system"])
        except (ValueError, KeyError, TypeError) as err:
            raise BadRequest(f"unresolvable spec: {err}") from None
        try:
            plan = ServePlan.from_dict(dict(payload["plan"]))
        except (KeyError, TypeError, ValueError) as err:
            raise BadRequest(f"bad serve plan: {err}") from None
        try:
            workload = ServeWorkload.from_dict(dict(payload["workload"]))
        except (KeyError, TypeError, ValueError) as err:
            raise BadRequest(f"bad serve workload: {err}") from None
        slo = None
        if payload.get("slo") is not None:
            try:
                slo = SLOSpec.from_dict(dict(payload["slo"]))
            except (TypeError, ValueError) as err:
                raise BadRequest(f"bad slo spec: {err}") from None
        max_batch = payload.get("max_batch")
        if max_batch is not None:
            try:
                max_batch = int(max_batch)
            except (TypeError, ValueError):
                raise BadRequest("'max_batch' must be an integer") from None
            if max_batch < 1:
                raise BadRequest("'max_batch' must be >= 1")
        return llm, system, plan, workload, slo, max_batch

    def serve_payload(
        self, payload: Any, *, trace_context: TraceContext | None = None
    ) -> dict:
        """Serve one ``POST /serve`` body: simulate one serving deployment.

        The simulator is deterministic, so results are content-cacheable
        exactly like engine evaluations — the key hashes the plan, the
        workload and the SLO under ``kind="service.serve"``, which can
        never collide with ``service.evaluate`` keys for the same specs.
        """
        from dataclasses import asdict

        from ..serving import simulate_plan

        t0 = perf_counter()
        self.metrics.inc(M_REQUESTS)
        self.metrics.inc(M_SERVE_REQUESTS)
        llm, system, plan, workload, slo, max_batch = self._parse_serve(payload)
        key = run_key(
            llm, system, 0, plan, kind="service.serve",
            extra={
                "workload": workload.to_dict(),
                "slo": slo.to_dict() if slo is not None else None,
                "max_batch": max_batch,
            },
        )
        source = flat = None
        tier = self.cache.tier(key)
        if tier is not None:
            flat = self.cache.get(key)
            if flat is not None:
                source = tier
                self._emit("cache.hit", tier=tier, key=key[:16])
        if flat is None:
            if self.draining:
                self.metrics.inc(M_REJECT_DRAINING)
                self._emit("draining.reject", key=key[:16])
                raise Draining("server is draining; no new evaluations")
            self.metrics.inc(M_CACHE_MISS)
            self._emit("cache.miss", key=key[:16])
            try:
                stats = simulate_plan(
                    llm, system, plan, workload, slo=slo, max_batch=max_batch
                )
            except ValueError as err:
                raise BadRequest(f"unserveable plan: {err}") from None
            flat = asdict(stats)
            # Per-request latency vectors are simulation internals; the
            # percentile fields already summarize them for clients.
            flat.pop("ttfts", None)
            flat.pop("tpots", None)
            flat["plan"] = plan.to_dict()
            flat["slo_satisfied"] = slo.satisfied(stats) if slo else True
            flat["slo_violations"] = list(slo.violations(stats)) if slo else []
            try:
                self.cache.put(key, flat)
            except Exception:
                logger.exception("cache put failed for %s…", key[:12])
            source = "miss"
        elapsed = perf_counter() - t0
        self.metrics.observe(M_REQUEST_SECONDS, elapsed)
        self.metrics.observe(M_SERVE_SECONDS, elapsed)
        self._emit(
            "serve.done", seconds=elapsed, cache=source,
            goodput_rps=flat.get("goodput_rps"),
            trace_id=trace_context.trace_id if trace_context else None,
        )
        out = self._respond(key, source, flat)
        if trace_context is not None:
            tracer = Tracer(trace_id=trace_context.trace_id)
            tracer.add_span(
                "serve", "service.request", t0, elapsed,
                cache=source, trace_id=tracer.trace_id,
            )
            out["trace"] = {"trace_id": tracer.trace_id, "events": tracer.events()}
        return out

    def _settle(self, key: str, *, payload: dict | None = None, error=None) -> None:
        """Resolve and retire the in-flight rendezvous future for ``key``."""
        with self._inflight_lock:
            shared = self._inflight.pop(key, None)
        if shared is None:
            return
        if error is not None:
            shared.set_exception(error)
        else:
            shared.set_result(payload)

    def _respond(self, key: str, source: str, flat: dict) -> dict:
        return {
            "key": key,
            "cache": source,
            "engine_version": _engine_version(),
            "result": flat,
        }

    # -- introspection endpoints ---------------------------------------------

    def healthz_payload(self) -> dict:
        return {
            "status": "draining" if self.draining else "ok",
            "service_version": SERVICE_VERSION,
            "engine_version": _engine_version(),
            "uptime_s": perf_counter() - self._started,
            "pending": self.batcher.depth,
            "inflight_keys": len(self._inflight),
            "cache": {
                "memory_entries": len(self.cache),
                "disk_entries": self.cache.disk_entries(),
                "capacity": self.cache.capacity,
            },
        }

    def presets_payload(self) -> dict:
        return {
            "presets": [
                {
                    "name": m.name,
                    "hidden": m.hidden,
                    "attn_heads": m.attn_heads,
                    "num_blocks": m.num_blocks,
                    "parameters": m.total_parameters,
                }
                for m in iter_presets()
            ]
        }

    def cache_hit_ratio(self) -> float:
        """Lifetime fraction of keyed lookups served from cache (0.0 cold)."""
        hits = self.metrics.value(M_CACHE_HIT_MEMORY) + self.metrics.value(
            M_CACHE_HIT_DISK
        )
        lookups = hits + self.metrics.value(M_CACHE_MISS)
        return hits / lookups if lookups else 0.0

    def metrics_text(self) -> str:
        return render_prometheus(
            self.metrics,
            gauges={
                "service.uptime.seconds": perf_counter() - self._started,
                "service.pending": float(self.batcher.depth),
                "service.inflight_keys": float(len(self._inflight)),
                "service.backlog.limit": float(self.max_pending),
                "service.cache.memory_entries": float(len(self.cache)),
                "service.cache.hit_ratio": self.cache_hit_ratio(),
                "service.draining": 1.0 if self.draining else 0.0,
            },
        )


def _engine_version() -> int:
    from ..engine import ENGINE_VERSION

    return ENGINE_VERSION


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------

class _Handler(BaseHTTPRequestHandler):
    # Holding the whole request in memory is fine: strategy dicts are tiny.
    max_body = 8 * 2**20
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> EvaluationService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: dict, headers: dict | None = None) -> None:
        body = (json.dumps(payload, indent=1) + "\n").encode("utf-8")
        close = self.close_connection
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if close:
            # A route set close_connection (e.g. it refused to read an
            # oversized body): tell the client, don't just drop the socket.
            self.send_header("Connection", "close")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, err: ServiceError) -> None:
        headers = {}
        if isinstance(err, Overloaded):
            headers["Retry-After"] = f"{err.retry_after:g}"
        self._send_json(err.status, {"error": str(err)}, headers)

    def _read_body(self) -> Any:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # The body's extent is unknowable, so the connection cannot be
            # resynchronized for keep-alive: close it after responding.
            self.close_connection = True
            raise BadRequest("malformed Content-Length header") from None
        if length <= 0:
            raise BadRequest("empty request body")
        if length > self.max_body:
            # Rejecting without reading leaves the body on the socket, where
            # HTTP/1.1 keep-alive would parse it as the next request; close
            # the connection instead of draining max_body+ bytes.
            self.close_connection = True
            raise BadRequest("request body too large")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as err:
            raise BadRequest(f"request body is not valid JSON: {err}") from None

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._send_json(200, self.service.healthz_payload())
        elif path == "/presets":
            self._send_json(200, self.service.presets_payload())
        elif path == "/metrics":
            body = self.service.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_json(404, {"error": f"no such endpoint {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path not in ("/evaluate", "/evaluate_many", "/serve"):
            self._send_json(404, {"error": f"no such endpoint {path!r}"})
            return
        trace_context = None
        header = self.headers.get(TRACE_HEADER)
        if header:
            try:
                trace_context = TraceContext.from_header(header)
            except ValueError:
                logger.debug("ignoring malformed %s header: %r", TRACE_HEADER, header)
        try:
            payload = self._read_body()
            if path == "/serve":
                response = self.service.serve_payload(
                    payload, trace_context=trace_context
                )
            else:
                if path == "/evaluate_many" and isinstance(payload, dict):
                    if "strategies" not in payload:
                        raise BadRequest("/evaluate_many needs a 'strategies' list")
                response = self.service.evaluate_payload(
                    payload, trace_context=trace_context
                )
        except BadRequest as err:
            self.service.metrics.inc(M_BAD_REQUESTS)
            self._send_error_json(err)
        except ServiceError as err:
            self._send_error_json(err)
        except Exception as err:  # pragma: no cover - defensive
            logger.exception("unhandled error serving %s", path)
            self._send_error_json(ServiceError(str(err)))
        else:
            self._send_json(200, response)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` that owns an :class:`EvaluationService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: EvaluationService,
        handler: type[_Handler] = _Handler,
    ):
        super().__init__(address, handler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]

    def drain_and_shutdown(self, timeout: float | None = None) -> None:
        """Graceful stop: refuse new work, finish the backlog, exit."""
        self.service.begin_drain()
        self.service.drain(timeout=timeout)
        self.service.stop(drain=True)
        self.shutdown()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    cache_dir: str | None = None,
    cache_entries: int = 4096,
    max_pending: int = 256,
    batch_window: float = 0.002,
    max_batch: int = 64,
    request_timeout: float = 60.0,
    columnar: bool | None = None,
    events_path: str | None = None,
) -> ServiceHTTPServer:
    """Assemble cache + batcher + service + HTTP server (not yet serving).

    ``columnar`` is forwarded to the :class:`MicroBatcher` (``None`` lets
    micro-batches above the engine's size floor ride the vectorized
    columnar path; ``False`` forces the scalar pipeline).  ``events_path``
    opens a flight-recorder :class:`~repro.obs.EventJournal` there (shared
    by the request pipeline and the dispatcher; closed by :func:`serve` on
    exit).
    """
    metrics = MetricsRegistry()
    events = (
        EventJournal(events_path, source="server") if events_path else None
    )
    cache = ResultCache(cache_entries, cache_dir, metrics=metrics, events=events)
    # Adaptive searches persist their learned tile-0 seeding state through
    # the same content-addressed cache (kind="surrogate" keys), so a
    # long-lived service warms up across requests and restarts.
    from ..search.surrogate import configure_surrogate_store

    configure_surrogate_store(cache)
    batcher = MicroBatcher(
        window=batch_window, max_batch=max_batch, metrics=metrics,
        columnar=columnar, events=events,
    )
    service = EvaluationService(
        cache=cache,
        batcher=batcher,
        metrics=metrics,
        max_pending=max_pending,
        request_timeout=request_timeout,
        events=events,
    )
    service.start()
    return ServiceHTTPServer((host, port), service)


def serve(server: ServiceHTTPServer, *, install_signal_handlers: bool = True) -> None:
    """Run ``server`` until SIGTERM/SIGINT, then drain gracefully.

    In-flight and queued evaluations finish (bounded by the service's
    request timeout); new evaluations get 503 while the drain runs.
    """
    if install_signal_handlers:

        def _graceful(signum: int, frame: Any) -> None:
            logger.info("signal %d: draining", signum)
            threading.Thread(
                target=server.drain_and_shutdown,
                kwargs={"timeout": server.service.request_timeout},
                daemon=True,
            ).start()

        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        if server.service.events is not None:
            server.service.events.close()
