"""Persistent evaluation service: cache, coalesce, micro-batch, serve.

The batch tool answers one query per process; this package keeps a process
alive and makes repeat and concurrent queries cheap:

* :class:`ResultCache` — two-tier (bounded LRU over a sharded JSONL disk
  store) result cache keyed by the content-addressed
  :func:`repro.cachekey.run_key`;
* :class:`MicroBatcher` — short-window request batching through
  :func:`repro.engine.evaluate_many`;
* :class:`EvaluationService` / :func:`make_server` / :func:`serve` — the
  request pipeline and its stdlib HTTP JSON API (``POST /evaluate``,
  ``POST /evaluate_many``, ``GET /presets``, ``GET /healthz``,
  ``GET /metrics``);
* :class:`ServiceClient` — ``urllib`` client with
  :class:`~repro.search.faults.RetryPolicy` backoff.

``repro-calculon serve`` / ``repro-calculon query`` are the CLI faces of
this package.  See ``docs/SERVICE.md``.
"""

from .cache import ResultCache
from .client import RequestFailed, ServiceClient, ServiceUnavailable
from .dispatch import MicroBatcher
from .server import (
    BadRequest,
    Draining,
    EvaluationService,
    Overloaded,
    ServiceError,
    ServiceHTTPServer,
    make_server,
    serve,
)

__all__ = [
    "BadRequest",
    "Draining",
    "EvaluationService",
    "MicroBatcher",
    "Overloaded",
    "RequestFailed",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceUnavailable",
    "make_server",
    "serve",
]
