"""Two-tier content-addressed result cache for the evaluation service.

Tier 1 is a bounded in-memory LRU (an :class:`~collections.OrderedDict`
moved-to-end on hit, evicted from the front when full).  Tier 2 is an
on-disk store sharded into JSONL files by the first byte of the key —
``<dir>/<kk>.jsonl``, one ``{"key": …, "value": …}`` object per line.
Puts *append* to the shard file (a later line for the same key supersedes
an earlier one on load), and a shard is compacted — rewritten through
:func:`repro.fsutil.atomic_write_text` — once its appended lines outgrow
its distinct keys, so put latency stays O(1) in the shard size while a
restarted server still warms itself from disk.  A torn final line from a
killed mid-append server is skipped (with a warning) on load.

Only a small, bounded LRU of *loaded* shards stays resident
(``shard_cache_size``); everything else is reloaded from disk on demand,
so a long-lived server's memory is bounded by ``capacity`` plus a handful
of shards even though the disk tier keeps everything ever stored.  Shard
entry counts are remembered separately (small ints), so introspection
(``disk_entries``, hence ``GET /healthz``) never forces whole shards into
memory.

Keys are the sha256 :func:`repro.cachekey.run_key` over the full LLM spec,
system spec, execution strategy and ``ENGINE_VERSION``: a cache entry can
only ever be served for the exact evaluation that produced it, and bumping
the engine version orphans (rather than corrupts) every old entry.

Values are JSON-able response payloads (flat result dicts), not live
result objects — the disk tier round-trips them verbatim.

All operations are thread-safe; the service's HTTP handlers run in a
thread pool.  Hit/miss/eviction counters accumulate into the registry
passed at construction (``service.cache.*``), which the server renders at
``GET /metrics``.
"""

from __future__ import annotations

import json
import logging
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

from ..fsutil import atomic_write_text, iter_jsonl_lines, report_torn_line
from ..obs import MetricsRegistry

logger = logging.getLogger(__name__)

# -- service cache metric names ----------------------------------------------
M_CACHE_HIT_MEMORY = "service.cache.hit.memory"
M_CACHE_HIT_DISK = "service.cache.hit.disk"
M_CACHE_MISS = "service.cache.miss"
M_CACHE_EVICTIONS = "service.cache.evictions"
M_CACHE_PUTS = "service.cache.puts"
M_CACHE_COMPACTIONS = "service.cache.compactions"

# A shard is compacted when its physical line count exceeds both this floor
# and twice its distinct-key count (i.e. most lines are superseded).
_COMPACT_MIN_LINES = 64


class ResultCache:
    """Bounded LRU over a sharded JSONL disk store; both tiers optional-ish.

    ``capacity`` bounds only the memory tier; the disk tier (enabled by
    passing ``cache_dir``) keeps everything ever stored.  A disk hit is
    promoted back into the memory tier.  ``shard_cache_size`` bounds how
    many loaded disk shards stay resident at once.
    """

    def __init__(
        self,
        capacity: int = 4096,
        cache_dir: str | Path | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        shard_cache_size: int = 8,
        events: Any = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if shard_cache_size < 1:
            raise ValueError("shard_cache_size must be >= 1")
        self.capacity = capacity
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # An EventJournal (or anything with .emit); torn shard lines found
        # on load are flight-recorded as journal.torn events.
        self.events = events
        self._memory: OrderedDict[str, Any] = OrderedDict()
        # LRU of loaded shards (bounded) plus unbounded-but-tiny bookkeeping:
        # distinct keys and physical lines per shard name.
        self._shards: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._shard_cache_size = shard_cache_size
        self._shard_counts: dict[str, int] = {}
        self._shard_lines: dict[str, int] = {}
        self._lock = threading.RLock()
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- lookup --------------------------------------------------------------

    def get(self, key: str) -> Any | None:
        """The cached value for ``key``, or ``None``; LRU order is updated."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.metrics.inc(M_CACHE_HIT_MEMORY)
                return self._memory[key]
            if self.cache_dir is not None:
                shard = self._load_shard(self._shard_name(key))
                if key in shard:
                    self.metrics.inc(M_CACHE_HIT_DISK)
                    value = shard[key]
                    self._admit(key, value)
                    return value
            self.metrics.inc(M_CACHE_MISS)
            return None

    def tier(self, key: str) -> str | None:
        """Which tier would serve ``key`` (``"memory"``, ``"disk"``, ``None``);
        no counters move and the LRU order is untouched."""
        with self._lock:
            if key in self._memory:
                return "memory"
            if self.cache_dir is not None and key in self._load_shard(self._shard_name(key)):
                return "disk"
            return None

    # -- store ---------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` in both tiers (write-through)."""
        with self._lock:
            self.metrics.inc(M_CACHE_PUTS)
            self._admit(key, value)
            if self.cache_dir is not None:
                self._persist(key, value)

    def _admit(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            evicted, _ = self._memory.popitem(last=False)
            self.metrics.inc(M_CACHE_EVICTIONS)
            logger.debug("evicted %s… from the memory tier", evicted[:12])

    def _persist(self, key: str, value: Any) -> None:
        """Append one record to ``key``'s shard, compacting when it bloats."""
        name = self._shard_name(key)
        shard = self._load_shard(name)
        shard[key] = value
        self._shard_counts[name] = len(shard)
        with open(self._shard_path(name), "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"key": key, "value": value}) + "\n")
        lines = self._shard_lines.get(name, 0) + 1
        self._shard_lines[name] = lines
        if lines > max(_COMPACT_MIN_LINES, 2 * len(shard)):
            self._write_shard(name, shard)

    # -- disk tier -----------------------------------------------------------

    def _shard_name(self, key: str) -> str:
        return key[:2] if len(key) >= 2 else "xx"

    def _shard_path(self, name: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{name}.jsonl"

    def _load_shard(self, name: str) -> dict[str, Any]:
        shard = self._shards.get(name)
        if shard is not None:
            self._shards.move_to_end(name)
            return shard
        shard = {}
        lines = 0
        path = self._shard_path(name)
        try:
            data = path.read_bytes()
        except OSError:
            data = b""
        for n, offset, line in iter_jsonl_lines(data):
            lines += 1
            try:
                obj = json.loads(line)
                # Later lines supersede earlier ones: appends overwrite.
                shard[str(obj["key"])] = obj["value"]
            except (json.JSONDecodeError, KeyError, TypeError):
                # A torn trailing line is expected after a mid-append kill
                # (puts append without the atomic-rename dance); report it
                # with its byte offset instead of dropping it silently.
                report_torn_line(path, n, offset, len(line), self.events,
                                 kind="cache-shard")
        self._shards[name] = shard
        self._shards.move_to_end(name)
        self._shard_counts[name] = len(shard)
        self._shard_lines[name] = lines
        while len(self._shards) > self._shard_cache_size:
            dropped, _ = self._shards.popitem(last=False)
            logger.debug("dropped loaded shard %s (cache bound)", dropped)
        return shard

    def _write_shard(self, name: str, shard: dict[str, Any]) -> None:
        lines = [
            json.dumps({"key": k, "value": v}) for k, v in sorted(shard.items())
        ]
        atomic_write_text(self._shard_path(name), "\n".join(lines) + "\n")
        self._shard_lines[name] = len(shard)
        self.metrics.inc(M_CACHE_COMPACTIONS)

    def _count_shard_keys(self, path: Path) -> int:
        """Distinct keys in a shard file, without retaining any values."""
        try:
            text = path.read_text()
        except OSError:
            return 0
        keys: set[str] = set()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                keys.add(str(json.loads(line)["key"]))
            except (json.JSONDecodeError, KeyError, TypeError):
                continue
        return len(keys)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        """Entries resident in the memory tier."""
        with self._lock:
            return len(self._memory)

    def memory_keys(self) -> list[str]:
        """Memory-tier keys, least- to most-recently used."""
        with self._lock:
            return list(self._memory)

    def disk_entries(self) -> int:
        """Distinct entries across the on-disk shards (0 without a disk tier).

        Uses remembered per-shard counts where available; a shard this
        process has never touched is counted key-by-key once, without
        loading its values into the shard cache.
        """
        if self.cache_dir is None:
            return 0
        with self._lock:
            total = 0
            for path in self.cache_dir.glob("*.jsonl"):
                count = self._shard_counts.get(path.stem)
                if count is None:
                    count = self._count_shard_keys(path)
                    self._shard_counts[path.stem] = count
                total += count
            return total

    def clear_memory(self) -> None:
        """Drop the memory tier (the disk tier is untouched)."""
        with self._lock:
            self._memory.clear()
