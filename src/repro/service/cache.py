"""Two-tier content-addressed result cache for the evaluation service.

Tier 1 is a bounded in-memory LRU (an :class:`~collections.OrderedDict`
moved-to-end on hit, evicted from the front when full).  Tier 2 is an
on-disk store sharded into JSONL files by the first byte of the key —
``<dir>/<kk>.jsonl``, one ``{"key": …, "value": …}`` object per line —
rewritten through :func:`repro.fsutil.atomic_write_text`, so a killed
server never leaves a truncated shard and a restarted server warms itself
from disk.

Keys are the sha256 :func:`repro.cachekey.run_key` over the full LLM spec,
system spec, execution strategy and ``ENGINE_VERSION``: a cache entry can
only ever be served for the exact evaluation that produced it, and bumping
the engine version orphans (rather than corrupts) every old entry.

Values are JSON-able response payloads (flat result dicts), not live
result objects — the disk tier round-trips them verbatim.

All operations are thread-safe; the service's HTTP handlers run in a
thread pool.  Hit/miss/eviction counters accumulate into the registry
passed at construction (``service.cache.*``), which the server renders at
``GET /metrics``.
"""

from __future__ import annotations

import json
import logging
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

from ..fsutil import atomic_write_text
from ..obs import MetricsRegistry

logger = logging.getLogger(__name__)

# -- service cache metric names ----------------------------------------------
M_CACHE_HIT_MEMORY = "service.cache.hit.memory"
M_CACHE_HIT_DISK = "service.cache.hit.disk"
M_CACHE_MISS = "service.cache.miss"
M_CACHE_EVICTIONS = "service.cache.evictions"
M_CACHE_PUTS = "service.cache.puts"


class ResultCache:
    """Bounded LRU over a sharded JSONL disk store; both tiers optional-ish.

    ``capacity`` bounds only the memory tier; the disk tier (enabled by
    passing ``cache_dir``) keeps everything ever stored.  A disk hit is
    promoted back into the memory tier.
    """

    def __init__(
        self,
        capacity: int = 4096,
        cache_dir: str | Path | None = None,
        *,
        metrics: MetricsRegistry | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self._shards: dict[str, dict[str, Any]] = {}
        self._lock = threading.RLock()
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- lookup --------------------------------------------------------------

    def get(self, key: str) -> Any | None:
        """The cached value for ``key``, or ``None``; LRU order is updated."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.metrics.inc(M_CACHE_HIT_MEMORY)
                return self._memory[key]
            if self.cache_dir is not None:
                shard = self._load_shard(self._shard_name(key))
                if key in shard:
                    self.metrics.inc(M_CACHE_HIT_DISK)
                    value = shard[key]
                    self._admit(key, value)
                    return value
            self.metrics.inc(M_CACHE_MISS)
            return None

    def tier(self, key: str) -> str | None:
        """Which tier would serve ``key`` (``"memory"``, ``"disk"``, ``None``);
        no counters move and the LRU order is untouched."""
        with self._lock:
            if key in self._memory:
                return "memory"
            if self.cache_dir is not None and key in self._load_shard(self._shard_name(key)):
                return "disk"
            return None

    # -- store ---------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` in both tiers (write-through)."""
        with self._lock:
            self.metrics.inc(M_CACHE_PUTS)
            self._admit(key, value)
            if self.cache_dir is not None:
                name = self._shard_name(key)
                shard = self._load_shard(name)
                shard[key] = value
                self._write_shard(name, shard)

    def _admit(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            evicted, _ = self._memory.popitem(last=False)
            self.metrics.inc(M_CACHE_EVICTIONS)
            logger.debug("evicted %s… from the memory tier", evicted[:12])

    # -- disk tier -----------------------------------------------------------

    def _shard_name(self, key: str) -> str:
        return key[:2] if len(key) >= 2 else "xx"

    def _shard_path(self, name: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{name}.jsonl"

    def _load_shard(self, name: str) -> dict[str, Any]:
        shard = self._shards.get(name)
        if shard is not None:
            return shard
        shard = {}
        path = self._shard_path(name)
        try:
            text = path.read_text()
        except OSError:
            text = ""
        for n, line in enumerate(text.splitlines()):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                shard[str(obj["key"])] = obj["value"]
            except (json.JSONDecodeError, KeyError, TypeError):
                logger.warning("%s:%d: skipping malformed cache line", path, n + 1)
        self._shards[name] = shard
        return shard

    def _write_shard(self, name: str, shard: dict[str, Any]) -> None:
        lines = [
            json.dumps({"key": k, "value": v}) for k, v in sorted(shard.items())
        ]
        atomic_write_text(self._shard_path(name), "\n".join(lines) + "\n")

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        """Entries resident in the memory tier."""
        with self._lock:
            return len(self._memory)

    def memory_keys(self) -> list[str]:
        """Memory-tier keys, least- to most-recently used."""
        with self._lock:
            return list(self._memory)

    def disk_entries(self) -> int:
        """Entries in the loaded+on-disk shards (0 without a disk tier)."""
        if self.cache_dir is None:
            return 0
        with self._lock:
            names = {p.stem for p in self.cache_dir.glob("*.jsonl")}
            names.update(self._shards)
            return sum(len(self._load_shard(name)) for name in names)

    def clear_memory(self) -> None:
        """Drop the memory tier (the disk tier is untouched)."""
        with self._lock:
            self._memory.clear()
