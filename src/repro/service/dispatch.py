"""Micro-batched dispatch: queued requests ride one ``evaluate_many`` call.

The staged engine's batched entry point amortizes work across candidates —
profile-group dedup, shared memory buckets, shared infeasible results — but
an HTTP service naturally receives candidates one at a time.  The
:class:`MicroBatcher` closes that gap: requests land on a queue, a single
dispatch thread collects everything that arrives within a short window (or
up to ``max_batch``), groups the batch by (LLM, system) pair, and feeds
each group through :func:`repro.engine.evaluate_many` as one engine call.
Callers block on a per-request :class:`~concurrent.futures.Future`, so
latency cost is bounded by the window while concurrent bursts — exactly the
near-duplicate what-if queries an interactive co-design session produces —
are evaluated with sweep efficiency.
"""

from __future__ import annotations

import logging
import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from time import perf_counter, sleep
from typing import Any, Callable

from ..engine import evaluate_many
from ..execution.strategy import ExecutionStrategy
from ..hardware.system import System
from ..llm.config import LLMConfig
from ..obs import (
    M_BOUND_EVALS,
    M_BOUND_PRUNED,
    M_BOUND_SKIPPED_BUCKETS,
    M_BOUND_TILES,
    M_COLUMNAR_BATCHES,
    M_COLUMNAR_CANDIDATES,
    M_COLUMNAR_FALLBACK,
    M_COMM_CACHE_HITS,
    M_COMM_CACHE_MISSES,
    M_SURROGATE_SEEDED,
    EventJournal,
    MetricsRegistry,
)

logger = logging.getLogger(__name__)

# -- dispatch metric names ----------------------------------------------------
M_BATCHES = "service.dispatch.batches"
M_BATCH_SIZE = "service.dispatch.batch_size"
M_BATCH_SECONDS = "service.dispatch.batch_seconds"
M_ENGINE_CALLS = "service.dispatch.engine_calls"
M_DISPATCHED = "service.dispatch.requests"

# Queue poll interval while idle; only bounds shutdown latency.
_TICK = 0.05


@dataclass
class EvalJob:
    """One queued evaluation: the parsed triple plus its rendezvous future."""

    llm: LLMConfig
    system: System
    strategy: ExecutionStrategy
    group: Any
    future: "Future[Any]" = field(default_factory=Future)


class MicroBatcher:
    """Collects queued jobs for ``window`` seconds and batch-evaluates them.

    ``window=0`` degrades to per-arrival dispatch (whatever is already
    queued still shares a batch).  ``engine`` is injectable for tests that
    count or slow down engine calls; it must have ``evaluate_many``'s
    signature and input-order result alignment.  ``columnar`` is forwarded
    to the default engine (``None`` lets :func:`~repro.engine.evaluate_many`
    route micro-batches above its size floor through the vectorized
    columnar path, ``False`` forces the scalar pipeline); an injected
    ``engine`` receives no such keyword — its signature is its contract.
    ``events`` is an optional :class:`~repro.obs.EventJournal` flight
    recorder; every dispatched micro-batch appends one ``batch.dispatch``
    event (size, group count, wall seconds).
    """

    def __init__(
        self,
        *,
        window: float = 0.002,
        max_batch: int = 64,
        metrics: MetricsRegistry | None = None,
        engine: Callable[..., list] | None = None,
        columnar: bool | None = None,
        events: EventJournal | None = None,
    ):
        if window < 0:
            raise ValueError("window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.window = window
        self.max_batch = max_batch
        self.columnar = columnar
        self.events = events
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Pre-register the engine's bound/comm-cache/columnar counters so
        # /metrics exposes them from the first scrape.  The service never
        # passes a prune_above threshold (every request needs its real
        # result), so engine_bound_pruned and the adaptive tile/skip/seed
        # counters stay 0 here; the comm-cache counters accumulate real
        # hit/miss deltas from every batched dispatch, and the columnar
        # counters record how many micro-batches rode the vectorized path.
        for name in (
            M_BOUND_EVALS, M_BOUND_PRUNED, M_BOUND_TILES,
            M_BOUND_SKIPPED_BUCKETS, M_SURROGATE_SEEDED,
            M_COMM_CACHE_HITS, M_COMM_CACHE_MISSES,
            M_COLUMNAR_BATCHES, M_COLUMNAR_CANDIDATES, M_COLUMNAR_FALLBACK,
        ):
            self.metrics.inc(name, 0.0)
        self._default_engine = engine is None
        self._engine = engine if engine is not None else evaluate_many
        self._queue: "queue.Queue[EvalJob]" = queue.Queue()
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MicroBatcher":
        if self._thread is not None:
            raise RuntimeError("batcher already started")
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-service-dispatch", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Stop the dispatch thread; with ``drain`` finish queued work first.

        Without ``drain``, jobs still queued when the thread exits get a
        :class:`RuntimeError` on their futures so no caller blocks forever.
        """
        if self._thread is None:
            return
        if drain:
            self.join()
        self._stop_event.set()
        self._thread.join()
        self._thread = None
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            job.future.set_exception(RuntimeError("service dispatch stopped"))
            self._job_done()

    def join(self) -> None:
        """Block until every submitted job has been dispatched and resolved."""
        while self.depth:
            sleep(0.005)

    @property
    def depth(self) -> int:
        """Jobs submitted but not yet resolved (queued + being evaluated)."""
        with self._pending_lock:
            return self._pending

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        llm: LLMConfig,
        system: System,
        strategy: ExecutionStrategy,
        *,
        group: Any,
    ) -> "Future[Any]":
        """Queue one evaluation; the future resolves to a PerformanceResult.

        ``group`` must be equal for jobs that can share an engine call —
        i.e. a fingerprint of the (LLM, system) pair; the strategy is the
        per-candidate axis ``evaluate_many`` batches over.
        """
        if self._thread is None:
            raise RuntimeError("batcher not started")
        job = EvalJob(llm, system, strategy, group)
        with self._pending_lock:
            self._pending += 1
        self.metrics.inc(M_DISPATCHED)
        self._queue.put(job)
        return job.future

    def _job_done(self) -> None:
        with self._pending_lock:
            self._pending -= 1

    # -- dispatch loop -------------------------------------------------------

    def _run(self) -> None:
        while not self._stop_event.is_set():
            try:
                first = self._queue.get(timeout=_TICK)
            except queue.Empty:
                continue
            batch = [first]
            # Collect until the window closes, the batch fills, or the
            # queue momentarily empties after the window.
            end = perf_counter() + self.window
            while len(batch) < self.max_batch:
                remaining = end - perf_counter()
                if remaining <= 0:
                    # Window over: still absorb whatever is already queued.
                    try:
                        batch.append(self._queue.get_nowait())
                        continue
                    except queue.Empty:
                        break
                try:
                    batch.append(self._queue.get(timeout=remaining))
                except queue.Empty:
                    break
            self._dispatch(batch)

    def _dispatch(self, batch: list[EvalJob]) -> None:
        t0 = perf_counter()
        self.metrics.inc(M_BATCHES)
        self.metrics.observe(M_BATCH_SIZE, len(batch))
        groups: dict[Any, list[EvalJob]] = {}
        for job in batch:
            groups.setdefault(job.group, []).append(job)
        for jobs in groups.values():
            self.metrics.inc(M_ENGINE_CALLS)
            kwargs = {"columnar": self.columnar} if self._default_engine else {}
            try:
                results = self._engine(
                    jobs[0].llm,
                    jobs[0].system,
                    [job.strategy for job in jobs],
                    metrics=self.metrics,
                    **kwargs,
                )
            except BaseException as err:  # engine bugs must not hang callers
                logger.exception("batched evaluation failed")
                for job in jobs:
                    job.future.set_exception(err)
                    self._job_done()
                continue
            for job, result in zip(jobs, results):
                job.future.set_result(result)
                self._job_done()
        elapsed = perf_counter() - t0
        self.metrics.observe(M_BATCH_SECONDS, elapsed)
        if self.events is not None:
            self.events.emit(
                "batch.dispatch", size=len(batch), groups=len(groups),
                seconds=elapsed,
            )
