"""Terminal rendering helpers for study outputs.

The paper's figures are stacked bars, grids and scaling curves; these helpers
render equivalent ASCII views so examples and benchmarks can print the same
rows/series without a plotting dependency.
"""

from __future__ import annotations

from typing import Sequence


def hbar(
    segments: Sequence[tuple[str, float]],
    total_width: int = 60,
    scale_max: float | None = None,
) -> str:
    """Render one stacked horizontal bar from ``(label, value)`` segments."""
    total = sum(v for _, v in segments)
    scale = scale_max if scale_max and scale_max > 0 else total
    if scale <= 0:
        return "(empty)"
    glyphs = "#=+*o@%&$~"
    out = []
    for i, (_, v) in enumerate(segments):
        width = round(v / scale * total_width)
        out.append(glyphs[i % len(glyphs)] * width)
    return "".join(out)


def stacked_bars(
    rows: Sequence[tuple[str, Sequence[tuple[str, float]]]],
    width: int = 60,
    unit: str = "",
) -> str:
    """Render labelled stacked bars on a shared scale, plus a legend."""
    if not rows:
        return "(no rows)"
    scale = max(sum(v for _, v in segs) for _, segs in rows) or 1.0
    glyphs = "#=+*o@%&$~"
    lines = []
    label_w = max(len(lbl) for lbl, _ in rows)
    for lbl, segs in rows:
        total = sum(v for _, v in segs)
        lines.append(
            f"{lbl:<{label_w}} |{hbar(segs, width, scale):<{width}}| "
            f"{total:.4g}{unit}"
        )
    seen: dict[str, str] = {}
    for _, segs in rows:
        for i, (name, _) in enumerate(segs):
            seen.setdefault(name, glyphs[i % len(glyphs)])
    legend = "  ".join(f"{g}={n}" for n, g in seen.items())
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, floatfmt: str = ".4g"
) -> str:
    """Render a plain-text table with auto-sized columns."""

    def fmt(x: object) -> str:
        if isinstance(x, float):
            return format(x, floatfmt)
        return str(x)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in cells:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def scaling_plot(
    sizes: Sequence[int], values: Sequence[float], height: int = 12, width: int = 64
) -> str:
    """Scatter an efficiency-vs-size curve as ASCII (Fig. 7-style)."""
    if not sizes or len(sizes) != len(values):
        raise ValueError("sizes and values must be equal-length, non-empty")
    vmax = max(values) or 1.0
    smin, smax = min(sizes), max(sizes)
    span = max(smax - smin, 1)
    grid = [[" "] * width for _ in range(height)]
    for s, v in zip(sizes, values):
        col = round((s - smin) / span * (width - 1))
        row = height - 1 - round(v / vmax * (height - 1))
        grid[row][col] = "*"
    lines = [f"{vmax:8.3g} +" + "".join(grid[0])]
    lines += ["         |" + "".join(r) for r in grid[1:-1]]
    lines.append(f"{0:8.3g} +" + "".join(grid[-1]))
    lines.append(f"          {smin:<10d}{'system size':^{width - 20}}{smax:>10d}")
    return "\n".join(lines)


def heat_grid(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cells: Sequence[Sequence[str]],
) -> str:
    """Render the Fig. 5 / Fig. 9 (t, p) grids of "value-over-value" cells."""
    if len(cells) != len(row_labels):
        raise ValueError("cells must have one row per row label")
    width = max(
        [len(c) for row in cells for c in row] + [len(c) for c in col_labels] + [4]
    )
    head = " " * 8 + " ".join(c.center(width) for c in col_labels)
    lines = [head]
    for lbl, row in zip(row_labels, cells):
        if len(row) != len(col_labels):
            raise ValueError("each row needs one cell per column label")
        lines.append(f"{lbl:>7} " + " ".join(c.center(width) for c in row))
    return "\n".join(lines)
