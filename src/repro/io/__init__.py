"""JSON spec I/O for the three model inputs."""

from ..fsutil import atomic_write_text
from .report import (
    result_to_flat_dict,
    results_to_csv,
    results_to_markdown,
    save_results_json,
)
from .specs import (
    llm_from_spec,
    load_llm,
    load_strategy,
    load_system,
    save_llm,
    save_strategy,
    save_system,
    system_from_dict,
    system_from_spec,
    system_to_dict,
)

__all__ = [
    "atomic_write_text",
    "result_to_flat_dict",
    "results_to_csv",
    "results_to_markdown",
    "save_results_json",
    "llm_from_spec",
    "load_llm",
    "load_strategy",
    "load_system",
    "save_llm",
    "save_strategy",
    "save_system",
    "system_from_dict",
    "system_from_spec",
    "system_to_dict",
]
