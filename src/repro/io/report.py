"""Report exporters: results as Markdown, CSV, or flat JSON.

The reference tool emits machine-readable statistics alongside its
human-readable report; these helpers do the same for downstream dashboards
and spreadsheets.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Sequence

from ..core.results import PerformanceResult
from ..fsutil import atomic_write_text


def result_to_flat_dict(result: PerformanceResult) -> dict:
    """One row per result: identity, totals, and every breakdown component."""
    out: dict = {
        "llm": result.llm_name,
        "system": result.system_name,
        "strategy": result.strategy_name,
        "batch": result.batch,
        "feasible": result.feasible,
        "batch_time_s": result.batch_time if result.feasible else None,
        "sample_rate": result.sample_rate,
        "mfu": result.mfu,
        "infeasibility": result.infeasibility,
    }
    for key, val in result.time.as_dict().items():
        out[f"time.{key}"] = val
    for key, val in result.mem1.as_dict().items():
        out[f"mem.{key}"] = val
    out["mem.total"] = result.mem1.total
    out["offload.used_bytes"] = result.offload.used_bytes
    out["offload.required_bandwidth"] = result.offload.required_bandwidth
    return out


def results_to_csv(results: Sequence[PerformanceResult]) -> str:
    """Render results as CSV text (header from the first row's keys)."""
    if not results:
        raise ValueError("need at least one result")
    rows = [result_to_flat_dict(r) for r in results]
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buf.getvalue()


def results_to_markdown(
    results: Sequence[PerformanceResult],
    *,
    columns: Sequence[str] = (
        "strategy",
        "batch_time_s",
        "sample_rate",
        "mfu",
        "mem.total",
    ),
) -> str:
    """Render a compact Markdown comparison table."""
    if not results:
        raise ValueError("need at least one result")
    rows = [result_to_flat_dict(r) for r in results]
    for col in columns:
        if col not in rows[0]:
            raise KeyError(f"unknown column {col!r}")

    def fmt(v) -> str:
        if v is None:
            return "—"
        if isinstance(v, bool):
            return "yes" if v else "no"
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    header = "| " + " | ".join(columns) + " |"
    sep = "|" + "|".join("---" for _ in columns) + "|"
    body = [
        "| " + " | ".join(fmt(row[c]) for c in columns) + " |" for row in rows
    ]
    return "\n".join([header, sep, *body])


def save_results_json(
    results: Sequence[PerformanceResult], path: str | Path
) -> Path:
    """Write results as a JSON array of flat dicts; returns the path.

    The write is atomic (temp file + ``os.replace``), so an interrupted run
    never leaves a truncated results file.
    """
    path = Path(path)
    atomic_write_text(
        path, json.dumps([result_to_flat_dict(r) for r in results], indent=1) + "\n"
    )
    return path
