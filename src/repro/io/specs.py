"""JSON serialization of the three specifications (LLM, system, execution).

Mirrors the reference tool's spec-file workflow: every study is reproducible
from three human-editable JSON documents.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..execution.strategy import ExecutionStrategy
from ..fsutil import atomic_write_text
from ..hardware.memory import MemoryTier
from ..hardware.network import Network
from ..hardware.processor import EfficiencyCurve, Processor
from ..hardware.system import System
from ..llm.config import LLMConfig


# ---------------------------------------------------------------------------
# System <-> dict
# ---------------------------------------------------------------------------

def curve_to_dict(curve: EfficiencyCurve) -> list[list[float]]:
    return [[f, e] for f, e in curve.points]


def curve_from_dict(data: list[list[float]]) -> EfficiencyCurve:
    return EfficiencyCurve(points=tuple((float(f), float(e)) for f, e in data))


def system_to_dict(system: System) -> dict[str, Any]:
    proc = system.processor
    out: dict[str, Any] = {
        "name": system.name,
        "num_procs": system.num_procs,
        "processor": {
            "name": proc.name,
            "matrix_flops": proc.matrix_flops,
            "vector_flops": proc.vector_flops,
            "matrix_efficiency": curve_to_dict(proc.matrix_efficiency),
            "vector_efficiency": curve_to_dict(proc.vector_efficiency),
        },
        "mem1": _tier_to_dict(system.mem1),
        "networks": [_net_to_dict(n) for n in system.networks],
    }
    if system.mem2 is not None:
        out["mem2"] = _tier_to_dict(system.mem2)
    return out


def system_from_dict(data: dict[str, Any]) -> System:
    proc_d = data["processor"]
    processor = Processor(
        name=proc_d["name"],
        matrix_flops=proc_d["matrix_flops"],
        vector_flops=proc_d["vector_flops"],
        matrix_efficiency=curve_from_dict(proc_d["matrix_efficiency"]),
        vector_efficiency=curve_from_dict(proc_d["vector_efficiency"]),
    )
    return System(
        name=data["name"],
        num_procs=data["num_procs"],
        processor=processor,
        mem1=_tier_from_dict(data["mem1"]),
        networks=tuple(_net_from_dict(n) for n in data["networks"]),
        mem2=_tier_from_dict(data["mem2"]) if "mem2" in data else None,
    )


def _tier_to_dict(tier: MemoryTier) -> dict[str, Any]:
    return {
        "name": tier.name,
        "capacity": tier.capacity,
        "bandwidth": tier.bandwidth,
        "efficiency": tier.efficiency,
        "small_access_bytes": tier.small_access_bytes,
        "min_efficiency": tier.min_efficiency,
    }


def _tier_from_dict(data: dict[str, Any]) -> MemoryTier:
    return MemoryTier(**data)


def _net_to_dict(net: Network) -> dict[str, Any]:
    return {
        "name": net.name,
        "size": net.size,
        "bandwidth": net.bandwidth,
        "latency": net.latency,
        "efficiency": net.efficiency,
        "processor_usage": net.processor_usage,
        "in_network_collectives": net.in_network_collectives,
    }


def _net_from_dict(data: dict[str, Any]) -> Network:
    return Network(**data)


# ---------------------------------------------------------------------------
# File round-trips
# ---------------------------------------------------------------------------

def save_llm(llm: LLMConfig, path: str | Path) -> None:
    atomic_write_text(path, json.dumps(llm.to_dict(), indent=2) + "\n")


def load_llm(path: str | Path) -> LLMConfig:
    return LLMConfig.from_dict(json.loads(Path(path).read_text()))


def save_system(system: System, path: str | Path) -> None:
    atomic_write_text(path, json.dumps(system_to_dict(system), indent=2) + "\n")


def load_system(path: str | Path) -> System:
    return system_from_dict(json.loads(Path(path).read_text()))


def save_strategy(strategy: ExecutionStrategy, path: str | Path) -> None:
    atomic_write_text(path, json.dumps(strategy.to_dict(), indent=2) + "\n")


def load_strategy(path: str | Path) -> ExecutionStrategy:
    return ExecutionStrategy.from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Spec strings — the shorthand accepted by the CLI and the service API
# ---------------------------------------------------------------------------

def llm_from_spec(spec: str | dict) -> LLMConfig:
    """Resolve an LLM spec: a full dict, a preset name, or a JSON file path."""
    if isinstance(spec, dict):
        return LLMConfig.from_dict(spec)
    if Path(spec).suffix == ".json" and Path(spec).exists():
        return load_llm(spec)
    from ..llm.config import get_preset

    return get_preset(spec)


def system_from_spec(spec: str | dict) -> System:
    """Resolve a system spec: a full dict, a JSON file path, or shorthand.

    The shorthand is the CLI's ``<kind>:<n>[:<hbm_gib>[:<ddr_gib>]]`` form,
    e.g. ``a100:4096`` or ``h100:512:80:512``.  Raises :class:`ValueError`
    on an unknown kind so HTTP callers get a 400, not a process exit.
    """
    if isinstance(spec, dict):
        return system_from_dict(spec)
    if Path(spec).suffix == ".json" and Path(spec).exists():
        return load_system(spec)
    from ..hardware.system import (
        a100_system,
        ddr5_offload,
        h100_system,
        h200_system,
        v100_system,
    )

    factories = {
        "v100": (v100_system, 32.0),
        "a100": (a100_system, 80.0),
        "h100": (h100_system, 80.0),
        "h200": (h200_system, 141.0),
    }
    parts = str(spec).split(":")
    kind = parts[0]
    if kind not in factories or len(parts) < 2:
        raise ValueError(
            f"unknown system spec {spec!r} (want one of {sorted(factories)}, "
            "e.g. a100:4096 or h100:512:80:512)"
        )
    factory, default_hbm = factories[kind]
    try:
        n = int(parts[1])
        hbm = float(parts[2]) if len(parts) > 2 else default_hbm
        ddr = float(parts[3]) if len(parts) > 3 else 0.0
    except ValueError:
        raise ValueError(f"malformed system spec {spec!r}") from None
    offload = ddr5_offload(ddr) if ddr > 0 else None
    return factory(n, hbm_gib=hbm, offload=offload)
