"""Bridge from an execution strategy to a simulated schedule.

Takes the analytical model's per-chunk times for a concrete (LLM, system,
strategy) and runs the discrete-event schedule with them — so the simulated
Gantt chart, bubble and makespan refer to *that* configuration, not abstract
unit times.  This is the integration point the visualizer example and the
Fig. 2 bench build on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.model import _profile_block
from ..execution.strategy import ExecutionStrategy
from ..hardware.system import System
from ..llm.config import LLMConfig
from .pipeline_sim import PipelineParams, analytical_bubble
from .timeline import Timeline, simulate_timeline


@dataclass(frozen=True)
class ScheduleComparison:
    """Simulated schedule vs the analytical model's closed forms."""

    timeline: Timeline
    params: PipelineParams
    simulated_bubble: float
    analytical_bubble: float

    @property
    def bubble_gap(self) -> float:
        """Relative slack of the realized schedule over the closed form."""
        if self.analytical_bubble == 0:
            return 0.0
        return self.simulated_bubble / self.analytical_bubble - 1.0


def strategy_pipeline_params(
    llm: LLMConfig, system: System, strategy: ExecutionStrategy
) -> PipelineParams:
    """Per-chunk forward/backward times for the strategy's pipeline shape.

    Raises:
        ValueError: when the strategy is structurally invalid for the system.
    """
    strategy.validate(llm, system)
    prof = _profile_block(
        llm,
        system,
        strategy.microbatch,
        strategy.tensor_par,
        strategy.seq_par,
        strategy.fused_activations,
        strategy.tp_redo_sp,
        strategy.recompute,
        strategy.tp_mode,
    )
    blocks_per_chunk = strategy.blocks_per_chunk(llm.num_blocks)
    fw_chunk = blocks_per_chunk * prof.fw_time
    bw_chunk = blocks_per_chunk * (prof.bw_time + prof.recompute_time)
    pp_net = (
        system.network_for_span(
            min(system.num_procs, strategy.tensor_par * strategy.pipeline_par)
        )
        if strategy.pipeline_par > 1
        else None
    )
    p2p = 0.0
    if pp_net is not None:
        act = (
            strategy.microbatch
            * llm.seq_size
            * llm.hidden
            * llm.bytes_per_element
        )
        if strategy.pp_rs_ag:
            act /= strategy.tensor_par
        p2p = pp_net.collective_time("p2p", act, 2)
    return PipelineParams(
        num_stages=strategy.pipeline_par,
        num_microbatches=strategy.num_microbatches,
        interleaving=strategy.pp_interleaving,
        fw_time=fw_chunk,
        bw_time=bw_chunk,
        p2p_time=p2p,
    )


def simulate_strategy(
    llm: LLMConfig, system: System, strategy: ExecutionStrategy
) -> ScheduleComparison:
    """Simulate the strategy's pipeline schedule and compare to the model."""
    params = strategy_pipeline_params(llm, system, strategy)
    timeline = simulate_timeline(params)
    return ScheduleComparison(
        timeline=timeline,
        params=params,
        simulated_bubble=timeline.stats.bubble_time,
        analytical_bubble=analytical_bubble(params),
    )
