"""Chrome-trace export of simulated pipeline schedules.

Writes the ``chrome://tracing`` / Perfetto JSON event format so a simulated
schedule (Fig. 2) can be inspected in a real trace viewer: one row per
device, one complete event per (microbatch, chunk, phase) slot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..fsutil import atomic_write_text
from .timeline import Timeline

# Trace timestamps are microseconds; scale simulated seconds up.
_US = 1e6


def timeline_to_trace_events(timeline: Timeline) -> list[dict[str, Any]]:
    """Convert a recorded timeline to trace-event dicts.

    Uses complete events (``ph: "X"``) with the device as the thread id and
    ``chunk.microbatch`` naming, matching the Fig. 2 labelling.
    """
    events: list[dict[str, Any]] = []
    for dev in range(timeline.params.num_stages):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": dev,
                "args": {"name": f"device {dev}"},
            }
        )
    for it in timeline.items:
        chunk = timeline.chunk_of(it.vstage)
        phase = "forward" if it.phase == "f" else "backward"
        events.append(
            {
                "name": f"{phase} c{chunk} m{it.microbatch}",
                "cat": phase,
                "ph": "X",
                "pid": 0,
                "tid": it.device,
                "ts": it.start * _US,
                "dur": (it.finish - it.start) * _US,
                "args": {
                    "microbatch": it.microbatch,
                    "chunk": chunk,
                    "vstage": it.vstage,
                },
            }
        )
    return events


def write_trace(timeline: Timeline, path: str | Path) -> Path:
    """Write the timeline as a Chrome-trace JSON file; returns the path."""
    path = Path(path)
    payload = {
        "traceEvents": timeline_to_trace_events(timeline),
        "displayTimeUnit": "ms",
        "otherData": {
            "schedule": "interleaved-1F1B",
            "stages": timeline.params.num_stages,
            "interleaving": timeline.params.interleaving,
            "microbatches": timeline.params.num_microbatches,
        },
    }
    atomic_write_text(path, json.dumps(payload, indent=1))
    return path
