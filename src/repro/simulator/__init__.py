"""Discrete-event pipeline-schedule simulator (cross-validation substrate)."""

from .bridge import (
    ScheduleComparison,
    simulate_strategy,
    strategy_pipeline_params,
)
from .pipeline_sim import (
    PipelineParams,
    PipelineStats,
    analytical_bubble,
    simulate,
)
from .timeline import ScheduledItem, Timeline, render_gantt, simulate_timeline
from .trace import timeline_to_trace_events, write_trace

__all__ = [
    "PipelineParams",
    "PipelineStats",
    "ScheduleComparison",
    "ScheduledItem",
    "Timeline",
    "analytical_bubble",
    "render_gantt",
    "simulate",
    "simulate_strategy",
    "simulate_timeline",
    "strategy_pipeline_params",
    "timeline_to_trace_events",
    "write_trace",
]
