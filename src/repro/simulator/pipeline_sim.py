"""Discrete-event simulator of the interleaved 1F1B pipeline schedule (Fig. 2).

The analytical model charges a pipeline bubble of ``(p - 1) * (t_f + t_b) / v``
per batch.  This substrate *simulates* the schedule — every (microbatch,
chunk, phase) work item with its true dependencies — and measures the realized
makespan, bubble and per-device idle time, cross-validating the closed form.

The simulated machine: ``p`` devices; the virtual pipeline has ``p * v``
stages, stage ``k`` living on device ``k % p`` (chunk ``k // p``).  Forward of
(microbatch m, vstage k) depends on forward of (m, k-1); backward of (m, k)
depends on backward of (m, k+1) and forward of (m, k).  Devices execute one
item at a time, choosing among ready items by the 1F1B priority rule
(backward-first once steady, bounded in-flight forwards).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineParams:
    """Inputs to one pipeline-schedule simulation."""

    num_stages: int  # p
    num_microbatches: int  # M
    interleaving: int = 1  # v
    fw_time: float = 1.0  # per chunk (one microbatch through one chunk)
    bw_time: float = 2.0
    p2p_time: float = 0.0  # hand-off delay between consecutive vstages

    def __post_init__(self) -> None:
        if self.num_stages < 1 or self.num_microbatches < 1 or self.interleaving < 1:
            raise ValueError("stages, microbatches, interleaving must be >= 1")
        if min(self.fw_time, self.bw_time, self.p2p_time) < 0:
            raise ValueError("times must be non-negative")


@dataclass(frozen=True)
class PipelineStats:
    """Outcome of one simulation."""

    makespan: float
    busy_time: float  # per-device average busy time
    bubble_time: float  # makespan - busiest device's busy time
    device_busy: tuple[float, ...]

    @property
    def bubble_fraction(self) -> float:
        return self.bubble_time / self.makespan if self.makespan > 0 else 0.0


def analytical_bubble(params: PipelineParams) -> float:
    """The closed-form bubble charged by the analytical model.

    Fill + drain of the pipeline: ``(p-1)`` chunk times in each direction,
    plus the point-to-point hand-off delay each fill/drain boundary crossing
    serializes on.
    """
    p = params.num_stages
    return (p - 1) * (params.fw_time + params.bw_time + 2 * params.p2p_time)


def simulate(params: PipelineParams) -> PipelineStats:
    """Run the interleaved 1F1B schedule and measure its makespan.

    Work items are ``(m, k, phase)`` with ``m`` the microbatch, ``k`` the
    virtual stage (0..p*v-1) and phase forward/backward.  A device picks,
    among its ready items, backward work first when available (1F1B), then
    the forward item with the smallest (chunk, microbatch) — the Megatron
    interleaved order.
    """
    p, v, M = params.num_stages, params.interleaving, params.num_microbatches
    n_vstages = p * v

    fw_done: dict[tuple[int, int], float] = {}  # (m, k) -> finish time
    bw_done: dict[tuple[int, int], float] = {}
    device_free = [0.0] * p
    device_busy = [0.0] * p

    # Ready times of items whose dependencies are satisfied.
    def fw_ready(m: int, k: int) -> float | None:
        if k == 0:
            return 0.0
        prev = fw_done.get((m, k - 1))
        return None if prev is None else prev + params.p2p_time

    def bw_ready(m: int, k: int) -> float | None:
        fwd = fw_done.get((m, k))
        if fwd is None:
            return None
        if k == n_vstages - 1:
            return fwd
        nxt = bw_done.get((m, k + 1))
        return None if nxt is None else max(fwd, nxt + params.p2p_time)

    remaining = {(m, k, ph) for m in range(M) for k in range(n_vstages) for ph in "fb"}

    # Event loop: repeatedly advance the device that can start work earliest.
    while remaining:
        best = None  # (start_time, priority, item)
        for dev in range(p):
            free = device_free[dev]
            for chunk in range(v):
                k = chunk * p + dev
                for m in range(M):
                    if (m, k, "b") in remaining:
                        r = bw_ready(m, k)
                        if r is not None:
                            start = max(free, r)
                            # 1F1B: backward outranks forward at equal start.
                            cand = (start, 0, chunk, m, k, "b")
                            if best is None or cand < best:
                                best = cand
                        break  # only the earliest pending bw per chunk is ready
                for m in range(M):
                    if (m, k, "f") in remaining:
                        r = fw_ready(m, k)
                        if r is not None:
                            start = max(free, r)
                            cand = (start, 1, chunk, m, k, "f")
                            if best is None or cand < best:
                                best = cand
                        break
        if best is None:
            raise AssertionError("deadlock: no ready work but items remain")
        start, _, _, m, k, ph = best
        dev = k % p
        dur = params.fw_time if ph == "f" else params.bw_time
        finish = start + dur
        device_free[dev] = finish
        device_busy[dev] += dur
        (fw_done if ph == "f" else bw_done)[(m, k)] = finish
        remaining.discard((m, k, ph))

    makespan = max(device_free)
    busiest = max(device_busy)
    return PipelineStats(
        makespan=makespan,
        busy_time=sum(device_busy) / p,
        bubble_time=makespan - busiest,
        device_busy=tuple(device_busy),
    )
