"""Schedule timelines: record and render the pipeline execution (Fig. 2).

The paper's Fig. 2 shows the interleaved 1F1B schedule as a per-device Gantt
chart of (block-chunk, microbatch) slots.  :func:`simulate_timeline` runs the
same discrete-event engine as :func:`repro.simulator.simulate` but records
every scheduled item; :func:`render_gantt` draws the resulting chart in
ASCII, reproducing the prologue/steady/epilogue structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from .pipeline_sim import PipelineParams, PipelineStats, simulate


@dataclass(frozen=True)
class ScheduledItem:
    """One executed work item on one device."""

    device: int
    microbatch: int
    vstage: int  # virtual pipeline stage = chunk * p + device
    phase: str  # 'f' or 'b'
    start: float
    finish: float

    def __post_init__(self) -> None:
        if self.phase not in ("f", "b"):
            raise ValueError(f"phase must be 'f' or 'b', got {self.phase!r}")
        if self.finish < self.start:
            raise ValueError("finish must be >= start")

    @property
    def chunk(self) -> int:
        """Which interleaving chunk this vstage belongs to (needs p)."""
        raise AttributeError("use Timeline.chunk_of for chunk lookup")


@dataclass
class Timeline:
    """A complete recorded schedule."""

    params: PipelineParams
    items: list[ScheduledItem]
    stats: PipelineStats

    def device_items(self, device: int) -> list[ScheduledItem]:
        out = [it for it in self.items if it.device == device]
        out.sort(key=lambda it: it.start)
        return out

    def chunk_of(self, vstage: int) -> int:
        return vstage // self.params.num_stages


def simulate_timeline(params: PipelineParams) -> Timeline:
    """Run the schedule simulation and capture every item."""
    recorded: list[ScheduledItem] = []

    # Re-run the simulation loop, mirroring pipeline_sim.simulate but with
    # recording.  (Kept in sync by the shared test that compares makespans.)
    p, v, M = params.num_stages, params.interleaving, params.num_microbatches
    n_vstages = p * v
    fw_done: dict[tuple[int, int], float] = {}
    bw_done: dict[tuple[int, int], float] = {}
    device_free = [0.0] * p

    def fw_ready(m: int, k: int) -> float | None:
        if k == 0:
            return 0.0
        prev = fw_done.get((m, k - 1))
        return None if prev is None else prev + params.p2p_time

    def bw_ready(m: int, k: int) -> float | None:
        fwd = fw_done.get((m, k))
        if fwd is None:
            return None
        if k == n_vstages - 1:
            return fwd
        nxt = bw_done.get((m, k + 1))
        return None if nxt is None else max(fwd, nxt + params.p2p_time)

    remaining = {(m, k, ph) for m in range(M) for k in range(n_vstages) for ph in "fb"}
    while remaining:
        best = None
        for dev in range(p):
            free = device_free[dev]
            for chunk in range(v):
                k = chunk * p + dev
                for m in range(M):
                    if (m, k, "b") in remaining:
                        r = bw_ready(m, k)
                        if r is not None:
                            cand = (max(free, r), 0, chunk, m, k, "b")
                            if best is None or cand < best:
                                best = cand
                        break
                for m in range(M):
                    if (m, k, "f") in remaining:
                        r = fw_ready(m, k)
                        if r is not None:
                            cand = (max(free, r), 1, chunk, m, k, "f")
                            if best is None or cand < best:
                                best = cand
                        break
        if best is None:
            raise AssertionError("deadlock: no ready work but items remain")
        start, _, _, m, k, ph = best
        dev = k % p
        dur = params.fw_time if ph == "f" else params.bw_time
        finish = start + dur
        device_free[dev] = finish
        (fw_done if ph == "f" else bw_done)[(m, k)] = finish
        remaining.discard((m, k, ph))
        recorded.append(
            ScheduledItem(
                device=dev, microbatch=m, vstage=k, phase=ph,
                start=start, finish=finish,
            )
        )

    stats = simulate(params)
    return Timeline(params=params, items=recorded, stats=stats)


def render_gantt(timeline: Timeline, *, cell_width: int = 5) -> str:
    """ASCII Gantt chart, one row per device (the Fig. 2 layout).

    Forward slots print as ``c.m`` (chunk.microbatch), backward slots in
    brackets; idle gaps print as dashes (the pipeline bubble).
    """
    params = timeline.params
    # Quantize time by the GCD-ish smallest slot: use fw_time as the unit.
    unit = min(params.fw_time, params.bw_time) or 1.0
    lines = []
    for dev in range(params.num_stages):
        row = []
        cursor = 0.0
        for it in timeline.device_items(dev):
            gap_units = round((it.start - cursor) / unit)
            row.append(" " * (cell_width * gap_units))
            chunk = timeline.chunk_of(it.vstage)
            label = f"{chunk}.{it.microbatch}"
            cell = f"[{label}]" if it.phase == "b" else f" {label} "
            width = max(cell_width * round((it.finish - it.start) / unit), len(cell))
            row.append(cell.center(width, "-" if it.phase == "b" else "."))
            cursor = it.finish
        lines.append(f"dev{dev} |" + "".join(row))
    legend = (
        "legend: ' c.m ' forward of (chunk c, microbatch m); "
        "'[c.m]' backward; blank = bubble"
    )
    return "\n".join(lines + [legend])
