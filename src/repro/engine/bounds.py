"""Roofline lower bounds on batch time, from fast-path artifacts only.

Search spends most of its time pricing communication for candidates that
cannot possibly beat the current top-k.  This module computes an analytic
**lower bound** on a candidate's batch time using only what the feasibility
fast path already produced — the block profile (whose per-layer times are
themselves roofline maxima of FLOPs/throughput and bytes/bandwidth) and the
memory plan — so a search can discard hopeless candidates *before* the
comm/assembly stages run.

The bound is provably ``<= TimeBreakdown.batch_time`` **in float
arithmetic**, not just in exact math: each component either reproduces the
assembled field's expression bit-for-bit (forward/backward/recompute compute,
optimizer step) or replaces it with a smaller float (pipeline bubble without
exposed TP communication), and components are summed left-to-right in the
same order as ``batch_time`` sums its fields.  Since IEEE-754
round-to-nearest addition and positive multiplication are monotone, every
partial sum of the bound is <= the corresponding partial sum of the true
batch time, and the remaining ``batch_time`` fields are all non-negative.
``docs/PERFORMANCE.md`` walks through the derivation.

That inequality is what makes pruning *exact*: a candidate is skipped only
when even its lower bound is too slow to be admitted by the search heap, so
the surviving top-k is bit-identical to an unpruned run (see
:func:`prune_threshold_for_rate` for the rate/time conversion that keeps the
float round-trip sound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from .context import EvalContext
from .stages import optim_step_time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .batch import EvalBatch


@dataclass(frozen=True)
class PrunedResult:
    """Marker yielded for a candidate skipped by bound pruning.

    A pruned candidate passed validation and the memory plan (it *is*
    feasible) but its roofline lower bound already exceeds the caller's
    ``prune_above`` threshold, so the comm/assembly stages never ran and no
    timing breakdown exists.  ``sample_rate`` reports 0.0 so ranking code
    treats it as "never the best"; ``lower_bound`` is the proven minimum
    batch time.  One instance is shared by every candidate pruned from the
    same memory bucket, so the object carries no per-candidate identity —
    callers map results back to strategies by index.
    """

    batch: int
    lower_bound: float

    feasible: ClassVar[bool] = True
    pruned: ClassVar[bool] = True
    infeasibility: ClassVar[str] = ""

    @property
    def sample_rate(self) -> float:
        return 0.0


def roofline_lower_bound(ctx: EvalContext) -> float:
    """A lower bound on batch time from validate/profile/memory output only.

    Components, in ``TimeBreakdown.batch_time`` summation order:

    * forward compute ``M * bpstage * fw_time`` — *equal* to ``fw_pass``;
    * backward and recompute compute — equal to ``bw_pass``/``fw_recompute``;
    * the optimizer step — equal to ``optim_step`` (the same cached
      :func:`~repro.engine.stages.optim_step_time` the comm stage calls);
    * a pipeline-bubble underestimate ``(p-1) * (t_f + t_b) / v`` built from
      compute times alone (the true bubble adds exposed TP communication and
      overlap tax to each per-microbatch stage time).

    Exposed TP/PP/DP communication, offload stalls and overlap tax are
    bounded below by zero.  Everything read here is constant across a memory
    bucket, so batched evaluation computes the bound once per bucket.

    Requires a context that completed the fast path feasibly (``prof`` and
    ``mem`` set, ``error`` None).
    """
    prof, mem = ctx.prof, ctx.mem
    M, bpstage, v, p = ctx.M, ctx.bpstage, ctx.v, ctx.p
    lb = M * bpstage * prof.fw_time
    if ctx.training:
        lb = lb + M * bpstage * prof.bw_time
        lb = lb + M * bpstage * prof.recompute_time
        traffic = (
            2.0 * mem.opt_bytes
            + bpstage
            * (prof.weight_grad_bytes + prof.weight_bytes)
            / mem.opt_shard
        )
        use_mem2 = bool(
            ctx.strategy.optimizer_offload and ctx.system.mem2 is not None
        )
        lb = lb + optim_step_time(ctx.system, mem.opt_bytes, traffic, use_mem2)
    if p > 1:
        t_f = bpstage * prof.fw_time
        t_b = (
            bpstage * (prof.bw_time + prof.recompute_time)
            if ctx.training
            else 0.0
        )
        lb = lb + (p - 1) * ((t_f + t_b) / v)
    return lb


def batch_lower_bounds(eb: "EvalBatch") -> np.ndarray:
    """Per-memory-bucket :func:`roofline_lower_bound`, vectorized.

    Returns one float64 lower bound per bucket of a columnar
    :class:`~repro.engine.batch.EvalBatch` that has completed
    ``batch_memory``.  Every term mirrors the scalar bound's expression
    structure and summation order, so feasible buckets get bit-identical
    bounds; entries of capacity-rejected buckets are meaningless (the
    caller masks them out) and their optimizer-step kernel is *not*
    invoked, matching the scalar path's per-feasible-bucket call set —
    :func:`optim_step_time` is invoked once per *distinct* feasible
    ``(opt_bytes, traffic, tier)`` triple — many buckets share one
    optimizer shape, and the kernel is deterministic in its arguments, so
    deduplicating the scalar calls changes no bound value (it only shifts
    comm-cache hits onto the vectorized scatter).
    """
    b = eb.b

    def gp(field: str) -> np.ndarray:
        return eb.gprof[field][b["group"]]

    Mb = b["M"] * b["bp"]
    tr = b["training"] != 0
    fw = gp("fw_time")
    bw = gp("bw_time")
    rc = gp("recompute_time")
    lb = Mb * fw
    lb = lb + np.where(tr, Mb * bw, 0.0)
    lb = lb + np.where(tr, Mb * rc, 0.0)
    opt_t = np.zeros(eb.n_buckets, dtype=np.float64)
    idx = np.flatnonzero(b["ok"] & tr)
    if idx.size:
        g = b["group"][idx]
        wg = eb.gprof["weight_grad_bytes"][g]
        w = eb.gprof["weight_bytes"][g]
        opt_bytes = b["opt_bytes"][idx]
        # Same expression structure and operation order as the scalar
        # bound's per-bucket arithmetic, lane-wise — values bit-identical.
        traffic = 2.0 * opt_bytes + b["bp"][idx] * (wg + w) / b["opt_shard"][idx]
        use2 = (
            (b["o_off"][idx] != 0)
            if eb.system.mem2 is not None
            else np.zeros(idx.shape[0], dtype=bool)
        )
        keys = np.empty((idx.shape[0], 3), dtype=np.float64)
        keys[:, 0] = opt_bytes
        keys[:, 1] = traffic
        keys[:, 2] = use2
        uniq, inv = np.unique(keys, axis=0, return_inverse=True)
        vals = np.fromiter(
            (
                optim_step_time(eb.system, float(u[0]), float(u[1]), bool(u[2]))
                for u in uniq
            ),
            dtype=np.float64,
            count=uniq.shape[0],
        )
        opt_t[idx] = vals[inv.ravel()]
    lb = lb + opt_t
    t_f = b["bp"] * fw
    t_b = np.where(tr, b["bp"] * (bw + rc), 0.0)
    lb = lb + np.where(b["p"] > 1, (b["p"] - 1) * ((t_f + t_b) / b["v"]), 0.0)
    return lb


def prune_threshold_for_rate(batch: float, rate_floor: float) -> float:
    """The smallest batch time whose sample rate cannot beat ``rate_floor``.

    Search heaps admit a candidate when ``fl(batch / batch_time) >
    rate_floor``.  Because float division is inexact, pruning directly on
    ``batch_time >= batch / rate_floor`` could discard a candidate whose
    *rounded* rate still exceeds the floor by an ulp.  This returns a
    threshold ``T`` with ``fl(batch / T) <= rate_floor``; division is
    antitone in the denominator, so every ``batch_time >= T`` (and hence
    every lower bound ``>= T``) yields a rate ``<= rate_floor`` — the heap
    would have rejected it anyway, making pruning provably lossless.

    ``rate_floor <= 0`` disables pruning (returns ``inf``), and so does any
    non-finite floor: an empty or all-infeasible heap reports its k-th-best
    rate as ``-inf`` (or ``nan`` after degenerate arithmetic), and treating
    either as a real floor would prune the entire space.
    """
    if math.isnan(rate_floor) or rate_floor <= 0.0:
        return math.inf
    t = batch / rate_floor
    if t <= 0.0 or math.isnan(t):
        return math.inf
    while not math.isinf(t) and batch / t > rate_floor:
        t = math.nextafter(t, math.inf)
    return t


def strict_prune_threshold_for_rate(batch: float, rate_floor: float) -> float:
    """The smallest batch time whose sample rate is *strictly* below the floor.

    :func:`prune_threshold_for_rate` is exact for the scalar stream-order
    path, where the heap itself breaks rate ties by arrival order.  Tiled
    best-bound-first evaluation processes candidates *out* of stream order,
    so a tie at the floor must never be pruned — the final ``lexsort`` tie
    break might still retain it.  This variant keeps bumping until
    ``fl(batch / T) < rate_floor`` strictly, so every pruned candidate's
    rate is provably below the current k-th best and can never enter the
    top-k under any tile order.  The cost is that candidates tying the
    floor exactly are evaluated in full — a negligible population.

    Inherits the non-finite-floor guard (returns ``inf``).
    """
    t = prune_threshold_for_rate(batch, rate_floor)
    while not math.isinf(t) and batch / t >= rate_floor:
        t = math.nextafter(t, math.inf)
    return t
