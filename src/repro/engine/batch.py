"""Columnar (struct-of-arrays) evaluation core: the staged engine over NumPy.

The scalar pipeline in :mod:`repro.engine.stages` evaluates one candidate per
Python call; at sweep scale (10^5..10^6 candidates) interpreter dispatch
around the closed-form arithmetic dominates the wall clock.  This module runs
the same five stages over a whole batch of candidates at once::

    batch_validate -> batch_profile -> batch_memory -> batch_comm -> batch_assemble

with one parallel NumPy float64/int64 array per scalar the pipeline carries
(t/p/d/v/M, blocks-per-stage, every per-stage output) and infeasibility
carried as mask updates instead of early returns.

Bit-exactness contract
----------------------
The scalar pipeline stays the oracle: for any candidate list the columnar
path produces results **bit-identical** to the scalar batched iterator (and
therefore to :func:`repro.engine.evaluate`).  Three disciplines make that
hold:

* every float expression mirrors the scalar code's structure and evaluation
  order — NumPy elementwise float64 ops round exactly like CPython floats,
  and NumPy never fuses or reassociates an explicit expression;
* conditional accumulation is emulated as ``acc + np.where(mask, term, 0.0)``
  — adding ``+0.0`` is a bit-exact identity for every non-negative IEEE-754
  value, so masked-out lanes keep the exact partial sums the scalar early
  returns would have produced;
* the comm kernels (:func:`~repro.engine.stages.tp_exposure`,
  :func:`~repro.engine.stages.pp_p2p_time`, ...) are *not* vectorized: they
  are called once per profile-group / memory-bucket cell with Python scalar
  keys — the exact call set of the scalar batched path, so the process-global
  comm caches see the same keys, hits and misses.

Grouping mirrors the scalar batched path too: candidates are factorized into
profile groups and memory buckets (numbered in first-seen order), the memory
plan and roofline bound are computed once per bucket, and result objects are
materialized only for survivors — rejected/pruned buckets share one frozen
result, like the scalar path's shared-infeasible optimization.

One scalar/columnar divergence is deliberate: a *callable* ``prune_above``
threshold is read once per batch instead of once per candidate.  Pruning
stays lossless for top-k selection (the threshold only ever tightens), but a
dynamically-tightening search may prune fewer candidates per batch than the
scalar path would; ``docs/PERFORMANCE.md`` discusses the trade.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

import numpy as np

NUMPY_MIN_VERSION = (1, 24)


def check_numpy_version(version: str | None = None) -> None:
    """Raise ``ImportError`` when ``version`` is older than NumPy 1.24.

    Runs at import time with the installed ``numpy.__version__`` so the
    columnar engine fails with a clear message instead of a cryptic dtype or
    ufunc error deep inside a sweep.  Callers that want the scalar pipeline
    anyway pass ``columnar=False`` / ``--no-columnar``.
    """
    v = np.__version__ if version is None else version
    parts: list[int] = []
    for token in v.split(".")[:2]:
        digits = ""
        for ch in token:
            if ch.isdigit():
                digits += ch
            else:
                break
        parts.append(int(digits) if digits else 0)
    while len(parts) < 2:
        parts.append(0)
    if tuple(parts) < NUMPY_MIN_VERSION:
        floor = ".".join(str(x) for x in NUMPY_MIN_VERSION)
        raise ImportError(
            f"repro.engine.batch requires NumPy >= {floor} (found {v}); "
            "upgrade NumPy or pass columnar=False / --no-columnar to use "
            "the scalar pipeline"
        )


check_numpy_version()

from ..core.results import (  # noqa: E402
    MemoryBreakdown,
    OffloadStats,
    PerformanceResult,
    TimeBreakdown,
)
from ..execution.strategy import ExecutionStrategy, StrategyError  # noqa: E402
from ..hardware.system import System  # noqa: E402
from ..llm.config import LLMConfig  # noqa: E402
from ..obs import MetricsRegistry  # noqa: E402
from ..obs.stats import (  # noqa: E402
    M_BOUND_EVALS,
    M_BOUND_PRUNED,
    M_BOUND_SKIPPED_BUCKETS,
    M_BOUND_TILES,
    M_BUCKET_HITS,
    M_CANDIDATES,
    M_COLUMNAR_BATCHES,
    M_COLUMNAR_CANDIDATES,
    M_EVALUATED_FULL,
    M_MEMORY_BUCKETS,
    M_PROFILE_GROUPS,
    M_REJECT_MEMORY,
    M_REJECT_VALIDATE,
    M_SHARED_INFEASIBLE,
    M_SURROGATE_SEEDED,
    stage_metric,
)
from .bounds import (  # noqa: E402
    PrunedResult,
    batch_lower_bounds,
    strict_prune_threshold_for_rate,
)
from .context import EvalContext  # noqa: E402
from .profile import profile_block  # noqa: E402
from .stages import (  # noqa: E402
    OFFLOAD_WORKING_BLOCKS,
    dp_collectives,
    infeasible_result,
    optim_step_time,
    pp_p2p_time,
    tp_exposure,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .profile import BlockProfile

_M_VALIDATE = stage_metric("validate")
_M_PROFILE = stage_metric("profile")
_M_MEMORY = stage_metric("memory")
_M_COMM = stage_metric("comm")
_M_ASSEMBLE = stage_metric("assemble")

# Categorical strategy fields, encoded as small ints; unknown values encode
# as -1 and fail batch_validate exactly like the scalar validate() would.
RECOMPUTE_NAMES = ("none", "attn_only", "full")
TP_OVERLAP_NAMES = ("none", "pipe", "ring")
TP_MODE_NAMES = ("1d", "2d")
_RECOMPUTE_CODES = {name: i for i, name in enumerate(RECOMPUTE_NAMES)}
_TP_OVERLAP_CODES = {name: i for i, name in enumerate(TP_OVERLAP_NAMES)}
_TP_MODE_CODES = {name: i for i, name in enumerate(TP_MODE_NAMES)}

# Column name -> ExecutionStrategy field, in the strategy's declared order.
COLUMN_FIELDS = (
    ("t", "tensor_par"),
    ("p", "pipeline_par"),
    ("d", "data_par"),
    ("batch", "batch"),
    ("m", "microbatch"),
    ("v", "pp_interleaving"),
    ("f1b", "pp_1f1b"),
    ("rs_ag", "pp_rs_ag"),
    ("sp", "seq_par"),
    ("redo", "tp_redo_sp"),
    ("tpm", "tp_mode"),
    ("tpo", "tp_overlap"),
    ("dpo", "dp_overlap"),
    ("osh", "optimizer_sharding"),
    ("rc", "recompute"),
    ("fus", "fused_activations"),
    ("w_off", "weight_offload"),
    ("a_off", "activation_offload"),
    ("o_off", "optimizer_offload"),
    ("training", "training"),
)
COLUMN_NAMES = tuple(name for name, _field in COLUMN_FIELDS)
_CODE_MAPS = {"tpm": _TP_MODE_CODES, "tpo": _TP_OVERLAP_CODES, "rc": _RECOMPUTE_CODES}

# BlockProfile fields lifted into per-group float columns.
_PROF_FIELDS = (
    "fw_time", "bw_time", "recompute_time", "fw_hbm_idle", "bw_hbm_idle",
    "flops_fw", "flops_bw", "weight_bytes", "weight_grad_bytes",
    "optimizer_bytes", "stash_bytes", "act_grad_bytes",
    "tp_fw_comm", "tp_bw_comm", "tp_recompute_comm",
)

_ZERO_OFFLOAD = OffloadStats()


def columns_from_strategies(
    strategies: Sequence[ExecutionStrategy],
) -> dict[str, np.ndarray]:
    """Transpose a strategy list into int64 columns (struct-of-arrays)."""
    if not strategies:
        return {name: np.empty(0, dtype=np.int64) for name in COLUMN_NAMES}
    from operator import attrgetter

    getter = attrgetter(*(field for _name, field in COLUMN_FIELDS))
    rows = [getter(s) for s in strategies]
    out: dict[str, np.ndarray] = {}
    for name, col in zip(COLUMN_NAMES, zip(*rows)):
        codes = _CODE_MAPS.get(name)
        if codes is not None:
            col = [codes.get(x, -1) for x in col]
        out[name] = np.asarray(col, dtype=np.int64)
    return out


def _factorize(cols: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Dense ids for the distinct rows of ``cols``, in first-seen order.

    Returns ``(ids, firsts)``: per-row group id in ``[0, G)`` numbered by
    first occurrence, and for each id the row index of its first member.
    Columns are packed into one int64 code per row — small non-negative
    value ranges are used directly as digits (no ``np.unique`` pass), wide
    ranges fall back to rank coding, and the running code is re-compacted
    whenever the next digit could overflow 63 bits.
    """
    n = int(cols[0].shape[0])
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    code = np.zeros(n, dtype=np.int64)
    card = 1
    for col in cols:
        cmin = int(col.min())
        shifted = col - cmin if cmin else col
        k = int(shifted.max()) + 1
        if k > 1 << 20:
            _, shifted = np.unique(col, return_inverse=True)
            k = int(shifted.max()) + 1
        if card > (1 << 62) // k:
            _, code = np.unique(code, return_inverse=True)
            card = int(code.max()) + 1
        code = code * k + shifted
        card *= k
    _, firsts, inverse = np.unique(code, return_index=True, return_inverse=True)
    order = np.argsort(firsts, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(order.shape[0])
    return rank[inverse], firsts[order]


class EvalBatch:
    """Struct-of-arrays state for one columnar evaluation.

    Like :class:`~repro.engine.context.EvalContext`, an ``EvalBatch`` starts
    with the inputs and each batch stage fills in its own output block — but
    every field is an array over all candidates (``valid``, ``M``,
    ``bpstage``), over valid candidates (``gid``, ``bid``), over buckets
    (``b[...]``) or over survivors (``cm``/``asm``).  Build one with
    :meth:`from_strategies` (keeps the objects for exact infeasibility
    messages) or :meth:`from_columns` (pure-columnar callers, e.g. the
    search enumerator, which materialize strategies only on demand).
    """

    def __init__(
        self,
        llm: LLMConfig,
        system: System,
        cols: dict[str, np.ndarray],
        strategies: Sequence[ExecutionStrategy] | None = None,
    ):
        self.llm = llm
        self.system = system
        self.cols = cols
        self.strategies = strategies
        self.n = int(cols["t"].shape[0])
        self.threshold: float | None = None
        self.bounds: np.ndarray | None = None
        self._rejected_cache: dict[int, PerformanceResult] = {}
        self._pruned_cache: dict[int, PrunedResult] = {}

    @classmethod
    def from_strategies(
        cls,
        llm: LLMConfig,
        system: System,
        strategies: Sequence[ExecutionStrategy],
    ) -> "EvalBatch":
        strategies = list(strategies)
        return cls(llm, system, columns_from_strategies(strategies), strategies)

    @classmethod
    def from_columns(
        cls, llm: LLMConfig, system: System, cols: dict[str, np.ndarray]
    ) -> "EvalBatch":
        return cls(llm, system, cols)

    def strategy_at(self, i: int) -> ExecutionStrategy:
        """Materialize candidate ``i`` as an :class:`ExecutionStrategy`."""
        if self.strategies is not None:
            return self.strategies[i]
        c = self.cols

        def decode(names: tuple[str, ...], code: int) -> str:
            return names[code] if 0 <= code < len(names) else f"?{code}"

        return ExecutionStrategy(
            tensor_par=int(c["t"][i]),
            pipeline_par=int(c["p"][i]),
            data_par=int(c["d"][i]),
            batch=int(c["batch"][i]),
            microbatch=int(c["m"][i]),
            pp_interleaving=int(c["v"][i]),
            pp_1f1b=bool(c["f1b"][i]),
            pp_rs_ag=bool(c["rs_ag"][i]),
            seq_par=bool(c["sp"][i]),
            tp_redo_sp=bool(c["redo"][i]),
            tp_mode=decode(TP_MODE_NAMES, int(c["tpm"][i])),
            tp_overlap=decode(TP_OVERLAP_NAMES, int(c["tpo"][i])),
            dp_overlap=bool(c["dpo"][i]),
            optimizer_sharding=bool(c["osh"][i]),
            recompute=decode(RECOMPUTE_NAMES, int(c["rc"][i])),
            fused_activations=bool(c["fus"][i]),
            weight_offload=bool(c["w_off"][i]),
            activation_offload=bool(c["a_off"][i]),
            optimizer_offload=bool(c["o_off"][i]),
            training=bool(c["training"][i]),
        )


# ---------------------------------------------------------------------------
# Stage 1: validate
# ---------------------------------------------------------------------------


def batch_validate(eb: EvalBatch) -> EvalBatch:
    """Vectorized :meth:`ExecutionStrategy.validate` plus scalar derivation.

    Produces ``eb.valid`` (the conjunction of every scalar validate check)
    and the derived ``M`` / ``bpstage`` integer columns.  Lanes that fail
    any check keep flowing with safe (clamped) divisors; their derived
    values are garbage but masked out of every later stage.
    """
    llm, system, c = eb.llm, eb.system, eb.cols
    t, p, d = c["t"], c["p"], c["d"]
    batch, m, v = c["batch"], c["m"], c["v"]
    safe_t = np.maximum(t, 1)
    safe_p = np.maximum(p, 1)
    safe_d = np.maximum(d, 1)
    safe_m = np.maximum(m, 1)
    local = batch // safe_d
    bpstage = (llm.num_blocks + safe_p - 1) // safe_p

    ok = (t >= 1) & (p >= 1) & (d >= 1)
    # Individually bounding each factor by the system size first keeps the
    # int64 product from overflowing (any factor beyond num_procs already
    # fails the product check in exact arithmetic).
    ok &= (t <= system.num_procs) & (p <= system.num_procs) & (d <= system.num_procs)
    ok &= t * p * d == system.num_procs
    ok &= t <= llm.attn_heads
    ok &= (llm.attn_heads % safe_t == 0) & (llm.hidden % safe_t == 0)
    ok &= llm.feedforward % safe_t == 0
    ok &= p <= llm.num_blocks
    ok &= (d <= batch) & (batch % safe_d == 0)
    ok &= (m >= 1) & (local % safe_m == 0)
    ok &= (v >= 1) & (v <= bpstage)
    ok &= ~((v > 1) & (p == 1))
    ok &= (c["rc"] >= 0) & (c["tpo"] >= 0) & (c["tpm"] >= 0)
    sp = c["sp"] != 0
    is2d = c["tpm"] == 1
    ok &= ~(is2d & sp)
    # Floor square root via float sqrt with a +/-1 integer correction.
    r = np.sqrt(safe_t.astype(np.float64)).astype(np.int64)
    r = np.where((r + 1) * (r + 1) <= safe_t, r + 1, r)
    r = np.where(r * r > safe_t, r - 1, r)
    ok &= ~(is2d & (t > 1) & (r * r != t))
    ok &= ~(sp & (llm.seq_size % safe_t != 0))
    ok &= ~((c["redo"] != 0) & ~sp)
    ok &= ~((c["rs_ag"] != 0) & ~sp)
    offloading = (c["w_off"] | c["a_off"] | c["o_off"]) != 0
    if not system.has_offload:
        ok &= ~offloading
    training = c["training"] != 0
    ok &= ~(~training & (c["rc"] != 0))

    eb.valid = ok
    eb.M = local // safe_m
    eb.bpstage = bpstage
    eb.n_invalid = int(eb.n - np.count_nonzero(ok))
    return eb


# ---------------------------------------------------------------------------
# Stage 2: profile
# ---------------------------------------------------------------------------


def batch_profile(eb: EvalBatch) -> EvalBatch:
    """Factorize valid candidates into profile groups; profile each once.

    Groups are keyed by the scalar path's ``profile_key`` fields and
    numbered in first-seen order, so the stream order (and the group count)
    matches the scalar batched iterator exactly.  The profile computation
    itself stays scalar — one (cached) :func:`profile_block` call per group
    — and its float fields are lifted into per-group columns.
    """
    c = eb.cols
    vidx = np.flatnonzero(eb.valid)
    eb.vidx = vidx
    nv = int(vidx.shape[0])
    eb.n_valid = nv
    gcols = [c[name][vidx] for name in ("m", "t", "sp", "fus", "redo", "rc", "tpm")]
    gid, gfirst = _factorize(gcols)
    eb.gid = gid
    eb.n_groups = int(gfirst.shape[0])

    profiles: list[BlockProfile] = []
    for rep in gfirst:
        i = int(vidx[rep])
        profiles.append(
            profile_block(
                eb.llm,
                eb.system,
                int(c["m"][i]),
                int(c["t"][i]),
                bool(c["sp"][i]),
                bool(c["fus"][i]),
                bool(c["redo"][i]),
                RECOMPUTE_NAMES[int(c["rc"][i])],
                TP_MODE_NAMES[int(c["tpm"][i])],
            )
        )
    eb.profiles = profiles
    eb.gprof = {
        name: np.array([getattr(prof, name) for prof in profiles], dtype=np.float64)
        for name in _PROF_FIELDS
    }

    # Scalar stream order: validate-rejects first (input order), then groups
    # in first-seen order with members in input order within each group.
    order_v = np.argsort(gid, kind="stable")
    eb.order_v = order_v
    eb.stream_order = np.concatenate(
        [np.flatnonzero(~eb.valid), vidx[order_v]]
    ).astype(np.int64)
    eb.stream_rank = np.empty(eb.n, dtype=np.int64)
    eb.stream_rank[eb.stream_order] = np.arange(eb.n, dtype=np.int64)
    return eb


# ---------------------------------------------------------------------------
# Stage 3: memory plan
# ---------------------------------------------------------------------------


def batch_memory(eb: EvalBatch) -> EvalBatch:
    """Per-bucket memory plans and capacity masks, vectorized.

    Buckets refine profile groups by the scalar path's memory key (p, d,
    batch, v, 1F1B, sharding, the offload switches, training), numbered in
    first-seen order.  Every plan quantity is computed once per bucket with
    the exact expression structure of :func:`~repro.engine.stages.stage_memory`,
    so plan floats — and the derived capacity verdicts — are bit-identical
    to the scalar plans.
    """
    c, vidx, gid = eb.cols, eb.vidx, eb.gid
    system = eb.system
    bcols = [gid] + [
        c[name][vidx]
        for name in (
            "p", "d", "batch", "v", "f1b", "osh",
            "w_off", "a_off", "o_off", "training",
        )
    ]
    bid, bfirst = _factorize(bcols)
    eb.bid = bid
    n_b = int(bfirst.shape[0])
    eb.n_buckets = n_b
    rep = vidx[bfirst] if n_b else np.empty(0, dtype=np.int64)
    eb.b_rep = rep

    b: dict[str, np.ndarray] = {"group": gid[bfirst] if n_b else np.empty(0, np.int64)}
    for name in ("t", "p", "d", "batch", "m", "v", "f1b", "osh",
                 "w_off", "a_off", "o_off", "training"):
        b[name] = c[name][rep]
    b["M"] = eb.M[rep]
    b["bp"] = eb.bpstage[rep]
    eb.b = b

    def gp(field: str) -> np.ndarray:
        return eb.gprof[field][b["group"]]

    bp = b["bp"]
    training = b["training"] != 0
    osh = b["osh"] != 0
    w_off = b["w_off"] != 0
    a_off = b["a_off"] != 0
    o_off = b["o_off"] != 0

    opt_shard = np.where(osh, b["d"], np.int64(1))
    opt_bytes = bp * gp("optimizer_bytes") / opt_shard

    # in_flight_microbatches, lane-wise.
    p_f = b["p"].astype(np.float64)
    v_f = b["v"].astype(np.float64)
    M_f = b["M"].astype(np.float64)
    one_v = b["v"] == 1
    base = np.where(one_v, p_f, p_f + (p_f - 1.0) / v_f)
    val = np.where(one_v, M_f, M_f + (p_f - 1.0) / v_f)
    in_flight = np.where(
        b["p"] == 1, 1.0, np.where(b["f1b"] != 0, np.minimum(val, base), M_f)
    )

    stash_total = gp("stash_bytes") * bp * in_flight
    weight_total = bp * gp("weight_bytes")
    grad_total = np.where(training, bp * gp("weight_grad_bytes"), 0.0)

    weight_res = np.where(
        w_off, np.minimum(bp, OFFLOAD_WORKING_BLOCKS) * gp("weight_bytes"),
        weight_total,
    )
    tier2_used = np.where(w_off, weight_total, 0.0)
    act_offloaded = training & a_off
    act_res = np.where(
        act_offloaded,
        np.minimum(bp * in_flight, OFFLOAD_WORKING_BLOCKS) * gp("stash_bytes"),
        np.where(training, stash_total, gp("stash_bytes")),
    )
    tier2_used = tier2_used + np.where(act_offloaded, stash_total, 0.0)
    opt_offloaded = training & o_off
    opt_res = np.where(
        opt_offloaded,
        np.minimum(bp, 1) * gp("optimizer_bytes") / opt_shard,
        np.where(training, opt_bytes, 0.0),
    )
    grad_res = np.where(
        opt_offloaded,
        np.minimum(bp, OFFLOAD_WORKING_BLOCKS) * gp("weight_grad_bytes"),
        grad_total,
    )
    tier2_used = tier2_used + np.where(
        opt_offloaded, opt_bytes + grad_total / opt_shard, 0.0
    )
    act_grad_res = np.where(training, gp("act_grad_bytes"), 0.0)
    mem1_total = weight_res + act_res + grad_res + act_grad_res + opt_res

    tier1_over = mem1_total > system.mem1.capacity
    if system.mem2 is not None:
        tier2_over = ~tier1_over & (tier2_used > system.mem2.capacity)
    else:
        tier2_over = np.zeros(n_b, dtype=bool)
    bucket_ok = ~tier1_over & ~tier2_over

    b.update(
        opt_shard=opt_shard, opt_bytes=opt_bytes, in_flight=in_flight,
        weight_res=weight_res, act_res=act_res, grad_res=grad_res,
        act_grad_res=act_grad_res, opt_res=opt_res, mem1_total=mem1_total,
        tier2_used=tier2_used, tier1_over=tier1_over, ok=bucket_ok,
    )
    eb.feasible_v = bucket_ok[bid]
    eb.n_rejected_memory = int(eb.n_valid - np.count_nonzero(eb.feasible_v))
    n_rejected_buckets = int(n_b - np.count_nonzero(bucket_ok))
    eb.n_shared_infeasible = eb.n_rejected_memory - n_rejected_buckets
    eb.n_feasible_buckets = int(np.count_nonzero(bucket_ok))
    return eb


# ---------------------------------------------------------------------------
# Bound pruning (between memory and comm, like the scalar batched path)
# ---------------------------------------------------------------------------


def batch_prune(eb: EvalBatch, threshold: float | None) -> EvalBatch:
    """Apply the roofline bound as a vectorized mask over feasible buckets.

    ``threshold`` is the already-resolved ``prune_above`` value (a batch
    time in seconds) or ``None`` to disable pruning.  Mirrors the scalar
    path: bounds are computed once per feasible bucket (via
    :func:`~repro.engine.bounds.batch_lower_bounds`, which reuses the cached
    scalar ``optim_step_time`` kernel), and every candidate of a bucket
    whose bound reaches the threshold is masked out of the comm/assembly
    stages.
    """
    eb.threshold = threshold
    n_b = eb.n_buckets
    if threshold is None:
        eb.bounds = None
        eb.pruned_b = np.zeros(n_b, dtype=bool)
        eb.n_bound_evals = 0
    else:
        eb.bounds = batch_lower_bounds(eb)
        eb.pruned_b = eb.b["ok"] & (eb.bounds >= threshold)
        eb.n_bound_evals = eb.n_feasible_buckets
    pruned_v = eb.pruned_b[eb.bid]
    eb.pruned_v = pruned_v
    eb.n_pruned = int(np.count_nonzero(pruned_v))
    eb.surv_v = eb.feasible_v & ~pruned_v
    eb.n_survivors = int(np.count_nonzero(eb.surv_v))
    return eb


# ---------------------------------------------------------------------------
# Stage 4: comm exposure
# ---------------------------------------------------------------------------


def batch_comm(eb: EvalBatch) -> EvalBatch:
    """Price communication for every survivor, vectorized per component.

    The cached comm kernels run once per *distinct argument tuple* among the
    survivors: :func:`tp_exposure` per (group, tp_overlap) cell,
    :func:`pp_p2p_time` per (bucket, pp_rs_ag) cell with ``p > 1``,
    :func:`dp_collectives` and :func:`optim_step_time` per unique kernel
    shape across the surviving buckets that need them.  Every kernel is
    deterministic in its arguments, so deduplicating the scalar path's
    per-bucket calls changes no value; outputs are gathered onto survivor
    lanes and all per-candidate arithmetic runs elementwise, mirroring
    :func:`~repro.engine.stages.stage_comm` term for term.
    """
    b, c, llm, system = eb.b, eb.cols, eb.llm, eb.system
    sidx = np.flatnonzero(eb.surv_v)
    eb.sidx = sidx
    inp_s = eb.vidx[sidx] if sidx.size else np.empty(0, dtype=np.int64)
    eb.inp_s = inp_s
    n_s = int(sidx.shape[0])
    eb.n_s = n_s
    cm: dict[str, np.ndarray] = {}
    eb.cm = cm
    if n_s == 0:
        return eb

    gid_s = eb.gid[sidx]
    bid_s = eb.bid[sidx]
    eb.gid_s, eb.bid_s = gid_s, bid_s
    tpo_s = c["tpo"][inp_s]
    dpo_s = c["dpo"][inp_s] != 0
    rs_ag_s = c["rs_ag"][inp_s]
    surv_b = np.zeros(eb.n_buckets, dtype=bool)
    surv_b[bid_s] = True
    eb.surv_b = surv_b

    def gps(field: str) -> np.ndarray:
        return eb.gprof[field][gid_s]

    p_s = b["p"][bid_s]
    d_s = b["d"][bid_s]
    v_s = b["v"][bid_s]
    M_s = b["M"][bid_s]
    bp_s = b["bp"][bid_s]
    tr_s = (b["training"] != 0)[bid_s]
    v_f = v_s.astype(np.float64)

    # ---- per-block TP communication exposure (per group x overlap cell) -----
    cell_ids, cell_first = _factorize([gid_s, tpo_s])
    tp_cells = np.empty((int(cell_first.shape[0]), 6), dtype=np.float64)
    for ci, pos in enumerate(cell_first):
        g = int(gid_s[pos])
        tp_cells[ci] = tp_exposure(
            system, int(b["t"][bid_s[pos]]), TP_OVERLAP_NAMES[int(tpo_s[pos])],
            eb.profiles[g],
        )
    tp6 = tp_cells[cell_ids]
    tp_fw_exp, tp_fw_tax = tp6[:, 0], tp6[:, 1]
    tp_bw_exp, tp_bw_tax = tp6[:, 2], tp6[:, 3]
    tp_rc_exp, tp_rc_tax = tp6[:, 4], tp6[:, 5]

    # ---- per-microbatch stage times ------------------------------------------
    t_f_mb = bp_s * (gps("fw_time") + tp_fw_exp + tp_fw_tax)
    t_b_mb = np.where(
        tr_s,
        bp_s
        * (
            gps("bw_time")
            + gps("recompute_time")
            + tp_bw_exp
            + tp_bw_tax
            + tp_rc_exp
            + tp_rc_tax
        ),
        0.0,
    )

    # ---- pipeline point-to-point (per bucket x rs_ag cell, p > 1) ------------
    p2p = np.zeros(n_s, dtype=np.float64)
    pmask = p_s > 1
    if np.any(pmask):
        sub = np.flatnonzero(pmask)
        pcell_ids, pcell_first = _factorize([bid_s[sub], rs_ag_s[sub]])
        pcell_vals = np.empty(int(pcell_first.shape[0]), dtype=np.float64)
        for ci, pos in enumerate(pcell_first):
            j = int(sub[pos])
            bkt = int(bid_s[j])
            full_act = (
                int(b["m"][bkt]) * llm.seq_size * llm.hidden * llm.bytes_per_element
            )
            pcell_vals[ci] = pp_p2p_time(
                system, int(b["t"][bkt]), int(b["p"][bkt]), full_act,
                bool(rs_ag_s[j]),
            )
        p2p[sub] = pcell_vals[pcell_ids]
    crossings = v_s * np.where(tr_s, 2, 1)
    pp_total = np.where(pmask, (M_s * crossings) * p2p, 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        chunk_f = t_f_mb / v_f
        chunk_b = np.where(tr_s, t_b_mb / v_f, 0.0)
    Mv = M_s * v_s
    pp_exposed = Mv * np.maximum(0.0, p2p - chunk_f)
    pp_exposed = pp_exposed + np.where(tr_s, Mv * np.maximum(0.0, p2p - chunk_b), 0.0)
    pp_exposed = pp_exposed + (p_s - 1) * p2p
    pp_exposed = np.where(pmask, pp_exposed, 0.0)

    # ---- pipeline bubble ------------------------------------------------------
    pp_bubble = np.where(pmask, (p_s - 1) * ((t_f_mb + t_b_mb) / v_f), 0.0)

    # ---- data-parallel gradient communication (per surviving bucket) ---------
    dmask = tr_s & (d_s > 1)
    dp_rs_b = np.zeros(eb.n_buckets, dtype=np.float64)
    dp_ag_b = np.zeros(eb.n_buckets, dtype=np.float64)
    dp_tot_b = np.zeros(eb.n_buckets, dtype=np.float64)
    dp_pu_b = np.zeros(eb.n_buckets, dtype=np.float64)
    dp_buckets = surv_b & (b["training"] != 0) & (b["d"] > 1)
    dpb = np.flatnonzero(dp_buckets)
    if dpb.size:
        # Many buckets share one (t, p, d, grad_bytes, osh) collective shape;
        # the kernel is deterministic in its arguments, so calling it once
        # per distinct shape and scattering changes no value.
        grad_bytes_b = (
            b["bp"][dpb] * eb.gprof["weight_grad_bytes"][b["group"][dpb]]
        )
        dmemo: dict = {}
        dvals = np.empty((dpb.shape[0], 4), dtype=np.float64)
        for j, key in enumerate(
            zip(
                b["t"][dpb].tolist(),
                b["p"][dpb].tolist(),
                b["d"][dpb].tolist(),
                grad_bytes_b.tolist(),
                (b["osh"][dpb] != 0).tolist(),
            )
        ):
            val = dmemo.get(key)
            if val is None:
                t_i, p_i, d_i = key[0], key[1], key[2]
                rs, ag, tot = dp_collectives(
                    system, t_i, p_i, d_i, key[3], key[4]
                )
                dp_net = system.network_for_span(
                    min(system.num_procs, t_i * p_i * d_i)
                )
                val = (rs, ag, tot, dp_net.processor_usage)
                dmemo[key] = val
            dvals[j] = val
        dp_rs_b[dpb] = dvals[:, 0]
        dp_ag_b[dpb] = dvals[:, 1]
        dp_tot_b[dpb] = dvals[:, 2]
        dp_pu_b[dpb] = dvals[:, 3]
    rs_s = dp_rs_b[bid_s]
    ag_s = dp_ag_b[bid_s]
    tot_s = dp_tot_b[bid_s]
    pu_s = dp_pu_b[bid_s]
    blocks = bp_s * v_s
    blocks_f = blocks.astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        win_bw = np.where(blocks > 1, t_b_mb * (blocks_f - 1.0) / blocks_f, 0.0)
        exp_rs = np.maximum(0.0, rs_s - win_bw)
        tax_rs = (rs_s - exp_rs) * pu_s / (1.0 - pu_s)
        dp_exp_ov = np.maximum(rs_s / blocks_f, exp_rs)
        win_fw = np.where(blocks > 1, t_f_mb * (blocks_f - 1.0) / blocks_f, 0.0)
        exp_ag = np.maximum(0.0, ag_s - win_fw)
        tax_ag = (ag_s - exp_ag) * pu_s / (1.0 - pu_s)
        has_ag = ag_s > 0
        dp_exp_ov = dp_exp_ov + np.where(
            has_ag, np.maximum(ag_s / blocks_f, exp_ag), 0.0
        )
    tax_total = tax_rs + np.where(has_ag, tax_ag, 0.0)
    overlapped = dpo_s & (bp_s > 0)
    dp_exposed = np.where(dmask, np.where(overlapped, dp_exp_ov, tot_s), 0.0)
    dp_tax = np.where(dmask & overlapped, tax_total, 0.0)
    dp_total = np.where(dmask, tot_s, 0.0)

    # ---- optimizer step (per surviving training bucket) ----------------------
    opt_time_b = np.zeros(eb.n_buckets, dtype=np.float64)
    trb = np.flatnonzero(surv_b & (b["training"] != 0))
    if trb.size:
        # Same dedup as batch_lower_bounds: one kernel call per distinct
        # (opt_bytes, traffic, tier) triple, identical op order lane-wise.
        g_b = b["group"][trb]
        opt_bytes_b = b["opt_bytes"][trb]
        traffic_b = 2.0 * opt_bytes_b + b["bp"][trb] * (
            eb.gprof["weight_grad_bytes"][g_b] + eb.gprof["weight_bytes"][g_b]
        ) / b["opt_shard"][trb]
        use2_b = (
            (b["o_off"][trb] != 0)
            if system.mem2 is not None
            else np.zeros(trb.shape[0], dtype=bool)
        )
        omemo: dict = {}
        ovals = np.empty(trb.shape[0], dtype=np.float64)
        for j, key in enumerate(
            zip(opt_bytes_b.tolist(), traffic_b.tolist(), use2_b.tolist())
        ):
            val = omemo.get(key)
            if val is None:
                val = optim_step_time(system, key[0], key[1], key[2])
                omemo[key] = val
            ovals[j] = val
        opt_time_b[trb] = ovals
    optim_time = np.where(tr_s, opt_time_b[bid_s], 0.0)

    # ---- offload traffic, bandwidth requirement, exposure --------------------
    w_off_s = (b["w_off"] != 0)[bid_s]
    a_off_s = (b["a_off"] != 0)[bid_s]
    o_off_s = (b["o_off"] != 0)[bid_s]
    off_mask = (w_off_s | a_off_s | o_off_s) & (system.mem2 is not None)
    offload_total = np.zeros(n_s, dtype=np.float64)
    offload_exposed = np.zeros(n_s, dtype=np.float64)
    required_bw = np.zeros(n_s, dtype=np.float64)
    if np.any(off_mask):
        mem2_bw = system.mem2.effective_bandwidth(float("inf"))
        stash_s = gps("stash_bytes")
        wbytes_s = gps("weight_bytes")
        wgrad_s = gps("weight_grad_bytes")
        bytes_fw = np.where(a_off_s, stash_s, 0.0) + np.where(w_off_s, wbytes_s, 0.0)
        bytes_bw = (
            np.where(a_off_s, stash_s, 0.0)
            + np.where(w_off_s, wbytes_s, 0.0)
            + np.where(o_off_s, wgrad_s, 0.0)
        )
        win_fw_o = gps("fw_time") + tp_fw_exp
        win_bw_o = gps("bw_time") + gps("recompute_time") + tp_bw_exp + tp_rc_exp
        idle_fw = gps("fw_hbm_idle") + tp_fw_exp
        idle_bw = gps("bw_hbm_idle") + tp_bw_exp + tp_rc_exp
        with np.errstate(divide="ignore", invalid="ignore"):
            need_fw = (bytes_fw > 0) & (win_fw_o > 0)
            required_bw = np.where(
                need_fw, np.maximum(required_bw, bytes_fw / win_fw_o), required_bw
            )
            need_bw = tr_s & (bytes_bw > 0) & (win_bw_o > 0)
            required_bw = np.where(
                need_bw, np.maximum(required_bw, bytes_bw / win_bw_o), required_bw
            )
        n_fw = M_s * bp_s
        n_bw = np.where(tr_s, n_fw, np.int64(0))
        offload_total = (n_fw * bytes_fw + n_bw * bytes_bw) / mem2_bw
        offload_exposed = n_fw * np.maximum(0.0, bytes_fw / mem2_bw - idle_fw)
        offload_exposed = offload_exposed + n_bw * np.maximum(
            0.0, bytes_bw / mem2_bw - idle_bw
        )
        offload_total = np.where(off_mask, offload_total, 0.0)
        offload_exposed = np.where(off_mask, offload_exposed, 0.0)
        required_bw = np.where(off_mask, required_bw, 0.0)

    cm.update(
        tp_fw_exp=tp_fw_exp, tp_fw_tax=tp_fw_tax, tp_bw_exp=tp_bw_exp,
        tp_bw_tax=tp_bw_tax, tp_rc_exp=tp_rc_exp, tp_rc_tax=tp_rc_tax,
        t_f_mb=t_f_mb, t_b_mb=t_b_mb, pp_total=pp_total, pp_exposed=pp_exposed,
        pp_bubble=pp_bubble, dp_total=dp_total, dp_exposed=dp_exposed,
        dp_tax=dp_tax, optim_time=optim_time, offload_total=offload_total,
        offload_exposed=offload_exposed, required_bw=required_bw,
    )
    return eb


# ---------------------------------------------------------------------------
# Stage 5: time assembly
# ---------------------------------------------------------------------------


def batch_assemble(eb: EvalBatch) -> EvalBatch:
    """Fold comm/plan columns into per-survivor time-breakdown columns."""
    asm: dict[str, np.ndarray] = {}
    eb.asm = asm
    n_s = eb.n_s
    eb.rate_s = np.empty(0, dtype=np.float64)
    if n_s == 0:
        return eb
    b, cm = eb.b, eb.cm
    gid_s, bid_s = eb.gid_s, eb.bid_s

    def gps(field: str) -> np.ndarray:
        return eb.gprof[field][gid_s]

    M_s = b["M"][bid_s]
    bp_s = b["bp"][bid_s]
    tr_s = (b["training"] != 0)[bid_s]
    Mb = M_s * bp_s

    asm["fw_pass"] = Mb * gps("fw_time")
    asm["bw_pass"] = np.where(tr_s, Mb * gps("bw_time"), 0.0)
    asm["fw_recompute"] = np.where(tr_s, Mb * gps("recompute_time"), 0.0)
    asm["optim_step"] = cm["optim_time"]
    asm["pp_bubble"] = cm["pp_bubble"]
    asm["tp_comm_exposed"] = Mb * (
        cm["tp_fw_exp"] + np.where(tr_s, cm["tp_bw_exp"] + cm["tp_rc_exp"], 0.0)
    )
    asm["pp_comm_exposed"] = cm["pp_exposed"]
    asm["dp_comm_exposed"] = cm["dp_exposed"]
    asm["offload_exposed"] = cm["offload_exposed"]
    asm["overlap_tax"] = (
        Mb * (cm["tp_fw_tax"] + np.where(tr_s, cm["tp_bw_tax"] + cm["tp_rc_tax"], 0.0))
        + cm["dp_tax"]
    )
    asm["tp_comm_total"] = Mb * (
        gps("tp_fw_comm")
        + np.where(tr_s, gps("tp_bw_comm") + gps("tp_recompute_comm"), 0.0)
    )
    asm["pp_comm_total"] = cm["pp_total"]
    asm["dp_comm_total"] = cm["dp_total"]
    asm["offload_total"] = cm["offload_total"]

    # batch_time: the first ten fields, summed in TimeBreakdown field order.
    batch_time = (
        asm["fw_pass"]
        + asm["bw_pass"]
        + asm["fw_recompute"]
        + asm["optim_step"]
        + asm["pp_bubble"]
        + asm["tp_comm_exposed"]
        + asm["pp_comm_exposed"]
        + asm["dp_comm_exposed"]
        + asm["offload_exposed"]
        + asm["overlap_tax"]
    )
    asm["batch_time"] = batch_time

    useful_flops = (
        (gps("flops_fw") + np.where(tr_s, gps("flops_bw"), 0.0))
        * b["t"][bid_s] * eb.llm.num_blocks * M_s * b["d"][bid_s]
    )
    peak = eb.system.processor.matrix_flops * eb.system.num_procs
    positive = batch_time > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        asm["mfu"] = np.where(positive, useful_flops / (batch_time * peak), 0.0)
        eb.rate_s = np.where(
            positive, b["batch"][bid_s] / batch_time, 0.0
        )
    return eb


# ---------------------------------------------------------------------------
# Adaptive best-bound-first tiling
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdaptivePlan:
    """Configuration for the tiled best-bound-first ``run_batch`` path.

    ``top_k`` is the search's retention depth: the running k-th-best rate
    over everything evaluated so far becomes the rate floor that
    :func:`~repro.engine.bounds.strict_prune_threshold_for_rate` converts
    into a batch-time ceiling between tiles.  ``floor_rate`` pre-seeds the
    floor (e.g. from fabric threshold gossip); non-finite or negative
    values are ignored, never trusted.  ``seed_fn`` is the surrogate hook:
    called once after the memory stage, it may return bucket ids to
    evaluate first (tile 0), pre-tightening the threshold before bound
    order takes over — a pure speed hint, never a correctness input.
    ``on_tile`` observes each completed tile ``(tile_bucket_ids,
    survivor_bucket_ids, survivor_rates)`` for online surrogate training.
    """

    top_k: int
    floor_rate: float = 0.0
    tile_buckets: int = 64  # initial tile; doubles per tile (speed only)
    seed_fn: Callable[["EvalBatch"], Sequence[int] | None] | None = None
    on_tile: (
        Callable[[np.ndarray, np.ndarray, np.ndarray], None] | None
    ) = None


# Ceiling for the geometric tile growth in batch_adaptive: large enough to
# amortize per-tile fixed costs, small enough that a late floor tightening
# still skips work.
_TILE_BUCKETS_MAX = 1024


def _strict_thresholds(
    eb: EvalBatch, bucket_ids: np.ndarray, floor: float
) -> np.ndarray:
    """Per-bucket strict batch-time ceilings for a rate ``floor``.

    One :func:`strict_prune_threshold_for_rate` call per distinct batch
    size among ``bucket_ids`` (a search space usually has exactly one).
    """
    bvals = eb.b["batch"][bucket_ids].astype(np.float64)
    out = np.empty(bvals.shape[0], dtype=np.float64)
    for val in np.unique(bvals):
        out[bvals == val] = strict_prune_threshold_for_rate(float(val), floor)
    return out


def batch_adaptive(
    eb: EvalBatch,
    plan: AdaptivePlan,
    metrics: MetricsRegistry | None = None,
) -> EvalBatch:
    """Best-bound-first tiled replacement for prune + comm + assemble.

    Requires ``batch_memory`` to have run.  Computes the roofline bound for
    every feasible memory bucket up front, orders buckets best-bound-first,
    and runs the comm/assembly stages tile by tile: after each tile the
    running ``top_k``-th best rate tightens a strict batch-time ceiling and
    every remaining bucket whose sound bound reaches it is skipped outright
    (its candidates become bound-pruned without ever touching the comm
    stage).  Because a skipped candidate's rate is provably *strictly*
    below the running floor — and the floor only ever rises toward the
    final k-th best — the stitched survivor columns yield a top-k
    bit-identical to the untiled call under the search's ``lexsort``
    retention.  Tile size and visit order affect only speed.

    Per-tile survivor columns are concatenated and re-sorted by survivor
    index, so ``sidx``/``cm``/``asm``/``rate_s`` land in the same canonical
    order the untiled ``batch_comm``/``batch_assemble`` produce and every
    downstream consumer (``iter_results``, materialization, top-k
    selection) works unchanged.
    """
    timed = metrics is not None
    t_comm = 0.0
    t_asm = 0.0
    eb.threshold = None
    eb.bounds = batch_lower_bounds(eb)
    eb.n_bound_evals = eb.n_feasible_buckets
    bounds = eb.bounds
    b = eb.b
    fb = np.flatnonzero(b["ok"])
    order = fb[np.argsort(bounds[fb], kind="stable")]

    n_seeded = 0
    if plan.seed_fn is not None and order.size:
        raw = plan.seed_fn(eb)
        if raw is None:
            raw = ()
        ok = b["ok"]
        seen: set[int] = set()
        seed: list[int] = []
        for s in raw:
            s = int(s)
            if 0 <= s < eb.n_buckets and ok[s] and s not in seen:
                seen.add(s)
                seed.append(s)
        if seed:
            seed_arr = np.asarray(seed, dtype=order.dtype)
            in_seed = np.zeros(eb.n_buckets, dtype=bool)
            in_seed[seed_arr] = True
            order = np.concatenate([seed_arr, order[~in_seed[order]]])
            n_seeded = len(seed)
    eb.n_seeded_buckets = n_seeded

    k = max(int(plan.top_k), 0)
    tile_n = max(int(plan.tile_buckets), 1)
    floor = float(plan.floor_rate)
    if not math.isfinite(floor) or floor < 0.0:
        # Gossiped floors from empty/all-infeasible heaps arrive as -inf or
        # nan; a non-finite floor must never prune (mirrors the guard in
        # prune_threshold_for_rate).
        floor = 0.0
    top_rates = np.empty(0, dtype=np.float64)
    parts: list[tuple[np.ndarray, ...]] = []
    cm_parts: list[dict[str, np.ndarray]] = []
    asm_parts: list[dict[str, np.ndarray]] = []
    tiles = 0
    n_skipped = 0
    skipped_b = np.zeros(eb.n_buckets, dtype=bool)
    remaining = order
    filtered_floor = 0.0  # floor the remaining set was last filtered at
    # One strict-threshold call per distinct batch size per floor change
    # (spaces usually have exactly one); the per-bucket inverse map turns
    # that into a vectorized per-bucket ceiling.
    ubatch, ubinv = (
        np.unique(b["batch"].astype(np.float64), return_inverse=True)
        if eb.n_buckets
        else (np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64))
    )
    while remaining.size:
        if k > 0 and floor > filtered_floor:
            thr_u = np.fromiter(
                (strict_prune_threshold_for_rate(float(v), floor)
                 for v in ubatch),
                dtype=np.float64, count=ubatch.shape[0],
            )
            thr = thr_u[ubinv.ravel()[remaining]]
            drop = bounds[remaining] >= thr
            filtered_floor = floor
            if drop.any():
                dropped = remaining[drop]
                skipped_b[dropped] = True
                n_skipped += int(dropped.shape[0])
                remaining = remaining[~drop]
                if remaining.size == 0:
                    break
        tile_b = remaining[:tile_n]
        remaining = remaining[tile_n:]
        # Geometric growth: the floor converges within the first few tiles,
        # after which small tiles only multiply the fixed per-tile cost of
        # the comm/assembly passes.  Partitioning is correctness-neutral
        # (any tile size yields bit-identical survivors), so later tiles
        # double in size up to a cap.
        tile_n = min(tile_n * 2, _TILE_BUCKETS_MAX)
        tile_mask = np.zeros(eb.n_buckets, dtype=bool)
        tile_mask[tile_b] = True
        eb.surv_v = eb.feasible_v & tile_mask[eb.bid]
        t0 = perf_counter() if timed else 0.0
        batch_comm(eb)
        if timed:
            t1 = perf_counter()
            t_comm += t1 - t0
            t0 = t1
        batch_assemble(eb)
        if timed:
            t_asm += perf_counter() - t0
        tiles += 1
        if eb.n_s:
            parts.append((eb.sidx, eb.inp_s, eb.gid_s, eb.bid_s, eb.rate_s))
            cm_parts.append(eb.cm)
            asm_parts.append(eb.asm)
            if k > 0:
                cand = np.concatenate([top_rates, eb.rate_s])
                if cand.shape[0] > k:
                    cand = np.partition(cand, cand.shape[0] - k)[-k:]
                top_rates = cand
                if top_rates.shape[0] == k:
                    new_floor = float(top_rates.min())
                    if new_floor > floor:
                        floor = new_floor
            if plan.on_tile is not None:
                plan.on_tile(tile_b, eb.bid_s, eb.rate_s)
        elif plan.on_tile is not None:
            plan.on_tile(
                tile_b, np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )

    # -- final pruned/survivor state (mirrors batch_prune's shapes) ----------
    eb.pruned_b = skipped_b
    pruned_v = skipped_b[eb.bid]
    eb.pruned_v = pruned_v
    eb.n_pruned = int(np.count_nonzero(pruned_v))
    eb.surv_v = eb.feasible_v & ~pruned_v
    eb.n_survivors = int(np.count_nonzero(eb.surv_v))
    eb.n_tiles = tiles
    eb.n_skipped_buckets = n_skipped
    eb.floor_rate = floor

    # -- stitch per-tile survivor columns into canonical sidx order ---------
    if parts:
        all_sidx = np.concatenate([p[0] for p in parts])
        order_s = np.argsort(all_sidx, kind="stable")
        eb.sidx = all_sidx[order_s]
        eb.inp_s = np.concatenate([p[1] for p in parts])[order_s]
        eb.gid_s = np.concatenate([p[2] for p in parts])[order_s]
        eb.bid_s = np.concatenate([p[3] for p in parts])[order_s]
        eb.rate_s = np.concatenate([p[4] for p in parts])[order_s]
        eb.n_s = int(eb.sidx.shape[0])
        eb.cm = {
            key: np.concatenate([part[key] for part in cm_parts])[order_s]
            for key in cm_parts[0]
        }
        eb.asm = {
            key: np.concatenate([part[key] for part in asm_parts])[order_s]
            for key in asm_parts[0]
        }
        surv_b = np.zeros(eb.n_buckets, dtype=bool)
        surv_b[eb.bid_s] = True
        eb.surv_b = surv_b
    else:
        eb.sidx = np.empty(0, dtype=np.int64)
        eb.inp_s = np.empty(0, dtype=np.int64)
        eb.n_s = 0
        eb.cm = {}
        eb.asm = {}
        eb.rate_s = np.empty(0, dtype=np.float64)
        eb.surv_b = np.zeros(eb.n_buckets, dtype=bool)
    if timed:
        metrics.observe(_M_COMM, t_comm)
        metrics.observe(_M_ASSEMBLE, t_asm)
    return eb


# ---------------------------------------------------------------------------
# Orchestration, counters, materialization
# ---------------------------------------------------------------------------


def run_batch(
    eb: EvalBatch,
    *,
    prune_above: float | None = None,
    metrics: MetricsRegistry | None = None,
    adaptive: AdaptivePlan | None = None,
) -> EvalBatch:
    """Run every batch stage in order; apply counters and stage timings.

    ``prune_above`` must already be resolved to a float threshold (or
    ``None``); callable thresholds are read once by the caller.  Passing an
    :class:`AdaptivePlan` replaces the prune/comm/assemble tail with the
    best-bound-first tiled path (:func:`batch_adaptive`); ``prune_above``
    is ignored in that case — the plan's self-tightening threshold
    subsumes it.  Counters land on ``metrics`` with the same names and
    totals the scalar batched path produces; stage wall-time histograms
    are observed once per stage with the aggregate duration (the scalar
    path observes per candidate / group / bucket / survivor — totals are
    comparable, sample counts are not).
    """
    mx = metrics
    timed = mx is not None
    t0 = perf_counter() if timed else 0.0
    batch_validate(eb)
    if timed:
        t1 = perf_counter()
        mx.observe(_M_VALIDATE, t1 - t0)
        t0 = t1
    batch_profile(eb)
    if timed:
        t1 = perf_counter()
        mx.observe(_M_PROFILE, t1 - t0)
        t0 = t1
    batch_memory(eb)
    if timed:
        t1 = perf_counter()
        mx.observe(_M_MEMORY, t1 - t0)
    if adaptive is not None:
        # Bounds stay untimed (like the scalar bound evals); the tiled
        # comm/assemble loop observes its aggregate durations internally.
        batch_adaptive(eb, adaptive, metrics=mx)
    else:
        batch_prune(eb, prune_above)  # untimed, like the scalar bound evals
        if timed:
            t0 = perf_counter()
        batch_comm(eb)
        if timed:
            t1 = perf_counter()
            mx.observe(_M_COMM, t1 - t0)
            t0 = t1
        batch_assemble(eb)
        if timed:
            mx.observe(_M_ASSEMBLE, perf_counter() - t0)
    if mx is not None:
        mx.inc(M_CANDIDATES, float(eb.n))
        mx.inc(M_REJECT_VALIDATE, float(eb.n_invalid))
        mx.inc(M_PROFILE_GROUPS, float(eb.n_groups))
        mx.inc(M_MEMORY_BUCKETS, float(eb.n_buckets))
        mx.inc(M_BUCKET_HITS, float(eb.n_valid - eb.n_buckets))
        mx.inc(M_REJECT_MEMORY, float(eb.n_rejected_memory))
        mx.inc(M_SHARED_INFEASIBLE, float(eb.n_shared_infeasible))
        if prune_above is not None or adaptive is not None:
            mx.inc(M_BOUND_EVALS, float(eb.n_bound_evals))
            mx.inc(M_BOUND_PRUNED, float(eb.n_pruned))
        if adaptive is not None:
            mx.inc(M_BOUND_TILES, float(eb.n_tiles))
            mx.inc(M_BOUND_SKIPPED_BUCKETS, float(eb.n_skipped_buckets))
            if eb.n_seeded_buckets:
                mx.inc(M_SURROGATE_SEEDED, float(eb.n_seeded_buckets))
        mx.inc(M_EVALUATED_FULL, float(eb.n_survivors))
        mx.inc(M_COLUMNAR_BATCHES)
        mx.inc(M_COLUMNAR_CANDIDATES, float(eb.n))
    return eb


def _bucket_name(eb: EvalBatch, bkt: int) -> str:
    b = eb.b
    return (
        f"t{int(b['t'][bkt])}p{int(b['p'][bkt])}d{int(b['d'][bkt])}"
        f"m{int(b['m'][bkt])}v{int(b['v'][bkt])}"
    )


def _rejected_result(eb: EvalBatch, bkt: int) -> PerformanceResult:
    """The shared infeasible result of a capacity-rejected bucket."""
    hit = eb._rejected_cache.get(bkt)
    if hit is not None:
        return hit
    b, system = eb.b, eb.system
    if bool(b["tier1_over"][bkt]):
        reason = (
            f"tier-1 memory {float(b['mem1_total'][bkt]) / 2**30:.1f} GiB "
            f"exceeds capacity {system.mem1.capacity / 2**30:.1f} GiB"
        )
    else:
        reason = (
            f"tier-2 memory {float(b['tier2_used'][bkt]) / 2**30:.1f} GiB "
            f"exceeds capacity {system.mem2.capacity / 2**30:.1f} GiB"
        )
    result = PerformanceResult.infeasible(
        llm_name=eb.llm.name,
        system_name=system.name,
        strategy_name=_bucket_name(eb, bkt),
        batch=int(b["batch"][bkt]),
        reason=reason,
    )
    eb._rejected_cache[bkt] = result
    return result


def _pruned_result(eb: EvalBatch, bkt: int) -> PrunedResult:
    """The shared pruned marker of a bound-pruned bucket."""
    hit = eb._pruned_cache.get(bkt)
    if hit is None:
        hit = PrunedResult(
            batch=int(eb.b["batch"][bkt]), lower_bound=float(eb.bounds[bkt])
        )
        eb._pruned_cache[bkt] = hit
    return hit


def _invalid_result(eb: EvalBatch, i: int) -> PerformanceResult:
    """The scalar-exact infeasible result for a validate-rejected candidate."""
    strategy = eb.strategy_at(i)
    try:
        strategy.validate(eb.llm, eb.system)
    except StrategyError as err:
        ctx = EvalContext(eb.llm, eb.system, strategy, error=str(err))
        return infeasible_result(ctx)
    raise RuntimeError(
        f"columnar validate rejected candidate {i} "
        "but the scalar validate accepts it"
    )


def _materialize_survivors(eb: EvalBatch) -> list[PerformanceResult]:
    """Build one PerformanceResult per survivor, in survivor order.

    Per-bucket components (strategy name, memory breakdown) are shared
    across a bucket's survivors, like the scalar batched path shares the
    memoized plan; non-offload survivors share one zero OffloadStats.
    """
    asm, b = eb.asm, eb.b
    n_s = eb.n_s
    if n_s == 0:
        return []
    llm_name, system_name = eb.llm.name, eb.system.name
    cols = [
        asm[f].tolist()
        for f in (
            "fw_pass", "bw_pass", "fw_recompute", "optim_step", "pp_bubble",
            "tp_comm_exposed", "pp_comm_exposed", "dp_comm_exposed",
            "offload_exposed", "overlap_tax", "tp_comm_total", "pp_comm_total",
            "dp_comm_total", "offload_total",
        )
    ]
    mfu_l = asm["mfu"].tolist()
    bid_l = eb.bid_s.tolist()
    req_bw_l = eb.cm["required_bw"].tolist()
    batch_l = b["batch"].tolist()
    tier2_l = b["tier2_used"].tolist()
    names: dict[int, str] = {}
    mem1s: dict[int, MemoryBreakdown] = {}
    results: list[PerformanceResult] = []
    for k in range(n_s):
        bkt = bid_l[k]
        name = names.get(bkt)
        if name is None:
            name = _bucket_name(eb, bkt)
            names[bkt] = name
            mem1s[bkt] = MemoryBreakdown(
                weight=float(b["weight_res"][bkt]),
                activation=float(b["act_res"][bkt]),
                weight_grad=float(b["grad_res"][bkt]),
                activation_grad=float(b["act_grad_res"][bkt]),
                optimizer=float(b["opt_res"][bkt]),
            )
        tier2 = tier2_l[bkt]
        req_bw = req_bw_l[k]
        offload = (
            OffloadStats(used_bytes=tier2, required_bandwidth=req_bw)
            if tier2 != 0.0 or req_bw != 0.0
            else _ZERO_OFFLOAD
        )
        results.append(
            PerformanceResult(
                llm_name=llm_name,
                system_name=system_name,
                strategy_name=name,
                batch=batch_l[bkt],
                time=TimeBreakdown(*(col[k] for col in cols)),
                mem1=mem1s[bkt],
                offload=offload,
                mfu=mfu_l[k],
            )
        )
    return results


def iter_results(eb: EvalBatch) -> Iterator[tuple[int, PerformanceResult]]:
    """Yield ``(input_index, result)`` in the scalar engine's stream order.

    Validate-rejects first (input order), then profile groups in first-seen
    order with members in input order — the exact order
    ``repro.engine.iter_evaluate`` streams, so downstream heaps and
    tie-breaks behave identically.
    """
    for i in np.flatnonzero(~eb.valid).tolist():
        yield i, _invalid_result(eb, i)
    if eb.n_valid == 0:
        return
    survivors = _materialize_survivors(eb)
    pos_in_surv = np.full(eb.n_valid, -1, dtype=np.int64)
    if eb.n_s:
        pos_in_surv[eb.sidx] = np.arange(eb.n_s, dtype=np.int64)
    # Per valid candidate: 0 = bucket rejected, 1 = bucket pruned, 2 = survivor.
    status = np.where(
        eb.feasible_v, np.where(eb.pruned_v, np.int64(1), np.int64(2)), np.int64(0)
    )
    vidx_l = eb.vidx.tolist()
    bid_l = eb.bid.tolist()
    status_l = status.tolist()
    pos_l = pos_in_surv.tolist()
    for pos in eb.order_v.tolist():
        i = vidx_l[pos]
        st = status_l[pos]
        if st == 2:
            yield i, survivors[pos_l[pos]]
        elif st == 0:
            yield i, _rejected_result(eb, bid_l[pos])
        else:
            yield i, _pruned_result(eb, bid_l[pos])


__all__ = [
    "COLUMN_FIELDS",
    "COLUMN_NAMES",
    "AdaptivePlan",
    "EvalBatch",
    "NUMPY_MIN_VERSION",
    "RECOMPUTE_NAMES",
    "TP_MODE_NAMES",
    "TP_OVERLAP_NAMES",
    "batch_adaptive",
    "batch_assemble",
    "batch_comm",
    "batch_memory",
    "batch_profile",
    "batch_prune",
    "batch_validate",
    "check_numpy_version",
    "columns_from_strategies",
    "iter_results",
    "run_batch",
]
