"""Explicit evaluation state threaded through the staged engine.

An :class:`EvalContext` carries one candidate configuration through the
pipeline ``validate -> profile -> memory plan -> comm exposure -> time
assembly``.  Each stage reads the fields earlier stages produced and fills in
its own block; a stage that detects infeasibility sets :attr:`EvalContext.error`
and the pipeline stops.  Keeping the strategy-derived scalars (``t/p/d/v/M``,
blocks per stage, element size) in one place means no stage recomputes them
and the hand-off between stages is inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.results import MemoryBreakdown
from ..execution.strategy import ExecutionStrategy
from ..hardware.system import System
from ..llm.config import LLMConfig
from .profile import BlockProfile


@dataclass(frozen=True)
class MemoryPlan:
    """Output of the memory-planning stage: what lives where, per device.

    The ``*_res`` fields are tier-1-resident bytes (offloading shrinks them to
    a working set); ``tier2_used`` is the offload tier's footprint.  The raw
    floats are kept alongside so the feasibility fast path never has to build
    a :class:`~repro.core.results.MemoryBreakdown` for a rejected candidate.
    """

    weight_res: float
    act_res: float
    grad_res: float
    act_grad_res: float
    opt_res: float
    mem1_total: float
    tier2_used: float
    opt_bytes: float  # optimizer state per device (post-sharding)
    opt_shard: int
    in_flight: float  # microbatches stashed simultaneously per stage

    def mem1_breakdown(self) -> MemoryBreakdown:
        # Memoized: batched sweeps share one plan across every candidate in a
        # memory bucket, so the breakdown is built (and validated) once.
        bd = self.__dict__.get("_breakdown")
        if bd is None:
            bd = MemoryBreakdown(
                weight=self.weight_res,
                activation=self.act_res,
                weight_grad=self.grad_res,
                activation_grad=self.act_grad_res,
                optimizer=self.opt_res,
            )
            self.__dict__["_breakdown"] = bd
        return bd


@dataclass(frozen=True)
class CommExposure:
    """Output of the comm-exposure stage: every time component except totals.

    All values are seconds.  ``t_f_mb`` / ``t_b_mb`` are per-microbatch stage
    times (forward and backward+recompute) with exposed TP communication and
    overlap tax folded in, as the pipeline-bubble and p2p models require.
    """

    tp_fw_exp: float
    tp_fw_tax: float
    tp_bw_exp: float
    tp_bw_tax: float
    tp_rc_exp: float
    tp_rc_tax: float
    t_f_mb: float
    t_b_mb: float
    pp_total: float
    pp_exposed: float
    pp_bubble: float
    dp_total: float
    dp_exposed: float
    dp_tax: float
    optim_time: float
    offload_total: float
    offload_exposed: float
    required_bw: float


@dataclass
class EvalContext:
    """One candidate's state as it moves through the stage pipeline."""

    llm: LLMConfig
    system: System
    strategy: ExecutionStrategy

    # Set by any stage that rejects the candidate; downstream stages must not
    # run once this is non-None.
    error: str | None = None

    # -- strategy-derived scalars (stage_validate) ---------------------------
    t: int = 0  # tensor-parallel degree
    p: int = 0  # pipeline-parallel degree
    d: int = 0  # data-parallel degree
    v: int = 0  # pipeline interleaving
    M: int = 0  # microbatches per flush
    L: int = 0  # transformer blocks
    bpstage: int = 0  # blocks on the busiest pipeline stage
    b: int = 0  # microbatch size
    e: float = 0.0  # bytes per element
    training: bool = True

    # -- stage outputs -------------------------------------------------------
    prof: BlockProfile | None = None
    mem: MemoryPlan | None = None
    comm: CommExposure | None = None
    result: object | None = None  # PerformanceResult once assembled


@dataclass(frozen=True)
class FeasibilityReport:
    """Result of the fast path: feasibility without any timing work.

    ``stage`` names the stage that rejected the candidate (``"validate"`` or
    ``"memory"``) or is ``"ok"``.  ``mem1`` carries the tier-1 breakdown
    whenever the memory plan ran (even for capacity rejections, so callers
    can see *how far over* a candidate is).
    """

    feasible: bool
    reason: str = ""
    stage: str = "ok"
    mem1: MemoryBreakdown | None = None
    tier2_bytes: float = 0.0

    def __bool__(self) -> bool:
        return self.feasible
