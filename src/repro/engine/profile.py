"""Stage 2 of the staged engine: profile one sharded transformer block.

The transformer's regular structure means one sharded block profiled once can
be reused for every block and microbatch of a configuration — and, across a
sweep, for every *candidate* that shares the same block-level parameters.
:func:`profile_key` extracts exactly those parameters from an
:class:`~repro.execution.strategy.ExecutionStrategy`, so batched evaluation
(:func:`repro.engine.evaluate_many`) can group candidates and profile each
distinct block once.

This module is the canonical home of the profiler; ``repro.core.model``
re-exports it under its historical ``_profile_block`` name.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..core.flops import layer_bw_time, layer_fw_time
from ..execution.strategy import ExecutionStrategy
from ..hardware.system import System
from ..llm.blocks import build_block
from ..llm.config import LLMConfig


@dataclass(frozen=True)
class BlockProfile:
    """Cached per-block timing and footprint figures (per microbatch)."""

    fw_time: float
    bw_time: float
    recompute_time: float
    fw_hbm_idle: float  # portion of fw window with tier-1 memory idle
    bw_hbm_idle: float
    flops_fw: float
    flops_bw: float
    weight_bytes: float
    weight_grad_bytes: float
    optimizer_bytes: float
    stash_bytes: float
    input_bytes: float
    act_grad_bytes: float
    tp_fw_comm: float
    tp_bw_comm: float
    tp_recompute_comm: float


def profile_key(
    strategy: ExecutionStrategy,
) -> tuple[int, int, bool, bool, bool, str, str]:
    """The block-level parameters that determine a strategy's profile.

    Two strategies with equal keys share one :class:`BlockProfile` on a given
    (LLM, system); everything else (p, d, batch, overlap, offload, ...) only
    affects the later stages.  The tuple matches :func:`profile_block`'s
    argument order after ``(llm, system)``.
    """
    return (
        strategy.microbatch,
        strategy.tensor_par,
        strategy.seq_par,
        strategy.fused_activations,
        strategy.tp_redo_sp,
        strategy.recompute,
        strategy.tp_mode,
    )


@dataclass(frozen=True)
class _BlockBase:
    """The recompute-independent core of a block profile.

    The recompute mode changes neither the block structure nor any
    per-layer roofline time — only which forward times are *replayed* and
    which activations are stashed.  Factoring this core out and caching it
    on the build key alone means the three recompute modes of one sharding
    share a single :func:`~repro.llm.blocks.build_block` and one per-layer
    timing sweep (a ~3x cut in profile work across a full search space).
    ``layer_fw_totals`` keeps each layer's forward time in layer order, so
    per-mode recompute sums replay the exact float accumulation the fused
    loop used to produce — profiles stay bit-identical.
    """

    block: object
    fw_time: float
    bw_time: float
    fw_hbm_idle: float
    bw_hbm_idle: float
    layer_fw_totals: tuple[float, ...]
    layer_attn_only: tuple[bool, ...]
    tp_fw_comm: float
    tp_bw_comm: float
    flops_fw: float
    flops_bw: float
    weight_bytes: float
    weight_grad_bytes: float
    optimizer_bytes: float
    input_bytes: float
    act_grad_bytes: float


@lru_cache(maxsize=262144)
def _layer_times(proc, hbm, layer):
    """Memoized (forward, backward) roofline times of one layer.

    Layers are frozen dataclasses, so identical shards reached from
    different block keys (e.g. ``m=2, t=2`` vs ``m=1, t=1`` produce the
    same per-processor GEMM) hash equal and share one roofline evaluation.
    Pure memoization — values are whatever :func:`layer_fw_time` /
    :func:`layer_bw_time` return.
    """
    return layer_fw_time(proc, hbm, layer), layer_bw_time(proc, hbm, layer)


@lru_cache(maxsize=65536)
def _block_base(
    llm: LLMConfig,
    system: System,
    microbatch: int,
    tensor_par: int,
    seq_par: bool,
    fused: bool,
    tp_redo_sp: bool,
    tp_mode: str,
) -> _BlockBase:
    block = build_block(
        llm,
        microbatch=microbatch,
        tensor_par=tensor_par,
        seq_par=seq_par,
        fused_activations=fused,
        tp_redo_sp=tp_redo_sp,
        tp_mode=tp_mode,
    )
    proc, hbm = system.processor, system.mem1

    fw_time = bw_time = 0.0
    fw_idle = bw_idle = 0.0
    fw_totals: list[float] = []
    attn_only: list[bool] = []
    for layer in block.layers:
        f, b = _layer_times(proc, hbm, layer)
        fw_time += f.total
        bw_time += b.total
        fw_idle += f.total - f.memory
        bw_idle += b.total - b.memory
        fw_totals.append(f.total)
        attn_only.append(layer.attn_only)

    tp_net = system.network_for_span(tensor_par) if tensor_par > 1 else None

    def comm_time(events) -> float:
        if tp_net is None:
            return 0.0
        return sum(
            tp_net.collective_time(ev.op, ev.nbytes, ev.group or tensor_par)
            for ev in events
        )

    return _BlockBase(
        block=block,
        fw_time=fw_time,
        bw_time=bw_time,
        fw_hbm_idle=fw_idle,
        bw_hbm_idle=bw_idle,
        layer_fw_totals=tuple(fw_totals),
        layer_attn_only=tuple(attn_only),
        tp_fw_comm=comm_time(block.tp_comm_fw),
        tp_bw_comm=comm_time(block.tp_comm_bw),
        flops_fw=block.flops_fw(),
        flops_bw=block.flops_bw(),
        weight_bytes=block.weight_bytes(),
        weight_grad_bytes=block.weight_grad_bytes(),
        optimizer_bytes=block.optimizer_bytes(),
        input_bytes=block.input_bytes,
        act_grad_bytes=2.0 * block.max_output_bytes(),
    )


@lru_cache(maxsize=65536)
def profile_block(
    llm: LLMConfig,
    system: System,
    microbatch: int,
    tensor_par: int,
    seq_par: bool,
    fused: bool,
    tp_redo_sp: bool,
    recompute: str,
    tp_mode: str = "1d",
) -> BlockProfile:
    """Profile one sharded transformer block on one processor."""
    base = _block_base(
        llm, system, microbatch, tensor_par, seq_par, fused, tp_redo_sp,
        tp_mode,
    )

    # Replayed-forward sum in layer order: bit-identical to accumulating
    # inside the original fused per-layer loop.
    recompute_time = 0.0
    for f_total, is_attn in zip(base.layer_fw_totals, base.layer_attn_only):
        if recompute == "full" or (recompute == "attn_only" and is_attn):
            recompute_time += f_total

    # Full recompute replays the forward pass communication as well; the
    # attention core contains no TP boundary, so selective recompute adds none.
    tp_recompute = base.tp_fw_comm if recompute == "full" else 0.0

    return BlockProfile(
        fw_time=base.fw_time,
        bw_time=base.bw_time,
        recompute_time=recompute_time,
        fw_hbm_idle=base.fw_hbm_idle,
        bw_hbm_idle=base.bw_hbm_idle,
        flops_fw=base.flops_fw,
        flops_bw=base.flops_bw,
        weight_bytes=base.weight_bytes,
        weight_grad_bytes=base.weight_grad_bytes,
        optimizer_bytes=base.optimizer_bytes,
        stash_bytes=base.block.stash_bytes(recompute),
        input_bytes=base.input_bytes,
        act_grad_bytes=base.act_grad_bytes,
        tp_fw_comm=base.tp_fw_comm,
        tp_bw_comm=base.tp_bw_comm,
        tp_recompute_comm=tp_recompute,
    )


def clear_caches() -> None:
    """Drop every memoized block profile (e.g. between calibration passes)."""
    profile_block.cache_clear()
    _block_base.cache_clear()
    _layer_times.cache_clear()
