"""Staged evaluation engine: the analytical model as composable phases.

The monolithic ``calculate()`` of ``repro.core.model`` is implemented here as
an explicit five-stage pipeline over an :class:`EvalContext`::

    validate -> profile -> memory plan -> comm exposure -> time assembly

On top of the stages sit a feasibility fast path (:func:`check_feasible`) and
a batched sweep primitive (:func:`evaluate_many`) that groups candidates by
block-profile key and fully evaluates only memory-feasible survivors.
``repro.core.calculate`` remains the stable single-configuration wrapper.

The bound-and-prune layer (:mod:`repro.engine.bounds`) adds an analytic
roofline lower bound on batch time computed from fast-path artifacts alone;
searches pass a ``prune_above`` threshold to :func:`evaluate_many` /
:func:`iter_evaluate` to skip the comm/assembly stages for candidates that
provably cannot enter the current top-k.

The columnar engine (:mod:`repro.engine.batch`) vectorizes the batched path
over NumPy struct-of-arrays; ``evaluate_many``/``iter_evaluate`` route large
batches through it by default (``columnar=False`` opts out), with results
bit-identical to the scalar oracle.  ``COLUMNAR_AVAILABLE`` reports whether
the installed NumPy clears the module's version floor.
"""

from .api import (
    ENGINE_VERSION,
    FAST_PATH,
    PIPELINE,
    STAGE_SHORT_NAMES,
    check_feasible,
    evaluate,
    evaluate_many,
    iter_evaluate,
)
from .bounds import (
    PrunedResult,
    batch_lower_bounds,
    prune_threshold_for_rate,
    roofline_lower_bound,
)
from .context import CommExposure, EvalContext, FeasibilityReport, MemoryPlan
from .profile import BlockProfile, profile_block, profile_key
from .profile import clear_caches as _clear_profile_caches
from .stages import (
    clear_comm_caches,
    comm_cache_stats,
    exposed_and_tax,
    in_flight_microbatches,
    infeasible_result,
    stage_assemble,
    stage_comm,
    stage_memory,
    stage_profile,
    stage_validate,
)

# The columnar engine needs NumPy >= 1.24; keep the engine importable (with
# the scalar pipeline) on older installs and let callers introspect.
try:
    from .batch import EvalBatch  # noqa: F401

    COLUMNAR_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised via monkeypatched floor
    EvalBatch = None  # type: ignore[assignment, misc]
    COLUMNAR_AVAILABLE = False


def clear_caches() -> None:
    """Drop every process-global engine cache.

    Clears both the block-profile caches and the comm-kernel caches —
    benchmarks call this between phases so each measures cold-cache work.
    """
    _clear_profile_caches()
    clear_comm_caches()


__all__ = [
    "BlockProfile",
    "COLUMNAR_AVAILABLE",
    "CommExposure",
    "ENGINE_VERSION",
    "EvalBatch",
    "EvalContext",
    "FAST_PATH",
    "FeasibilityReport",
    "MemoryPlan",
    "PIPELINE",
    "PrunedResult",
    "STAGE_SHORT_NAMES",
    "batch_lower_bounds",
    "check_feasible",
    "clear_caches",
    "clear_comm_caches",
    "comm_cache_stats",
    "evaluate",
    "evaluate_many",
    "exposed_and_tax",
    "in_flight_microbatches",
    "infeasible_result",
    "iter_evaluate",
    "profile_block",
    "profile_key",
    "prune_threshold_for_rate",
    "roofline_lower_bound",
    "stage_assemble",
    "stage_comm",
    "stage_memory",
    "stage_profile",
    "stage_validate",
]
