"""Staged evaluation engine: the analytical model as composable phases.

The monolithic ``calculate()`` of ``repro.core.model`` is implemented here as
an explicit five-stage pipeline over an :class:`EvalContext`::

    validate -> profile -> memory plan -> comm exposure -> time assembly

On top of the stages sit a feasibility fast path (:func:`check_feasible`) and
a batched sweep primitive (:func:`evaluate_many`) that groups candidates by
block-profile key and fully evaluates only memory-feasible survivors.
``repro.core.calculate`` remains the stable single-configuration wrapper.
"""

from .api import (
    ENGINE_VERSION,
    FAST_PATH,
    PIPELINE,
    STAGE_SHORT_NAMES,
    check_feasible,
    evaluate,
    evaluate_many,
    iter_evaluate,
)
from .context import CommExposure, EvalContext, FeasibilityReport, MemoryPlan
from .profile import BlockProfile, clear_caches, profile_block, profile_key
from .stages import (
    exposed_and_tax,
    in_flight_microbatches,
    infeasible_result,
    stage_assemble,
    stage_comm,
    stage_memory,
    stage_profile,
    stage_validate,
)

__all__ = [
    "BlockProfile",
    "CommExposure",
    "ENGINE_VERSION",
    "EvalContext",
    "FAST_PATH",
    "FeasibilityReport",
    "MemoryPlan",
    "PIPELINE",
    "STAGE_SHORT_NAMES",
    "check_feasible",
    "clear_caches",
    "evaluate",
    "evaluate_many",
    "exposed_and_tax",
    "in_flight_microbatches",
    "infeasible_result",
    "iter_evaluate",
    "profile_block",
    "profile_key",
    "stage_assemble",
    "stage_comm",
    "stage_memory",
    "stage_profile",
    "stage_validate",
]
