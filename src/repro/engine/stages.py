"""The five stages of the analytical model (paper §2.4), as pure functions.

Each stage takes an :class:`~repro.engine.context.EvalContext`, reads what
earlier stages produced, and fills in its own output block::

    validate -> profile -> memory plan -> comm exposure -> time assembly

The split preserves the monolithic model's arithmetic expression-for-
expression (the golden-equivalence test holds the outputs bit-identical), but
makes two things possible that the monolith could not do:

* a **feasibility fast path** — validate + profile + memory plan answers
  "does this fit?" without touching a single network or timing formula;
* **batched evaluation** — candidates sharing a block profile are grouped so
  the profile (and its cache lookup) is paid once per group.

The model captures the interactions the paper calls out explicitly:

* DP communication may overlap the backward pass, but the all-gather phase of
  sharded optimizer state never overlaps the optimizer step;
* offload traffic is throttled while tier-1 (HBM) memory is in active use —
  only HBM-idle portions of a block's execution window hide transfers;
* driving a network at full bandwidth taxes the processor
  (``Network.processor_usage``), degrading overlapped computation;
* recomputation replays forward compute *and* forward TP communication.
"""

from __future__ import annotations

import os
from functools import lru_cache

from ..core.results import (
    MemoryBreakdown,
    OffloadStats,
    PerformanceResult,
    TimeBreakdown,
)
from ..execution.strategy import StrategyError
from ..hardware.network import Network
from .context import CommExposure, EvalContext, MemoryPlan
from .profile import profile_block, profile_key

# Fraction of a block's compute window usable to hide TP collectives.
TP_OVERLAP_WINDOW = {"none": 0.0, "pipe": 0.5, "ring": 0.8}

# Blocks of working set kept resident when a tensor class is offloaded:
# the block being computed plus one prefetch and one writeback buffer (Fig. 8).
OFFLOAD_WORKING_BLOCKS = 3

# When REPRO_DEBUG_CHECK is set, every assembled result is run through the
# internal-consistency checker (repro.core.consistency) before returning —
# a tripwire for development; off by default for search throughput.
_DEBUG_CHECK = bool(os.environ.get("REPRO_DEBUG_CHECK"))

# Shared empty components for infeasible results: PerformanceResult is frozen,
# so every rejected candidate can carry the same zeroed breakdowns instead of
# re-validating fresh ones (a measurable cost at sweep scale).
_EMPTY_TIME = TimeBreakdown()
_EMPTY_MEM = MemoryBreakdown()
_EMPTY_OFFLOAD = OffloadStats()


def infeasible_result(ctx: EvalContext) -> PerformanceResult:
    """Package ``ctx.error`` as the model's standard infeasible result."""
    assert ctx.error is not None
    return PerformanceResult(
        llm_name=ctx.llm.name,
        system_name=ctx.system.name,
        strategy_name=ctx.strategy.short_name(),
        batch=ctx.strategy.batch,
        time=_EMPTY_TIME,
        mem1=_EMPTY_MEM,
        offload=_EMPTY_OFFLOAD,
        mfu=0.0,
        feasible=False,
        infeasibility=ctx.error,
    )


# ---------------------------------------------------------------------------
# Stage 1: validate
# ---------------------------------------------------------------------------


def stage_validate(ctx: EvalContext) -> EvalContext:
    """Check structural feasibility and derive the strategy scalars."""
    try:
        ctx.strategy.validate(ctx.llm, ctx.system)
    except StrategyError as err:
        ctx.error = str(err)
        return ctx
    fill_scalars(ctx)
    return ctx


def fill_scalars(ctx: EvalContext) -> None:
    """Derive the per-candidate scalars from an already-validated strategy."""
    strategy, llm = ctx.strategy, ctx.llm
    ctx.t = strategy.tensor_par
    ctx.p = strategy.pipeline_par
    ctx.d = strategy.data_par
    ctx.v = strategy.pp_interleaving
    ctx.M = strategy.num_microbatches
    ctx.L = llm.num_blocks
    ctx.bpstage = strategy.blocks_per_stage(llm.num_blocks)
    ctx.b = strategy.microbatch
    ctx.e = llm.bytes_per_element
    ctx.training = strategy.training


# ---------------------------------------------------------------------------
# Stage 2: profile
# ---------------------------------------------------------------------------


def stage_profile(ctx: EvalContext) -> EvalContext:
    """Attach the (cached) single-block profile for this candidate."""
    if ctx.error is not None:
        return ctx
    ctx.prof = profile_block(ctx.llm, ctx.system, *profile_key(ctx.strategy))
    return ctx


# ---------------------------------------------------------------------------
# Stage 3: memory plan
# ---------------------------------------------------------------------------


def stage_memory(ctx: EvalContext) -> EvalContext:
    """Account residency per tier and reject capacity violations.

    Everything here depends only on the block profile and the strategy
    scalars — no network or timing state — which is what makes the
    feasibility fast path possible.
    """
    if ctx.error is not None:
        return ctx
    prof, strategy, system = ctx.prof, ctx.strategy, ctx.system
    bpstage, training = ctx.bpstage, ctx.training

    opt_shard = ctx.d if strategy.optimizer_sharding else 1
    opt_bytes = bpstage * prof.optimizer_bytes / opt_shard

    in_flight = in_flight_microbatches(ctx.M, ctx.p, ctx.v, strategy.pp_1f1b)
    stash_total = prof.stash_bytes * bpstage * in_flight
    weight_total = bpstage * prof.weight_bytes
    grad_total = bpstage * prof.weight_grad_bytes if training else 0.0

    tier2_used = 0.0
    if strategy.weight_offload:
        weight_res = min(bpstage, OFFLOAD_WORKING_BLOCKS) * prof.weight_bytes
        tier2_used += weight_total
    else:
        weight_res = weight_total
    if training and strategy.activation_offload:
        act_res = min(bpstage * in_flight, OFFLOAD_WORKING_BLOCKS) * prof.stash_bytes
        tier2_used += stash_total
    else:
        act_res = stash_total if training else prof.stash_bytes
    if training and strategy.optimizer_offload:
        opt_res = min(bpstage, 1) * prof.optimizer_bytes / opt_shard
        grad_res = min(bpstage, OFFLOAD_WORKING_BLOCKS) * prof.weight_grad_bytes
        # With the distributed (sharded) optimizer, gradients are
        # reduce-scattered before being stashed, so the tier-2 copy is
        # sharded across the data-parallel group.
        tier2_used += opt_bytes + grad_total / opt_shard
    else:
        opt_res = opt_bytes if training else 0.0
        grad_res = grad_total

    act_grad_res = prof.act_grad_bytes if training else 0.0
    # Summed in MemoryBreakdown.total's field order so the fast path agrees
    # with the assembled breakdown to the last bit.
    mem1_total = weight_res + act_res + grad_res + act_grad_res + opt_res

    ctx.mem = MemoryPlan(
        weight_res=weight_res,
        act_res=act_res,
        grad_res=grad_res,
        act_grad_res=act_grad_res,
        opt_res=opt_res,
        mem1_total=mem1_total,
        tier2_used=tier2_used,
        opt_bytes=opt_bytes,
        opt_shard=opt_shard,
        in_flight=in_flight,
    )

    if mem1_total > system.mem1.capacity:
        ctx.error = (
            f"tier-1 memory {mem1_total / 2**30:.1f} GiB exceeds capacity "
            f"{system.mem1.capacity / 2**30:.1f} GiB"
        )
    elif system.mem2 is not None and tier2_used > system.mem2.capacity:
        ctx.error = (
            f"tier-2 memory {tier2_used / 2**30:.1f} GiB exceeds capacity "
            f"{system.mem2.capacity / 2**30:.1f} GiB"
        )
    return ctx


def in_flight_microbatches(M: int, p: int, v: int, one_f_one_b: bool) -> float:
    """Microbatches whose activations are simultaneously stashed per stage.

    1F1B bounds in-flight microbatches by the pipeline depth ``p``; the
    interleaved variant stores an extra ``(p-1)/v`` partial set (Korthikanti
    et al. '22, Eq. 6).  Without 1F1B (GPipe-style), every microbatch of the
    flush is live at the fill peak.
    """
    if p == 1:
        return 1.0
    if not one_f_one_b:
        return float(M)
    base = float(p) if v == 1 else p + (p - 1) / v
    return min(float(M) if v == 1 else M + (p - 1) / v, base)


# ---------------------------------------------------------------------------
# Stage 4: comm exposure
# ---------------------------------------------------------------------------


def exposed_and_tax(
    comm: float, window: float, net: Network | None
) -> tuple[float, float]:
    """Split a communication time into exposed part + compute-slowdown tax.

    ``window`` is the compute time available for hiding.  The hidden portion
    steals ``processor_usage`` of the processor, slowing concurrent compute by
    ``pu / (1 - pu)`` of the hidden duration.
    """
    if net is None or comm <= 0:
        return max(comm, 0.0), 0.0
    exposed = max(0.0, comm - window)
    hidden = comm - exposed
    pu = net.processor_usage
    tax = hidden * pu / (1.0 - pu) if pu > 0 else 0.0
    return exposed, tax


# -- cross-candidate comm memoization -----------------------------------------
# The expensive sub-computations of stage_comm are pure functions of a small
# key: the (hashable, frozen) System plus a handful of exact scalars.  Sweeps
# over batch/microbatch/overlap knobs repeat identical collective timings
# thousands of times, and the service's micro-batches repeat them across
# requests, so each kernel is wrapped in a bounded per-process lru_cache (the
# same pattern as profile_block).  Results are bit-identical to inline
# computation: every input that affects the value is part of the key and the
# arithmetic inside is unchanged.  The per-call group/bucket memos in
# stage_comm sit in front of these caches, so a batched sweep pays the key
# hash once per group/bucket, not once per candidate.

_COMM_CACHE_SIZE = 65536


@lru_cache(maxsize=_COMM_CACHE_SIZE)
def tp_exposure(system, t: int, tp_overlap: str, prof):
    """Exposed time + overlap tax of the fw/bw/recompute TP collectives."""
    tp_net = system.network_for_span(t) if t > 1 else None
    win_frac = TP_OVERLAP_WINDOW[tp_overlap]
    tp_fw_exp, tp_fw_tax = exposed_and_tax(
        prof.tp_fw_comm, win_frac * prof.fw_time, tp_net
    )
    tp_bw_exp, tp_bw_tax = exposed_and_tax(
        prof.tp_bw_comm, win_frac * prof.bw_time, tp_net
    )
    tp_rc_exp, tp_rc_tax = exposed_and_tax(
        prof.tp_recompute_comm, win_frac * prof.recompute_time, tp_net
    )
    return tp_fw_exp, tp_fw_tax, tp_bw_exp, tp_bw_tax, tp_rc_exp, tp_rc_tax


@lru_cache(maxsize=_COMM_CACHE_SIZE)
def pp_p2p_time(system, t: int, p: int, full_act: float, rs_ag: bool) -> float:
    """One pipeline-stage boundary crossing of a ``full_act``-byte activation."""
    pp_net = system.network_for_span(min(system.num_procs, t * p))
    tp_net = system.network_for_span(t) if t > 1 else None
    pp_bytes = full_act / t if rs_ag else full_act
    p2p = pp_net.collective_time("p2p", pp_bytes, 2)
    if rs_ag and tp_net is not None:
        # Re-gather / scatter around the transfer rides the TP network.
        p2p += tp_net.collective_time("all_gather", full_act, t)
        p2p += tp_net.collective_time("reduce_scatter", full_act, t)
    return p2p


@lru_cache(maxsize=_COMM_CACHE_SIZE)
def dp_collectives(
    system, t: int, p: int, d: int, grad_bytes: float, sharded: bool
) -> tuple[float, float, float]:
    """(reduce, all-gather, total) time of the gradient exchange."""
    dp_net = system.network_for_span(min(system.num_procs, t * p * d))
    if sharded:
        rs = dp_net.collective_time("reduce_scatter", grad_bytes, d)
        ag = dp_net.collective_time("all_gather", grad_bytes, d)
        return rs, ag, rs + ag
    rs = dp_net.collective_time("all_reduce", grad_bytes, d)
    return rs, 0.0, rs


@lru_cache(maxsize=_COMM_CACHE_SIZE)
def optim_step_time(
    system, opt_bytes: float, traffic: float, use_mem2: bool
) -> float:
    """Optimizer-step time: vector FLOPs vs. state traffic, whichever binds.

    Shared by :func:`stage_comm` and the roofline lower bound
    (:func:`repro.engine.bounds.roofline_lower_bound`), so both compute the
    exact same float for the same candidate.
    """
    params = opt_bytes / 12.0
    opt_flops = 12.0 * params  # Adam: moments, bias-correct, apply
    opt_mem = system.mem2 if use_mem2 else system.mem1
    compute_t = system.processor.compute_time("vector", opt_flops)
    return max(compute_t, traffic / opt_mem.effective_bandwidth(traffic))


_COMM_CACHED = (tp_exposure, pp_p2p_time, dp_collectives, optim_step_time)


def comm_cache_stats() -> tuple[int, int]:
    """(hits, misses) summed over every comm kernel cache in this process."""
    hits = misses = 0
    for fn in _COMM_CACHED:
        info = fn.cache_info()
        hits += info.hits
        misses += info.misses
    return hits, misses


def clear_comm_caches() -> None:
    for fn in _COMM_CACHED:
        fn.cache_clear()


def stage_comm(
    ctx: EvalContext,
    group_memo: dict | None = None,
    bucket_memo: dict | None = None,
) -> EvalContext:
    """Price every communication/overlap component and the optimizer step.

    ``group_memo`` / ``bucket_memo`` are optional caches owned by the batched
    evaluator (:func:`repro.engine.iter_evaluate`): several comm components
    are constant across every candidate of a profile group (TP exposure, per
    overlap mode) or of a memory bucket (optimizer step, DP collective and PP
    p2p times), so their exact values are computed once and reused —
    bit-identical, since the inputs are identical.  Beneath the per-call
    memos sit the process-global kernel caches (:func:`tp_exposure`,
    :func:`pp_p2p_time`, :func:`dp_collectives`, :func:`optim_step_time`),
    which also serve single-candidate evaluation and persist across calls.
    """
    if ctx.error is not None:
        return ctx
    llm, system, strategy, prof = ctx.llm, ctx.system, ctx.strategy, ctx.prof
    t, p, d, v, M = ctx.t, ctx.p, ctx.d, ctx.v, ctx.M
    bpstage, e, b, training = ctx.bpstage, ctx.e, ctx.b, ctx.training

    # ---- per-block TP communication exposure --------------------------------
    tp_hit = group_memo.get(strategy.tp_overlap) if group_memo is not None else None
    if tp_hit is None:
        tp_hit = tp_exposure(system, t, strategy.tp_overlap, prof)
        if group_memo is not None:
            group_memo[strategy.tp_overlap] = tp_hit
    tp_fw_exp, tp_fw_tax, tp_bw_exp, tp_bw_tax, tp_rc_exp, tp_rc_tax = tp_hit

    # ---- per-microbatch stage times ------------------------------------------
    t_f_mb = bpstage * (prof.fw_time + tp_fw_exp + tp_fw_tax)
    if training:
        t_b_mb = bpstage * (
            prof.bw_time
            + prof.recompute_time
            + tp_bw_exp
            + tp_bw_tax
            + tp_rc_exp
            + tp_rc_tax
        )
    else:
        t_b_mb = 0.0

    # ---- pipeline point-to-point ---------------------------------------------
    # In the 1F1B steady state the asynchronous sends/receives hide behind the
    # per-chunk compute of other microbatches; a crossing is exposed only when
    # the transfer outlasts the chunk it overlaps.  The (p-1) fill (and drain)
    # crossings of the prologue/epilogue are serial and always exposed.
    pp_total = pp_exposed = 0.0
    if p > 1:
        p2p_hit = (
            bucket_memo.get(("pp", strategy.pp_rs_ag))
            if bucket_memo is not None
            else None
        )
        if p2p_hit is None:
            full_act = b * llm.seq_size * llm.hidden * e
            p2p = pp_p2p_time(system, t, p, full_act, strategy.pp_rs_ag)
            if bucket_memo is not None:
                bucket_memo[("pp", strategy.pp_rs_ag)] = p2p
        else:
            p2p = p2p_hit
        crossings = v * (2 if training else 1)  # fw (+ bw) per chunk boundary
        pp_total = M * crossings * p2p
        chunk_f = t_f_mb / v
        chunk_b = t_b_mb / v if training else 0.0
        pp_exposed = M * v * max(0.0, p2p - chunk_f)
        if training:
            pp_exposed += M * v * max(0.0, p2p - chunk_b)
        pp_exposed += (p - 1) * p2p  # pipeline fill hand-offs

    # ---- pipeline bubble -------------------------------------------------------
    if p > 1:
        chunk = (t_f_mb + t_b_mb) / v
        pp_bubble = (p - 1) * chunk
    else:
        pp_bubble = 0.0

    # ---- data-parallel gradient communication ---------------------------------
    dp_total = dp_exposed = dp_tax = 0.0
    if training and d > 1:
        dp_net = system.network_for_span(min(system.num_procs, t * p * d))
        dp_hit = bucket_memo.get("dp") if bucket_memo is not None else None
        if dp_hit is None:
            grad_bytes = bpstage * prof.weight_grad_bytes
            rs, ag, dp_total = dp_collectives(
                system, t, p, d, grad_bytes, strategy.optimizer_sharding
            )
            if bucket_memo is not None:
                bucket_memo["dp"] = (rs, ag, dp_total)
        else:
            rs, ag, dp_total = dp_hit
        if strategy.dp_overlap and bpstage > 0:
            # The gradient reduction overlaps layer-wise with the last
            # microbatch's backward pass (Fig. 2b); the final block's
            # communication is always exposed.  With optimizer sharding, the
            # weight all-gather never overlaps the optimizer step itself but
            # hides behind the next iteration's forward pass (ZeRO prefetch).
            blocks = bpstage * v
            win_bw = t_b_mb * (blocks - 1) / blocks if blocks > 1 else 0.0
            exp_rs, tax_rs = exposed_and_tax(rs, win_bw, dp_net)
            dp_exposed = max(rs / blocks, exp_rs)
            dp_tax = tax_rs
            if ag > 0:
                win_fw = t_f_mb * (blocks - 1) / blocks if blocks > 1 else 0.0
                exp_ag, tax_ag = exposed_and_tax(ag, win_fw, dp_net)
                dp_exposed += max(ag / blocks, exp_ag)
                dp_tax += tax_ag
        else:
            dp_exposed = dp_total

    # ---- optimizer step ---------------------------------------------------------
    optim_time = 0.0
    opt_bytes = ctx.mem.opt_bytes
    if training:
        opt_hit = bucket_memo.get("opt") if bucket_memo is not None else None
        if opt_hit is None:
            traffic = (
                2.0 * opt_bytes
                + bpstage
                * (prof.weight_grad_bytes + prof.weight_bytes)
                / ctx.mem.opt_shard
            )
            use_mem2 = bool(strategy.optimizer_offload and system.mem2 is not None)
            optim_time = optim_step_time(system, opt_bytes, traffic, use_mem2)
            if bucket_memo is not None:
                bucket_memo["opt"] = optim_time
        else:
            optim_time = opt_hit

    # ---- offload traffic, bandwidth requirement, exposure -------------------------
    offload_total = offload_exposed = 0.0
    required_bw = 0.0
    if strategy.offloading and system.mem2 is not None:
        mem2_bw = system.mem2.effective_bandwidth(float("inf"))
        bytes_fw = (prof.stash_bytes if strategy.activation_offload else 0.0) + (
            prof.weight_bytes if strategy.weight_offload else 0.0
        )
        bytes_bw = (
            (prof.stash_bytes if strategy.activation_offload else 0.0)
            + (prof.weight_bytes if strategy.weight_offload else 0.0)
            + (prof.weight_grad_bytes if strategy.optimizer_offload else 0.0)
        )
        win_fw = prof.fw_time + tp_fw_exp  # HBM idles during exposed comm too
        win_bw = prof.bw_time + prof.recompute_time + tp_bw_exp + tp_rc_exp
        # Throttled overlap: only HBM-idle portions of the window hide traffic.
        idle_fw = prof.fw_hbm_idle + tp_fw_exp
        idle_bw = prof.bw_hbm_idle + tp_bw_exp + tp_rc_exp
        if bytes_fw > 0 and win_fw > 0:
            required_bw = max(required_bw, bytes_fw / win_fw)
        if training and bytes_bw > 0 and win_bw > 0:
            required_bw = max(required_bw, bytes_bw / win_bw)
        n_fw = M * bpstage
        n_bw = M * bpstage if training else 0
        offload_total = (n_fw * bytes_fw + n_bw * bytes_bw) / mem2_bw
        offload_exposed = n_fw * max(0.0, bytes_fw / mem2_bw - idle_fw)
        offload_exposed += n_bw * max(0.0, bytes_bw / mem2_bw - idle_bw)

    ctx.comm = CommExposure(
        tp_fw_exp=tp_fw_exp,
        tp_fw_tax=tp_fw_tax,
        tp_bw_exp=tp_bw_exp,
        tp_bw_tax=tp_bw_tax,
        tp_rc_exp=tp_rc_exp,
        tp_rc_tax=tp_rc_tax,
        t_f_mb=t_f_mb,
        t_b_mb=t_b_mb,
        pp_total=pp_total,
        pp_exposed=pp_exposed,
        pp_bubble=pp_bubble,
        dp_total=dp_total,
        dp_exposed=dp_exposed,
        dp_tax=dp_tax,
        optim_time=optim_time,
        offload_total=offload_total,
        offload_exposed=offload_exposed,
        required_bw=required_bw,
    )
    return ctx


# ---------------------------------------------------------------------------
# Stage 5: time assembly
# ---------------------------------------------------------------------------


def stage_assemble(ctx: EvalContext) -> EvalContext:
    """Fold the stage outputs into the final :class:`PerformanceResult`."""
    if ctx.error is not None:
        return ctx
    prof, comm, mem = ctx.prof, ctx.comm, ctx.mem
    M, bpstage, training = ctx.M, ctx.bpstage, ctx.training

    time = TimeBreakdown(
        fw_pass=M * bpstage * prof.fw_time,
        bw_pass=M * bpstage * prof.bw_time if training else 0.0,
        fw_recompute=M * bpstage * prof.recompute_time if training else 0.0,
        optim_step=comm.optim_time,
        pp_bubble=comm.pp_bubble,
        tp_comm_exposed=M
        * bpstage
        * (comm.tp_fw_exp + (comm.tp_bw_exp + comm.tp_rc_exp if training else 0.0)),
        pp_comm_exposed=comm.pp_exposed,
        dp_comm_exposed=comm.dp_exposed,
        offload_exposed=comm.offload_exposed,
        overlap_tax=M
        * bpstage
        * (comm.tp_fw_tax + (comm.tp_bw_tax + comm.tp_rc_tax if training else 0.0))
        + comm.dp_tax,
        tp_comm_total=M
        * bpstage
        * (
            prof.tp_fw_comm
            + (prof.tp_bw_comm + prof.tp_recompute_comm if training else 0.0)
        ),
        pp_comm_total=comm.pp_total,
        dp_comm_total=comm.dp_total,
        offload_total=comm.offload_total,
    )

    useful_flops = (
        (prof.flops_fw + (prof.flops_bw if training else 0.0))
        * ctx.t * ctx.L * M * ctx.d
    )
    peak = ctx.system.processor.matrix_flops * ctx.system.num_procs
    mfu = useful_flops / (time.batch_time * peak) if time.batch_time > 0 else 0.0

    result = PerformanceResult(
        llm_name=ctx.llm.name,
        system_name=ctx.system.name,
        strategy_name=ctx.strategy.short_name(),
        batch=ctx.strategy.batch,
        time=time,
        mem1=mem.mem1_breakdown(),
        offload=OffloadStats(
            used_bytes=mem.tier2_used, required_bandwidth=comm.required_bw
        ),
        mfu=mfu,
    )
    if _DEBUG_CHECK:
        from ..core.consistency import assert_consistent

        assert_consistent(result)
    ctx.result = result
    return ctx
