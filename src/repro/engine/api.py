"""Public entry points of the staged evaluation engine.

Three ways to run the pipeline:

* :func:`evaluate` — one candidate through every stage; the staged
  replacement for (and implementation of) ``repro.core.calculate``.
* :func:`check_feasible` — the fast path: validate + profile + memory plan
  only.  Answers "does this configuration fit?" without touching a network
  or timing formula, returning the same infeasibility reason the full model
  would.
* :func:`evaluate_many` — a batched sweep primitive: groups candidates by
  their block-profile key, profiles each distinct block once, runs the fast
  path on every candidate, and fully evaluates only the survivors.  On
  memory-constrained spaces (where most of the Table-1 space is rejected on
  capacity) this skips the expensive comm/timing stages for the rejected
  majority.
"""

from __future__ import annotations

import logging
from time import perf_counter
from typing import Callable, Iterable, Iterator, Sequence

from ..core.results import PerformanceResult
from ..execution.strategy import ExecutionStrategy, StrategyError
from ..hardware.system import System
from ..llm.config import LLMConfig
from ..obs import MetricsRegistry, PruneStats, Tracer
from ..obs.stats import (
    M_BOUND_EVALS,
    M_BOUND_PRUNED,
    M_BUCKET_HITS,
    M_CANDIDATES,
    M_COLUMNAR_FALLBACK,
    M_COMM_CACHE_HITS,
    M_COMM_CACHE_MISSES,
    M_EVALUATED_FULL,
    M_MEMORY_BUCKETS,
    M_PROFILE_GROUPS,
    M_REJECT_MEMORY,
    M_REJECT_VALIDATE,
    M_SHARED_INFEASIBLE,
    stage_metric,
)
from .bounds import PrunedResult, roofline_lower_bound
from .context import EvalContext, FeasibilityReport, MemoryPlan
from .profile import profile_block, profile_key
from .stages import (
    comm_cache_stats,
    fill_scalars,
    infeasible_result,
    stage_assemble,
    stage_comm,
    stage_memory,
    stage_profile,
    stage_validate,
)

logger = logging.getLogger(__name__)

# Version of the evaluation semantics.  Bump whenever a change makes the
# engine produce different numbers for the same (llm, system, strategy) —
# checkpoint journals embed it in their run key, so a resumed sweep can
# never silently mix results from two model revisions.
ENGINE_VERSION = 1

# The full pipeline, in execution order.  Exposed for documentation and for
# tooling that wants to run/instrument the stages one at a time.
PIPELINE = (stage_validate, stage_profile, stage_memory, stage_comm, stage_assemble)

# The fast path stops after the memory plan: everything needed to decide
# feasibility, nothing priced in seconds.
FAST_PATH = (stage_validate, stage_profile, stage_memory)

# Span/metric names per stage function, e.g. stage_memory -> "memory".
STAGE_SHORT_NAMES = {fn: fn.__name__.removeprefix("stage_") for fn in PIPELINE}

# Metric-name constants are precomputed per stage so the instrumented hot
# path never formats strings.
_STAGE_METRICS = {fn: stage_metric(name) for fn, name in STAGE_SHORT_NAMES.items()}
_M_VALIDATE = stage_metric("validate")
_M_PROFILE = stage_metric("profile")
_M_MEMORY = stage_metric("memory")
_M_COMM = stage_metric("comm")
_M_ASSEMBLE = stage_metric("assemble")

# Below this many candidates the columnar path's array-construction overhead
# outweighs the vectorization win; ``columnar=None`` auto-routes around it.
_COLUMNAR_MIN_BATCH = 32


def _load_batch():
    """Import the columnar engine module (a seam for fallback tests)."""
    from . import batch

    return batch


def _resolve_columnar(
    columnar: bool | None, n: int, mx: MetricsRegistry | None
):
    """Decide the evaluation path: the batch module, or ``None`` for scalar.

    ``columnar=False`` always picks scalar; ``None`` auto-routes (columnar
    for batches of at least ``_COLUMNAR_MIN_BATCH`` candidates); ``True``
    insists.  An unimportable batch module (NumPy below the floor) falls
    back to scalar and counts one ``engine.columnar.fallback``.
    """
    if columnar is False:
        return None
    if columnar is None and n < _COLUMNAR_MIN_BATCH:
        return None
    try:
        return _load_batch()
    except ImportError as err:
        logger.debug("columnar engine unavailable; using scalar path: %s", err)
        if mx is not None:
            mx.inc(M_COLUMNAR_FALLBACK)
        return None


def evaluate(
    llm: LLMConfig,
    system: System,
    strategy: ExecutionStrategy,
    *,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> PerformanceResult:
    """Run the full staged pipeline for one configuration.

    Returns an infeasible :class:`PerformanceResult` (never raises) when the
    strategy violates a constraint or exceeds a memory capacity, so search
    engines can sweep the space without exception handling.  Infeasible
    candidates stop at the stage that rejected them — capacity violations
    never pay for the comm/timing stages.

    ``tracer`` records one span per pipeline stage; ``metrics`` accumulates
    the ``engine.*`` counters and per-stage wall-time histograms.  Both
    default to ``None`` and the uninstrumented path pays only the initial
    branch — instrumentation never changes the arithmetic (the golden-
    equivalence suite holds instrumented results bit-identical).
    """
    ctx = EvalContext(llm, system, strategy)
    if tracer is None and metrics is None:
        for stage in PIPELINE:
            stage(ctx)
            if ctx.error is not None:
                return infeasible_result(ctx)
        return ctx.result

    if metrics is not None:
        metrics.inc(M_CANDIDATES)
        cc0 = comm_cache_stats()
    try:
        for stage in PIPELINE:
            t0 = perf_counter()
            if tracer is not None:
                with tracer.span(STAGE_SHORT_NAMES[stage], cat="engine.stage"):
                    stage(ctx)
            else:
                stage(ctx)
            if metrics is not None:
                metrics.observe(_STAGE_METRICS[stage], perf_counter() - t0)
            if ctx.error is not None:
                if metrics is not None:
                    rejected = (
                        M_REJECT_VALIDATE
                        if stage is stage_validate
                        else M_REJECT_MEMORY
                    )
                    metrics.inc(rejected)
                return infeasible_result(ctx)
        if metrics is not None:
            metrics.inc(M_EVALUATED_FULL)
        return ctx.result
    finally:
        if metrics is not None:
            cc1 = comm_cache_stats()
            metrics.inc(M_COMM_CACHE_HITS, cc1[0] - cc0[0])
            metrics.inc(M_COMM_CACHE_MISSES, cc1[1] - cc0[1])


def check_feasible(
    llm: LLMConfig, system: System, strategy: ExecutionStrategy
) -> FeasibilityReport:
    """The feasibility fast path: validate + profile + memory plan only.

    The returned report carries the infeasibility reason verbatim as the full
    model would produce it, plus the tier-1 memory breakdown whenever the
    memory plan ran (so callers can see how far over capacity a candidate
    lands, or how much headroom a feasible one has).
    """
    ctx = EvalContext(llm, system, strategy)
    stage_validate(ctx)
    if ctx.error is not None:
        return FeasibilityReport(feasible=False, reason=ctx.error, stage="validate")
    stage_profile(ctx)
    stage_memory(ctx)
    if ctx.error is not None:
        return FeasibilityReport(
            feasible=False,
            reason=ctx.error,
            stage="memory",
            mem1=ctx.mem.mem1_breakdown(),
            tier2_bytes=ctx.mem.tier2_used,
        )
    return FeasibilityReport(
        feasible=True,
        mem1=ctx.mem.mem1_breakdown(),
        tier2_bytes=ctx.mem.tier2_used,
    )


def iter_evaluate(
    llm: LLMConfig,
    system: System,
    strategies: Sequence[ExecutionStrategy],
    *,
    prune: bool = True,
    prune_above: float | Callable[[], float] | None = None,
    metrics: MetricsRegistry | None = None,
    columnar: bool | None = None,
) -> Iterator[tuple[int, PerformanceResult]]:
    """Evaluate a candidate list, yielding ``(index, result)`` pairs.

    Results stream in profile-group order (not input order) so sweeps can
    keep running statistics without materializing one result per candidate;
    ``index`` maps each result back to ``strategies``.  See
    :func:`evaluate_many` for the ``prune`` semantics.

    ``prune_above`` engages **bound pruning**: a batch-time threshold in
    seconds (or a zero-argument callable returning one, re-read per
    candidate so searches can tighten it as their running best improves).
    After the feasibility fast path, each memory bucket's roofline lower
    bound (:func:`~repro.engine.bounds.roofline_lower_bound`) is computed
    once; candidates whose bound is ``>= prune_above`` skip the
    comm/assembly stages entirely and yield a shared
    :class:`~repro.engine.bounds.PrunedResult` marker (``feasible=True,
    pruned=True, sample_rate == 0.0``).  Because the bound never exceeds
    the true batch time, a threshold at the caller's k-th-best batch time
    (see :func:`~repro.engine.bounds.prune_threshold_for_rate`) makes
    pruning lossless for top-k selection.  Only the batched path
    (``prune=True``) honors ``prune_above``; constraint-filtered or
    rate-histogram callers should leave it ``None`` since pruned candidates
    carry no timing breakdown.

    With ``metrics`` attached, the ``engine.*`` counters (candidates,
    per-stage rejections, profile groups, memory buckets and their hit
    counts, bounds computed/pruned, comm-kernel cache hits/misses) and
    per-stage wall-time histograms accumulate into the registry.  Timing is
    observed at the granularity the pruned path runs the work: validate per
    candidate, profile per group, memory plan per bucket, comm/assembly per
    survivor.  ``metrics=None`` (the default) costs only untaken branches.

    ``columnar`` selects the struct-of-arrays engine
    (:mod:`repro.engine.batch`) for the pruned path: ``None`` (default)
    auto-routes — columnar for batches of 32+ candidates, scalar below —
    ``True`` insists, ``False`` forces the scalar pipeline.  Outputs,
    stream order, and counters are bit-identical either way (the property
    suite enforces it); the one semantic difference is that a *callable*
    ``prune_above`` is read once per batch instead of per candidate, so a
    dynamically tightening threshold prunes no more than the scalar path
    would.  Per-stage time histograms are observed once per batch stage
    rather than per unit of work.
    """
    mx = metrics
    if not prune:
        # evaluate() does its own comm-cache delta accounting.
        for i, strategy in enumerate(strategies):
            yield i, evaluate(llm, system, strategy, metrics=mx)
        return
    batch_mod = _resolve_columnar(columnar, len(strategies), mx)
    if mx is not None:
        cc0 = comm_cache_stats()
    try:
        if batch_mod is not None:
            yield from _iter_evaluate_columnar(
                llm, system, strategies, prune_above, mx, batch_mod
            )
        else:
            yield from _iter_evaluate_pruned(llm, system, strategies, prune_above, mx)
    finally:
        if mx is not None:
            cc1 = comm_cache_stats()
            mx.inc(M_COMM_CACHE_HITS, cc1[0] - cc0[0])
            mx.inc(M_COMM_CACHE_MISSES, cc1[1] - cc0[1])


def _iter_evaluate_columnar(
    llm: LLMConfig,
    system: System,
    strategies: Sequence[ExecutionStrategy],
    prune_above: float | Callable[[], float] | None,
    mx: MetricsRegistry | None,
    batch_mod,
) -> Iterator[tuple[int, PerformanceResult]]:
    # A callable threshold is resolved once for the whole batch: the batch
    # stages run before any result streams out, so mid-batch tightening could
    # never observe new information anyway.
    threshold = prune_above() if callable(prune_above) else prune_above
    eb = batch_mod.EvalBatch.from_strategies(llm, system, strategies)
    batch_mod.run_batch(eb, prune_above=threshold, metrics=mx)
    yield from batch_mod.iter_results(eb)


def _iter_evaluate_pruned(
    llm: LLMConfig,
    system: System,
    strategies: Sequence[ExecutionStrategy],
    prune_above: float | Callable[[], float] | None,
    mx: MetricsRegistry | None,
) -> Iterator[tuple[int, PerformanceResult]]:
    dynamic = callable(prune_above)

    # Pass 1: validate everything, reject structural violations immediately,
    # and bucket the remainder by block-profile key.
    groups: dict[tuple, list[tuple[int, ExecutionStrategy]]] = {}
    for i, strategy in enumerate(strategies):
        if mx is not None:
            mx.inc(M_CANDIDATES)
            t0 = perf_counter()
        try:
            strategy.validate(llm, system)
        except StrategyError as err:
            if mx is not None:
                mx.observe(_M_VALIDATE, perf_counter() - t0)
                mx.inc(M_REJECT_VALIDATE)
            ctx = EvalContext(llm, system, strategy, error=str(err))
            yield i, infeasible_result(ctx)
            continue
        if mx is not None:
            mx.observe(_M_VALIDATE, perf_counter() - t0)
        groups.setdefault(profile_key(strategy), []).append((i, strategy))

    # Pass 2: one profile per group; fast path per candidate; full pipeline
    # only for the survivors.  Within a group, candidates that differ only in
    # overlap knobs (tp_overlap, dp_overlap, pp_rs_ag) read the exact same
    # memory plan, so plans are computed once per bucket of memory-relevant
    # fields — and a capacity-rejected bucket shares one frozen result (every
    # field of it, including the reason string, is bucket-constant, so the
    # rejected majority of a sweep never even allocates a context).  The
    # roofline lower bound is bucket-constant too (bucket members differ only
    # in overlap knobs, which the bound excludes), so with a ``prune_above``
    # threshold it is computed once per feasible bucket and candidates it
    # disqualifies share one PrunedResult without allocating a context.
    for key, members in groups.items():
        if mx is not None:
            mx.inc(M_PROFILE_GROUPS)
            t0 = perf_counter()
        prof = profile_block(llm, system, *key)
        if mx is not None:
            mx.observe(_M_PROFILE, perf_counter() - t0)
        group_memo: dict = {}
        buckets: dict[
            tuple,
            tuple[MemoryPlan | None, PerformanceResult | None, dict, float | None],
        ] = {}
        for i, strategy in members:
            mkey = (
                strategy.pipeline_par, strategy.data_par, strategy.batch,
                strategy.pp_interleaving, strategy.pp_1f1b,
                strategy.optimizer_sharding, strategy.weight_offload,
                strategy.activation_offload, strategy.optimizer_offload,
                strategy.training,
            )
            hit = buckets.get(mkey)
            if hit is None:
                if mx is not None:
                    mx.inc(M_MEMORY_BUCKETS)
                    t0 = perf_counter()
                ctx = EvalContext(llm, system, strategy)
                fill_scalars(ctx)
                ctx.prof = prof
                stage_memory(ctx)
                if mx is not None:
                    mx.observe(_M_MEMORY, perf_counter() - t0)
                if ctx.error is not None:
                    if mx is not None:
                        mx.inc(M_REJECT_MEMORY)
                    rejected = infeasible_result(ctx)
                    buckets[mkey] = (None, rejected, {}, None)
                    yield i, rejected
                    continue
                bucket_memo: dict = {}
                bound: float | None = None
                if prune_above is not None:
                    bound = roofline_lower_bound(ctx)
                    if mx is not None:
                        mx.inc(M_BOUND_EVALS)
                buckets[mkey] = (ctx.mem, None, bucket_memo, bound)
            else:
                plan, rejected, bucket_memo, bound = hit
                if mx is not None:
                    mx.inc(M_BUCKET_HITS)
                if rejected is not None:
                    if mx is not None:
                        mx.inc(M_REJECT_MEMORY)
                        mx.inc(M_SHARED_INFEASIBLE)
                    yield i, rejected
                    continue
                ctx = None
            if bound is not None and bound >= (
                prune_above() if dynamic else prune_above
            ):
                if mx is not None:
                    mx.inc(M_BOUND_PRUNED)
                pruned = bucket_memo.get("pruned_result")
                if pruned is None:
                    pruned = PrunedResult(batch=strategy.batch, lower_bound=bound)
                    bucket_memo["pruned_result"] = pruned
                yield i, pruned
                continue
            if ctx is None:
                ctx = EvalContext(llm, system, strategy)
                fill_scalars(ctx)
                ctx.prof = prof
                ctx.mem = plan
            if mx is None:
                stage_comm(ctx, group_memo, bucket_memo)
                stage_assemble(ctx)
            else:
                t0 = perf_counter()
                stage_comm(ctx, group_memo, bucket_memo)
                t1 = perf_counter()
                stage_assemble(ctx)
                mx.observe(_M_ASSEMBLE, perf_counter() - t1)
                mx.observe(_M_COMM, t1 - t0)
                mx.inc(M_EVALUATED_FULL)
            yield i, ctx.result


def evaluate_many(
    llm: LLMConfig,
    system: System,
    strategies: Iterable[ExecutionStrategy],
    *,
    prune: bool = True,
    prune_above: float | Callable[[], float] | None = None,
    metrics: MetricsRegistry | None = None,
    stats: bool = False,
    columnar: bool | None = None,
) -> list[PerformanceResult] | tuple[list[PerformanceResult], PruneStats]:
    """Evaluate many candidates; results align with the input order.

    With ``prune=True`` (the default) candidates are grouped by their
    block-profile key and the feasibility fast path runs first: capacity
    rejections never reach the comm/timing stages, and each distinct block is
    profiled exactly once per group rather than once per candidate.  With
    ``prune=False`` every candidate runs through :func:`evaluate`
    individually — same results, no batching.

    Outputs are identical to mapping :func:`evaluate` (and therefore the
    legacy ``calculate``) over the list, including infeasibility reasons —
    except under an explicit ``prune_above`` batch-time threshold, where
    memory-feasible candidates whose roofline lower bound already exceeds
    the threshold come back as lightweight
    :class:`~repro.engine.bounds.PrunedResult` markers (see
    :func:`iter_evaluate`).

    ``stats=True`` returns ``(results, PruneStats)`` instead of discarding
    the pruning bookkeeping: how many profile groups formed, how many
    candidates shared a memory bucket, and how many were short-circuited by
    a shared rejection.  ``metrics`` accumulates into a caller-owned
    registry (e.g. one shared across a hill-climb); pass both to get the
    stats of this call while also feeding the larger aggregate.

    ``columnar`` selects the struct-of-arrays batch engine for the pruned
    path (see :func:`iter_evaluate`): ``None`` auto-routes by batch size,
    ``False`` forces the scalar pipeline, ``True`` insists on columnar.
    Results are bit-identical either way.
    """
    strategies = list(strategies)
    # With stats requested, accumulate into a fresh registry so the returned
    # PruneStats covers exactly this call, then fold into the caller's.
    reg = MetricsRegistry() if stats else metrics
    results: list[PerformanceResult | None] = [None] * len(strategies)
    for i, result in iter_evaluate(
        llm, system, strategies, prune=prune, prune_above=prune_above, metrics=reg,
        columnar=columnar,
    ):
        results[i] = result
    if stats:
        if metrics is not None:
            metrics.merge(reg.snapshot())
        return results, PruneStats.from_metrics(reg)
    return results
