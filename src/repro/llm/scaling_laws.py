"""Model-family generation and compute-optimal token budgets.

Codesign sweeps need families of LLM configurations at arbitrary scales, not
just the named presets, plus a defensible token budget per scale.  This
module provides:

* :func:`make_config` — a Megatron-shaped configuration for a target
  parameter count, following the aspect-ratio conventions of the GPT-3 /
  Megatron ladder (hidden grows as depth·128·heads-per-block heuristics);
* :func:`chinchilla_tokens` — the compute-optimal ~20 tokens/parameter rule
  (Hoffmann et al. '22), used by the paper's cited Chinchilla model;
* :func:`model_ladder` — a geometric ladder of configurations for scaling
  studies.
"""

from __future__ import annotations

import math

from .config import LLMConfig

# Published (params -> (hidden, heads, blocks)) anchors of the GPT/Megatron
# ladder, used to interpolate sensible aspect ratios.
_ANCHORS = (
    (1.5e9, 1600, 25, 48),
    (22e9, 6144, 64, 48),
    (175e9, 12288, 96, 96),
    (530e9, 20480, 128, 105),
    (1.0e12, 25600, 160, 128),
)

TOKENS_PER_PARAMETER = 20.0  # the Chinchilla compute-optimal ratio


def chinchilla_tokens(parameters: float) -> float:
    """Compute-optimal training tokens for a model size (~20 per parameter)."""
    if parameters <= 0:
        raise ValueError("parameters must be positive")
    return TOKENS_PER_PARAMETER * parameters


def make_config(
    target_parameters: float,
    *,
    seq_size: int = 2048,
    name: str | None = None,
    head_size: int = 128,
) -> LLMConfig:
    """A Megatron-shaped configuration of roughly ``target_parameters``.

    Interpolates depth and width between the published ladder anchors, snaps
    the hidden size to a multiple of ``head_size`` (so every power-of-two
    tensor-parallel degree up to the head count divides evenly), then picks
    the block count that lands closest to the target.

    The result is within a few percent of the target for any size in
    [1e8, 5e12].
    """
    if target_parameters <= 0:
        raise ValueError("target_parameters must be positive")
    if head_size < 1:
        raise ValueError("head_size must be >= 1")

    # Interpolate hidden size in log-space between the anchors.
    logp = math.log10(target_parameters)
    lo = _ANCHORS[0]
    hi = _ANCHORS[-1]
    for a, b in zip(_ANCHORS, _ANCHORS[1:]):
        if a[0] <= target_parameters <= b[0]:
            lo, hi = a, b
            break
    else:
        if target_parameters < _ANCHORS[0][0]:
            lo, hi = _ANCHORS[0], _ANCHORS[1]
        else:
            lo, hi = _ANCHORS[-2], _ANCHORS[-1]
    frac = (logp - math.log10(lo[0])) / (math.log10(hi[0]) - math.log10(lo[0]))
    hidden_raw = lo[1] * (hi[1] / lo[1]) ** frac
    # Snap to a multiple-of-8 head count so common power-of-two TP degrees
    # divide the shape evenly (the §5.2 mapping-friendliness concern).
    heads = max(8, round(hidden_raw / head_size / 8) * 8)
    hidden = heads * head_size

    # Choose the depth that best matches the target count.
    per_block = 12 * hidden * hidden + 17 * hidden
    embed = 51200 * hidden + seq_size * hidden + 2 * hidden
    blocks = max(1, round((target_parameters - embed) / per_block))
    cfg_name = name or f"auto-{target_parameters / 1e9:.3g}b"
    return LLMConfig(
        name=cfg_name,
        hidden=hidden,
        attn_heads=heads,
        seq_size=seq_size,
        num_blocks=blocks,
    )


def model_ladder(
    min_parameters: float,
    max_parameters: float,
    *,
    steps: int = 5,
    seq_size: int = 2048,
) -> list[LLMConfig]:
    """A geometric ladder of configurations across a parameter range."""
    if steps < 2:
        raise ValueError("steps must be >= 2")
    if not 0 < min_parameters < max_parameters:
        raise ValueError("need 0 < min_parameters < max_parameters")
    ratio = (max_parameters / min_parameters) ** (1.0 / (steps - 1))
    return [
        make_config(min_parameters * ratio**i, seq_size=seq_size)
        for i in range(steps)
    ]
