"""Layer-level decomposition of a transformer block (paper Fig. 1).

Each :class:`Layer` carries the analytical quantities the performance model
needs: forward/backward FLOPs, forward/backward memory traffic, persistent
footprints (weights, weight gradients, optimizer state) and the activation
bytes that must be *stashed* between the forward and backward pass.

The stash accounting follows Korthikanti et al. '22 ("Reducing Activation
Recomputation in Large Transformer Models"), which the paper builds on: with
no recomputation, one block stashes ``s*b*h*(34 + 5*a*s/h)`` bytes at fp16
(tensor parallelism and sequence parallelism divide the terms they shard).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Engine(enum.Enum):
    """Which processor datapath executes a layer (paper §2.2)."""

    MATRIX = "matrix"
    VECTOR = "vector"


class Role(enum.Enum):
    """Functional role, used by recompute and fusion rules."""

    NORM = "norm"
    GEMM = "gemm"
    BATCH_MM = "batch_mm"
    SOFTMAX = "softmax"
    DROPOUT = "dropout"
    ACTIVATION = "activation"  # GeLU
    ADD = "add"  # residual connection


# FLOPs charged per element for the vector (element-wise) layers.
_VECTOR_FLOPS_PER_ELEMENT: dict[Role, float] = {
    Role.NORM: 7.0,  # mean, variance, normalize, scale+shift
    Role.SOFTMAX: 5.0,  # max, sub, exp, sum, div
    Role.DROPOUT: 2.0,  # rng compare + mask multiply
    Role.ACTIVATION: 8.0,  # tanh-approximated GeLU
    Role.ADD: 1.0,
}


@dataclass(frozen=True)
class Layer:
    """One operation inside a transformer block.

    All sizes are **bytes per microbatch per block on one processor** (i.e.
    already divided by the tensor-parallel degree where the op is sharded).

    Attributes:
        name: identifier such as ``"attn_qkv_gemm"``.
        engine: matrix or vector datapath.
        role: functional role, drives recompute/fusion interactions.
        flops_fw: forward-pass FLOPs.
        flops_bw: backward-pass FLOPs (GEMMs: input-grad + weight-grad).
        traffic_fw: forward memory traffic (activations in/out + weights).
        traffic_bw: backward memory traffic.
        weight_bytes: persistent weight footprint.
        weight_grad_bytes: persistent gradient footprint (same dtype).
        optimizer_bytes: Adam state (fp32 master + two moments).
        stash_bytes: activation bytes kept from forward for the backward pass.
        output_bytes: size of the layer's output tensor (used for transient
            activation-gradient working-set accounting).
        attn_only: True for the layers re-executed under *selective* (attention
            -only) recomputation.
        fusible: True if activation fusion removes this layer's stash and
            input traffic (element-wise ops fused into their producer GEMM).
    """

    name: str
    engine: Engine
    role: Role
    flops_fw: float
    flops_bw: float
    traffic_fw: float
    traffic_bw: float
    weight_bytes: float = 0.0
    weight_grad_bytes: float = 0.0
    optimizer_bytes: float = 0.0
    stash_bytes: float = 0.0
    output_bytes: float = 0.0
    attn_only: bool = False
    fusible: bool = False

    def __post_init__(self) -> None:
        for attr in (
            "flops_fw",
            "flops_bw",
            "traffic_fw",
            "traffic_bw",
            "weight_bytes",
            "weight_grad_bytes",
            "optimizer_bytes",
            "stash_bytes",
            "output_bytes",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"layer {self.name}: {attr} must be non-negative")


def gemm_layer(
    name: str,
    m: int,
    n: int,
    k: int,
    *,
    bytes_per_element: int,
    batch: int = 1,
    bias: bool = True,
    stash_bytes: float = 0.0,
    attn_only: bool = False,
    weights: bool = True,
) -> Layer:
    """Build a (possibly batched) GEMM layer ``[m,k] x [k,n] -> [m,n]``.

    ``batch`` models batched matrix multiplies (one GEMM per attention head);
    batched MMs carry no weights (both operands are activations).
    """
    e = bytes_per_element
    flops = 2.0 * batch * m * n * k
    in_bytes = batch * (m * k + k * n) * e
    out_bytes = batch * m * n * e
    w_elems = (k * n + (n if bias else 0)) if weights else 0
    w_bytes = w_elems * e
    # Backward: input-grad GEMM + (for weighted layers) weight-grad GEMM.
    flops_bw = flops * (2.0 if weights else 2.0)
    traffic_fw = in_bytes + out_bytes + (w_bytes if weights else 0.0)
    # bw reads the output grad twice (dgrad, wgrad), the stashed input and the
    # weights; writes input grad and weight grads.
    traffic_bw = 2 * out_bytes + in_bytes + 2.0 * w_bytes
    return Layer(
        name=name,
        engine=Engine.MATRIX,
        role=Role.BATCH_MM if batch > 1 else Role.GEMM,
        flops_fw=flops,
        flops_bw=flops_bw,
        traffic_fw=traffic_fw,
        traffic_bw=traffic_bw,
        weight_bytes=w_bytes,
        weight_grad_bytes=w_bytes,
        optimizer_bytes=w_elems * 12.0,  # fp32 master + Adam m, v
        stash_bytes=stash_bytes,
        output_bytes=out_bytes,
        attn_only=attn_only,
    )


def elementwise_layer(
    name: str,
    role: Role,
    elements: float,
    *,
    bytes_per_element: int,
    inputs: int = 1,
    weight_elements: float = 0.0,
    stash_bytes: float = 0.0,
    attn_only: bool = False,
    fusible: bool = False,
) -> Layer:
    """Build an element-wise (vector-engine) layer over ``elements`` values."""
    e = bytes_per_element
    flops = _VECTOR_FLOPS_PER_ELEMENT[role] * elements
    traffic_fw = (inputs + 1) * elements * e + weight_elements * e
    # Backward of element-wise ops: read output grad + stashed context, write
    # input grad(s); roughly symmetric with forward.
    traffic_bw = (inputs + 1) * elements * e + 2.0 * weight_elements * e
    return Layer(
        name=name,
        engine=Engine.VECTOR,
        role=role,
        flops_fw=flops,
        flops_bw=flops,
        traffic_fw=traffic_fw,
        traffic_bw=traffic_bw,
        weight_bytes=weight_elements * e,
        weight_grad_bytes=weight_elements * e,
        optimizer_bytes=weight_elements * 12.0,
        stash_bytes=stash_bytes,
        output_bytes=elements * e,
        attn_only=attn_only,
        fusible=fusible,
    )
