"""LLM application configuration (paper §2.1).

The model structure follows the Megatron framework: a stack of identical
transformer blocks (Fig. 1), each a multi-head attention block followed by an
MLP block, with layer normalization, dropout and residual connections.  The
hyperparameters below fully determine the compute, communication and memory
footprint analyzed by the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator


@dataclass(frozen=True)
class LLMConfig:
    """Hyperparameters of a transformer-based LLM.

    Attributes:
        name: human-readable identifier, e.g. ``"gpt3-175b"``.
        hidden: embedding / hidden dimension (``h``).
        feedforward: MLP intermediate dimension; Megatron uses ``4 * hidden``.
        attn_heads: number of attention heads (``a``); must divide ``hidden``.
        seq_size: input sequence length in tokens (``s``).
        num_blocks: number of transformer blocks (``L``).
        vocab_size: vocabulary size used for the embedding / LM head;
            only affects total parameter counts reported for context.
        bits_per_element: numeric precision of activations/weights during
            training (16 for fp16/bf16 mixed precision, as in Megatron).
    """

    name: str
    hidden: int
    attn_heads: int
    seq_size: int
    num_blocks: int
    feedforward: int = 0
    vocab_size: int = 51200
    bits_per_element: int = 16

    def __post_init__(self) -> None:
        if self.hidden <= 0 or self.attn_heads <= 0:
            raise ValueError(f"{self.name}: hidden and attn_heads must be positive")
        if self.seq_size <= 0 or self.num_blocks <= 0:
            raise ValueError(f"{self.name}: seq_size and num_blocks must be positive")
        if self.hidden % self.attn_heads != 0:
            raise ValueError(
                f"{self.name}: hidden ({self.hidden}) must be divisible by "
                f"attn_heads ({self.attn_heads})"
            )
        if self.feedforward == 0:
            object.__setattr__(self, "feedforward", 4 * self.hidden)
        if self.bits_per_element not in (8, 16, 32):
            raise ValueError(f"{self.name}: unsupported precision {self.bits_per_element}")

    @property
    def attn_size(self) -> int:
        """Per-head attention dimension (``hidden / attn_heads``)."""
        return self.hidden // self.attn_heads

    @property
    def bytes_per_element(self) -> int:
        return self.bits_per_element // 8

    @property
    def block_parameters(self) -> int:
        """Weight + bias + layernorm parameters of one transformer block.

        Attention: QKV projection ``h x 3h`` (+3h bias), output projection
        ``h x h`` (+h bias).  MLP: ``h x ff`` (+ff) and ``ff x h`` (+h).
        Two LayerNorms contribute ``2 * 2h``.
        """
        h, f = self.hidden, self.feedforward
        attn = h * 3 * h + 3 * h + h * h + h
        mlp = h * f + f + f * h + h
        norms = 4 * h
        return attn + mlp + norms

    @property
    def embedding_parameters(self) -> int:
        """Token embedding table (shared with the LM head in Megatron/GPT)."""
        return self.vocab_size * self.hidden + self.seq_size * self.hidden

    @property
    def total_parameters(self) -> int:
        """Full model parameter count (blocks + embeddings + final norm)."""
        return self.num_blocks * self.block_parameters + self.embedding_parameters + 2 * self.hidden

    def with_seq(self, seq_size: int) -> "LLMConfig":
        """Return a copy with a different sequence length."""
        return replace(self, seq_size=seq_size)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "hidden": self.hidden,
            "feedforward": self.feedforward,
            "attn_heads": self.attn_heads,
            "seq_size": self.seq_size,
            "num_blocks": self.num_blocks,
            "vocab_size": self.vocab_size,
            "bits_per_element": self.bits_per_element,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LLMConfig":
        return cls(**data)


# ---------------------------------------------------------------------------
# Presets — sizes follow the papers cited in the evaluation:
#   Megatron-22B/175B/530B/1T per Korthikanti et al. '22 and Narayanan et al.
#   '21 (the validation configurations of Table 2 and studies of §§4-7).
# ---------------------------------------------------------------------------

_PRESETS: dict[str, LLMConfig] = {}


def _register(cfg: LLMConfig) -> LLMConfig:
    _PRESETS[cfg.name] = cfg
    return cfg


MEGATRON_22B = _register(
    LLMConfig(name="megatron-22b", hidden=6144, attn_heads=64, seq_size=2048, num_blocks=48)
)
GPT3_175B = _register(
    LLMConfig(name="gpt3-175b", hidden=12288, attn_heads=96, seq_size=2048, num_blocks=96)
)
TURING_530B = _register(
    LLMConfig(name="turing-530b", hidden=20480, attn_heads=128, seq_size=2048, num_blocks=105)
)
MEGATRON_1T = _register(
    LLMConfig(name="megatron-1t", hidden=25600, attn_heads=160, seq_size=2048, num_blocks=128)
)
CHINCHILLA_70B = _register(
    LLMConfig(name="chinchilla-70b", hidden=8192, attn_heads=64, seq_size=2048, num_blocks=80)
)
LLAMA2_70B = _register(
    LLMConfig(name="llama2-70b", hidden=8192, attn_heads=64, seq_size=4096, num_blocks=80)
)
GPT2_1P5B = _register(
    LLMConfig(name="gpt2-1.5b", hidden=1600, attn_heads=25, seq_size=1024, num_blocks=48)
)
# PaLM-540B (paper §1: 2,572 zettaFLOP, >8M TPU-hours).  PaLM uses multi-query
# attention and SwiGLU; we model the standard-transformer equivalent with the
# published width/depth, which preserves the compute/memory scale.
PALM_540B = _register(
    LLMConfig(name="palm-540b", hidden=18432, attn_heads=48, seq_size=2048,
              num_blocks=118, vocab_size=256000)
)
BLOOM_176B = _register(
    LLMConfig(name="bloom-176b", hidden=14336, attn_heads=112, seq_size=2048,
              num_blocks=70, vocab_size=250880)
)
TINY_TEST = _register(
    LLMConfig(name="tiny-test", hidden=512, attn_heads=8, seq_size=256, num_blocks=8)
)


def get_preset(name: str) -> LLMConfig:
    """Look up a named preset; raises ``KeyError`` with the known names."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown LLM preset {name!r}; known: {sorted(_PRESETS)}") from None


def iter_presets() -> Iterator[LLMConfig]:
    """Iterate over all registered LLM presets."""
    return iter(_PRESETS.values())
