"""Transformer-block construction (paper Fig. 1) under a sharding strategy.

:func:`build_block` lays out the full layer sequence of one transformer block
— attention (LN, QKV GEMM, QK^T, softmax, dropout, AV, output GEMM, dropout,
residual) followed by the MLP (LN, GEMM, GeLU, GEMM, dropout, residual) — with
every analytical quantity already sharded for a given tensor-parallel degree
and sequence-parallelism setting.

The block also records the tensor-parallel communication events Megatron
issues around it: two all-reduces per pass without sequence parallelism, or
reduce-scatter + all-gather pairs with it (same ring traffic), plus the extra
backward all-gather of the "TP redo for SP" optimization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .config import LLMConfig
from .layers import Layer, Role, elementwise_layer, gemm_layer


@dataclass(frozen=True)
class Collective:
    """One communication event on the tensor-parallel network.

    ``group`` is the participating rank count; ``None`` means the whole
    tensor-parallel group (2-D grids communicate along one grid dimension,
    i.e. over sqrt(t) ranks).
    """

    op: str  # 'all_reduce' | 'reduce_scatter' | 'all_gather' | 'p2p'
    nbytes: float
    group: int | None = None

    def __post_init__(self) -> None:
        if self.op not in ("all_reduce", "reduce_scatter", "all_gather", "p2p"):
            raise ValueError(f"unknown collective op {self.op!r}")
        if self.nbytes < 0:
            raise ValueError("collective size must be non-negative")
        if self.group is not None and self.group < 1:
            raise ValueError("collective group must be >= 1")


@dataclass(frozen=True)
class TransformerBlock:
    """One transformer block's layers plus its communication schedule.

    All per-layer quantities are per **microbatch** on one processor.
    """

    layers: tuple[Layer, ...]
    input_bytes: float  # block input activation (stash under full recompute)
    tp_comm_fw: tuple[Collective, ...]
    tp_comm_bw: tuple[Collective, ...]
    pp_activation_bytes: float  # point-to-point tensor between pipeline stages

    # -- aggregations --------------------------------------------------------

    def flops_fw(self) -> float:
        return sum(l.flops_fw for l in self.layers)

    def flops_bw(self) -> float:
        return sum(l.flops_bw for l in self.layers)

    def weight_bytes(self) -> float:
        return sum(l.weight_bytes for l in self.layers)

    def weight_grad_bytes(self) -> float:
        return sum(l.weight_grad_bytes for l in self.layers)

    def optimizer_bytes(self) -> float:
        return sum(l.optimizer_bytes for l in self.layers)

    def stash_bytes(self, recompute: str) -> float:
        """Activation bytes stashed per microbatch under a recompute mode.

        ``"none"``   — everything is stashed (34*s*b*h + 5*a*s^2*b at fp16).
        ``"attn_only"`` — the attention-core tensors (softmax output, attention
        dropout mask/output) are recomputed instead of stashed.
        ``"full"``   — only the block input is stashed.
        """
        if recompute not in ("none", "attn_only", "full"):
            raise ValueError(f"unknown recompute mode {recompute!r}")
        if recompute == "full":
            return self.input_bytes
        total = 0.0
        for l in self.layers:
            if recompute == "attn_only" and l.attn_only and l.role in (
                Role.SOFTMAX,
                Role.DROPOUT,
            ):
                continue
            total += l.stash_bytes
        return total

    def recompute_flops(self, recompute: str) -> float:
        """Extra forward FLOPs replayed during the backward pass."""
        if recompute == "none":
            return 0.0
        if recompute == "attn_only":
            return sum(l.flops_fw for l in self.layers if l.attn_only)
        if recompute == "full":
            return self.flops_fw()
        raise ValueError(f"unknown recompute mode {recompute!r}")

    def recompute_traffic(self, recompute: str) -> float:
        if recompute == "none":
            return 0.0
        if recompute == "attn_only":
            return sum(l.traffic_fw for l in self.layers if l.attn_only)
        if recompute == "full":
            return sum(l.traffic_fw for l in self.layers)
        raise ValueError(f"unknown recompute mode {recompute!r}")

    def max_output_bytes(self) -> float:
        """Largest transient tensor — the activation-gradient working set."""
        return max(l.output_bytes for l in self.layers)


def build_block(
    cfg: LLMConfig,
    *,
    microbatch: int,
    tensor_par: int,
    seq_par: bool = False,
    fused_activations: bool = False,
    tp_redo_sp: bool = False,
    tp_mode: str = "1d",
) -> TransformerBlock:
    """Construct one sharded transformer block.

    Args:
        cfg: the LLM hyperparameters.
        microbatch: microbatch size ``b`` (samples per pipeline slot).
        tensor_par: tensor-parallel degree ``t``; must divide ``attn_heads``,
            ``hidden`` and ``feedforward``.
        seq_par: enable Megatron sequence parallelism — shards the residual
            stream (layernorms, dropouts, residual adds) over ``t``.
        fused_activations: fuse element-wise layers into their producer GEMMs,
            removing their input traffic and duplicate stash copies.
        tp_redo_sp: with sequence parallelism, re-all-gather stashed (sharded)
            activations in the backward pass (adds one AG per block).
        tp_mode: ``"1d"`` is Megatron's column/row split (two all-reduces per
            pass); ``"2d"`` distributes each GEMM over a sqrt(t) x sqrt(t)
            grid (Optimus/SUMMA style, paper §6 ref [35]) — per-GEMM
            collectives shrink to ``1/sqrt(t)`` of the residual stream and
            activations shard fully, at the cost of two collectives per GEMM.

    Raises:
        ValueError: if the shape is not evenly divisible by ``tensor_par``,
            or ``tp_mode="2d"`` is combined with ``seq_par`` / a non-square
            ``tensor_par``.
    """
    h, f, a, s = cfg.hidden, cfg.feedforward, cfg.attn_heads, cfg.seq_size
    b, t, e = microbatch, tensor_par, cfg.bytes_per_element
    if b <= 0:
        raise ValueError(f"microbatch must be positive, got {b}")
    if t <= 0:
        raise ValueError(f"tensor_par must be positive, got {t}")
    if a % t or h % t or f % t:
        raise ValueError(
            f"tensor_par={t} must divide attn_heads={a}, hidden={h}, feedforward={f}"
        )
    if tp_mode not in ("1d", "2d"):
        raise ValueError(f"unknown tp_mode {tp_mode!r}")
    grid = 1
    if tp_mode == "2d":
        if seq_par:
            raise ValueError("2d tensor parallelism shards sequences itself; "
                             "it cannot combine with seq_par")
        grid = math.isqrt(t)
        if t > 1 and grid * grid != t:
            raise ValueError(f"2d tensor parallelism needs a square degree, got {t}")

    # Element counts for the residual-stream (non-TP-sharded) element-wise
    # layers; sequence parallelism (or the 2-D grid) shards these over t.
    resid_elems = b * s * h / (t if (seq_par or tp_mode == "2d") else 1)
    # With SP (or a 2-D grid) every stash tensor is kept in sharded form
    # (re-gathered in the backward pass), dividing all stash terms by t
    # (Korthikanti '22 §5; Xu et al. Optimus).
    stash_div = t if (seq_par or tp_mode == "2d") else 1.0

    bsh = b * s * h
    heads_local = a // t
    layers: list[Layer] = []

    def ew(name, role, elems, **kw):
        layers.append(
            elementwise_layer(name, role, elems, bytes_per_element=e, **kw)
        )

    # ---- attention ----------------------------------------------------------
    ew(
        "attn_ln",
        Role.NORM,
        resid_elems,
        weight_elements=2 * h,
        stash_bytes=bsh * e / stash_div,
    )
    layers.append(
        gemm_layer(
            "attn_qkv_gemm",
            b * s,
            3 * h // t,
            h,
            bytes_per_element=e,
            stash_bytes=bsh * e / stash_div,
        )
    )
    layers.append(
        gemm_layer(
            "attn_qk_bmm",
            s,
            s,
            h // a,
            batch=b * heads_local,
            bytes_per_element=e,
            weights=False,
            bias=False,
            stash_bytes=2 * bsh * e / t,  # Q and K
            attn_only=True,
        )
    )
    attn_score_elems = b * heads_local * s * s
    ew(
        "attn_softmax",
        Role.SOFTMAX,
        attn_score_elems,
        stash_bytes=attn_score_elems * e,
        attn_only=True,
    )
    ew(
        "attn_dropout",
        Role.DROPOUT,
        attn_score_elems,
        stash_bytes=attn_score_elems * (1 + e),  # 1-byte mask + output copy
        attn_only=True,
        fusible=True,
    )
    layers.append(
        gemm_layer(
            "attn_av_bmm",
            s,
            h // a,
            s,
            batch=b * heads_local,
            bytes_per_element=e,
            weights=False,
            bias=False,
            stash_bytes=bsh * e / t,  # V
            attn_only=True,
        )
    )
    layers.append(
        gemm_layer(
            "attn_out_gemm",
            b * s,
            h,
            h // t,
            bytes_per_element=e,
            stash_bytes=bsh * e / t,
        )
    )
    ew(
        "attn_out_dropout",
        Role.DROPOUT,
        resid_elems,
        stash_bytes=bsh / stash_div,  # 1-byte mask
        fusible=True,
    )
    ew("attn_residual", Role.ADD, resid_elems, inputs=2)

    # ---- MLP ----------------------------------------------------------------
    ew(
        "mlp_ln",
        Role.NORM,
        resid_elems,
        weight_elements=2 * h,
        stash_bytes=bsh * e / stash_div,
    )
    layers.append(
        gemm_layer(
            "mlp_fc1_gemm",
            b * s,
            f // t,
            h,
            bytes_per_element=e,
            stash_bytes=bsh * e / stash_div,
        )
    )
    mlp_inner_elems = b * s * f / t
    ew(
        "mlp_gelu",
        Role.ACTIVATION,
        mlp_inner_elems,
        stash_bytes=mlp_inner_elems * e,
        fusible=True,
    )
    layers.append(
        gemm_layer(
            "mlp_fc2_gemm",
            b * s,
            h,
            f // t,
            bytes_per_element=e,
            stash_bytes=mlp_inner_elems * e,
        )
    )
    ew(
        "mlp_dropout",
        Role.DROPOUT,
        resid_elems,
        stash_bytes=bsh / stash_div,
        fusible=True,
    )
    ew("mlp_residual", Role.ADD, resid_elems, inputs=2)

    if fused_activations:
        layers = [_fuse(l) for l in layers]

    # ---- tensor-parallel communication schedule -----------------------------
    ar_bytes = bsh * e
    if t == 1:
        fw_comm: tuple[Collective, ...] = ()
        bw_comm: tuple[Collective, ...] = ()
    elif tp_mode == "2d":
        # SUMMA-style grid distribution: every weight GEMM gathers a row of
        # its activation operand AND a column of its weight operand along one
        # grid dimension.  Moving weight tiles is 2-D's hidden cost — at
        # small grids (or small microbatches) it outweighs the 1/sqrt(t)
        # activation saving, reproducing the paper's §6 observation that
        # multi-dimensional distribution only wins at larger TP degrees.
        gemm_inputs = (bsh * e, bsh * e, bsh * e, b * s * f * e)  # qkv/out/fc1/fc2
        gemm_weights = (3 * h * h * e, h * h * e, h * f * e, f * h * e)
        events = []
        for act, w in zip(gemm_inputs, gemm_weights):
            events.append(Collective("all_gather", act / grid, group=grid))
            events.append(Collective("all_gather", w / grid, group=grid))
        fw_comm = tuple(events)
        bw_comm = tuple(events)
    elif seq_par:
        fw_comm = (
            Collective("all_gather", ar_bytes),  # before QKV GEMM
            Collective("reduce_scatter", ar_bytes),  # after out projection
            Collective("all_gather", ar_bytes),  # before MLP fc1
            Collective("reduce_scatter", ar_bytes),  # after MLP fc2
        )
        bw = [
            Collective("reduce_scatter", ar_bytes),
            Collective("all_gather", ar_bytes),
            Collective("reduce_scatter", ar_bytes),
            Collective("all_gather", ar_bytes),
        ]
        if tp_redo_sp:
            bw.append(Collective("all_gather", ar_bytes))
        bw_comm = tuple(bw)
    else:
        fw_comm = (
            Collective("all_reduce", ar_bytes),
            Collective("all_reduce", ar_bytes),
        )
        bw_comm = (
            Collective("all_reduce", ar_bytes),
            Collective("all_reduce", ar_bytes),
        )

    # Pipeline point-to-point tensor: the residual stream, sharded over t when
    # sequence parallelism (or the 2-D grid) keeps it scattered ("PP RS+AG"
    # handles re-gather).
    pp_bytes = bsh * e / (t if (seq_par or tp_mode == "2d") else 1)

    return TransformerBlock(
        layers=tuple(layers),
        input_bytes=bsh * e / stash_div,
        tp_comm_fw=fw_comm,
        tp_comm_bw=bw_comm,
        pp_activation_bytes=pp_bytes,
    )


def _fuse(layer: Layer) -> Layer:
    """Apply activation fusion: fused element-wise ops stream out of their
    producer GEMM, so they re-read no input and keep only a 1-byte mask (for
    dropouts) or nothing (GeLU output recomputed in the fused backward)."""
    if not layer.fusible:
        return layer
    if layer.role is Role.DROPOUT:
        # Keep only the mask byte per element.
        mask_bytes = layer.output_bytes / 2  # e==2 output -> 1 byte/elem
        new_stash = min(layer.stash_bytes, mask_bytes)
    else:
        new_stash = 0.0
    return Layer(
        name=layer.name + "_fused",
        engine=layer.engine,
        role=layer.role,
        flops_fw=layer.flops_fw,
        flops_bw=layer.flops_bw,
        traffic_fw=layer.output_bytes,  # only the (streamed) output write
        traffic_bw=layer.output_bytes,
        weight_bytes=layer.weight_bytes,
        weight_grad_bytes=layer.weight_grad_bytes,
        optimizer_bytes=layer.optimizer_bytes,
        stash_bytes=new_stash,
        output_bytes=layer.output_bytes,
        attn_only=layer.attn_only,
        fusible=False,
    )
