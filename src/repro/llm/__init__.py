"""LLM application model: configuration and transformer-block decomposition."""

from .config import (
    BLOOM_176B,
    CHINCHILLA_70B,
    GPT2_1P5B,
    GPT3_175B,
    LLAMA2_70B,
    LLMConfig,
    MEGATRON_1T,
    MEGATRON_22B,
    PALM_540B,
    TINY_TEST,
    TURING_530B,
    get_preset,
    iter_presets,
)
from .blocks import Collective, TransformerBlock, build_block
from .layers import Engine, Layer, Role, elementwise_layer, gemm_layer

__all__ = [
    "BLOOM_176B",
    "CHINCHILLA_70B",
    "Collective",
    "Engine",
    "GPT2_1P5B",
    "GPT3_175B",
    "LLAMA2_70B",
    "LLMConfig",
    "Layer",
    "MEGATRON_1T",
    "MEGATRON_22B",
    "PALM_540B",
    "Role",
    "TINY_TEST",
    "TURING_530B",
    "TransformerBlock",
    "build_block",
    "elementwise_layer",
    "gemm_layer",
    "get_preset",
    "iter_presets",
]
