"""Command-line interface.

Subcommands mirror the reference tool's workflows:

* ``run``    — evaluate one (LLM, system, execution) triple and print the
               full statistics report (paper §2.4 / Fig. 3).
* ``search`` — exhaustive optimal-execution search for a fixed system
               (paper §5.1 / Fig. 6).
* ``sweep``  — optimal performance vs. system size (paper §5.2 / Fig. 7).
* ``budget`` — budgeted optimal-system search (paper §7 / Table 3).
* ``fabric`` — shard one search across a work-stealing worker cluster
               (coordinator + N subprocesses, or ``--join URL`` to add
               a worker to a remote coordinator; ``docs/FABRIC.md``).
* ``serve-search`` — SLO-constrained serving co-design: search colocated
               and disaggregated prefill/decode deployments under
               percentile latency targets (``docs/SERVING.md``).  Not to
               be confused with ``serve``, which runs the persistent HTTP
               *evaluation service* (``docs/SERVICE.md``).

LLMs and systems may be given as preset names (``gpt3-175b``,
``a100:4096``, ``h100:4096:80:512``) or as JSON spec files.

``run``, ``search``, ``sweep`` and ``refine`` accept the shared
observability flags: ``--trace FILE`` (Chrome trace_event JSON of the
pipeline stages and search chunks), ``--stats`` (per-stage rejection
counts, dedup hit rates, candidates/sec) and ``--progress`` (live
candidates/sec and ETA on stderr).  ``search``, ``sweep`` and ``serve``
additionally take ``--events FILE`` (the structured flight-recorder
journal), and ``trace`` analyzes a written trace + journal pair
(critical path, stragglers, per-worker utilization).  See
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .analysis import MeasuredRun, calibrate, plan_training_run, sensitivity
from .core import hottest_layers, profile_layers
from .engine import evaluate
from .execution import ExecutionStrategy
from .hardware import System
from .inference import InferenceStrategy, calculate_inference
from .io import llm_from_spec, load_strategy, system_from_spec
from .llm import LLMConfig, iter_presets
from .obs import EventJournal, MetricsRegistry, ProgressReporter, PruneStats, Tracer
from .obs.stats import STAGE_NAMES, stage_metric
from .search import (
    RetryPolicy,
    SearchOptions,
    budget_table,
    scaling_sweep,
    search,
)
from .viz import table


def _parse_llm(spec: str) -> LLMConfig:
    return llm_from_spec(spec)


def _parse_system(spec: str) -> System:
    """Parse ``a100:<n>[:<hbm_gib>]`` / ``h100:<n>[:<hbm>[:<ddr>]]`` or a JSON path."""
    try:
        return system_from_spec(spec)
    except ValueError as err:
        raise SystemExit(str(err))


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags: --trace FILE, --stats, --progress."""
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a Chrome trace_event JSON file (chrome://tracing, Perfetto)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print per-stage rejection counts, dedup hit rates and throughput",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="report live progress (candidates/sec, ETA) on stderr",
    )


def _make_obs(
    args: argparse.Namespace,
) -> tuple[Tracer | None, ProgressReporter | None]:
    tracer = Tracer() if args.trace else None
    progress = ProgressReporter(stream=sys.stderr) if args.progress else None
    return tracer, progress


def _add_events_flag(parser: argparse.ArgumentParser) -> None:
    """The flight-recorder flag shared by search, sweep and serve."""
    parser.add_argument(
        "--events", metavar="FILE", default=None,
        help="append a structured flight-recorder event journal (JSONL) to "
        "FILE; analyze it with the 'trace' subcommand",
    )


def _make_events(
    args: argparse.Namespace, source: str, tracer: Tracer | None = None
) -> EventJournal | None:
    if not getattr(args, "events", None):
        return None
    return EventJournal(
        args.events, source=source,
        trace_id=tracer.trace_id if tracer is not None else None,
    )


def _add_prune_flag(parser: argparse.ArgumentParser) -> None:
    """The bound-pruning escape hatch shared by the search-family commands."""
    parser.add_argument(
        "--no-prune", action="store_true",
        help="disable roofline bound pruning (same answer, slower; "
        "see docs/PERFORMANCE.md)",
    )


def _add_adaptive_flags(parser: argparse.ArgumentParser) -> None:
    """Knobs for the adaptive best-bound-first columnar search path."""
    parser.add_argument(
        "--prune-seed", type=int, default=0, metavar="N",
        help="seed-sample size: a stride pre-pass length on the scalar "
        "path, the surrogate-picked tile-0 bucket count on the adaptive "
        "columnar path (0 = auto, negative = no seeding; the answer is "
        "identical either way)",
    )
    parser.add_argument(
        "--no-surrogate", action="store_true",
        help="disable learned tile-0 seeding on the adaptive columnar "
        "path (same answer, possibly slower; see docs/PERFORMANCE.md)",
    )


def _add_columnar_flag(parser: argparse.ArgumentParser) -> None:
    """The columnar-engine escape hatch shared by the batched commands."""
    parser.add_argument(
        "--no-columnar", action="store_true",
        help="force the scalar engine instead of the vectorized columnar "
        "batch path (same answer, slower; see docs/PERFORMANCE.md)",
    )


def _columnar_arg(args: argparse.Namespace) -> bool | None:
    return False if getattr(args, "no_columnar", False) else None


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    """The fault-tolerance flags shared by the long-running sweeps."""
    parser.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="journal completed chunks to FILE (JSONL) for later --resume",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip chunks already journaled in --checkpoint FILE",
    )
    parser.add_argument(
        "--deadline", type=float, metavar="SECONDS", default=None,
        help="wall-clock budget; stop cleanly at a chunk boundary when it passes",
    )
    parser.add_argument(
        "--max-retries", type=int, metavar="N", default=None,
        help="retries per failed chunk before it is skipped (default 2)",
    )
    parser.add_argument(
        "--chunk-timeout", type=float, metavar="SECONDS", default=None,
        help="per-chunk timeout; a hung worker chunk is killed and retried",
    )


def _fault_kwargs(args: argparse.Namespace) -> dict:
    """Translate the fault flags into search()/scaling_sweep() keywords."""
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint FILE")
    policy = None
    if args.max_retries is not None or args.chunk_timeout is not None:
        policy = RetryPolicy(
            max_retries=args.max_retries if args.max_retries is not None else 2,
            timeout=args.chunk_timeout,
        )
    return {
        "checkpoint": args.checkpoint,
        "resume": args.resume,
        "deadline": args.deadline,
        "retry_policy": policy,
    }


def _report_fault_outcome(stats, truncated: bool) -> None:
    if stats is not None and stats.resumed_chunks:
        sys.stderr.write(
            f"resumed {stats.resumed_chunks} chunks from the checkpoint journal\n"
        )
    if stats is not None and stats.skipped:
        ranges = ", ".join(f"[{a}, {b})" for a, b in stats.skipped)
        sys.stderr.write(
            f"warning: skipped candidate ranges after repeated failures: {ranges}\n"
        )
    if truncated:
        sys.stderr.write(
            "warning: deadline hit; results cover only the evaluated prefix\n"
        )


def _finish_trace(tracer: Tracer | None, args: argparse.Namespace) -> None:
    if tracer is not None:
        path = tracer.write(args.trace)
        sys.stderr.write(f"trace written to {path}\n")


def _options_from_name(name: str) -> SearchOptions:
    presets = {
        "baseline": SearchOptions.megatron_baseline,
        "seqpar": SearchOptions.seq_par_regime,
        "all": SearchOptions.all_optimizations,
        "all+offload": SearchOptions.all_with_offload,
    }
    try:
        return presets[name]()
    except KeyError:
        raise SystemExit(f"unknown option preset {name!r}; choose from {sorted(presets)}")


def _strategy_from_args(args: argparse.Namespace) -> ExecutionStrategy:
    """Build the execution strategy from the flags shared by run/query."""
    if args.strategy:
        return load_strategy(args.strategy)
    return ExecutionStrategy(
        tensor_par=args.tp,
        pipeline_par=args.pp,
        data_par=args.dp,
        batch=args.batch,
        microbatch=args.microbatch,
        pp_interleaving=args.interleave,
        recompute=args.recompute,
        seq_par=args.seq_par,
        tp_redo_sp=args.seq_par,
        optimizer_sharding=args.optimizer_sharding,
        dp_overlap=args.dp_overlap,
        tp_overlap=args.tp_overlap,
        fused_activations=args.fused,
        weight_offload=args.offload,
        activation_offload=args.offload,
        optimizer_offload=args.offload,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    llm = _parse_llm(args.llm)
    system = _parse_system(args.system)
    strategy = _strategy_from_args(args)
    tracer, _ = _make_obs(args)
    metrics = MetricsRegistry() if args.stats else None
    start = time.perf_counter()
    result = evaluate(llm, system, strategy, tracer=tracer, metrics=metrics)
    elapsed = time.perf_counter() - start
    _finish_trace(tracer, args)
    if metrics is not None:
        # Per-stage wall time; routed to stderr for machine formats so piped
        # CSV/JSON stays clean.
        out = sys.stdout if args.format == "text" else sys.stderr
        for stage in STAGE_NAMES:
            h = metrics.histograms.get(stage_metric(stage))
            if h is not None and h.count:
                out.write(f"stage {stage:<10} {h.total * 1e6:8.1f} us\n")
    if args.format == "csv":
        from .io import results_to_csv

        print(results_to_csv([result]), end="")
    elif args.format == "json":
        import json as _json

        from .io import result_to_flat_dict

        print(_json.dumps(result_to_flat_dict(result), indent=1))
    else:
        print(result.summary())
        print(f"(model evaluated in {elapsed * 1e3:.3f} ms)")
    return 0 if result.feasible else 1


def _cmd_search(args: argparse.Namespace) -> int:
    if getattr(args, "workload", "train") == "serve":
        # The serving co-design search shares the verb but is a different
        # machine; see the dedicated serve-search subcommand.
        return _cmd_serve_search(args)
    llm = _parse_llm(args.llm)
    system = _parse_system(args.system)
    opts = _options_from_name(args.options)
    tracer, progress = _make_obs(args)
    events = _make_events(args, "search", tracer)
    start = time.perf_counter()
    # The command only reports the top-k table, so the per-candidate rate
    # histogram is dropped (keep_rates=False) — which is also what lets
    # bound pruning engage.
    try:
        result = search(
            llm, system, args.batch, opts, top_k=args.top, workers=args.workers,
            keep_rates=False, bound_prune=not args.no_prune,
            prune_seed=getattr(args, "prune_seed", 0),
            surrogate=not getattr(args, "no_surrogate", False),
            columnar=_columnar_arg(args),
            tracer=tracer, collect_stats=args.stats, progress=progress,
            events=events,
            **_fault_kwargs(args),
        )
    finally:
        if events is not None:
            events.close()
    elapsed = time.perf_counter() - start
    _finish_trace(tracer, args)
    _report_fault_outcome(result.stats, result.truncated)
    print(
        f"evaluated {result.num_evaluated} configurations "
        f"({result.num_feasible} feasible, "
        f"{result.feasible_fraction * 100:.1f}%) in {elapsed:.1f} s"
    )
    if result.stats is not None:
        print(result.stats.summary())
    if result.best is None:
        print("no feasible configuration")
        return 1
    rows = [
        (
            s.short_name(),
            r.sample_rate,
            r.batch_time,
            r.mfu * 100,
            r.mem1.total / 2**30,
            s.recompute,
            "sp" if s.seq_par else "-",
            "shard" if s.optimizer_sharding else "-",
        )
        for s, r in result.top
    ]
    print(
        table(
            ["config", "rate/s", "batch s", "MFU %", "HBM GiB", "recompute", "SP", "opt"],
            rows,
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    llm = _parse_llm(args.llm)
    base = _parse_system(args.system)

    def factory(n: int) -> System:
        return base.with_num_procs(n)

    sizes = list(range(args.step, args.max_size + 1, args.step))
    opts = _options_from_name(args.options)
    tracer, progress = _make_obs(args)
    events = _make_events(args, "sweep", tracer)
    fault = _fault_kwargs(args)
    fault.pop("retry_policy")  # per-size searches stay unsupervised for now
    try:
        curve = scaling_sweep(
            llm, factory, sizes, args.batch, opts, workers=args.workers,
            bound_prune=not args.no_prune,
            columnar=_columnar_arg(args),
            tracer=tracer, collect_stats=args.stats, progress=progress,
            events=events,
            **fault,
        )
    finally:
        if events is not None:
            events.close()
    _finish_trace(tracer, args)
    _report_fault_outcome(curve.total_stats(), curve.truncated)
    if args.stats:
        total = curve.total_stats()
        if total is not None:
            print(total.summary())
    rel = curve.relative_scaling()
    rows = [
        (p.num_procs, p.sample_rate, f"{r:.3f}", p.strategy.short_name() if p.strategy else "-")
        for p, r in zip(curve.points, rel)
    ]
    print(table(["size", "rate/s", "rel scaling", "best config"], rows))
    return 0


def _cmd_budget(args: argparse.Namespace) -> int:
    llms = [_parse_llm(name) for name in args.llms.split(",")]
    rows = budget_table(
        llms,
        budget=args.budget,
        batch=args.batch,
        workers=args.workers,
    )
    out = []
    for row in rows:
        design = row[0].design
        cells: list[object] = [design.label(), f"${design.price_per_gpu / 1e3:.1f}k",
                               row[0].max_gpus]
        for entry in row:
            cells += [entry.used_gpus, round(entry.sample_rate), round(entry.perf_per_million, 1)]
        out.append(cells)
    headers = ["design", "price", "max GPUs"]
    for llm in llms:
        headers += [f"{llm.name} GPUs", "perf", "perf/$M"]
    print(table(headers, out))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    """Fit the efficiency knobs to measured runs from a JSON manifest.

    The manifest is a list of objects with ``llm`` (preset or spec path),
    ``system`` (spec string or path), ``strategy`` (inline execution dict)
    and ``measured_time`` in seconds.
    """
    import json as _json

    manifest = _json.loads(Path(args.runs).read_text())
    runs = []
    for entry in manifest:
        runs.append(
            MeasuredRun(
                llm=_parse_llm(entry["llm"]),
                system=_parse_system(entry["system"]),
                strategy=ExecutionStrategy.from_dict(entry["strategy"]),
                measured_time=float(entry["measured_time"]),
            )
        )
    result = calibrate(runs)
    print(
        f"fitted matrix plateau {result.matrix_plateau:.3f}, "
        f"HBM efficiency {result.hbm_efficiency:.3f}"
    )
    print(
        f"mean abs error {result.mean_abs_error * 100:.2f}%  "
        f"max {result.max_abs_error * 100:.2f}%"
    )
    rows = [
        (i, entry["measured_time"], round(pred, 3))
        for i, (entry, pred) in enumerate(zip(manifest, result.predictions))
    ]
    print(table(["run", "measured s", "fitted model s"], rows))
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    llm = _parse_llm(args.llm)
    system = _parse_system(args.system)
    strategy = ExecutionStrategy(
        tensor_par=args.tp,
        pipeline_par=args.pp,
        data_par=args.dp,
        batch=args.batch,
        microbatch=args.microbatch,
        recompute=args.recompute,
    )
    try:
        elasticities = sensitivity(llm, system, strategy, scale=args.scale)
    except ValueError as err:
        print(f"error: {err}")
        return 1
    rows = [
        (e.knob, f"{e.value:+.3f}", f"{e.speedup_at_2x:.2f}x")
        for e in elasticities
    ]
    print(table(["component", "elasticity", "speedup if 2x better"], rows))
    return 0


def _cmd_refine(args: argparse.Namespace) -> int:
    from .search import multi_start

    llm = _parse_llm(args.llm)
    system = _parse_system(args.system)
    seeds = []
    t0 = min(8, llm.attn_heads)
    for t, p in ((t0, 1), (t0, 8), (1, 8), (t0, system.num_procs // t0)):
        if system.num_procs % (t * p):
            continue
        d = system.num_procs // (t * p)
        if args.batch % d:
            continue
        seeds.append(
            ExecutionStrategy(
                tensor_par=t, pipeline_par=p, data_par=d, batch=args.batch,
                microbatch=1, recompute="full", optimizer_sharding=True,
            )
        )
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint FILE")
    tracer, _ = _make_obs(args)
    metrics = MetricsRegistry() if args.stats else None
    start = time.perf_counter()
    result = multi_start(llm, system, seeds, bound_prune=not args.no_prune,
                         tracer=tracer, metrics=metrics,
                         checkpoint=args.checkpoint, resume=args.resume)
    elapsed = time.perf_counter() - start
    _finish_trace(tracer, args)
    if result is None:
        print("no feasible configuration found from any seed")
        return 1
    print(
        f"hill-climbed to {result.best_strategy.short_name()} in "
        f"{result.evaluations} evaluations ({elapsed:.1f} s)"
    )
    if metrics is not None:
        print(
            f"seeds {int(metrics.value('refine.seeds'))}, "
            f"accepted steps {int(metrics.value('refine.steps'))}"
        )
        print(PruneStats.from_metrics(metrics).summary())
    print(result.best.summary())
    return 0


def _cmd_inference(args: argparse.Namespace) -> int:
    llm = _parse_llm(args.llm)
    system = _parse_system(args.system)
    strategy = InferenceStrategy(
        tensor_par=args.tp,
        pipeline_par=args.pp,
        data_par=args.dp,
        batch=args.batch,
        pipelined_requests=not args.latency_mode,
    )
    result = calculate_inference(
        llm, system, strategy, prompt_len=args.prompt, generate_len=args.generate
    )
    print(result.summary())
    return 0 if result.feasible else 1


def _cmd_layers(args: argparse.Namespace) -> int:
    llm = _parse_llm(args.llm)
    system = _parse_system(args.system)
    strategy = ExecutionStrategy(
        tensor_par=args.tp,
        pipeline_par=args.pp,
        data_par=args.dp,
        batch=args.batch,
        microbatch=args.microbatch,
        seq_par=args.seq_par,
        tp_redo_sp=args.seq_par,
        fused_activations=args.fused,
    )
    try:
        profiles = profile_layers(llm, system, strategy)
    except ValueError as err:
        print(f"error: {err}")
        return 1
    total = sum(p.total_time for p in profiles)
    rows = [
        (
            p.name,
            p.engine,
            f"{p.fw_time * 1e6:.1f}",
            f"{p.bw_time * 1e6:.1f}",
            f"{p.total_time / total * 100:.1f}%",
            "compute" if p.fw_compute_bound else "memory",
        )
        for p in profiles
    ]
    print(table(["layer", "engine", "fw us", "bw us", "share", "bound"], rows))
    hot = hottest_layers(profiles, 3)
    print("\nhottest layers: " + ", ".join(p.name for p in hot))
    return 0


def _cmd_deployments(args: argparse.Namespace) -> int:
    from .inference import search_deployments

    llm = _parse_llm(args.llm)
    system = _parse_system(args.system)
    front = search_deployments(
        llm,
        system,
        prompt_len=args.prompt,
        generate_len=args.generate,
    )
    if not front:
        print("no feasible deployment (model does not fit this pool)")
        return 1
    rows = [
        (
            p.strategy.short_name(),
            f"{p.result.prefill_time:.2f} s",
            f"{p.result.decode_step_time * 1e3:.1f} ms",
            f"{p.result.tokens_per_second:,.0f}",
            f"{p.tokens_per_second_per_proc:,.1f}",
            f"{p.result.mem_used / 2**30:.0f} GiB",
        )
        for p in front
    ]
    print(
        table(
            ["deployment", "TTFT", "per-token", "tokens/s", "tok/s/GPU", "HBM"],
            rows,
        )
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    llm = _parse_llm(args.llm)
    system = _parse_system(args.system)
    strategy = ExecutionStrategy(
        tensor_par=args.tp,
        pipeline_par=args.pp,
        data_par=args.dp,
        batch=args.batch,
        microbatch=args.microbatch,
        recompute=args.recompute,
        optimizer_sharding=True,
    )
    try:
        plan = plan_training_run(llm, system, strategy, tokens=args.tokens)
    except ValueError as err:
        print(f"error: {err}")
        return 1
    print(plan.summary())
    if args.rate != 1.0:
        print(f"  ${plan.cost(args.rate) / 1e6:.1f}M at ${args.rate}/GPU-hour")
    return 0


def _add_serve_workload_flags(parser: argparse.ArgumentParser) -> None:
    """The serving workload/SLO flags shared by serve-search and
    ``search --workload serve``."""
    parser.add_argument(
        "--rate", type=float, default=10.0, metavar="RPS",
        help="offered arrival rate in requests/second (default 10)",
    )
    parser.add_argument(
        "--prompt-len", default="2048", metavar="N|LO:HI",
        help="prompt length in tokens: fixed N or uniform LO:HI (default 2048)",
    )
    parser.add_argument(
        "--output-len", default="256", metavar="N|LO:HI",
        help="output length in tokens: fixed N or uniform LO:HI (default 256)",
    )
    parser.add_argument(
        "--requests", type=int, default=200,
        help="simulated requests per candidate plan (default 200)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload sampling seed (default 0)",
    )
    parser.add_argument(
        "--ttft-p50", type=float, default=None, metavar="SECONDS",
        help="SLO: p50 time-to-first-token ceiling",
    )
    parser.add_argument(
        "--ttft-p95", type=float, default=None, metavar="SECONDS",
        help="SLO: p95 time-to-first-token ceiling",
    )
    parser.add_argument(
        "--ttft-p99", type=float, default=None, metavar="SECONDS",
        help="SLO: p99 time-to-first-token ceiling",
    )
    parser.add_argument(
        "--tpot-p95", type=float, default=None, metavar="SECONDS",
        help="SLO: p95 per-output-token latency ceiling",
    )
    parser.add_argument(
        "--max-tensor-par", type=int, default=64,
        help="widest tensor-parallel sharding tried (default 64)",
    )
    parser.add_argument(
        "--no-disagg", action="store_true",
        help="search only colocated plans (skip disaggregated prefill/decode)",
    )
    parser.add_argument(
        "--splits", default="0.25,0.5", metavar="F1,F2,…",
        help="prefill-cluster fractions tried for disaggregated plans "
        "(default 0.25,0.5)",
    )
    parser.add_argument(
        "--serve-max-batch", type=int, default=None, metavar="N",
        help="cap the continuous-batching occupancy per decode replica",
    )


def _cmd_serve_search(args: argparse.Namespace) -> int:
    from .serving import (
        LengthDist,
        ServeSearchOptions,
        ServeWorkload,
        SLOSpec,
        serve_search,
    )

    llm = _parse_llm(args.llm)
    system = _parse_system(args.system)
    try:
        workload = ServeWorkload(
            arrival_rate=args.rate,
            prompt=LengthDist.parse(args.prompt_len),
            output=LengthDist.parse(args.output_len),
            num_requests=args.requests,
            seed=args.seed,
        )
        splits = tuple(float(s) for s in args.splits.split(",") if s.strip())
        opts = ServeSearchOptions(
            max_tensor_par=args.max_tensor_par,
            disagg=not args.no_disagg,
            splits=splits,
            max_batch=args.serve_max_batch,
        )
    except ValueError as err:
        raise SystemExit(str(err))
    slo = SLOSpec(
        ttft_p50=args.ttft_p50, ttft_p95=args.ttft_p95,
        ttft_p99=args.ttft_p99, tpot_p95=args.tpot_p95,
    )
    if not slo.constrained:
        slo = None
    tracer, progress = _make_obs(args)
    events = _make_events(args, "serve-search", tracer)
    start = time.perf_counter()
    try:
        result = serve_search(
            llm, system, workload, slo, opts,
            top_k=args.top, workers=args.workers, prune=not args.no_prune,
            tracer=tracer, collect_stats=args.stats, progress=progress,
            events=events,
            **_fault_kwargs(args),
        )
    finally:
        if events is not None:
            events.close()
    elapsed = time.perf_counter() - start
    _finish_trace(tracer, args)
    _report_fault_outcome(result.stats, result.truncated)
    print(
        f"simulated {result.num_simulated} of {result.num_candidates} plans "
        f"({result.num_pruned} SLO-bound pruned, "
        f"{result.num_infeasible} infeasible, "
        f"{result.num_violated} missed the SLO) in {elapsed:.1f} s"
    )
    if result.stats is not None:
        print(result.stats.summary())
    if not result.top:
        print(
            "no deployment meets the SLO"
            if slo is not None else "no serveable deployment"
        )
        return 1
    rows = [
        (
            plan.short_name(),
            st.goodput_rps,
            st.throughput_rps,
            st.ttft_p95 * 1e3,
            st.tpot_p95 * 1e3,
            st.mean_batch,
            st.kv_peak_bytes / 2**30,
        )
        for plan, st in result.top
    ]
    print(
        table(
            ["deployment", "goodput/s", "req/s", "TTFT p95 ms",
             "TPOT p95 ms", "batch", "KV GiB"],
            rows,
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import make_server, serve

    server = make_server(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        cache_entries=args.cache_entries,
        max_pending=args.max_pending,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        request_timeout=args.request_timeout,
        columnar=_columnar_arg(args),
        events_path=args.events,
    )
    host, port = server.server_address[0], server.port
    sys.stderr.write(
        f"repro-calculon service on http://{host}:{port} "
        f"(cache {args.cache_dir or 'memory-only'}, "
        f"{args.cache_entries} entries; SIGTERM drains gracefully)\n"
    )
    serve(server)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .search import RetryPolicy
    from .service import RequestFailed, ServiceClient, ServiceUnavailable

    client = ServiceClient(
        args.url,
        retry=RetryPolicy(
            max_retries=args.retries, backoff_base=0.1, backoff_max=2.0
        ),
        timeout=args.timeout,
    )
    strategy = _strategy_from_args(args)
    tracer = Tracer() if args.trace else None
    try:
        if tracer is not None:
            with tracer.span("query", cat="service.client", url=args.url):
                payload = client.evaluate(
                    args.llm, args.system, strategy, tracer=tracer
                )
        else:
            payload = client.evaluate(args.llm, args.system, strategy)
    except (RequestFailed, ServiceUnavailable) as err:
        sys.stderr.write(f"error: {err}\n")
        return 2
    _finish_trace(tracer, args)
    flat = payload["result"]
    if args.format == "json":
        import json as _json

        print(_json.dumps(payload, indent=1))
    else:
        print(f"cache: {payload['cache']}   key: {payload['key'][:16]}…")
        if flat["feasible"]:
            print(
                f"{flat['llm']} on {flat['system']} [{flat['strategy']}]: "
                f"batch time {flat['batch_time_s']:.3f} s, "
                f"{flat['sample_rate']:.1f} samples/s, "
                f"MFU {flat['mfu'] * 100:.1f}%"
            )
        else:
            print(f"INFEASIBLE: {flat['infeasibility']}")
    return 0 if flat["feasible"] else 1


def _cmd_fabric(args: argparse.Namespace) -> int:
    from .fabric import run_fabric, run_worker

    if args.join:
        # Worker mode: join a (possibly remote) coordinator and pull leases
        # until it reports the sweep done.
        import logging

        logging.basicConfig(level=logging.INFO, stream=sys.stderr)
        done = run_worker(args.join, name=args.name, columnar=_columnar_arg(args))
        sys.stderr.write(f"fabric worker finished {done} chunks\n")
        return 0
    if not args.llm or not args.system:
        raise SystemExit(
            "fabric coordinator mode needs LLM and SYSTEM positionals "
            "(use --join URL for worker mode)"
        )
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint FILE")
    llm = _parse_llm(args.llm)
    system = _parse_system(args.system)
    opts = _options_from_name(args.options)
    tracer, _ = _make_obs(args)
    events = _make_events(args, "fabric", tracer)
    start = time.perf_counter()
    try:
        result = run_fabric(
            llm, system, args.batch, opts,
            workers=args.workers, top_k=args.top,
            host=args.host, port=args.port,
            lease_timeout=args.lease_timeout,
            checkpoint=args.checkpoint, resume=args.resume,
            events=events, tracer=tracer,
            columnar=_columnar_arg(args),
            timeout=args.timeout,
        )
    finally:
        if events is not None:
            events.close()
    elapsed = time.perf_counter() - start
    _finish_trace(tracer, args)
    _report_fault_outcome(result.stats, result.truncated)
    print(
        f"evaluated {result.num_evaluated} configurations "
        f"({result.num_feasible} feasible) across {args.workers} workers "
        f"in {elapsed:.1f} s"
    )
    if args.stats and result.stats is not None:
        print(result.stats.summary())
    if result.best is None:
        print("no feasible configuration")
        return 1
    rows = [
        (
            s.short_name(),
            r.sample_rate,
            r.batch_time,
            r.mfu * 100,
            r.mem1.total / 2**30,
            s.recompute,
            "sp" if s.seq_par else "-",
            "shard" if s.optimizer_sharding else "-",
        )
        for s, r in result.top
    ]
    print(
        table(
            ["config", "rate/s", "batch s", "MFU %", "HBM GiB", "recompute", "SP", "opt"],
            rows,
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.analyze import analyze_files

    try:
        report = analyze_files(args.trace_file, args.events)
    except (OSError, ValueError) as err:
        sys.stderr.write(f"error: {err}\n")
        return 2
    if args.json:
        print(report.to_json())
    else:
        print(report.to_text())
    return 0


def _add_strategy_flags(parser: argparse.ArgumentParser) -> None:
    """The single-configuration strategy flags shared by run and query."""
    parser.add_argument("--strategy", help="execution strategy JSON")
    parser.add_argument("--tp", type=int, default=8)
    parser.add_argument("--pp", type=int, default=8)
    parser.add_argument("--dp", type=int, default=1)
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--microbatch", type=int, default=1)
    parser.add_argument("--interleave", type=int, default=1)
    parser.add_argument("--recompute", choices=("none", "attn_only", "full"),
                        default="none")
    parser.add_argument("--seq-par", action="store_true", dest="seq_par")
    parser.add_argument("--optimizer-sharding", action="store_true")
    parser.add_argument("--dp-overlap", action="store_true")
    parser.add_argument("--tp-overlap", choices=("none", "pipe", "ring"),
                        default="none")
    parser.add_argument("--fused", action="store_true")
    parser.add_argument("--offload", action="store_true")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-calculon",
        description="Analytical LLM/system codesign model (Calculon reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="evaluate one configuration")
    run.add_argument("llm", help="LLM preset name or spec JSON")
    run.add_argument("system", help="system spec (a100:<n> | h100:<n>[:hbm[:ddr]] | JSON)")
    _add_strategy_flags(run)
    run.add_argument("--format", choices=("text", "csv", "json"), default="text")
    _add_obs_flags(run)
    run.set_defaults(func=_cmd_run)

    srv = sub.add_parser(
        "serve",
        help="run the persistent evaluation service (HTTP JSON API; to "
        "search serving deployments under an SLO, use serve-search)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8100,
                     help="TCP port (0 picks a free one; default 8100)")
    srv.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="disk tier of the result cache (omit for memory-only)")
    srv.add_argument("--cache-entries", type=int, default=4096,
                     help="capacity of the in-memory LRU tier (default 4096)")
    srv.add_argument("--max-pending", type=int, default=256,
                     help="dispatch backlog before 503 backpressure (default 256)")
    srv.add_argument("--batch-window", type=float, default=0.002, metavar="SECONDS",
                     help="micro-batch collection window (default 0.002)")
    srv.add_argument("--max-batch", type=int, default=64,
                     help="max evaluations per micro-batch (default 64)")
    srv.add_argument("--request-timeout", type=float, default=60.0, metavar="SECONDS")
    _add_columnar_flag(srv)
    _add_events_flag(srv)
    srv.set_defaults(func=_cmd_serve)

    qry = sub.add_parser(
        "query", help="evaluate one configuration via a running service"
    )
    qry.add_argument("llm", help="LLM preset name or spec JSON")
    qry.add_argument("system", help="system spec (a100:<n> | h100:<n>[:hbm[:ddr]] | JSON)")
    _add_strategy_flags(qry)
    qry.add_argument("--url", default="http://127.0.0.1:8100",
                     help="service base URL (default http://127.0.0.1:8100)")
    qry.add_argument("--retries", type=int, default=3,
                     help="retry attempts on connection errors and 5xx (default 3)")
    qry.add_argument("--timeout", type=float, default=60.0, metavar="SECONDS")
    qry.add_argument("--format", choices=("text", "json"), default="text")
    qry.add_argument("--trace", metavar="FILE", default=None,
                     help="write a Chrome trace of the query including the "
                     "server's spans (needs a traced server round-trip)")
    qry.set_defaults(func=_cmd_query)

    srch = sub.add_parser("search", help="exhaustive execution search")
    srch.add_argument("llm")
    srch.add_argument("system")
    srch.add_argument("--workload", choices=("train", "serve"), default="train",
                      help="search training executions (default) or serving "
                      "deployments (equivalent to serve-search)")
    srch.add_argument("--batch", type=int, default=4096)
    srch.add_argument("--options", default="all")
    srch.add_argument("--top", type=int, default=10)
    srch.add_argument("--workers", type=int, default=None)
    _add_serve_workload_flags(srch)
    _add_prune_flag(srch)
    _add_adaptive_flags(srch)
    _add_columnar_flag(srch)
    _add_obs_flags(srch)
    _add_events_flag(srch)
    _add_fault_flags(srch)
    srch.set_defaults(func=_cmd_search)

    ssrch = sub.add_parser(
        "serve-search",
        help="SLO-constrained serving co-design: search colocated and "
        "disaggregated prefill/decode deployments (the deployment-space "
        "twin of 'search'; 'serve' runs the HTTP evaluation service)",
    )
    ssrch.add_argument("llm")
    ssrch.add_argument("system")
    ssrch.add_argument("--top", type=int, default=5)
    ssrch.add_argument("--workers", type=int, default=None)
    _add_serve_workload_flags(ssrch)
    _add_prune_flag(ssrch)
    _add_obs_flags(ssrch)
    _add_events_flag(ssrch)
    _add_fault_flags(ssrch)
    ssrch.set_defaults(func=_cmd_serve_search)

    swp = sub.add_parser("sweep", help="optimal performance vs system size")
    swp.add_argument("llm")
    swp.add_argument("system")
    swp.add_argument("--batch", type=int, default=4096)
    swp.add_argument("--max-size", type=int, default=8192)
    swp.add_argument("--step", type=int, default=512)
    swp.add_argument("--options", default="all")
    swp.add_argument("--workers", type=int, default=None,
                     help="processes per inner search (default: auto)")
    _add_prune_flag(swp)
    _add_columnar_flag(swp)
    _add_obs_flags(swp)
    _add_events_flag(swp)
    _add_fault_flags(swp)
    swp.set_defaults(func=_cmd_sweep)

    fab = sub.add_parser(
        "fabric",
        help="distributed search fabric: shard one search across worker "
        "processes behind a work-stealing coordinator",
    )
    fab.add_argument("llm", nargs="?", help="LLM preset (coordinator mode)")
    fab.add_argument("system", nargs="?", help="system spec (coordinator mode)")
    fab.add_argument("--join", metavar="URL", default=None,
                     help="worker mode: join the coordinator at URL and pull "
                     "chunk leases until the sweep is done")
    fab.add_argument("--name", default=None,
                     help="worker name shown in /metrics and events (worker mode)")
    fab.add_argument("--batch", type=int, default=4096)
    fab.add_argument("--options", default="all")
    fab.add_argument("--top", type=int, default=10)
    fab.add_argument("--workers", type=int, default=4,
                     help="local worker processes to spawn (default 4)")
    fab.add_argument("--host", default="127.0.0.1")
    fab.add_argument("--port", type=int, default=0,
                     help="coordinator TCP port (0 picks a free one)")
    fab.add_argument("--lease-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="lease expiry before a chunk is re-issued (default 30)")
    fab.add_argument("--timeout", type=float, default=600.0, metavar="SECONDS",
                     help="overall sweep deadline (default 600)")
    fab.add_argument("--checkpoint", metavar="FILE", default=None,
                     help="journal merged chunks to FILE for later --resume")
    fab.add_argument("--resume", action="store_true",
                     help="fold chunks already journaled in --checkpoint FILE")
    _add_columnar_flag(fab)
    _add_obs_flags(fab)
    _add_events_flag(fab)
    fab.set_defaults(func=_cmd_fabric)

    trc = sub.add_parser(
        "trace", help="analyze a Chrome trace + flight-recorder journal"
    )
    trc.add_argument("trace_file", help="Chrome trace JSON written by --trace")
    trc.add_argument("--events", metavar="FILE", default=None,
                     help="flight-recorder journal written by --events")
    trc.add_argument("--json", action="store_true",
                     help="emit the report as JSON instead of text")
    trc.set_defaults(func=_cmd_trace)

    bud = sub.add_parser("budget", help="budgeted optimal-system search")
    bud.add_argument("--llms", default="gpt3-175b,turing-530b,megatron-1t")
    bud.add_argument("--budget", type=float, default=125e6)
    bud.add_argument("--batch", type=int, default=4096)
    bud.add_argument("--workers", type=int, default=0)
    bud.set_defaults(func=_cmd_budget)

    cal = sub.add_parser("calibrate",
                         help="fit efficiency knobs to measured runs")
    cal.add_argument("runs", help="JSON manifest of measured runs")
    cal.set_defaults(func=_cmd_calibrate)

    sens = sub.add_parser("sensitivity", help="hardware elasticity analysis")
    sens.add_argument("llm")
    sens.add_argument("system")
    sens.add_argument("--tp", type=int, default=8)
    sens.add_argument("--pp", type=int, default=8)
    sens.add_argument("--dp", type=int, default=1)
    sens.add_argument("--batch", type=int, default=64)
    sens.add_argument("--microbatch", type=int, default=1)
    sens.add_argument("--recompute", choices=("none", "attn_only", "full"),
                      default="full")
    sens.add_argument("--scale", type=float, default=1.25)
    sens.set_defaults(func=_cmd_sensitivity)

    ref = sub.add_parser("refine", help="fast hill-climbing strategy search")
    ref.add_argument("llm")
    ref.add_argument("system")
    ref.add_argument("--batch", type=int, default=4096)
    ref.add_argument("--checkpoint", metavar="FILE", default=None,
                     help="journal completed climbs to FILE for later --resume")
    ref.add_argument("--resume", action="store_true",
                     help="skip seeds already journaled in --checkpoint FILE")
    _add_prune_flag(ref)
    _add_obs_flags(ref)
    ref.set_defaults(func=_cmd_refine)

    inf = sub.add_parser("inference", help="serving latency/throughput estimate")
    inf.add_argument("llm")
    inf.add_argument("system")
    inf.add_argument("--tp", type=int, default=8)
    inf.add_argument("--pp", type=int, default=1)
    inf.add_argument("--dp", type=int, default=1)
    inf.add_argument("--batch", type=int, default=8)
    inf.add_argument("--prompt", type=int, default=2048)
    inf.add_argument("--generate", type=int, default=256)
    inf.add_argument("--latency-mode", action="store_true",
                     help="single batch in flight (no request pipelining)")
    inf.set_defaults(func=_cmd_inference)

    lay = sub.add_parser("layers", help="per-layer profile of one block")
    lay.add_argument("llm")
    lay.add_argument("system")
    lay.add_argument("--tp", type=int, default=8)
    lay.add_argument("--pp", type=int, default=8)
    lay.add_argument("--dp", type=int, default=1)
    lay.add_argument("--batch", type=int, default=64)
    lay.add_argument("--microbatch", type=int, default=1)
    lay.add_argument("--seq-par", action="store_true", dest="seq_par")
    lay.add_argument("--fused", action="store_true")
    lay.set_defaults(func=_cmd_layers)

    dep = sub.add_parser("deployments",
                         help="latency/throughput Pareto front for serving")
    dep.add_argument("llm")
    dep.add_argument("system")
    dep.add_argument("--prompt", type=int, default=2048)
    dep.add_argument("--generate", type=int, default=256)
    dep.set_defaults(func=_cmd_deployments)

    pln = sub.add_parser("plan", help="project a full training campaign")
    pln.add_argument("llm")
    pln.add_argument("system")
    pln.add_argument("--tokens", type=float, default=450e9)
    pln.add_argument("--tp", type=int, default=8)
    pln.add_argument("--pp", type=int, default=8)
    pln.add_argument("--dp", type=int, default=1)
    pln.add_argument("--batch", type=int, default=64)
    pln.add_argument("--microbatch", type=int, default=1)
    pln.add_argument("--recompute", choices=("none", "attn_only", "full"),
                     default="full")
    pln.add_argument("--rate", type=float, default=1.0,
                     help="dollars per GPU-hour for the cost estimate")
    pln.set_defaults(func=_cmd_plan)

    lst = sub.add_parser("presets", help="list LLM presets")
    lst.set_defaults(
        func=lambda a: (
            [
                print(
                    f"{m.name:<16} hidden={m.hidden:<6} heads={m.attn_heads:<4} "
                    f"blocks={m.num_blocks:<4} params={m.total_parameters / 1e9:.1f}B"
                )
                for m in iter_presets()
            ],
            0,
        )[1]
    )

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
