"""HTTP face of the fabric coordinator: a service server grown four routes.

The coordinator node IS a ``repro.service`` server — same handler plumbing,
same ``EvaluationService`` (so ``/evaluate``, ``/healthz``, ``/presets``
keep working against the coordinator), same ``MetricsRegistry`` — extended
with the fabric protocol:

========================  =====================================================
``POST /fabric/register`` join the cluster; body ``{"name", "pid"}``;
                          returns worker id + problem + ``trace_id``
``POST /chunk/lease``     body ``{"worker"}``; returns a chunk lease, or
                          ``{"status": "wait"|"done"}``
``POST /chunk/result``    body ``{"worker", "chunk", "key", "payload"}``;
                          idempotent (stale duplicates acknowledged)
``GET  /fabric/status``   chunk/lease/worker table for humans and tests
========================  =====================================================

``GET /metrics`` is the service exposition plus the coordinator's
per-worker labeled gauges (``repro_fabric_worker_chunks{worker="..."}``).
"""

from __future__ import annotations

import logging

from ..obs import EventJournal, MetricsRegistry, Tracer
from ..service.server import (
    BadRequest,
    EvaluationService,
    ServiceHTTPServer,
    _Handler,
)
from .coordinator import FabricCoordinator, FabricError

logger = logging.getLogger(__name__)

__all__ = ["FabricHTTPServer", "make_fabric_server"]


class _FabricHandler(_Handler):
    @property
    def coordinator(self) -> FabricCoordinator:
        return self.server.coordinator  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path == "/fabric/status":
            self._send_json(200, self.coordinator.status())
        elif path == "/metrics":
            body = self.service.metrics_text()
            extra = self.coordinator.worker_metric_lines()
            if extra:
                body = body.rstrip("\n") + "\n" + "\n".join(extra) + "\n"
            raw = body.encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)
        else:
            super().do_GET()

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path not in ("/fabric/register", "/chunk/lease", "/chunk/result"):
            super().do_POST()
            return
        try:
            payload = self._read_body()
            if not isinstance(payload, dict):
                raise BadRequest("request body must be a JSON object")
            if path == "/fabric/register":
                response = self.coordinator.register(
                    str(payload.get("name") or "worker"),
                    pid=payload.get("pid"),
                )
            elif path == "/chunk/lease":
                response = self.coordinator.lease(str(payload.get("worker")))
            else:
                if "chunk" not in payload or "payload" not in payload:
                    raise BadRequest(
                        "/chunk/result needs 'chunk' and 'payload' fields"
                    )
                response = self.coordinator.submit(
                    str(payload.get("worker")),
                    int(payload["chunk"]),
                    payload["payload"],
                    key=payload.get("key"),
                )
        except BadRequest as err:
            self._send_error_json(err)
        except FabricError as err:
            self._send_json(409, {"error": str(err)})
        except Exception as err:  # pragma: no cover - defensive
            logger.exception("unhandled error serving %s", path)
            self._send_json(500, {"error": str(err)})
        else:
            self._send_json(200, response)


class FabricHTTPServer(ServiceHTTPServer):
    """A :class:`ServiceHTTPServer` that also owns a fabric coordinator."""

    def __init__(
        self,
        address: tuple[str, int],
        service: EvaluationService,
        coordinator: FabricCoordinator,
    ):
        super().__init__(address, service, handler=_FabricHandler)
        self.coordinator = coordinator


def make_fabric_server(
    llm,
    system,
    batch,
    options=None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    top_k: int = 10,
    expected_workers: int = 1,
    lease_timeout: float | None = None,
    retry_policy=None,
    checkpoint: str | None = None,
    resume: bool = False,
    events: EventJournal | None = None,
    tracer: Tracer | None = None,
    columnar: bool | None = None,
) -> FabricHTTPServer:
    """Assemble coordinator + evaluation service + HTTP server (not serving).

    The evaluation service shares the coordinator's :class:`MetricsRegistry`
    and events journal, so one ``/metrics`` scrape covers both roles.
    """
    from .coordinator import DEFAULT_LEASE_TIMEOUT

    metrics = MetricsRegistry()
    coordinator = FabricCoordinator(
        llm, system, batch, options,
        top_k=top_k,
        expected_workers=expected_workers,
        lease_timeout=(
            DEFAULT_LEASE_TIMEOUT if lease_timeout is None else lease_timeout
        ),
        retry_policy=retry_policy,
        checkpoint=checkpoint,
        resume=resume,
        metrics=metrics,
        events=events,
        tracer=tracer,
        columnar=columnar,
    )
    service = EvaluationService(metrics=metrics, events=events)
    service.start()
    return FabricHTTPServer((host, port), service, coordinator)
