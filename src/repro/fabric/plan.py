"""Chunk planning and problem serialization for the search fabric.

The coordinator owns the *plan*: the candidate space is the exact sequence
:func:`repro.search.execution_search.candidate_strategies` emits (or its
columnar twin :func:`repro.search.columns.candidate_columns`), sliced into
contiguous ``[start, stop)`` chunks.  A chunk is identified by its index
into that plan; the plan itself is identified by the content-addressed
:func:`fabric_run_key` over the full problem, so a worker that joined the
wrong cluster — or a checkpoint journal from a different problem — is
rejected instead of silently mixing results.

Workers receive the problem over the wire as plain JSON (the same spec
dicts the evaluation service accepts) and re-enumerate the space locally;
enumeration is deterministic, so coordinator and every worker agree on
what global index ``i`` means without ever shipping candidate lists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any

from ..cachekey import run_key
from ..hardware.system import System
from ..llm.config import LLMConfig
from ..search.execution_search import SearchOptions, candidate_strategies

__all__ = [
    "ChunkSpec",
    "enumerate_space",
    "enumerate_serve_space",
    "fabric_run_key",
    "options_from_dict",
    "options_to_dict",
    "plan_chunks",
    "serve_fabric_run_key",
    "serve_options_from_dict",
    "serve_options_to_dict",
]

# The coordinator slices the space into this many chunks per expected
# worker: enough granularity for stealing to rebalance after a death,
# coarse enough that per-chunk HTTP round-trips stay negligible.
CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class ChunkSpec:
    """One contiguous slice ``[start, stop)`` of the candidate sequence."""

    index: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def to_dict(self) -> dict[str, int]:
        return {"index": self.index, "start": self.start, "stop": self.stop}


def plan_chunks(
    total: int, workers: int, *, step: int | None = None
) -> list[ChunkSpec]:
    """Slice ``total`` candidates into contiguous chunks.

    ``step`` (the chunk size) wins when given — a resumed run must reuse
    the journaled layout; otherwise it is derived from the expected worker
    count exactly like ``search()`` derives its pool chunking.
    """
    if total < 0:
        raise ValueError("total must be >= 0")
    if step is None:
        step = math.ceil(total / (max(workers, 1) * CHUNKS_PER_WORKER))
    step = max(int(step), 1)
    return [
        ChunkSpec(index=i, start=start, stop=min(start + step, total))
        for i, start in enumerate(range(0, total, step))
    ]


def fabric_run_key(
    llm: LLMConfig,
    system: System,
    batch: int,
    options: SearchOptions,
    *,
    top_k: int,
) -> str:
    """The content key a fabric run (and its checkpoint journal) lives under.

    ``kind="fabric"`` keeps fabric journals from ever being confused with
    plain-search journals for the same problem; the chunk ``step`` stays
    out of the key (it lives in the journal *meta*, like ``search()``'s)
    so a resume with a different worker count still matches and simply
    reuses the original layout.
    """
    return run_key(llm, system, batch, options, kind="fabric",
                   extra={"top_k": int(top_k)})


def options_to_dict(options: SearchOptions) -> dict[str, Any]:
    """A :class:`SearchOptions` as a JSON-safe dict (tuples become lists)."""
    return {f.name: getattr(options, f.name) for f in fields(SearchOptions)}


def options_from_dict(data: dict[str, Any]) -> SearchOptions:
    """Rebuild a :class:`SearchOptions` from its JSON form.

    JSON turned every tuple into a list (and the nested mode triples into
    lists of lists); restore the dataclass's tuple-of-tuples shape so the
    rebuilt options hash and compare like the original — and produce a
    byte-identical :func:`fabric_run_key`.
    """
    kwargs: dict[str, Any] = {}
    for f in fields(SearchOptions):
        if f.name not in data:
            continue
        value = data[f.name]
        if isinstance(value, list):
            value = tuple(
                tuple(item) if isinstance(item, list) else item
                for item in value
            )
        kwargs[f.name] = value
    return SearchOptions(**kwargs)


def serve_fabric_run_key(
    llm: LLMConfig,
    system: System,
    options: "Any",
    workload: "Any",
    slo: "Any | None",
    *,
    top_k: int,
) -> str:
    """Content key for a fabric-sharded serve-search.

    ``kind="fabric-serve"`` keeps these journals apart from both training
    fabric runs and single-process serve-search journals; the workload and
    SLO ride in the extras so serving keys can never collide with training
    keys for the same (llm, system).
    """
    return run_key(
        llm, system, 0, options, kind="fabric-serve",
        extra={
            "workload": workload.to_dict(),
            "slo": slo.to_dict() if slo is not None else None,
            "top_k": int(top_k),
        },
    )


def serve_options_to_dict(options: "Any") -> dict[str, Any]:
    """A :class:`~repro.serving.ServeSearchOptions` as a JSON-safe dict."""
    from ..serving.search import ServeSearchOptions

    return {f.name: getattr(options, f.name) for f in fields(ServeSearchOptions)}


def serve_options_from_dict(data: dict[str, Any]) -> "Any":
    """Rebuild :class:`~repro.serving.ServeSearchOptions` from JSON form."""
    from ..serving.search import ServeSearchOptions

    kwargs: dict[str, Any] = {}
    for f in fields(ServeSearchOptions):
        if f.name not in data:
            continue
        value = data[f.name]
        if isinstance(value, list):
            value = tuple(value)
        kwargs[f.name] = value
    return ServeSearchOptions(**kwargs)


def enumerate_serve_space(
    llm: LLMConfig,
    system: System,
    options: "Any",
) -> tuple[list, int]:
    """Enumerate the serve-plan sequence once: ``(plans, total)``.

    Deterministic (see :func:`repro.serving.candidate_plans`), so
    coordinator and workers agree on what global index ``i`` means without
    shipping plan lists over the wire.
    """
    from ..serving.search import candidate_plans

    plans = candidate_plans(llm, system, options)
    return plans, len(plans)


def enumerate_space(
    llm: LLMConfig,
    system: System,
    batch: int,
    options: SearchOptions,
    *,
    columnar: bool = True,
) -> tuple[dict | None, list | None, int]:
    """Enumerate the candidate space once: ``(cols, strategies, total)``.

    Prefers the vectorized columnar enumerator (milliseconds even for
    ~100k-candidate spaces); falls back to materializing the scalar
    strategy list when NumPy is below the columnar floor or the option
    space uses mode names the columnar codes don't cover.  Both forms
    describe the *same sequence* — global index ``i`` means the same
    candidate either way.
    """
    cols = None
    if columnar:
        try:
            from ..search.columns import candidate_columns
        except ImportError:
            cols = None
        else:
            cols = candidate_columns(llm, system, batch, options)
    if cols is not None:
        return cols, None, int(cols["t"].shape[0])
    strategies = list(candidate_strategies(llm, system, batch, options))
    return None, strategies, len(strategies)
