"""Distributed search fabric: shard sweeps across worker services.

The fabric composes four existing subsystems into a horizontal search
cluster — content-keyed checkpoints (:mod:`repro.search.checkpoint`),
fault policies (:mod:`repro.search.faults`), the HTTP service plumbing
(:mod:`repro.service`) and the columnar engine (:mod:`repro.engine.batch`):

* :mod:`~repro.fabric.plan` — chunk layout + problem (de)serialization,
  identified by a content-addressed run key;
* :mod:`~repro.fabric.merge` — the associative bounded top-k fold that
  keeps the distributed answer bit-identical to a single process;
* :mod:`~repro.fabric.chunkeval` — the per-chunk evaluator shared by
  workers and the coordinator's serial fallback;
* :mod:`~repro.fabric.coordinator` / :mod:`~repro.fabric.server` — the
  lease state machine and its HTTP face (a grown ``repro.service`` server);
* :mod:`~repro.fabric.worker` — the pull-loop client;
* :mod:`~repro.fabric.cluster` — one-call local cluster
  (``repro fabric --workers N``).

Protocol and bit-identity argument: ``docs/FABRIC.md``.
"""

from .chunkeval import evaluate_chunk, evaluate_serve_chunk
from .cluster import run_fabric
from .coordinator import FabricCoordinator, FabricError
from .merge import TopKMerge
from .plan import (
    ChunkSpec,
    enumerate_serve_space,
    enumerate_space,
    fabric_run_key,
    options_from_dict,
    options_to_dict,
    plan_chunks,
    serve_fabric_run_key,
    serve_options_from_dict,
    serve_options_to_dict,
)
from .server import FabricHTTPServer, make_fabric_server
from .worker import FabricWorker, run_worker

__all__ = [
    "ChunkSpec",
    "FabricCoordinator",
    "FabricError",
    "FabricHTTPServer",
    "FabricWorker",
    "TopKMerge",
    "enumerate_serve_space",
    "enumerate_space",
    "evaluate_chunk",
    "evaluate_serve_chunk",
    "fabric_run_key",
    "make_fabric_server",
    "options_from_dict",
    "options_to_dict",
    "plan_chunks",
    "run_fabric",
    "run_worker",
    "serve_fabric_run_key",
    "serve_options_from_dict",
    "serve_options_to_dict",
]
