"""Chunk evaluation shared by fabric workers and the coordinator's fallback.

One function, one contract: evaluate the candidates with global indices
``[start, stop)`` and return a JSON-safe payload holding the chunk's
candidate count, feasible count, bounded top-k entries and (optionally) a
metrics snapshot plus trace spans.  The same code runs inside every worker
process *and* inside the coordinator when a chunk exhausts its lease
retries (the serial-fallback mirror of
:func:`repro.search.faults.run_supervised`), so a degraded cluster computes
exactly what a healthy one would.

Bit-identity: the columnar path slices the global column arrays and runs
the batch stages over the slice.  Per-candidate results are independent of
batch composition (the columnar engine's equivalence contract), so the
rates produced for rows ``[start, stop)`` are bit-identical to a
whole-space run.  Local top-k selection uses the same
``lexsort((stream_rank, -rate))`` retention as ``_search_columnar``; the
shipped entries carry ``gidx = start + row`` so the coordinator's
:class:`~repro.fabric.merge.TopKMerge` ranks them on the global
``(-rate, gidx)`` total order.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

from ..engine import comm_cache_stats
from ..hardware.system import System
from ..llm.config import LLMConfig
from ..obs import M_COMM_CACHE_HITS, M_COMM_CACHE_MISSES, MetricsRegistry, Tracer
from ..obs.stats import M_CHUNK_SECONDS
from ..search.execution_search import _chunk_trace_events
from .merge import TopKMerge

__all__ = ["evaluate_chunk", "evaluate_serve_chunk"]


def evaluate_chunk(
    llm: LLMConfig,
    system: System,
    start: int,
    stop: int,
    top_k: int,
    *,
    cols: dict | None = None,
    strategies: list | None = None,
    chunk_index: int = 0,
    instrument: bool = True,
    trace_id: str | None = None,
    floor_rate: float = 0.0,
) -> dict[str, Any]:
    """Evaluate global candidates ``[start, stop)``; return a wire payload.

    Exactly one of ``cols`` (full-space columnar arrays) or ``strategies``
    (the full scalar candidate list) must be provided; the slice is taken
    here so callers hold one enumeration for all their chunks.

    ``floor_rate`` is the coordinator's gossiped rate ceiling — the
    cluster-wide k-th-best rate at lease-grant time.  The columnar path
    seeds its adaptive threshold with it, so buckets provably below the
    cluster's already-achieved top-k are skipped without pricing a single
    comm kernel.  Lossless by construction: only candidates whose rate is
    *strictly* below the floor are skipped, and the merge could never
    retain those.  Non-finite or negative floors are ignored.

    The payload::

        {"n": int, "feasible": int,
         "top": [[rate, gidx, strategy_dict], ...],   # best first
         "floor_rate": float,   # this chunk's local k-th-best rate report
         "snapshot": metrics-snapshot | None,
         "events": [trace spans] | None,
         "elapsed_s": float}
    """
    if (cols is None) == (strategies is None):
        raise ValueError("provide exactly one of cols / strategies")
    registry = MetricsRegistry() if instrument else None
    t0 = perf_counter()
    cc0 = comm_cache_stats() if registry is not None else (0, 0)
    if cols is not None:
        n, feasible, top = _evaluate_columnar(
            llm, system, cols, start, stop, top_k, registry, floor_rate
        )
    else:
        n, feasible, top = _evaluate_scalar(
            llm, system, strategies, start, stop, top_k
        )
    elapsed = perf_counter() - t0
    # Local k-th-best report for threshold gossip: the shipped list is
    # ranked best-first, so a full list's tail is the chunk's k-th best.
    local_floor = float(top[-1][0]) if len(top) == top_k and top else 0.0
    snapshot = events = None
    if registry is not None:
        cc1 = comm_cache_stats()
        registry.inc(M_COMM_CACHE_HITS, cc1[0] - cc0[0])
        registry.inc(M_COMM_CACHE_MISSES, cc1[1] - cc0[1])
        registry.observe(M_CHUNK_SECONDS, elapsed)
        tracer = Tracer(trace_id=trace_id)
        _chunk_trace_events(tracer, chunk_index, registry, t0, elapsed,
                            n, feasible)
        snapshot = registry.snapshot()
        events = tracer.events()
    return {
        "n": n,
        "feasible": feasible,
        "top": top,
        "floor_rate": local_floor,
        "snapshot": snapshot,
        "events": events,
        "elapsed_s": elapsed,
    }


def _evaluate_columnar(
    llm, system, cols, start, stop, top_k, registry, floor_rate=0.0
):
    import numpy as np

    from ..engine import batch as engine_batch

    sub = {name: arr[start:stop] for name, arr in cols.items()}
    eb = engine_batch.EvalBatch.from_columns(llm, system, sub)
    # Best-bound-first tiling with the gossiped floor as the starting
    # threshold.  Skipped candidates are provably strictly below the floor
    # (and below this chunk's own k-th best), so the shipped top-k is
    # bit-identical to an untiled, un-gossiped evaluation of the slice.
    plan = None
    if top_k > 0:
        plan = engine_batch.AdaptivePlan(top_k=top_k, floor_rate=floor_rate)
    engine_batch.run_batch(eb, prune_above=None, metrics=registry,
                           adaptive=plan)
    # Bound-skipped candidates are memory-feasible by construction, so they
    # count toward feasibility exactly as fully-priced survivors do.
    feasible = int(eb.n_s) + int(getattr(eb, "n_pruned", 0))
    top: list[list[Any]] = []
    if top_k > 0 and eb.n_s > 0:
        # Same retention rule as _search_columnar: ties at the k-th rate
        # keep the earliest candidates in *stream* order; the shipped list
        # is then ranked by (-rate, global index).
        srank = eb.stream_rank[eb.sidx]
        keep = np.lexsort((srank, -eb.rate_s))[:top_k]
        order = np.lexsort((eb.sidx[keep], -eb.rate_s[keep]))
        for i in keep[order]:
            row = int(eb.sidx[i])
            top.append([
                float(eb.rate_s[i]),
                start + row,
                eb.strategy_at(row).to_dict(),
            ])
    return int(eb.n), feasible, top


def evaluate_serve_chunk(
    llm: LLMConfig,
    system: System,
    start: int,
    stop: int,
    top_k: int,
    *,
    plans: list,
    workload: Any,
    slo: Any | None = None,
    prune: bool = True,
    max_batch: int | None = None,
    chunk_index: int = 0,
    instrument: bool = True,
    trace_id: str | None = None,
) -> dict[str, Any]:
    """Simulate serve plans with global indices ``[start, stop)``.

    The serving twin of :func:`evaluate_chunk`: the same wire-payload
    shape, with goodput as the merge rate and the serve plan dict as the
    payload — so :class:`~repro.fabric.merge.TopKMerge`'s ``(-rate, gidx)``
    total order reproduces serve-search's ``(-goodput, gidx)`` ranking
    bit-identically regardless of chunking (``tests/test_fabric_serve.py``).

    The payload::

        {"n": int, "simulated": int, "pruned": int, "infeasible": int,
         "violated": int,
         "top": [[goodput, gidx, plan_dict], ...],   # best first
         "snapshot": metrics-snapshot | None,
         "events": [trace spans] | None,
         "elapsed_s": float}
    """
    from ..serving.search import _serve_chunk
    from ..serving.stats import (
        M_SERVE_CANDIDATES,
        M_SERVE_INFEASIBLE,
        M_SERVE_PRUNED,
        M_SERVE_SIMULATED,
        M_SERVE_VIOLATED,
    )

    indexed = [(gidx, plans[gidx]) for gidx in range(start, stop)]
    t0 = perf_counter()
    n, simulated, pruned, infeasible, violated, top, _snap, _ev = _serve_chunk((
        llm, system, indexed, workload, slo, top_k, False, chunk_index,
        None, prune, max_batch, trace_id,
    ))
    elapsed = perf_counter() - t0
    snapshot = events = None
    if instrument:
        registry = MetricsRegistry()
        registry.inc(M_SERVE_CANDIDATES, n)
        registry.inc(M_SERVE_SIMULATED, simulated)
        registry.inc(M_SERVE_PRUNED, pruned)
        registry.inc(M_SERVE_INFEASIBLE, infeasible)
        registry.inc(M_SERVE_VIOLATED, violated)
        registry.observe(M_CHUNK_SECONDS, elapsed)
        tracer = Tracer(trace_id=trace_id)
        tracer.add_span(
            f"serve-chunk[{chunk_index}]", "serve.chunk", t0, elapsed,
            plans=n, simulated=simulated, pruned=pruned, trace_id=trace_id,
        )
        snapshot = registry.snapshot()
        events = tracer.events()
    return {
        "n": n,
        "simulated": simulated,
        "pruned": pruned,
        "infeasible": infeasible,
        "violated": violated,
        "top": [[g, gidx, plan.to_dict()] for g, gidx, plan, _stats in top],
        "snapshot": snapshot,
        "events": events,
        "elapsed_s": elapsed,
    }


def _evaluate_scalar(llm, system, strategies, start, stop, top_k):
    from ..engine import evaluate

    merge = TopKMerge(top_k)
    feasible = 0
    chunk = strategies[start:stop]
    for offset, strategy in enumerate(chunk):
        result = evaluate(llm, system, strategy)
        if not result.feasible:
            continue
        feasible += 1
        merge.add(result.sample_rate, start + offset, strategy)
    top = [
        [rate, gidx, strategy.to_dict()]
        for rate, gidx, strategy in merge.entries()
    ]
    return len(chunk), feasible, top
