"""Run a complete fabric cluster on one machine: coordinator + N workers.

:func:`run_fabric` is the one-call form behind ``repro fabric --workers N``:
it boots a :class:`~repro.fabric.server.FabricHTTPServer` on a loopback
port, spawns ``N`` worker subprocesses (each runs
``python -m repro fabric --join <url>``, i.e. exactly what an external
node would run against a remote coordinator), waits for the merged result,
and tears everything down.  Workers that die are survivable by
construction — their leases expire and the survivors steal the chunks —
so teardown only has to reap whatever is still alive.

For tests that want the protocol without process-spawn latency,
``spawn="thread"`` runs each :class:`~repro.fabric.worker.FabricWorker`
loop in a daemon thread over real HTTP to the same server.
"""

from __future__ import annotations

import logging
import os
import subprocess
import sys
import threading
from time import perf_counter

from ..search.execution_search import SearchResult
from .server import make_fabric_server
from .worker import FabricWorker

logger = logging.getLogger(__name__)

__all__ = ["run_fabric"]


def run_fabric(
    llm,
    system,
    batch,
    options=None,
    *,
    workers: int = 4,
    top_k: int = 10,
    host: str = "127.0.0.1",
    port: int = 0,
    lease_timeout: float | None = None,
    retry_policy=None,
    checkpoint: str | None = None,
    resume: bool = False,
    events=None,
    tracer=None,
    columnar: bool | None = None,
    timeout: float = 600.0,
    spawn: str = "process",
    worker_env: dict[str, str] | None = None,
) -> SearchResult:
    """Shard one search across a local cluster; return the merged result.

    ``spawn="process"`` (default) launches each worker as a fresh
    ``python -m repro fabric --join`` subprocess; ``spawn="thread"`` runs
    the worker loops in-process (same wire protocol, no boot cost).
    ``worker_env`` adds environment variables to spawned workers — the
    fault-drill hooks (``REPRO_FABRIC_CRASH_AT_LEASE``) ride in this way.

    The result carries ``stats`` (worker-merged engine counters) and the
    coordinator's sweep window is exposed on the returned result as
    ``result.stats.elapsed`` includes enumeration and merge; callers that
    want the lease-to-merge window read the coordinator via the
    ``fabric.done`` event's ``sweep_s`` field or
    :attr:`FabricCoordinator.sweep_seconds` (the benchmark does).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if spawn not in ("process", "thread"):
        raise ValueError("spawn must be 'process' or 'thread'")
    server = make_fabric_server(
        llm, system, batch, options,
        host=host, port=port, top_k=top_k,
        expected_workers=workers,
        lease_timeout=lease_timeout,
        retry_policy=retry_policy,
        checkpoint=checkpoint, resume=resume,
        events=events, tracer=tracer, columnar=columnar,
    )
    url = f"http://{host}:{server.port}"
    serve_thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05},
        daemon=True, name="fabric-coordinator",
    )
    serve_thread.start()
    procs: list[subprocess.Popen] = []
    threads: list[threading.Thread] = []
    t_boot = perf_counter()
    try:
        if spawn == "process":
            env = {**os.environ, **(worker_env or {})}
            env["PYTHONPATH"] = _pythonpath(env)
            for i in range(workers):
                procs.append(subprocess.Popen(
                    [sys.executable, "-m", "repro", "fabric",
                     "--join", url, "--name", f"local-{i}"],
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                ))
        else:
            def _loop(i: int) -> None:
                try:
                    FabricWorker(url, name=f"thread-{i}").run()
                except Exception:
                    logger.exception("in-thread fabric worker %d died", i)

            for i in range(workers):
                t = threading.Thread(target=_loop, args=(i,), daemon=True,
                                     name=f"fabric-worker-{i}")
                t.start()
                threads.append(t)
        result = server.coordinator.result(timeout=timeout)
        result_total_s = perf_counter() - t_boot
        logger.info(
            "fabric sweep done: %d candidates, sweep %.3fs, total %.3fs",
            result.num_evaluated,
            server.coordinator.sweep_seconds or -1.0, result_total_s,
        )
        return result
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
        for t in threads:
            t.join(timeout=5.0)
        server.shutdown()
        server.server_close()
        server.service.stop(drain=False)


def _pythonpath(env: dict[str, str]) -> str:
    """Ensure spawned workers can import ``repro`` from a src/ checkout."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    current = env.get("PYTHONPATH")
    if not current:
        return src
    if src in current.split(os.pathsep):
        return current
    return src + os.pathsep + current
