"""A fabric worker: join a coordinator, pull leases, evaluate, post results.

A worker is a thin loop over :class:`~repro.service.client.ServiceClient`'s
transport (same retry/backoff machinery the query CLI uses):

1. ``POST /fabric/register`` → worker id, the problem spec, the
   coordinator's ``trace_id``;
2. re-enumerate the candidate space locally (enumeration is deterministic,
   so global indices agree with the coordinator by construction) and
   verify the content key matches — a worker pointed at the wrong cluster
   refuses instead of polluting the merge;
3. loop ``POST /chunk/lease`` → evaluate the ``[start, stop)`` slice with
   :func:`~repro.fabric.chunkeval.evaluate_chunk` → ``POST /chunk/result``
   until the coordinator answers ``done``.

Every chunk payload carries a metrics snapshot and trace spans stamped
with the coordinator's ``trace_id``, so ``repro trace`` renders the whole
cluster as one timeline.

Two environment hooks make cluster fault drills deterministic (the fabric
twin of :class:`~repro.search.faults.FaultInjector`):

* ``REPRO_FABRIC_CRASH_AT_LEASE=k`` — ``os._exit(23)`` immediately after
  acquiring the k-th lease (1-based): a held lease dies with the process.
* ``REPRO_FABRIC_HOLD_AT_LEASE=k`` — print ``HOLDING chunk=<i>`` on stdout
  after acquiring the k-th lease and sleep forever; the CI harness SIGKILLs
  the worker mid-lease at a known point.
"""

from __future__ import annotations

import logging
import os
import sys
import time
from typing import Any

from ..io.specs import llm_from_spec, system_from_spec
from ..service.client import ServiceClient
from .chunkeval import evaluate_chunk
from .plan import fabric_run_key, options_from_dict

logger = logging.getLogger(__name__)

__all__ = ["FabricWorker", "run_worker"]

ENV_CRASH_AT_LEASE = "REPRO_FABRIC_CRASH_AT_LEASE"
ENV_HOLD_AT_LEASE = "REPRO_FABRIC_HOLD_AT_LEASE"


class FabricWorker:
    """One pull-loop participant of a fabric cluster."""

    def __init__(
        self,
        base_url: str,
        *,
        name: str | None = None,
        client: ServiceClient | None = None,
        columnar: bool | None = None,
    ):
        self.client = client if client is not None else ServiceClient(base_url)
        self.name = name or f"worker-{os.getpid()}"
        self.columnar = columnar
        self.worker_id: str | None = None
        self.key: str | None = None
        self.trace_id: str | None = None
        self.instrument = True
        self.chunks_done = 0
        self._llm = None
        self._system = None
        self._cols = None
        self._strategies = None
        self._top_k = 0
        self._poll_s = 0.02

    # -- join ----------------------------------------------------------------

    def register(self) -> dict:
        """Join the cluster and rebuild the problem from the wire spec."""
        reply = self.client.post(
            "/fabric/register", {"name": self.name, "pid": os.getpid()}
        )
        problem = reply["problem"]
        self._llm = llm_from_spec(problem["llm"])
        self._system = system_from_spec(problem["system"])
        options = options_from_dict(problem["options"])
        self._top_k = int(problem["top_k"])
        key = fabric_run_key(
            self._llm, self._system, int(problem["batch"]), options,
            top_k=self._top_k,
        )
        if key != reply["key"]:
            raise RuntimeError(
                f"problem key mismatch: coordinator says "
                f"{reply['key'][:12]}…, local enumeration gives {key[:12]}… "
                "(engine or spec version skew between nodes?)"
            )
        from .plan import enumerate_space

        self._cols, self._strategies, total = enumerate_space(
            self._llm, self._system, int(problem["batch"]), options,
            columnar=self.columnar is not False,
        )
        if total != int(problem["total"]):
            raise RuntimeError(
                f"enumeration disagrees with coordinator: "
                f"{total} candidates locally vs {problem['total']}"
            )
        self.worker_id = reply["worker_id"]
        self.key = key
        self.trace_id = reply.get("trace_id")
        self.instrument = bool(reply.get("instrument", True))
        self._poll_s = float(reply.get("poll_s") or self._poll_s)
        logger.info(
            "joined fabric as %s (%d candidates, top_k=%d)",
            self.worker_id, total, self._top_k,
        )
        return reply

    # -- pull loop -----------------------------------------------------------

    def _fault_hooks(self, chunk_index: int) -> None:
        crash_at = int(os.environ.get(ENV_CRASH_AT_LEASE) or 0)
        hold_at = int(os.environ.get(ENV_HOLD_AT_LEASE) or 0)
        lease_no = self.chunks_done + 1
        if crash_at and lease_no == crash_at:
            logger.warning("fault hook: crashing at lease %d", lease_no)
            os._exit(23)
        if hold_at and lease_no == hold_at:
            # The harness greps stdout for this line, then SIGKILLs us: a
            # deterministic "worker wedged mid-lease" without timing games.
            print(f"HOLDING chunk={chunk_index}", flush=True)  # noqa: T201
            while True:
                time.sleep(3600)

    def run(self, *, max_chunks: int | None = None) -> int:
        """Pull and evaluate until the coordinator says done.

        Returns the number of chunks this worker completed.  ``max_chunks``
        lets tests stop a worker early (its leases then expire and are
        stolen by the survivors).
        """
        if self.worker_id is None:
            self.register()
        while True:
            if max_chunks is not None and self.chunks_done >= max_chunks:
                return self.chunks_done
            reply = self.client.post("/chunk/lease", {"worker": self.worker_id})
            status = reply.get("status")
            if status == "done":
                return self.chunks_done
            if status == "wait":
                time.sleep(float(reply.get("poll_s") or self._poll_s))
                continue
            chunk = reply["chunk"]
            self._fault_hooks(int(chunk["index"]))
            payload = self.evaluate(
                chunk, floor_rate=float(reply.get("floor_rate") or 0.0)
            )
            self.client.post(
                "/chunk/result",
                {
                    "worker": self.worker_id,
                    "chunk": int(chunk["index"]),
                    "key": self.key,
                    "payload": payload,
                },
            )
            self.chunks_done += 1

    def evaluate(self, chunk: dict, *, floor_rate: float = 0.0) -> dict[str, Any]:
        return evaluate_chunk(
            self._llm, self._system,
            int(chunk["start"]), int(chunk["stop"]), self._top_k,
            cols=self._cols, strategies=self._strategies,
            chunk_index=int(chunk["index"]),
            instrument=self.instrument,
            trace_id=self.trace_id,
            floor_rate=floor_rate,
        )


def run_worker(
    url: str,
    *,
    name: str | None = None,
    columnar: bool | None = None,
) -> int:
    """CLI entry: join ``url``, work until done, return chunk count."""
    worker = FabricWorker(url, name=name, columnar=columnar)
    worker.register()
    done = worker.run()
    logger.info("fabric worker %s finished %d chunks", worker.name, done)
    return done


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin
    import argparse

    parser = argparse.ArgumentParser(description="repro fabric worker")
    parser.add_argument("url")
    parser.add_argument("--name")
    args = parser.parse_args(argv)
    logging.basicConfig(level=logging.INFO, stream=sys.stderr)
    run_worker(args.url, name=args.name)
    return 0
