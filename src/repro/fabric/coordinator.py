"""The fabric coordinator: lease-based work stealing over search chunks.

The coordinator owns one sweep.  It plans the chunk layout
(:func:`~repro.fabric.plan.plan_chunks`), journals completed chunks through
:class:`~repro.search.checkpoint.CheckpointJournal` (same format, same
resume semantics as ``search(checkpoint=...)``), and hands chunks to
workers over a **pull** protocol:

* ``POST /fabric/register`` — a worker announces itself and receives the
  problem (LLM/system specs, options, chunk step, the content-addressed
  :func:`~repro.fabric.plan.fabric_run_key`) plus the coordinator's
  ``trace_id``.  Workers re-enumerate the space locally, so the wire
  carries specs, never candidate lists.
* ``POST /chunk/lease`` — a worker asks for work.  The coordinator grants
  the next pending chunk under a wall-clock lease, tells callers to
  ``wait`` while the worker barrier or outstanding leases hold, and
  answers ``done`` when every chunk is merged.
* ``POST /chunk/result`` — a worker posts a finished chunk payload
  (:func:`~repro.fabric.chunkeval.evaluate_chunk`'s wire form).  Results
  are idempotent: a stale duplicate (the lease already expired and another
  worker re-ran the chunk) is acknowledged and discarded — the engine is
  deterministic, so both copies are byte-equal anyway.

**Lease state machine** (see ``docs/FABRIC.md``): a chunk is ``pending`` →
``leased`` → ``done``; an expired lease returns the chunk to ``pending``
(emitting ``lease.expire``, and ``worker.dead`` the first time a worker
loses one), and the next grant to a *different* worker is a steal
(``lease.steal``).  Each grant counts as one attempt; a chunk that exhausts
``RetryPolicy.max_retries + 1`` attempts is evaluated inline by the
coordinator (``chunk.serial_fallback``, exactly like ``run_supervised``)
or — with ``serial_fallback=False`` — dropped into ``stats.skipped``.

Reaping is lazy: expiry is checked whenever any worker calls in (a live
cluster polls constantly, so leases are reclaimed within one poll
interval), and :meth:`FabricCoordinator.result` sweeps once more while
waiting so a fully dead cluster still degrades to the serial fallback.

The merged answer is bit-identical to single-process ``search()`` — the
per-chunk columnar slices are bit-identical by the engine's batch-
composition contract, and :class:`~repro.fabric.merge.TopKMerge` ranks on
the total order ``(-rate, global index)``, making the fold associative and
commutative (the bit-identity argument is laid out in ``docs/FABRIC.md``).
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

import numpy as np

from ..execution.strategy import ExecutionStrategy
from ..hardware.system import System
from ..io.specs import system_to_dict
from ..llm.config import LLMConfig
from ..obs import (
    EventJournal,
    MetricsRegistry,
    PruneStats,
    SweepStats,
    Tracer,
    escape_label_value,
)
from ..search.checkpoint import CheckpointJournal
from ..search.execution_search import SearchOptions, SearchResult
from ..search.faults import RetryPolicy
from .chunkeval import evaluate_chunk
from .merge import TopKMerge
from .plan import (
    ChunkSpec,
    enumerate_space,
    fabric_run_key,
    options_to_dict,
    plan_chunks,
)

logger = logging.getLogger(__name__)

FABRIC_VERSION = 1

# How long a worker may sit on a chunk before its lease is reclaimed.  The
# GPT-3 demo chunk runs in tens of milliseconds; real sweeps stay well
# under this, and a SIGKILLed worker costs at most one lease window.
DEFAULT_LEASE_TIMEOUT = 30.0

# What callers are told to sleep between /chunk/lease polls while waiting.
DEFAULT_POLL_S = 0.02

# -- fabric metric names ------------------------------------------------------
M_F_CHUNKS_DONE = "fabric.chunks.done"
M_F_CHUNKS_FALLBACK = "fabric.chunks.serial_fallback"
M_F_CHUNKS_SKIPPED = "fabric.chunks.skipped"
M_F_LEASES_GRANTED = "fabric.leases.granted"
M_F_LEASES_EXPIRED = "fabric.leases.expired"
M_F_LEASES_STOLEN = "fabric.leases.stolen"
M_F_WORKERS_JOINED = "fabric.workers.joined"
M_F_WORKERS_DEAD = "fabric.workers.dead"
M_F_CHUNK_SECONDS = "fabric.chunk.seconds"


class FabricError(RuntimeError):
    """A protocol violation the HTTP layer maps to a 4xx answer."""


@dataclass
class _Lease:
    chunk: ChunkSpec
    worker: str
    granted: float
    deadline: float


@dataclass
class _Worker:
    worker_id: str
    name: str
    pid: int | None
    joined: float
    chunks: int = 0
    candidates: int = 0
    dead: bool = False


@dataclass
class _ChunkState:
    spec: ChunkSpec
    attempts: int = 0
    last_worker: str | None = None
    done: bool = False
    skipped: bool = False
    fallback: bool = False


class FabricCoordinator:
    """Shards one search across leased chunks and merges the answers.

    Thread-safe: every mutation happens under one lock (HTTP handler
    threads call :meth:`register`/:meth:`lease`/:meth:`submit`
    concurrently).  The rare serial-fallback evaluation runs inline under
    the lock — a degraded cluster prefers correctness over concurrency.
    """

    def __init__(
        self,
        llm: LLMConfig,
        system: System,
        batch: int,
        options: SearchOptions | None = None,
        *,
        top_k: int = 10,
        expected_workers: int = 1,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        retry_policy: RetryPolicy | None = None,
        checkpoint: str | None = None,
        resume: bool = False,
        metrics: MetricsRegistry | None = None,
        events: EventJournal | None = None,
        tracer: Tracer | None = None,
        columnar: bool | None = None,
    ):
        if expected_workers < 1:
            raise ValueError("expected_workers must be >= 1")
        self.llm = llm
        self.system = system
        self.batch = batch
        self.options = options or SearchOptions()
        self.top_k = int(top_k)
        self.expected_workers = int(expected_workers)
        self.lease_timeout = float(lease_timeout)
        self.policy = retry_policy or RetryPolicy()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events
        self.tracer = tracer
        # Per-chunk instrumentation (metrics snapshot + trace spans) roughly
        # doubles a chunk's cost; workers only pay it when a tracer is
        # actually collecting the spans on this side.
        self.instrument = tracer is not None
        self.key = fabric_run_key(llm, system, batch, self.options,
                                  top_k=self.top_k)

        self._cols, self._strategies, self.total = enumerate_space(
            llm, system, batch, self.options,
            columnar=columnar is not False,
        )

        step = None
        self.journal = None
        if checkpoint is not None:
            self.journal = CheckpointJournal.open(
                checkpoint, self.key, resume=resume,
                meta={
                    "step": None,
                    "num_candidates": self.total,
                    "trace_id": tracer.trace_id if tracer is not None else None,
                },
                events=events,
            )
            # The journal's chunk layout wins on resume — chunk ids must
            # mean the same [start, stop) ranges the original run recorded.
            step = self.journal.meta.get("step") or None
            if tracer is not None and self.journal.meta.get("trace_id"):
                tracer.trace_id = str(self.journal.meta["trace_id"])

        chunks = plan_chunks(self.total, self.expected_workers, step=step)
        if self.journal is not None:
            self.journal.meta["step"] = chunks[0].size if chunks else self.total
            self.journal.flush()

        self._lock = threading.Lock()
        self._chunks = {c.index: _ChunkState(spec=c) for c in chunks}
        self._pending: list[int] = [c.index for c in chunks]
        self._leases: dict[int, _Lease] = {}
        self._workers: dict[str, _Worker] = {}
        self._merge = TopKMerge(self.top_k)
        self._snapshots: list[dict] = []
        self._num_evaluated = 0
        self._num_feasible = 0
        self._retries = 0
        self._resumed = 0
        self._done_event = threading.Event()
        self._t_start = perf_counter()
        self._t_first_grant: float | None = None
        self._t_done: float | None = None

        if self.journal is not None and resume:
            self._adopt_journal()
        self._emit(
            "fabric.start", key=self.key[:16], candidates=self.total,
            chunks=len(chunks), step=chunks[0].size if chunks else 0,
            expected_workers=self.expected_workers, resumed=self._resumed,
        )
        self._maybe_finish_locked()

    # -- internal helpers ----------------------------------------------------

    def _emit(self, kind: str, **fields: Any) -> None:
        if self.events is not None:
            self.events.emit(kind, **fields)

    def _adopt_journal(self) -> None:
        """Fold already-journaled chunk payloads into the merge state."""
        for rid, payload in self.journal.records().items():
            state = self._chunks.get(int(rid))
            if state is None or not isinstance(payload, dict):
                continue
            self._absorb(state, payload, worker=None)
            state.done = True
            if int(rid) in self._pending:
                self._pending.remove(int(rid))
            self._resumed += 1
            self._emit("chunk.resumed", chunk=int(rid),
                       start=state.spec.start, stop=state.spec.stop)

    def _absorb(self, state: _ChunkState, payload: dict,
                *, worker: str | None) -> None:
        """Merge one chunk payload into the top-k, counters and journal."""
        self._num_evaluated += int(payload.get("n", 0))
        self._num_feasible += int(payload.get("feasible", 0))
        self._merge.extend(
            (float(rate), int(gidx), strat_dict)
            for rate, gidx, strat_dict in payload.get("top") or []
        )
        snapshot = payload.get("snapshot")
        if snapshot:
            self._snapshots.append(snapshot)
        if self.tracer is not None and payload.get("events"):
            label = f"worker {worker}" if worker else "worker"
            self.tracer.add_events(payload["events"], label=label)

    def _gossip_floor_locked(self) -> float:
        """The cluster's current k-th-best rate, clamped safe for the wire.

        This is the threshold-gossip payload: a full merge heap proves the
        cluster already holds ``top_k`` candidates at or above this rate,
        so workers may skip buckets whose sound upper bound falls strictly
        below it.  ``0.0`` (no pruning) while the heap is short or the
        threshold is non-finite — an empty or poisoned merge must never
        tighten anyone's ceiling.
        """
        entry = self._merge.threshold()
        if entry is None:
            return 0.0
        rate = float(entry[0])
        if not np.isfinite(rate) or rate < 0.0:
            return 0.0
        return rate

    def _reap_expired_locked(self) -> None:
        now = perf_counter()
        for index in [i for i, l in self._leases.items() if now > l.deadline]:
            lease = self._leases.pop(index)
            self.metrics.inc(M_F_LEASES_EXPIRED)
            self._emit(
                "lease.expire", chunk=index, worker=lease.worker,
                held_s=now - lease.granted, timeout_s=self.lease_timeout,
            )
            worker = self._workers.get(lease.worker)
            if worker is not None and not worker.dead:
                # One expired lease is taken as death: live workers renew by
                # finishing chunks well inside the lease window.
                worker.dead = True
                self.metrics.inc(M_F_WORKERS_DEAD)
                self._emit("worker.dead", worker=lease.worker,
                           name=worker.name, chunk=index)
            self._pending.insert(0, index)
            logger.warning(
                "lease on chunk %d expired (worker %s); re-queued",
                index, lease.worker,
            )

    def _fallback_locked(self, state: _ChunkState) -> None:
        """Retries exhausted: evaluate inline, or skip the chunk's range."""
        spec = state.spec
        if self.policy.serial_fallback:
            self.metrics.inc(M_F_CHUNKS_FALLBACK)
            self._emit("chunk.serial_fallback", chunk=spec.index,
                       start=spec.start, stop=spec.stop)
            logger.warning(
                "chunk %d failed %d leases; evaluating inline",
                spec.index, state.attempts,
            )
            payload = evaluate_chunk(
                self.llm, self.system, spec.start, spec.stop, self.top_k,
                cols=self._cols, strategies=self._strategies,
                chunk_index=spec.index, instrument=self.instrument,
                trace_id=self.tracer.trace_id if self.tracer else None,
                floor_rate=self._gossip_floor_locked(),
            )
            state.fallback = True
            self._complete_locked(state, payload, worker=None)
        else:
            state.skipped = True
            state.done = True
            self.metrics.inc(M_F_CHUNKS_SKIPPED)
            self._emit("chunk.skipped", chunk=spec.index,
                       start=spec.start, stop=spec.stop)
            logger.error(
                "chunk %d failed %d leases; range [%d, %d) skipped",
                spec.index, state.attempts, spec.start, spec.stop,
            )
            self._maybe_finish_locked()

    def _complete_locked(self, state: _ChunkState, payload: dict,
                         *, worker: str | None) -> None:
        self._absorb(state, payload, worker=worker)
        state.done = True
        self.metrics.inc(M_F_CHUNKS_DONE)
        if payload.get("elapsed_s") is not None:
            self.metrics.observe(M_F_CHUNK_SECONDS, float(payload["elapsed_s"]))
        if self.journal is not None:
            record = {k: payload.get(k) for k in
                      ("n", "feasible", "top", "snapshot")}
            self.journal.record(str(state.spec.index), record)
        self._emit(
            "merge.chunk", chunk=state.spec.index, worker=worker,
            feasible=int(payload.get("feasible", 0)),
            n=int(payload.get("n", 0)),
            retained=len(self._merge),
        )
        self._maybe_finish_locked()

    def _maybe_finish_locked(self) -> None:
        if not self._pending and not self._leases and all(
            s.done for s in self._chunks.values()
        ):
            self._finish_locked()

    def _finish_locked(self) -> None:
        if self._done_event.is_set():
            return
        self._t_done = perf_counter()
        self._emit(
            "fabric.done", key=self.key[:16],
            evaluated=self._num_evaluated, feasible=self._num_feasible,
            sweep_s=self.sweep_seconds,
        )
        self._done_event.set()

    # -- protocol ------------------------------------------------------------

    def register(self, name: str, pid: int | None = None) -> dict:
        """A worker joins; returns its id plus the full problem statement."""
        with self._lock:
            worker_id = f"{name}#{len(self._workers)}"
            self._workers[worker_id] = _Worker(
                worker_id=worker_id, name=str(name), pid=pid,
                joined=perf_counter(),
            )
            self.metrics.inc(M_F_WORKERS_JOINED)
            self._emit("worker.join", worker=worker_id, name=str(name),
                       worker_pid=pid)
            step = next(iter(self._chunks.values())).spec.size \
                if self._chunks else self.total
            return {
                "worker_id": worker_id,
                "fabric_version": FABRIC_VERSION,
                "key": self.key,
                "trace_id": self.tracer.trace_id if self.tracer else None,
                "instrument": self.instrument,
                "poll_s": DEFAULT_POLL_S,
                "problem": {
                    "llm": self.llm.to_dict(),
                    "system": system_to_dict(self.system),
                    "batch": self.batch,
                    "options": options_to_dict(self.options),
                    "top_k": self.top_k,
                    "total": self.total,
                    "step": step,
                },
            }

    def lease(self, worker_id: str) -> dict:
        """Grant the next pending chunk, or say wait/done."""
        with self._lock:
            if worker_id not in self._workers:
                raise FabricError(f"unknown worker {worker_id!r}; register first")
            self._reap_expired_locked()
            if self._done_event.is_set():
                return {"status": "done"}
            # Barrier: chunk sizing assumed expected_workers pullers; handing
            # the whole space to an early bird would serialize the sweep.
            if len(self._workers) < self.expected_workers:
                return {"status": "wait", "poll_s": DEFAULT_POLL_S,
                        "reason": "waiting for workers"}
            while self._pending:
                index = self._pending.pop(0)
                state = self._chunks[index]
                state.attempts += 1
                if state.attempts > self.policy.max_retries + 1:
                    self._fallback_locked(state)
                    if self._done_event.is_set():
                        return {"status": "done"}
                    continue
                if state.attempts > 1:
                    self._retries += 1
                now = perf_counter()
                if self._t_first_grant is None:
                    self._t_first_grant = now
                self._leases[index] = _Lease(
                    chunk=state.spec, worker=worker_id,
                    granted=now, deadline=now + self.lease_timeout,
                )
                self.metrics.inc(M_F_LEASES_GRANTED)
                stolen = (
                    state.last_worker is not None
                    and state.last_worker != worker_id
                )
                if stolen:
                    self.metrics.inc(M_F_LEASES_STOLEN)
                    self._emit("lease.steal", chunk=index, worker=worker_id,
                               previous=state.last_worker)
                state.last_worker = worker_id
                # Threshold gossip: every grant carries the cluster-wide
                # k-th-best rate so far.  Chunks already absorbed tighten
                # the ceiling for every chunk still to run.
                floor = self._gossip_floor_locked()
                self._emit(
                    "lease.grant", chunk=index, worker=worker_id,
                    start=state.spec.start, stop=state.spec.stop,
                    attempt=state.attempts, stolen=stolen,
                    floor_rate=floor,
                )
                return {
                    "status": "lease",
                    "chunk": state.spec.to_dict(),
                    "attempt": state.attempts,
                    "deadline_s": self.lease_timeout,
                    "floor_rate": floor,
                }
            if self._leases:
                return {"status": "wait", "poll_s": DEFAULT_POLL_S,
                        "reason": "chunks in flight"}
            self._maybe_finish_locked()
            return {"status": "done"}

    def submit(self, worker_id: str, chunk_index: int, payload: dict,
               key: str | None = None) -> dict:
        """Accept one finished chunk; idempotent for stale duplicates."""
        if key is not None and key != self.key:
            raise FabricError(
                f"result for run {key[:12]}… does not belong to this "
                f"fabric ({self.key[:12]}…)"
            )
        if not isinstance(payload, dict) or "n" not in payload:
            raise FabricError("malformed chunk payload")
        with self._lock:
            state = self._chunks.get(int(chunk_index))
            if state is None:
                raise FabricError(f"no such chunk {chunk_index}")
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker.chunks += 1
                worker.candidates += int(payload.get("n", 0))
                # A result proves life even if a lease expired meanwhile.
                worker.dead = False
            if state.done:
                # The lease expired, another worker re-ran the chunk, and
                # the original finally answered (or vice versa).  The engine
                # is deterministic, so the copies agree; drop this one.
                self._emit("merge.chunk", chunk=int(chunk_index),
                           worker=worker_id, stale=True)
                return {"status": "stale"}
            lease = self._leases.pop(int(chunk_index), None)
            if lease is None:
                # Expired but not yet re-granted: accept — the work is done.
                if int(chunk_index) in self._pending:
                    self._pending.remove(int(chunk_index))
            self._complete_locked(state, payload, worker=worker_id)
            return {"status": "ok", "done": self._done_event.is_set()}

    # -- results & introspection ---------------------------------------------

    @property
    def done(self) -> bool:
        return self._done_event.is_set()

    @property
    def sweep_seconds(self) -> float | None:
        """First lease grant → last merge; None before both exist.

        This is the honest distributed-sweep window: it excludes worker
        process boot (amortized in a long-lived cluster) but includes every
        lease round-trip, evaluation and merge.
        """
        if self._t_done is None:
            return None
        start = self._t_first_grant if self._t_first_grant is not None \
            else self._t_start
        return self._t_done - start

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the sweep completes; reaps leases while waiting.

        Sweeping here (not just in :meth:`lease`) matters when *every*
        worker died: nobody polls, so the coordinator itself must notice
        the expiries and run its serial fallbacks.
        """
        deadline = None if timeout is None else perf_counter() + timeout
        while not self._done_event.wait(timeout=0.05):
            with self._lock:
                self._reap_expired_locked()
                if not self._leases and self._pending and self._workers and \
                        all(w.dead for w in self._workers.values()):
                    # Cluster-wide death: drain the queue serially.
                    while self._pending and not self._done_event.is_set():
                        index = self._pending.pop(0)
                        state = self._chunks[index]
                        state.attempts = self.policy.max_retries + 2
                        self._fallback_locked(state)
                    self._maybe_finish_locked()
            if deadline is not None and perf_counter() > deadline:
                return self._done_event.is_set()
        return True

    def result(self, timeout: float | None = None) -> SearchResult:
        """The merged :class:`SearchResult`, bit-identical to ``search()``.

        Waits for completion, then materializes the winners: each retained
        ``(rate, gidx, strategy_dict)`` entry is rebuilt and re-evaluated
        through the deterministic scalar engine — the same re-evaluation
        ``_search_columnar`` performs, so the ``PerformanceResult`` objects
        (not just the rates) match the single-process answer exactly.
        """
        if not self.wait(timeout=timeout):
            raise TimeoutError("fabric sweep did not complete in time")
        top: list[tuple[ExecutionStrategy, Any]] = []
        from ..engine import evaluate

        for _rate, _gidx, strat_dict in self._merge.entries():
            strat = ExecutionStrategy.from_dict(dict(strat_dict))
            top.append((strat, evaluate(self.llm, self.system, strat)))
        registry = MetricsRegistry.from_snapshots(self._snapshots)
        skipped = tuple(
            (s.spec.start, s.spec.stop)
            for s in sorted(self._chunks.values(), key=lambda s: s.spec.index)
            if s.skipped
        )
        stats = SweepStats(
            engine=PruneStats.from_metrics(registry),
            elapsed=perf_counter() - self._t_start,
            workers=max(len(self._workers), 1),
            num_evaluated=self._num_evaluated,
            num_feasible=self._num_feasible,
            retries=self._retries,
            skipped=skipped,
            resumed_chunks=self._resumed,
            truncated=False,
        )
        best_strategy, best = (top[0][0], top[0][1]) if top else (None, None)
        return SearchResult(
            best=best,
            best_strategy=best_strategy,
            top=top,
            num_evaluated=self._num_evaluated,
            num_feasible=self._num_feasible,
            sample_rates=np.empty(0),
            stats=stats,
            truncated=bool(skipped),
        )

    def status(self) -> dict:
        with self._lock:
            self._reap_expired_locked()
            states = self._chunks.values()
            return {
                "fabric_version": FABRIC_VERSION,
                "key": self.key,
                "candidates": self.total,
                "chunks": len(self._chunks),
                "done_chunks": sum(s.done for s in states),
                "pending": len(self._pending),
                "leased": len(self._leases),
                "skipped": sum(s.skipped for s in states),
                "fallbacks": sum(s.fallback for s in states),
                "workers": {
                    w.worker_id: {
                        "name": w.name, "pid": w.pid, "chunks": w.chunks,
                        "candidates": w.candidates, "dead": w.dead,
                    }
                    for w in self._workers.values()
                },
                "expected_workers": self.expected_workers,
                "done": self._done_event.is_set(),
                "sweep_s": self.sweep_seconds,
            }

    def worker_metric_lines(self) -> list[str]:
        """Per-worker Prometheus series for the coordinator's ``/metrics``.

        ``render_prometheus`` has no label support (its name mangler would
        squash the braces), so these labeled gauges are assembled here and
        appended verbatim to the service exposition.
        """
        lines = []
        with self._lock:
            workers = sorted(self._workers.values(), key=lambda w: w.worker_id)
            for metric, attr in (
                ("repro_fabric_worker_chunks", "chunks"),
                ("repro_fabric_worker_candidates", "candidates"),
            ):
                for w in workers:
                    label = escape_label_value(w.worker_id)
                    lines.append(
                        f'{metric}{{worker="{label}"}} {getattr(w, attr)}'
                    )
        return lines
