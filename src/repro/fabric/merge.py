"""Associative bounded top-k merge: the fabric's one piece of shared math.

Every fabric worker returns its chunk's best ``top_k`` candidates as
``(rate, gidx, payload)`` entries, where ``gidx`` is the candidate's
*global* enumeration index (chunk start + row within the chunk).  The
coordinator folds those per-chunk lists into one :class:`TopKMerge`, and
the final ranking must be **bit-identical to a single-process run** no
matter how the space was chunked, which workers answered, or in what order
results arrived.

That property comes from using a *total* order as the ranking key:
``(-rate, gidx)``.  Rates may collide exactly (two configurations whose
differing knobs are no-ops produce the same float), but global indices are
unique by construction, so any two entries compare deterministically.
Selection over a totally ordered set is a pure function of the set —
independent of partitioning and arrival order — which makes the merge
associative and commutative (property-tested across arbitrary partitions
in ``tests/test_fabric_merge.py``).

The admission rule mirrors the serial scalar heap in
``execution_search._evaluate_chunk`` exactly: a full heap admits a new
entry only when it *strictly* beats the current k-th best, so ties at the
boundary keep the earliest candidate.  ``_search_columnar`` emulates the
same retention with ``np.lexsort``; see ``docs/FABRIC.md`` for the full
bit-identity argument.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Iterator

__all__ = ["TopKMerge"]


class TopKMerge:
    """A bounded best-k set over ``(rate, gidx, payload)`` entries.

    Internally a min-heap keyed ``(rate, -gidx)``: the root is the *worst*
    retained entry — lowest rate, and among equal rates the largest global
    index (ties prefer earlier candidates).  ``add`` is O(log k); ``merge``
    of another instance is O(k log k).
    """

    def __init__(self, k: int):
        if k < 0:
            raise ValueError("k must be >= 0")
        self.k = k
        # Heap entries are (rate, -gidx, gidx, payload); the first two
        # fields form the comparison key, so payloads are never compared.
        self._heap: list[tuple[float, int, int, Any]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def add(self, rate: float, gidx: int, payload: Any = None) -> bool:
        """Offer one entry; returns True when it was retained."""
        if self.k == 0:
            return False
        entry = (float(rate), -int(gidx), int(gidx), payload)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            return True
        worst = self._heap[0]
        # Strict admission, exactly like the serial heap's
        # ``rate > heap[0][0]`` test extended with the unique tiebreak.
        if entry[:2] > worst[:2]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def extend(self, entries: Iterable[tuple[float, int, Any]]) -> None:
        """Offer ``(rate, gidx, payload)`` entries (a chunk's top list)."""
        for rate, gidx, payload in entries:
            self.add(rate, gidx, payload)

    def merge(self, other: "TopKMerge") -> "TopKMerge":
        """Fold another merge's retained entries into this one."""
        for rate, _negg, gidx, payload in other._heap:
            self.add(rate, gidx, payload)
        return self

    def entries(self) -> list[tuple[float, int, Any]]:
        """The retained entries, best first: sorted by ``(-rate, gidx)``."""
        ranked = sorted(self._heap, key=lambda e: (-e[0], e[2]))
        return [(rate, gidx, payload) for rate, _negg, gidx, payload in ranked]

    def __iter__(self) -> Iterator[tuple[float, int, Any]]:
        return iter(self.entries())

    def threshold(self) -> tuple[float, int] | None:
        """The current admission floor ``(rate, gidx)`` once full, else None.

        A candidate must beat this ``(-rate, gidx)``-wise to be retained;
        the coordinator gossips the rate on every lease grant so workers
        prune buckets provably below it (``lease()`` → ``floor_rate``).
        """
        if self.k == 0 or len(self._heap) < self.k:
            return None
        worst = self._heap[0]
        return (worst[0], worst[2])
