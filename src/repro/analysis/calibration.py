"""Calibration: fit the model's efficiency knobs to measured runs.

The reproduction keeps exactly two scalar knobs — the matrix-engine
efficiency plateau and the achieved-HBM-bandwidth factor — chosen so the
Table-2 configurations land on the published Selene measurements.  This
module automates that procedure for any set of measured runs, so the model
can be re-calibrated to a new machine from a handful of wall-clock numbers
(the paper's own validation workflow, §2.5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..engine import clear_caches, evaluate
from ..execution.strategy import ExecutionStrategy
from ..hardware.processor import EfficiencyCurve
from ..hardware.system import System
from ..llm.config import LLMConfig


@dataclass(frozen=True)
class MeasuredRun:
    """One measured data point: a configuration and its wall-clock batch time."""

    llm: LLMConfig
    system: System
    strategy: ExecutionStrategy
    measured_time: float

    def __post_init__(self) -> None:
        if self.measured_time <= 0:
            raise ValueError("measured_time must be positive")


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted knobs and the residual error."""

    matrix_plateau: float
    hbm_efficiency: float
    mean_abs_error: float
    max_abs_error: float
    predictions: tuple[float, ...]


def _apply_knobs(system: System, plateau: float, hbm_eff: float) -> System:
    """Scale a system's matrix curve to the given plateau and set HBM eff."""
    proc = system.processor
    base = proc.matrix_efficiency
    ref = base.points[-1][1]
    scale = plateau / ref
    points = tuple((f, min(1.0, e * scale)) for f, e in base.points)
    proc = replace(proc, matrix_efficiency=EfficiencyCurve(points=points))
    mem1 = replace(system.mem1, efficiency=hbm_eff)
    return replace(system, processor=proc, mem1=mem1)


def _errors(
    runs: Sequence[MeasuredRun], plateau: float, hbm_eff: float
) -> tuple[np.ndarray, np.ndarray]:
    preds = []
    for run in runs:
        sys_ = _apply_knobs(run.system, plateau, hbm_eff)
        res = evaluate(run.llm, sys_, run.strategy)
        preds.append(res.batch_time if res.feasible else float("inf"))
    preds_arr = np.asarray(preds)
    meas = np.asarray([r.measured_time for r in runs])
    return preds_arr, (preds_arr - meas) / meas


def calibrate(
    runs: Sequence[MeasuredRun],
    *,
    plateau_grid: Sequence[float] | None = None,
    hbm_grid: Sequence[float] | None = None,
) -> CalibrationResult:
    """Grid-search the two knobs to minimize mean relative error.

    A coarse grid is robust here (the objective is smooth and the knobs are
    bounded in (0, 1]); refinement happens on a second, finer pass around the
    coarse optimum.

    Raises:
        ValueError: on an empty run list.
    """
    if not runs:
        raise ValueError("need at least one measured run")
    plateaus = np.asarray(plateau_grid if plateau_grid is not None
                          else np.linspace(0.4, 1.0, 13))
    hbms = np.asarray(hbm_grid if hbm_grid is not None
                      else np.linspace(0.3, 1.0, 8))

    def objective(p: float, h: float) -> float:
        clear_caches()
        _, rel = _errors(runs, p, h)
        if not np.isfinite(rel).all():
            return float("inf")
        return float(np.abs(rel).mean())

    best = None
    for p in plateaus:
        for h in hbms:
            err = objective(float(p), float(h))
            if best is None or err < best[0]:
                best = (err, float(p), float(h))
    assert best is not None
    _, p0, h0 = best

    # Refinement pass around the coarse optimum.
    fine_p = np.clip(np.linspace(p0 - 0.05, p0 + 0.05, 5), 0.05, 1.0)
    fine_h = np.clip(np.linspace(h0 - 0.08, h0 + 0.08, 5), 0.05, 1.0)
    for p in fine_p:
        for h in fine_h:
            err = objective(float(p), float(h))
            if err < best[0]:
                best = (err, float(p), float(h))

    err, p_fit, h_fit = best
    clear_caches()
    preds, rel = _errors(runs, p_fit, h_fit)
    return CalibrationResult(
        matrix_plateau=p_fit,
        hbm_efficiency=h_fit,
        mean_abs_error=float(np.abs(rel).mean()),
        max_abs_error=float(np.abs(rel).max()),
        predictions=tuple(float(x) for x in preds),
    )
