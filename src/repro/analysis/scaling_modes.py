"""Strong- vs weak-scaling studies.

The Fig. 7 sweeps hold the global batch fixed (strong scaling: the same
problem spread over more processors, bubble and communication eventually
dominate).  Production practice often grows the batch with the machine
(weak scaling: fixed work per processor, the regime of the Megatron ladder).
This module runs both and reports speedup and parallel efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..hardware.system import System
from ..llm.config import LLMConfig
from ..search.execution_search import SearchOptions, search


@dataclass(frozen=True)
class ScalingModePoint:
    """One size of a strong- or weak-scaling study."""

    num_procs: int
    batch: int
    sample_rate: float
    batch_time: float
    mfu: float
    feasible: bool

    def speedup(self, base: "ScalingModePoint") -> float:
        """Throughput gain over the base point."""
        if not (self.feasible and base.feasible) or base.sample_rate == 0:
            return 0.0
        return self.sample_rate / base.sample_rate

    def efficiency(self, base: "ScalingModePoint") -> float:
        """Speedup per added processor (1.0 = perfect scaling)."""
        if not (self.feasible and base.feasible) or self.num_procs == 0:
            return 0.0
        return self.speedup(base) / (self.num_procs / base.num_procs)


def _best_point(
    llm: LLMConfig,
    system: System,
    batch: int,
    options: SearchOptions | None,
    workers: int | None,
) -> ScalingModePoint:
    result = search(llm, system, batch, options, top_k=1, workers=workers,
                    keep_rates=False)
    if result.best is None:
        return ScalingModePoint(
            num_procs=system.num_procs, batch=batch, sample_rate=0.0,
            batch_time=float("inf"), mfu=0.0, feasible=False,
        )
    return ScalingModePoint(
        num_procs=system.num_procs,
        batch=batch,
        sample_rate=result.best.sample_rate,
        batch_time=result.best.batch_time,
        mfu=result.best.mfu,
        feasible=True,
    )


def strong_scaling(
    llm: LLMConfig,
    system_factory: Callable[[int], System],
    sizes: Sequence[int],
    batch: int,
    options: SearchOptions | None = None,
    *,
    workers: int | None = 0,
) -> list[ScalingModePoint]:
    """Fixed global batch across every size (the Fig. 7 regime)."""
    if batch < 1:
        raise ValueError("batch must be positive")
    return [
        _best_point(llm, system_factory(n), batch, options, workers)
        for n in sizes
    ]


def weak_scaling(
    llm: LLMConfig,
    system_factory: Callable[[int], System],
    sizes: Sequence[int],
    batch_per_proc: float,
    options: SearchOptions | None = None,
    *,
    workers: int | None = 0,
) -> list[ScalingModePoint]:
    """Batch grows with the machine: ``batch = round(batch_per_proc * n)``.

    Batch sizes are snapped to multiples of 8 so data-parallel splits exist.
    """
    if batch_per_proc <= 0:
        raise ValueError("batch_per_proc must be positive")
    points = []
    for n in sizes:
        batch = max(8, round(batch_per_proc * n / 8) * 8)
        points.append(_best_point(llm, system_factory(n), batch, options,
                                  workers))
    return points
