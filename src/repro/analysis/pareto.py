"""Pareto-frontier extraction for multi-objective codesign.

The paper's studies repeatedly surface the same structure: many
configurations trade performance against memory (Fig. 5), cost (Table 3) or
offload resources (Fig. 9), and the interesting ones are the non-dominated
set.  This module extracts Pareto frontiers from any collection of scored
candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Objective:
    """One optimization objective.

    Attributes:
        name: label for reports.
        key: extracts the metric from a candidate.
        maximize: True to prefer larger values.
    """

    name: str
    key: Callable[[object], float]
    maximize: bool = True

    def oriented(self, candidate: object) -> float:
        """Value transformed so that larger is always better."""
        v = self.key(candidate)
        return v if self.maximize else -v


def dominates(
    a: object, b: object, objectives: Sequence[Objective], *, tol: float = 0.0
) -> bool:
    """True if ``a`` is at least as good as ``b`` everywhere and better somewhere."""
    if not objectives:
        raise ValueError("need at least one objective")
    at_least_as_good = all(
        o.oriented(a) >= o.oriented(b) - tol for o in objectives
    )
    strictly_better = any(o.oriented(a) > o.oriented(b) + tol for o in objectives)
    return at_least_as_good and strictly_better


def pareto_front(
    candidates: Iterable[T], objectives: Sequence[Objective], *, tol: float = 0.0
) -> list[T]:
    """The non-dominated subset, in the input order.

    O(n^2) pairwise filtering — design spaces after feasibility filtering are
    small (tens to thousands), so clarity beats asymptotics here.
    """
    items = list(candidates)
    if not objectives:
        raise ValueError("need at least one objective")
    front: list[T] = []
    for i, cand in enumerate(items):
        dominated = False
        for j, other in enumerate(items):
            if i == j:
                continue
            if dominates(other, cand, objectives, tol=tol):
                dominated = True
                break
        if not dominated:
            front.append(cand)
    return front


def knee_point(
    front: Sequence[T], objectives: Sequence[Objective]
) -> T | None:
    """The balanced choice: maximum normalized distance from the worst corner.

    Each objective is min-max normalized over the front; the knee is the
    member with the largest minimum normalized score — the point that is
    "pretty good at everything".
    """
    if not front:
        return None
    if len(objectives) < 1:
        raise ValueError("need at least one objective")
    values = [[o.oriented(c) for c in front] for o in objectives]
    normed: list[list[float]] = []
    for vals in values:
        lo, hi = min(vals), max(vals)
        span = hi - lo
        normed.append([1.0 if span == 0 else (v - lo) / span for v in vals])
    scores = [min(normed[k][i] for k in range(len(objectives)))
              for i in range(len(front))]
    return front[scores.index(max(scores))]
