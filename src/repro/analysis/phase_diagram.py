"""Bottleneck phase diagrams: what dominates where.

For a grid of (model size, system size) points, find the best strategy and
label the cell with its *dominant* time component — compute, recompute,
pipeline bubble, TP/PP/DP communication, optimizer, or offload.  The result
is the codesign map the paper's individual studies sample: compute-bound
interiors, communication-bound TP edges, bubble-bound deep pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.results import PerformanceResult
from ..hardware.system import System
from ..llm.config import LLMConfig
from ..search.execution_search import SearchOptions, search

# Component grouping for dominance labelling.
_GROUPS = {
    "compute": ("fw_pass", "bw_pass", "optim_step"),
    "recompute": ("fw_recompute",),
    "bubble": ("pp_bubble",),
    "tp-comm": ("tp_comm_exposed",),
    "pp-comm": ("pp_comm_exposed",),
    "dp-comm": ("dp_comm_exposed",),
    "offload": ("offload_exposed",),
    "overlap-tax": ("overlap_tax",),
}


def dominant_component(result: PerformanceResult) -> str:
    """The label of the largest time-component group."""
    if not result.feasible:
        return "infeasible"
    parts = result.time.as_dict()
    totals = {
        label: sum(parts[k] for k in keys) for label, keys in _GROUPS.items()
    }
    return max(totals, key=totals.get)


@dataclass(frozen=True)
class PhaseCell:
    """One cell of the phase diagram."""

    llm_name: str
    num_procs: int
    label: str
    share: float  # fraction of batch time in the dominant group
    mfu: float

    def __post_init__(self) -> None:
        if not 0 <= self.share <= 1 + 1e-9:
            raise ValueError("share must be a fraction")


def phase_diagram(
    llms: Sequence[LLMConfig],
    system_factory: Callable[[int], System],
    sizes: Sequence[int],
    batch: int,
    options: SearchOptions | None = None,
    *,
    workers: int | None = 0,
) -> list[list[PhaseCell]]:
    """One row per LLM, one cell per system size."""
    rows: list[list[PhaseCell]] = []
    for llm in llms:
        row = []
        for n in sizes:
            result = search(llm, system_factory(n), batch, options, top_k=1,
                            workers=workers, keep_rates=False)
            if result.best is None:
                row.append(
                    PhaseCell(llm_name=llm.name, num_procs=n,
                              label="infeasible", share=0.0, mfu=0.0)
                )
                continue
            best = result.best
            label = dominant_component(best)
            parts = best.time.as_dict()
            share = sum(parts[k] for k in _GROUPS[label]) / best.batch_time
            row.append(
                PhaseCell(llm_name=llm.name, num_procs=n, label=label,
                          share=share, mfu=best.mfu)
            )
        rows.append(row)
    return rows
