"""Batch-size scaling analysis.

The global batch is the one application knob the system designer does not
control but must plan around: small batches starve the pipeline (few
microbatches to amortize the bubble and communication), large batches raise
activation pressure.  This module sweeps the batch size with a fixed or
re-searched strategy and reports the efficiency curve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..engine import evaluate_many
from ..execution.strategy import ExecutionStrategy
from ..hardware.system import System
from ..llm.config import LLMConfig
from ..search.execution_search import SearchOptions, search


@dataclass(frozen=True)
class BatchPoint:
    """Best (or fixed-strategy) performance at one global batch size."""

    batch: int
    sample_rate: float
    batch_time: float
    mfu: float
    strategy: ExecutionStrategy | None

    @property
    def feasible(self) -> bool:
        return self.strategy is not None


def batch_sweep_fixed(
    llm: LLMConfig,
    system: System,
    strategy: ExecutionStrategy,
    batches: Sequence[int],
) -> list[BatchPoint]:
    """Scale the batch with a fixed parallelization (d, t, p unchanged).

    Batches that the strategy cannot divide are reported infeasible rather
    than skipped, so the caller sees the exact usable set.

    The whole sweep is one batched engine call: every point shares the same
    block profile (the microbatch is fixed), so the profile is computed once
    and memory-infeasible batches never reach the timing stages.
    """
    for batch in batches:
        if batch < 1:
            raise ValueError("batch sizes must be positive")
    strats = [replace(strategy, batch=batch) for batch in batches]
    points = []
    for batch, strat, res in zip(
        batches, strats, evaluate_many(llm, system, strats, prune=True)
    ):
        points.append(
            BatchPoint(
                batch=batch,
                sample_rate=res.sample_rate,
                batch_time=res.batch_time if res.feasible else float("inf"),
                mfu=res.mfu,
                strategy=strat if res.feasible else None,
            )
        )
    return points


def batch_sweep_searched(
    llm: LLMConfig,
    system: System,
    batches: Sequence[int],
    options: SearchOptions | None = None,
    *,
    workers: int | None = 0,
) -> list[BatchPoint]:
    """Re-search the best strategy at every batch size."""
    points = []
    for batch in batches:
        if batch < 1:
            raise ValueError("batch sizes must be positive")
        result = search(llm, system, batch, options, top_k=1, workers=workers,
                        keep_rates=False)
        if result.best is None:
            points.append(
                BatchPoint(batch=batch, sample_rate=0.0, batch_time=float("inf"),
                           mfu=0.0, strategy=None)
            )
        else:
            points.append(
                BatchPoint(
                    batch=batch,
                    sample_rate=result.best.sample_rate,
                    batch_time=result.best.batch_time,
                    mfu=result.best.mfu,
                    strategy=result.best_strategy,
                )
            )
    return points
