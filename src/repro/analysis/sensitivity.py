"""Hardware sensitivity analysis: which component is worth improving?

Codesign's first question: if I could make one part of the system X% better,
how much faster would training get?  This module perturbs one hardware knob
at a time — matrix/vector throughput, HBM bandwidth, each network tier's
bandwidth, the offload tier's bandwidth — and reports the *elasticity* of
batch time: ``d(log time) / d(log knob)``.  An elasticity of −1 means the
component is the pure bottleneck; 0 means it is off the critical path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator

from ..engine import evaluate
from ..execution.strategy import ExecutionStrategy
from ..hardware.system import System
from ..llm.config import LLMConfig

KNOBS = (
    "matrix_flops",
    "vector_flops",
    "mem1_bandwidth",
    "mem2_bandwidth",
    "network_bandwidth",  # expands to one knob per network tier
)


@dataclass(frozen=True)
class Elasticity:
    """Sensitivity of batch time to one hardware knob."""

    knob: str
    baseline_time: float
    scaled_time: float
    scale: float

    @property
    def value(self) -> float:
        """``d(log time) / d(log knob)`` estimated at the given scale."""
        if self.baseline_time <= 0 or self.scaled_time <= 0:
            return 0.0
        return math.log(self.scaled_time / self.baseline_time) / math.log(self.scale)

    @property
    def speedup_at_2x(self) -> float:
        """Projected speedup from doubling the component (local model)."""
        return 2.0 ** (-self.value)


def _scaled_systems(system: System, scale: float) -> Iterator[tuple[str, System]]:
    proc = system.processor
    yield (
        "matrix_flops",
        replace(system, processor=replace(proc, matrix_flops=proc.matrix_flops * scale)),
    )
    yield (
        "vector_flops",
        replace(system, processor=replace(proc, vector_flops=proc.vector_flops * scale)),
    )
    yield (
        "mem1_bandwidth",
        replace(system, mem1=replace(system.mem1, bandwidth=system.mem1.bandwidth * scale)),
    )
    if system.mem2 is not None:
        yield (
            "mem2_bandwidth",
            replace(system, mem2=replace(system.mem2, bandwidth=system.mem2.bandwidth * scale)),
        )
    for i, net in enumerate(system.networks):
        nets = list(system.networks)
        nets[i] = replace(net, bandwidth=net.bandwidth * scale)
        yield (f"net[{net.name}]_bandwidth", replace(system, networks=tuple(nets)))


def sensitivity(
    llm: LLMConfig,
    system: System,
    strategy: ExecutionStrategy,
    *,
    scale: float = 1.25,
) -> list[Elasticity]:
    """Elasticity of batch time to each hardware knob.

    Args:
        scale: multiplicative perturbation applied to each knob (> 1).

    Raises:
        ValueError: if the baseline configuration is infeasible or the scale
            is not a positive perturbation.
    """
    if scale <= 1.0:
        raise ValueError("scale must be > 1")
    baseline = evaluate(llm, system, strategy)
    if not baseline.feasible:
        raise ValueError(f"baseline infeasible: {baseline.infeasibility}")

    out = []
    for knob, scaled_system in _scaled_systems(system, scale):
        res = evaluate(llm, scaled_system, strategy)
        scaled_time = res.batch_time if res.feasible else baseline.batch_time
        out.append(
            Elasticity(
                knob=knob,
                baseline_time=baseline.batch_time,
                scaled_time=scaled_time,
                scale=scale,
            )
        )
    out.sort(key=lambda e: e.value)  # most negative (most critical) first
    return out
