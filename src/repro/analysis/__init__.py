"""Run-level analyses built on top of the core model."""

from .batch_scaling import BatchPoint, batch_sweep_fixed, batch_sweep_searched
from .calibration import CalibrationResult, MeasuredRun, calibrate
from .phase_diagram import PhaseCell, dominant_component, phase_diagram
from .pareto import Objective, dominates, knee_point, pareto_front
from .capacity import (
    FrontierPoint,
    memory_frontier,
    minimum_hbm,
    minimum_system_size,
)
from .scaling_modes import ScalingModePoint, strong_scaling, weak_scaling
from .sensitivity import Elasticity, sensitivity
from .training_run import TrainingRunPlan, plan_training_run

__all__ = [
    "BatchPoint",
    "CalibrationResult",
    "Elasticity",
    "FrontierPoint",
    "MeasuredRun",
    "Objective",
    "PhaseCell",
    "ScalingModePoint",
    "TrainingRunPlan",
    "batch_sweep_fixed",
    "batch_sweep_searched",
    "calibrate",
    "dominant_component",
    "dominates",
    "knee_point",
    "memory_frontier",
    "pareto_front",
    "phase_diagram",
    "minimum_hbm",
    "minimum_system_size",
    "plan_training_run",
    "sensitivity",
    "strong_scaling",
    "weak_scaling",
]
