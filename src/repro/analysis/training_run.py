"""End-to-end training-run planning: time, energy-free cost, and FLOP budget.

The paper's introduction motivates codesign with the cost of full training
runs — Megatron-1T was trained for 84 days on 3,072 A100s over 450 billion
tokens, executing more than 1,000 zettaFLOP, roughly seven hundred
GPU-years and over six million dollars at $1/GPU-hour cloud rates.  This
module turns a single-batch performance result into those run-level figures,
so the model can be validated against (and used to plan) whole campaigns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.results import PerformanceResult
from ..engine import evaluate
from ..execution.strategy import ExecutionStrategy
from ..hardware.system import System
from ..llm.config import LLMConfig
from ..units import ZETTA

HOURS_PER_DAY = 24.0
SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class TrainingRunPlan:
    """Projected figures for a full training campaign."""

    llm_name: str
    system_name: str
    strategy_name: str
    tokens: float
    num_procs: int
    batch_time: float
    batch_tokens: float
    num_batches: int
    total_seconds: float
    total_flops: float  # useful model FLOPs (6 * N * tokens convention)
    gpu_hours: float
    mfu: float

    @property
    def days(self) -> float:
        return self.total_seconds / SECONDS_PER_DAY

    @property
    def zetta_flops(self) -> float:
        return self.total_flops / ZETTA

    @property
    def gpu_years(self) -> float:
        return self.gpu_hours / (HOURS_PER_DAY * 365.0)

    def cost(self, dollars_per_gpu_hour: float = 1.0) -> float:
        """Cloud-style cost of the campaign."""
        if dollars_per_gpu_hour < 0:
            raise ValueError("rate must be non-negative")
        return self.gpu_hours * dollars_per_gpu_hour

    def summary(self) -> str:
        return "\n".join(
            [
                f"training {self.llm_name} on {self.system_name} "
                f"[{self.strategy_name}] over {self.tokens / 1e9:.0f}B tokens:",
                f"  {self.num_batches:,} batches x {self.batch_time:.1f} s "
                f"= {self.days:.1f} days on {self.num_procs:,} GPUs",
                f"  {self.zetta_flops:,.0f} zettaFLOP at {self.mfu * 100:.1f}% MFU",
                f"  {self.gpu_hours / 1e6:.2f}M GPU-hours "
                f"({self.gpu_years:.0f} GPU-years); "
                f"${self.cost() / 1e6:.1f}M at $1/GPU-hour",
            ]
        )


def plan_training_run(
    llm: LLMConfig,
    system: System,
    strategy: ExecutionStrategy,
    *,
    tokens: float,
    result: PerformanceResult | None = None,
) -> TrainingRunPlan:
    """Project a full training campaign from one batch-time calculation.

    Args:
        llm, system, strategy: the usual three specifications.
        tokens: total training tokens (e.g. ``450e9``).
        result: a pre-computed :func:`repro.core.calculate` result for the
            same inputs, to avoid re-evaluation in sweeps.

    Raises:
        ValueError: if the configuration is infeasible or tokens <= 0.
    """
    if tokens <= 0:
        raise ValueError("tokens must be positive")
    res = result if result is not None else evaluate(llm, system, strategy)
    if not res.feasible:
        raise ValueError(f"infeasible configuration: {res.infeasibility}")

    batch_tokens = float(strategy.batch) * llm.seq_size
    num_batches = math.ceil(tokens / batch_tokens)
    total_seconds = num_batches * res.batch_time
    # The community convention: ~6 FLOPs per parameter per token (fw + bw).
    total_flops = 6.0 * llm.total_parameters * tokens
    gpu_hours = total_seconds / 3600.0 * system.num_procs

    return TrainingRunPlan(
        llm_name=llm.name,
        system_name=system.name,
        strategy_name=strategy.short_name(),
        tokens=tokens,
        num_procs=system.num_procs,
        batch_time=res.batch_time,
        batch_tokens=batch_tokens,
        num_batches=num_batches,
        total_seconds=total_seconds,
        total_flops=total_flops,
        gpu_hours=gpu_hours,
        mfu=res.mfu,
    )
