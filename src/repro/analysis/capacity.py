"""Capacity planning: memory frontiers and minimum system sizes.

The paper's studies repeatedly reduce to capacity questions — Fig. 5(d)
doubles HBM to unlock configurations, §6 asks how little HBM suffices with an
offload tier, and the offload scaling study hinges on the smallest cluster
that can hold a model.  This module answers those questions directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..engine import check_feasible
from ..execution.strategy import ExecutionStrategy
from ..hardware.system import System
from ..llm.config import LLMConfig
from ..search.execution_search import SearchOptions, search


def minimum_hbm(
    llm: LLMConfig, system: System, strategy: ExecutionStrategy
) -> float:
    """Tier-1 bytes a strategy needs, independent of the system's capacity.

    Runs the engine's feasibility fast path on a capacity-unconstrained
    clone of the system and returns the resident footprint — a pure
    memory-plan question, so no timing work is done at all.

    Raises:
        ValueError: if the strategy is invalid for reasons other than
            capacity (shape mismatches, divisibility, missing tier-2).
    """
    unconstrained = system.with_mem1_capacity(float("inf"))
    report = check_feasible(llm, unconstrained, strategy)
    if not report.feasible:
        raise ValueError(f"strategy invalid beyond capacity: {report.reason}")
    return report.mem1.total


@dataclass(frozen=True)
class FrontierPoint:
    """Best achievable performance at one HBM capacity."""

    capacity: float
    sample_rate: float
    strategy: ExecutionStrategy | None

    @property
    def feasible(self) -> bool:
        return self.strategy is not None


def memory_frontier(
    llm: LLMConfig,
    system: System,
    batch: int,
    capacities: Sequence[float],
    options: SearchOptions | None = None,
    *,
    workers: int | None = 0,
) -> list[FrontierPoint]:
    """Best sample rate as a function of per-processor HBM capacity.

    The frontier is non-decreasing in capacity (more memory can only widen
    the feasible set) — a property the tests verify.
    """
    points = []
    for cap in capacities:
        if cap <= 0:
            raise ValueError("capacities must be positive")
        sized = system.with_mem1_capacity(cap)
        result = search(
            llm, sized, batch, options, top_k=1, workers=workers, keep_rates=False
        )
        points.append(
            FrontierPoint(
                capacity=cap,
                sample_rate=result.best.sample_rate if result.best else 0.0,
                strategy=result.best_strategy,
            )
        )
    return points


def minimum_system_size(
    llm: LLMConfig,
    system_factory: Callable[[int], System],
    batch: int,
    sizes: Sequence[int],
    options: SearchOptions | None = None,
    *,
    workers: int | None = 0,
) -> int | None:
    """Smallest size (from ``sizes``, ascending) that can train the model.

    Returns ``None`` when no candidate size is feasible — e.g. Megatron-1T
    on small clusters without an offload tier (§6).
    """
    for n in sorted(sizes):
        if n < 1:
            raise ValueError("sizes must be positive")
        result = search(
            llm,
            system_factory(n),
            batch,
            options,
            top_k=1,
            workers=workers,
            keep_rates=False,
        )
        if result.best is not None:
            return n
    return None
