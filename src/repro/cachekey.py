"""Content-addressed keys for results that must never be silently mixed.

Two subsystems need to answer "is this *exactly* the evaluation I ran
before?": the checkpoint journal (``repro.search.checkpoint``) when a sweep
resumes, and the evaluation service's result cache
(``repro.service.cache``) when a query repeats.  Both answer it the same
way: hash everything that can change the numbers — the full LLM and system
specs (not their names), the batch, the option/strategy space, the engine
version — into one SHA-256 hex digest.  Same key ⇔ same results; a bumped
``ENGINE_VERSION`` changes every key, so stale caches and journals age out
instead of serving numbers from an older model revision.

Module-level imports here are stdlib-only, so any subsystem can import
:func:`content_key`/:func:`canonical_json` without creating an import
cycle; :func:`run_key` resolves its spec serializers lazily for the same
reason.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass
from typing import Any, Mapping


def canonical_json(payload: Any) -> str:
    """Serialize ``payload`` deterministically (sorted keys, ``str`` fallback)."""
    return json.dumps(payload, sort_keys=True, default=str)


def content_key(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def run_key(
    llm: Any,
    system: Any,
    batch: int,
    options: Any,
    *,
    kind: str = "search",
    extra: Mapping[str, Any] | None = None,
    engine_version: int | None = None,
) -> str:
    """Content hash identifying one evaluation problem: same key ⇔ same results.

    Everything that can change the numbers goes in: the full LLM and system
    specs (not their names), the batch, the option space (a dataclass such
    as ``SearchOptions`` or an ``ExecutionStrategy``, or any JSON-able
    value), the engine version, and any caller extras (top-k, size grid,
    constraint name, …).  ``engine_version`` defaults to the live
    ``repro.engine.ENGINE_VERSION``; tests pass an explicit value to prove
    key sensitivity without reloading the engine.
    """
    if engine_version is None:
        from .engine import ENGINE_VERSION

        engine_version = ENGINE_VERSION
    from .io.specs import system_to_dict

    payload = {
        "kind": kind,
        "engine_version": engine_version,
        "llm": llm.to_dict(),
        "system": system_to_dict(system),
        "batch": batch,
        "options": asdict(options) if is_dataclass(options) else options,
        "extra": dict(extra) if extra else None,
    }
    return content_key(payload)
