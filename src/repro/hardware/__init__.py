"""Hardware models: processor, memory hierarchy, networks, full systems."""

from .collectives import (
    CollectiveEstimate,
    best_time,
    hierarchical_all_reduce,
    in_network_time,
    ring_time,
    tree_time,
)
from .memory import INFINITE_TIER, MemoryTier
from .network import COLLECTIVE_OPS, Network
from .processor import (
    DEFAULT_MATRIX_CURVE,
    DEFAULT_VECTOR_CURVE,
    EfficiencyCurve,
    Processor,
)
from .topology import Dragonfly, FatTree, effective_network
from .system import (
    A100,
    H100,
    H200,
    System,
    V100,
    a100_system,
    ddr5_offload,
    h100_system,
    h200_system,
    v100_system,
)

__all__ = [
    "A100",
    "CollectiveEstimate",
    "best_time",
    "hierarchical_all_reduce",
    "in_network_time",
    "ring_time",
    "tree_time",
    "COLLECTIVE_OPS",
    "DEFAULT_MATRIX_CURVE",
    "DEFAULT_VECTOR_CURVE",
    "Dragonfly",
    "EfficiencyCurve",
    "FatTree",
    "H100",
    "H200",
    "INFINITE_TIER",
    "MemoryTier",
    "Network",
    "Processor",
    "System",
    "V100",
    "a100_system",
    "ddr5_offload",
    "effective_network",
    "h100_system",
    "h200_system",
    "v100_system",
]
