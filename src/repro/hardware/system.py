"""Full system description: processor + memory hierarchy + network tiers.

Presets model the paper's two testbeds:

* ``a100_system`` — NVIDIA A100-80GiB clusters of 8 over NVLink3, with
  InfiniBand HDR between clusters (the Selene-like validation system and
  the §4/§5 studies).
* ``h100_system`` — NVIDIA H100 clusters of 8 over NVLink4 with NDR
  InfiniBand, parameterizable HBM3 capacity and optional secondary DDR5
  offload memory (the §6 offloading and §7 cost studies).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..units import GB, GiB, TB, TFLOPS
from .memory import MemoryTier
from .network import Network
from .processor import Processor


@dataclass(frozen=True)
class System:
    """A distributed system of ``num_procs`` identical processors.

    ``networks`` is ordered innermost-first (fastest, smallest domain).  A
    communication group spanning ``k`` processors uses the innermost network
    whose domain covers ``k``.
    """

    name: str
    num_procs: int
    processor: Processor
    mem1: MemoryTier
    networks: tuple[Network, ...]
    mem2: MemoryTier | None = None

    def __post_init__(self) -> None:
        if self.num_procs < 1:
            raise ValueError(f"{self.name}: num_procs must be >= 1")
        if not self.networks:
            raise ValueError(f"{self.name}: at least one network is required")
        sizes = [n.size for n in self.networks]
        if sizes != sorted(sizes):
            raise ValueError(f"{self.name}: networks must be ordered innermost-first")
        if self.networks[-1].size < self.num_procs:
            raise ValueError(
                f"{self.name}: outermost network (size {self.networks[-1].size}) "
                f"does not span the system ({self.num_procs} processors)"
            )

    def __hash__(self) -> int:
        # The engine's memoized comm kernels key their lru_caches on the
        # whole system, so this is hashed on every kernel call; the
        # dataclass-generated hash re-walks the nested processor / memory /
        # network dataclasses each time, which shows up at vectorized-sweep
        # scale.  The instance is frozen, so compute the field-tuple hash
        # once and cache it (equal systems still hash equal).
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((
                self.name, self.num_procs, self.processor, self.mem1,
                self.networks, self.mem2,
            ))
            object.__setattr__(self, "_hash", h)
        return h

    def network_for_span(self, span: int) -> Network:
        """The innermost network whose domain covers a group of ``span``."""
        if span < 1:
            raise ValueError("span must be >= 1")
        if span > self.num_procs:
            raise ValueError(f"span {span} exceeds system size {self.num_procs}")
        for net in self.networks:
            if net.size >= span:
                return net
        raise AssertionError("unreachable: outermost network spans the system")

    @property
    def has_offload(self) -> bool:
        return self.mem2 is not None

    def with_num_procs(self, num_procs: int) -> "System":
        """Resize the system (networks keep their domain structure)."""
        networks = list(self.networks)
        outer = networks[-1]
        if outer.size < num_procs:
            networks[-1] = replace(outer, size=num_procs)
        elif len(networks) > 1 and networks[-2].size >= num_procs:
            pass  # outer network still needed as ordering guard; leave as-is
        return replace(self, num_procs=num_procs, networks=tuple(networks))

    def with_mem2(self, mem2: MemoryTier | None) -> "System":
        return replace(self, mem2=mem2)

    def with_mem1_capacity(self, capacity: float) -> "System":
        return replace(self, mem1=replace(self.mem1, capacity=capacity))


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

A100 = Processor(name="a100", matrix_flops=312 * TFLOPS, vector_flops=78 * TFLOPS)
H100 = Processor(name="h100", matrix_flops=989 * TFLOPS, vector_flops=134 * TFLOPS)


def a100_system(
    num_procs: int,
    *,
    hbm_gib: float = 80.0,
    nvlink_size: int = 8,
    offload: MemoryTier | None = None,
) -> System:
    """A100-80GiB cluster: NVLink3 (300 GB/s/dir) islands + HDR InfiniBand.

    ``nvlink_size`` sets the NVLink domain (the §4.1 study scales it with the
    tensor-parallel degree up to 32).
    """
    # Achieved HBM streaming efficiency for layer-sized kernels is well below
    # peak; 0.60 calibrates the Table-2 validation runs (see EXPERIMENTS.md).
    hbm = MemoryTier(
        name="hbm2e", capacity=hbm_gib * GiB, bandwidth=2.0 * TB, efficiency=0.60
    )
    nvlink = Network(
        name="nvlink3",
        size=nvlink_size,
        bandwidth=300 * GB,
        latency=0.7e-6,
        efficiency=0.85,
        processor_usage=0.15,
    )
    ib = Network(
        name="ib-hdr",
        size=max(num_procs, nvlink_size + 1),
        bandwidth=25 * GB,
        latency=5e-6,
        efficiency=0.85,
        processor_usage=0.02,
    )
    return System(
        name=f"a100-{int(hbm_gib)}g-x{num_procs}",
        num_procs=num_procs,
        processor=A100,
        mem1=hbm,
        networks=(nvlink, ib),
        mem2=offload,
    )


def h100_system(
    num_procs: int,
    *,
    hbm_gib: float = 80.0,
    nvlink_size: int = 8,
    offload: MemoryTier | None = None,
) -> System:
    """H100 cluster: NVLink4 (450 GB/s/dir) islands + NDR InfiniBand.

    HBM3 runs at 3 TB/s for every capacity option (§7).  ``offload`` attaches
    a DDR5 tier (100 GB/s per direction in the paper's studies).
    """
    hbm = MemoryTier(
        name="hbm3", capacity=hbm_gib * GiB, bandwidth=3.0 * TB, efficiency=0.60
    )
    nvlink = Network(
        name="nvlink4",
        size=nvlink_size,
        bandwidth=450 * GB,
        latency=0.7e-6,
        efficiency=0.85,
        processor_usage=0.15,
    )
    ib = Network(
        name="ib-ndr",
        size=max(num_procs, nvlink_size + 1),
        bandwidth=50 * GB,
        latency=5e-6,
        efficiency=0.85,
        processor_usage=0.02,
    )
    return System(
        name=f"h100-{int(hbm_gib)}g-x{num_procs}",
        num_procs=num_procs,
        processor=H100,
        mem1=hbm,
        networks=(nvlink, ib),
        mem2=offload,
    )


V100 = Processor(name="v100", matrix_flops=125 * TFLOPS, vector_flops=31 * TFLOPS)
H200 = Processor(name="h200", matrix_flops=989 * TFLOPS, vector_flops=134 * TFLOPS)


def v100_system(
    num_procs: int,
    *,
    hbm_gib: float = 32.0,
    nvlink_size: int = 8,
    offload: MemoryTier | None = None,
) -> System:
    """V100-32GiB cluster (DGX-2-era): NVLink2 islands + EDR InfiniBand."""
    hbm = MemoryTier(
        name="hbm2", capacity=hbm_gib * GiB, bandwidth=0.9 * TB, efficiency=0.60
    )
    nvlink = Network(
        name="nvlink2",
        size=nvlink_size,
        bandwidth=150 * GB,
        latency=0.8e-6,
        efficiency=0.85,
        processor_usage=0.15,
    )
    ib = Network(
        name="ib-edr",
        size=max(num_procs, nvlink_size + 1),
        bandwidth=12.5 * GB,
        latency=5e-6,
        efficiency=0.85,
        processor_usage=0.02,
    )
    return System(
        name=f"v100-{int(hbm_gib)}g-x{num_procs}",
        num_procs=num_procs,
        processor=V100,
        mem1=hbm,
        networks=(nvlink, ib),
        mem2=offload,
    )


def h200_system(
    num_procs: int,
    *,
    hbm_gib: float = 141.0,
    nvlink_size: int = 8,
    offload: MemoryTier | None = None,
) -> System:
    """H200 cluster: H100 compute with 141 GiB HBM3e at 4.8 TB/s."""
    hbm = MemoryTier(
        name="hbm3e", capacity=hbm_gib * GiB, bandwidth=4.8 * TB, efficiency=0.60
    )
    nvlink = Network(
        name="nvlink4",
        size=nvlink_size,
        bandwidth=450 * GB,
        latency=0.7e-6,
        efficiency=0.85,
        processor_usage=0.15,
    )
    ib = Network(
        name="ib-ndr",
        size=max(num_procs, nvlink_size + 1),
        bandwidth=50 * GB,
        latency=5e-6,
        efficiency=0.85,
        processor_usage=0.02,
    )
    return System(
        name=f"h200-{int(hbm_gib)}g-x{num_procs}",
        num_procs=num_procs,
        processor=H200,
        mem1=hbm,
        networks=(nvlink, ib),
        mem2=offload,
    )


def ddr5_offload(capacity_gib: float, bandwidth_gbs: float = 100.0) -> MemoryTier:
    """Secondary DDR5 memory tier for tensor offloading (§6, §7)."""
    return MemoryTier(
        name="ddr5",
        capacity=capacity_gib * GiB,
        bandwidth=bandwidth_gbs * GB,
        efficiency=0.90,
    )
