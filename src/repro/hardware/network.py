"""Network model (paper §2.2).

Each processor connects to an arbitrary number of networks; each network has a
domain size, per-processor bandwidth, latency, efficiency, a specification of
how it executes each collective operation (which is also how in-network
collective offload is modeled), and a *processor usage* figure: the fraction
of the processor's compute consumed when driving the network at full
bandwidth (used to model the slowdown from overlapping communication with
computation — e.g. ~15% of cores for NCCL over NVLink, ~2% for InfiniBand).
"""

from __future__ import annotations

from dataclasses import dataclass

COLLECTIVE_OPS = ("all_reduce", "reduce_scatter", "all_gather", "broadcast", "p2p")


@dataclass(frozen=True)
class Network:
    """One network tier.

    Attributes:
        name: e.g. ``"nvlink3"`` or ``"ib-hdr"``.
        size: number of endpoints in one domain of this network.
        bandwidth: per-processor injection bandwidth, bytes/s per direction.
        latency: per-message latency, seconds.
        efficiency: achievable fraction of peak bandwidth for large messages.
        processor_usage: fraction of processor compute consumed at full
            network utilization (overlap tax).
        in_network_collectives: if True, reductions happen in the fabric
            (e.g. SHARP), so an all-reduce moves each byte once instead of
            ``2(n-1)/n`` times.
        small_message_bytes: per-step messages below this size achieve
            reduced bandwidth efficiency (protocol and pipelining overheads),
            ramping log-linearly down to ``min_efficiency`` at 4 KiB.
        op_handling: per-operation algorithm overrides, as ``(op, algorithm)``
            pairs — the paper's "specification of how [the network] handles
            each specific operation".  Algorithms: ``"ring"`` (default),
            ``"tree"``, ``"in_network"``, or ``"best"`` (pick the fastest).
    """

    name: str
    size: int
    bandwidth: float
    latency: float = 2e-6
    efficiency: float = 0.85
    processor_usage: float = 0.0
    in_network_collectives: bool = False
    small_message_bytes: float = 4 << 20  # 4 MiB
    min_efficiency: float = 0.20
    op_handling: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"{self.name}: size must be >= 1")
        if self.bandwidth <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"{self.name}: latency must be non-negative")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"{self.name}: efficiency must be in (0, 1]")
        if not 0 <= self.processor_usage < 1:
            raise ValueError(f"{self.name}: processor_usage must be in [0, 1)")
        if self.small_message_bytes <= 0:
            raise ValueError(f"{self.name}: small_message_bytes must be positive")
        if not 0 < self.min_efficiency <= self.efficiency:
            raise ValueError(f"{self.name}: min_efficiency must be in (0, efficiency]")
        for op, alg in self.op_handling:
            if op not in COLLECTIVE_OPS:
                raise ValueError(f"{self.name}: unknown op {op!r} in op_handling")
            if alg not in ("ring", "tree", "in_network", "best"):
                raise ValueError(f"{self.name}: unknown algorithm {alg!r}")

    @property
    def effective_bandwidth(self) -> float:
        return self.bandwidth * self.efficiency

    def message_bandwidth(self, message_bytes: float) -> float:
        """Achieved bandwidth for one per-step message of ``message_bytes``."""
        import math

        if message_bytes <= 0:
            return self.effective_bandwidth
        if message_bytes >= self.small_message_bytes:
            eff = self.efficiency
        else:
            lo, hi = math.log2(4096.0), math.log2(self.small_message_bytes)
            frac = (math.log2(max(message_bytes, 4096.0)) - lo) / (hi - lo)
            eff = self.min_efficiency + frac * (self.efficiency - self.min_efficiency)
        return self.bandwidth * eff

    def collective_time(self, op: str, nbytes: float, group: int) -> float:
        """Time for one collective of ``nbytes`` payload over ``group`` ranks.

        Ring algorithms (the NCCL default at these scales):
          * all-reduce moves ``2 * (g-1)/g`` of the payload per processor,
            or once with in-network reduction;
          * reduce-scatter / all-gather / broadcast move ``(g-1)/g``;
          * p2p moves the payload once.
        Latency is charged per algorithm step.
        """
        if op not in COLLECTIVE_OPS:
            raise ValueError(f"unknown collective {op!r}")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if group < 1:
            raise ValueError("group must be >= 1")
        if group == 1 and op != "p2p":
            return 0.0
        if nbytes == 0:
            return 0.0

        override = dict(self.op_handling).get(op)
        if override is not None and op != "p2p":
            from . import collectives as _alg

            if override == "ring":
                return _alg.ring_time(self, op, nbytes, group)
            if override == "tree":
                return _alg.tree_time(self, op, nbytes, group)
            if override == "in_network":
                return _alg.in_network_time(self, op, nbytes, group)
            return _alg.best_time(self, op, nbytes, group).time

        if op == "p2p":
            steps = 1
            volume = nbytes
            message = nbytes
        elif op == "all_reduce":
            if self.in_network_collectives:
                steps = 1
                volume = nbytes
                message = nbytes
            else:
                steps = 2 * (group - 1)
                volume = 2.0 * nbytes * (group - 1) / group
                message = nbytes / group
        else:  # reduce_scatter / all_gather / broadcast
            steps = group - 1
            volume = nbytes * (group - 1) / group
            message = nbytes / group
        return volume / self.message_bandwidth(message) + steps * self.latency

    def required_processor_fraction(self, busy_fraction: float) -> float:
        """Compute tax when the network is busy ``busy_fraction`` of the time."""
        if not 0 <= busy_fraction <= 1:
            raise ValueError("busy_fraction must be in [0, 1]")
        return self.processor_usage * busy_fraction
