"""Processor model (paper §2.2).

Computation is assigned to either a *matrix* engine (GEMMs, batched matrix
multiplies — tensor cores) or a *vector* engine (element-wise layers).  The
achievable fraction of peak throughput is parameterized by the operation size
via an efficiency curve, capturing that small GEMMs run well below peak.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass


@dataclass(frozen=True)
class EfficiencyCurve:
    """Piecewise log-linear efficiency as a function of operation FLOPs.

    ``points`` is a sorted sequence of ``(flops, efficiency)`` pairs.  Below
    the first point the first efficiency applies; above the last, the last.
    In between, efficiency is interpolated linearly in ``log10(flops)``.
    """

    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("efficiency curve needs at least one point")
        xs = [p[0] for p in self.points]
        if xs != sorted(xs):
            raise ValueError("efficiency curve points must be sorted by flops")
        for flops, eff in self.points:
            if flops <= 0:
                raise ValueError("curve flops must be positive")
            if not 0.0 < eff <= 1.0:
                raise ValueError(f"efficiency must be in (0, 1], got {eff}")
        # Breakpoints and their logs, precomputed once: __call__ sits on the
        # per-layer roofline hot path and must not rebuild them per lookup.
        # (Stored via object.__setattr__ because the dataclass is frozen;
        # they are derived values, invisible to equality and hashing.)
        object.__setattr__(self, "_xs", tuple(xs))
        object.__setattr__(
            self, "_logxs", tuple(math.log10(x) for x in xs)
        )

    def __call__(self, op_flops: float) -> float:
        pts = self.points
        if op_flops <= pts[0][0]:
            return pts[0][1]
        if op_flops >= pts[-1][0]:
            return pts[-1][1]
        i = bisect.bisect_right(self._xs, op_flops)
        y0, y1 = pts[i - 1][1], pts[i][1]
        logxs = self._logxs
        frac = (math.log10(op_flops) - logxs[i - 1]) / (
            logxs[i] - logxs[i - 1]
        )
        return y0 + frac * (y1 - y0)

    @classmethod
    def flat(cls, efficiency: float) -> "EfficiencyCurve":
        """A size-independent efficiency (used to ablate the curve)."""
        return cls(points=((1.0, efficiency),))


# Default curve shaped after published A100/H100 GEMM benchmarks and
# calibrated so the Table-2 validation configurations land near the measured
# Selene batch times: tiny GEMMs reach only a few percent of peak; the large
# Megatron-shape GEMMs sustain roughly 75-80% of peak tensor throughput.
DEFAULT_MATRIX_CURVE = EfficiencyCurve(
    points=(
        (1e6, 0.04),
        (1e7, 0.15),
        (1e8, 0.40),
        (1e9, 0.60),
        (1e10, 0.71),
        (1e11, 0.76),
        (1e12, 0.78),
    )
)

DEFAULT_VECTOR_CURVE = EfficiencyCurve(
    points=((1e5, 0.30), (1e7, 0.70), (1e9, 0.90))
)


@dataclass(frozen=True)
class Processor:
    """One accelerator's compute capability.

    Attributes:
        name: e.g. ``"a100-80g"``.
        matrix_flops: peak matrix-engine throughput, FLOP/s.
        vector_flops: peak vector-engine throughput, FLOP/s.
        matrix_efficiency: size-dependent efficiency of the matrix engine.
        vector_efficiency: size-dependent efficiency of the vector engine.
    """

    name: str
    matrix_flops: float
    vector_flops: float
    matrix_efficiency: EfficiencyCurve = DEFAULT_MATRIX_CURVE
    vector_efficiency: EfficiencyCurve = DEFAULT_VECTOR_CURVE

    def __post_init__(self) -> None:
        if self.matrix_flops <= 0 or self.vector_flops <= 0:
            raise ValueError(f"{self.name}: peak throughputs must be positive")

    def engine_rate(self, engine: str, op_flops: float) -> float:
        """Achieved FLOP/s of the given engine for an op of ``op_flops``."""
        if engine == "matrix":
            return self.matrix_flops * self.matrix_efficiency(op_flops)
        if engine == "vector":
            return self.vector_flops * self.vector_efficiency(op_flops)
        raise ValueError(f"unknown engine {engine!r}")

    def compute_time(self, engine: str, op_flops: float) -> float:
        """Raw compute time of one operation, ignoring memory."""
        if op_flops < 0:
            raise ValueError("op_flops must be non-negative")
        if op_flops == 0:
            return 0.0
        return op_flops / self.engine_rate(engine, op_flops)
