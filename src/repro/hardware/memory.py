"""Two-level memory hierarchy model (paper §2.2).

Tier 1 is the processor's directly-attached memory (HBM) used for active
computation; tier 2 is an optional high-capacity memory (CPU DDR / CXL) used
to stash bulk data for later — the *offloading* target of §6.  Both tiers have
programmable capacities, bandwidths, and size-based efficiencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryTier:
    """One memory level.

    Attributes:
        name: e.g. ``"hbm2e"`` or ``"ddr5"``.
        capacity: bytes available to the application.
        bandwidth: peak bytes/second (per direction for the offload tier).
        efficiency: achievable fraction of peak for large streaming accesses.
        small_access_bytes: accesses below this size pay reduced efficiency
            (latency-bound), scaling linearly down to ``min_efficiency``.
        min_efficiency: efficiency floor for tiny accesses.
    """

    name: str
    capacity: float
    bandwidth: float
    efficiency: float = 0.90
    small_access_bytes: float = 1 << 20  # 1 MiB
    min_efficiency: float = 0.10

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"{self.name}: capacity must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"{self.name}: efficiency must be in (0, 1]")
        if not 0 < self.min_efficiency <= self.efficiency:
            raise ValueError(f"{self.name}: min_efficiency must be in (0, efficiency]")

    def effective_bandwidth(self, nbytes: float) -> float:
        """Bandwidth achieved for one access of ``nbytes``."""
        if nbytes <= 0:
            return self.bandwidth * self.efficiency
        if nbytes >= self.small_access_bytes:
            eff = self.efficiency
        else:
            # Log-linear ramp from min_efficiency at 4 KiB to full efficiency.
            lo, hi = math.log2(4096.0), math.log2(self.small_access_bytes)
            frac = (math.log2(max(nbytes, 4096.0)) - lo) / (hi - lo)
            eff = self.min_efficiency + frac * (self.efficiency - self.min_efficiency)
        return self.bandwidth * eff

    def access_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` through this tier."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return nbytes / self.effective_bandwidth(nbytes)

    def fits(self, nbytes: float) -> bool:
        """Whether ``nbytes`` fits within this tier's capacity."""
        return nbytes <= self.capacity


INFINITE_TIER = MemoryTier(
    name="infinite", capacity=float("inf"), bandwidth=float("inf"), efficiency=1.0
)
