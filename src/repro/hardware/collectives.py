"""Collective-communication algorithm models (paper §2.2).

A network "has a specification of how it handles each specific operation,
which is also the mechanism that models the performance benefits of
in-network collectives".  This module provides the algorithm zoo:

* **ring** — bandwidth-optimal: an all-reduce moves ``2(g-1)/g`` of the
  payload per processor in ``2(g-1)`` latency steps.
* **tree** — latency-optimal: ``2*log2(g)`` steps moving the payload twice
  (reduce up, broadcast down); wins for small payloads and large groups.
* **in-network** — switch-resident reduction (e.g. SHARP): each byte crosses
  the wire once, with a single logical step.
* **hierarchical** — two-tier reduction for groups spanning a fast inner
  domain and a slower outer network: reduce-scatter inside, all-reduce of the
  shard across domains, all-gather inside.  This is the NCCL "NVLS/tree"
  regime that makes data parallelism scale across nodes.

:func:`best_time` mirrors a tuned communication library by picking the
fastest admissible algorithm per (operation, payload, group).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .network import COLLECTIVE_OPS, Network


@dataclass(frozen=True)
class CollectiveEstimate:
    """Time and provenance of one collective estimate."""

    time: float
    algorithm: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("time must be non-negative")


def _validate(op: str, nbytes: float, group: int) -> None:
    if op not in COLLECTIVE_OPS:
        raise ValueError(f"unknown collective {op!r}")
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if group < 1:
        raise ValueError("group must be >= 1")


def ring_time(net: Network, op: str, nbytes: float, group: int) -> float:
    """Bandwidth-optimal ring algorithm (the NCCL default at scale)."""
    _validate(op, nbytes, group)
    if nbytes == 0 or (group == 1 and op != "p2p"):
        return 0.0
    if op == "p2p":
        return nbytes / net.message_bandwidth(nbytes) + net.latency
    if op == "all_reduce":
        steps = 2 * (group - 1)
        volume = 2.0 * nbytes * (group - 1) / group
    else:  # reduce_scatter / all_gather / broadcast
        steps = group - 1
        volume = nbytes * (group - 1) / group
    return volume / net.message_bandwidth(nbytes / group) + steps * net.latency


def tree_time(net: Network, op: str, nbytes: float, group: int) -> float:
    """Latency-optimal binary-tree algorithm.

    Only reductions and broadcasts have tree forms; reduce-scatter and
    all-gather are inherently ``(g-1)/g``-volume operations, so the ring
    estimate is returned for them.
    """
    _validate(op, nbytes, group)
    if nbytes == 0 or (group == 1 and op != "p2p"):
        return 0.0
    depth = math.ceil(math.log2(group)) if group > 1 else 0
    if op == "all_reduce":
        # Reduce up the tree then broadcast down: payload crosses twice.
        return 2.0 * nbytes / net.message_bandwidth(nbytes) + 2 * depth * net.latency
    if op == "broadcast":
        return nbytes / net.message_bandwidth(nbytes) + depth * net.latency
    return ring_time(net, op, nbytes, group)


def in_network_time(net: Network, op: str, nbytes: float, group: int) -> float:
    """Switch-resident reduction: every byte crosses the wire exactly once."""
    _validate(op, nbytes, group)
    if nbytes == 0 or (group == 1 and op != "p2p"):
        return 0.0
    if op in ("all_reduce", "broadcast"):
        return nbytes / net.message_bandwidth(nbytes) + net.latency
    return ring_time(net, op, nbytes, group)


def best_time(
    net: Network, op: str, nbytes: float, group: int
) -> CollectiveEstimate:
    """The fastest admissible algorithm, as a tuned library would choose."""
    candidates = {
        "ring": ring_time(net, op, nbytes, group),
        "tree": tree_time(net, op, nbytes, group),
    }
    if net.in_network_collectives:
        candidates["in-network"] = in_network_time(net, op, nbytes, group)
    algorithm = min(candidates, key=candidates.get)
    return CollectiveEstimate(time=candidates[algorithm], algorithm=algorithm)


def hierarchical_all_reduce(
    inner: Network,
    outer: Network,
    nbytes: float,
    inner_group: int,
    outer_group: int,
) -> float:
    """Two-tier all-reduce: RS inside, AR of the shard across, AG inside.

    ``inner_group`` processors share a fast domain (e.g. NVLink island of 8);
    ``outer_group`` domains are connected by the slower network.  After the
    inner reduce-scatter each processor owns ``nbytes / inner_group`` and
    reduces it with its peers across domains over its own NIC — cutting the
    outer traffic per processor by the inner-domain size.
    """
    if inner_group < 1 or outer_group < 1:
        raise ValueError("group sizes must be >= 1")
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if nbytes == 0 or inner_group * outer_group == 1:
        return 0.0
    if inner_group == 1:
        return best_time(outer, "all_reduce", nbytes, outer_group).time
    if outer_group == 1:
        return best_time(inner, "all_reduce", nbytes, inner_group).time
    shard = nbytes / inner_group
    t = ring_time(inner, "reduce_scatter", nbytes, inner_group)
    t += best_time(outer, "all_reduce", shard, outer_group).time
    t += ring_time(inner, "all_gather", nbytes, inner_group)
    return t
