"""Network topology models: how group span degrades effective bandwidth.

The base :class:`~repro.hardware.network.Network` exposes a flat per-endpoint
bandwidth.  Real scale-out fabrics are built from switch tiers, and the
bandwidth a collective actually sustains depends on where its members sit:

* **full-bisection fat-tree** — non-blocking at any span (the ideal);
* **oversubscribed fat-tree** — traffic leaving a leaf group shares an
  uplink pool ``1/oversubscription`` as wide as the downlinks;
* **dragonfly** — all-to-all groups connected by a limited pool of global
  links; intra-group traffic is cheap, inter-group traffic contends.

:func:`effective_network` returns a derated copy of a network for a given
communication span, so every existing collective model (ring, tree,
hierarchical, the core model's exposure logic) works unchanged on top of a
topology — the same composability the paper's network spec aims for.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .network import Network


@dataclass(frozen=True)
class FatTree:
    """A (possibly oversubscribed) leaf-spine / fat-tree fabric.

    Attributes:
        leaf_size: endpoints per leaf switch group.
        oversubscription: ratio of leaf downlink to uplink capacity; 1.0 is
            full bisection, 4.0 means a 4:1 taper.
        levels: switch tiers above the leaves (adds per-hop latency).
        per_hop_latency: added latency per switch tier crossed.
    """

    leaf_size: int
    oversubscription: float = 1.0
    levels: int = 2
    per_hop_latency: float = 0.3e-6

    def __post_init__(self) -> None:
        if self.leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1.0")
        if self.levels < 1:
            raise ValueError("levels must be >= 1")
        if self.per_hop_latency < 0:
            raise ValueError("per_hop_latency must be non-negative")

    def bandwidth_factor(self, span: int) -> float:
        """Fraction of endpoint bandwidth sustained by a group of ``span``."""
        if span < 1:
            raise ValueError("span must be >= 1")
        if span <= self.leaf_size:
            return 1.0
        return 1.0 / self.oversubscription

    def extra_latency(self, span: int) -> float:
        if span <= self.leaf_size:
            return self.per_hop_latency  # one leaf hop
        return (2 * self.levels - 1) * self.per_hop_latency


@dataclass(frozen=True)
class Dragonfly:
    """A dragonfly fabric: dense electrical groups + sparse global links.

    Attributes:
        group_size: endpoints per dragonfly group.
        global_taper: ratio of in-group injection capacity to per-endpoint
            global-link capacity (how much inter-group traffic contends).
        per_hop_latency: added latency per hop (local-global-local worst
            case for inter-group traffic).
    """

    group_size: int
    global_taper: float = 2.0
    per_hop_latency: float = 0.4e-6

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ValueError("group_size must be >= 1")
        if self.global_taper < 1.0:
            raise ValueError("global_taper must be >= 1.0")
        if self.per_hop_latency < 0:
            raise ValueError("per_hop_latency must be non-negative")

    def bandwidth_factor(self, span: int) -> float:
        if span < 1:
            raise ValueError("span must be >= 1")
        if span <= self.group_size:
            return 1.0
        return 1.0 / self.global_taper

    def extra_latency(self, span: int) -> float:
        if span <= self.group_size:
            return self.per_hop_latency
        return 3 * self.per_hop_latency  # local + global + local


def effective_network(net: Network, topology, span: int) -> Network:
    """Derate a network for a collective spanning ``span`` endpoints.

    Returns a copy with bandwidth scaled by the topology's sustained
    fraction and latency increased by its hop cost; the copy plugs into
    every existing collective/time model unchanged.
    """
    factor = topology.bandwidth_factor(span)
    if not 0 < factor <= 1:
        raise ValueError("topology returned a bandwidth factor outside (0, 1]")
    return replace(
        net,
        bandwidth=net.bandwidth * factor,
        latency=net.latency + topology.extra_latency(span),
    )
