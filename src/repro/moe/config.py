"""Mixture-of-Experts model configuration.

The paper's related work discusses GShard/GSPMD, the systems that introduced
expert-parallel transformers; this extension models them.  An MoE block
replaces the dense MLP with ``num_experts`` expert MLPs of which each token
activates ``experts_per_token`` (top-k routing).  Compute per token stays
near the dense block's (k experts of the same width), while parameters grow
by the expert count — the whole point of the architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.config import LLMConfig


@dataclass(frozen=True)
class MoEConfig:
    """An MoE transformer: a dense backbone plus routed expert MLPs.

    Attributes:
        base: the dense configuration (attention, hidden size, depth); its
            MLP describes ONE expert.
        num_experts: experts per MoE layer (``E``).
        experts_per_token: active experts per token (top-k, usually 1 or 2).
        capacity_factor: per-expert buffer slack over the perfectly-balanced
            load (GShard uses 1.25-2.0); inflates expert compute and the
            all-to-all payloads.
        moe_every: place an MoE layer every this many blocks (GShard
            alternates dense/MoE with 2).
    """

    base: LLMConfig
    num_experts: int
    experts_per_token: int = 2
    capacity_factor: float = 1.25
    moe_every: int = 2

    def __post_init__(self) -> None:
        if self.num_experts < 2:
            raise ValueError("num_experts must be >= 2")
        if not 1 <= self.experts_per_token <= self.num_experts:
            raise ValueError("experts_per_token must be in [1, num_experts]")
        if self.capacity_factor < 1.0:
            raise ValueError("capacity_factor must be >= 1.0")
        if self.moe_every < 1:
            raise ValueError("moe_every must be >= 1")

    @property
    def name(self) -> str:
        return f"{self.base.name}-moe{self.num_experts}x{self.experts_per_token}"

    @property
    def num_moe_blocks(self) -> int:
        return self.base.num_blocks // self.moe_every

    @property
    def expert_parameters(self) -> int:
        """Parameters of one expert MLP (one dense MLP's worth)."""
        h, f = self.base.hidden, self.base.feedforward
        return h * f + f + f * h + h

    @property
    def total_parameters(self) -> int:
        """Dense backbone + the extra (E - 1) experts per MoE layer."""
        extra = self.num_moe_blocks * (self.num_experts - 1) * self.expert_parameters
        return self.base.total_parameters + extra

    @property
    def active_parameters_per_token(self) -> float:
        """Parameters touched per token (the dense-equivalent compute size)."""
        extra_active = (
            self.num_moe_blocks
            * (self.experts_per_token - 1)
            * self.expert_parameters
        )
        return self.base.total_parameters + extra_active
