"""Analytical MoE training model, layered over the calibrated dense core.

The dense engine already prices attention, dense MLPs, pipeline, TP/DP and
the optimizer.  MoE changes three things, which this module adds on top:

1. **Compute** — each MoE layer runs ``k * capacity_factor`` expert-MLPs
   worth of GEMM work per token instead of one dense MLP.
2. **Communication** — two all-to-alls per MoE layer per pass (dispatch
   tokens to experts, return them), over the expert-parallel group.
3. **Memory** — every device stores ``E / ep`` experts' weights, gradients
   and optimizer state per MoE layer instead of one MLP.

Experts are sharded ``ep`` ways across the data-parallel dimension (the
GShard placement), so the all-to-all rides the network the DP group spans.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.results import PerformanceResult
from ..engine import evaluate
from ..execution.strategy import ExecutionStrategy
from ..hardware.system import System
from .config import MoEConfig


@dataclass(frozen=True)
class MoEResult:
    """Dense-core result plus the MoE deltas, with combined totals."""

    dense: PerformanceResult
    moe_compute_time: float  # extra expert GEMM time per batch
    all_to_all_time: float  # dispatch/return communication per batch
    expert_memory: float  # extra per-device expert weights+grads+optimizer
    batch_time: float
    mem_total: float
    feasible: bool
    infeasibility: str = ""

    @property
    def sample_rate(self) -> float:
        if not self.feasible or self.batch_time <= 0:
            return 0.0
        return self.dense.batch / self.batch_time


def calculate_moe(
    moe: MoEConfig,
    system: System,
    strategy: ExecutionStrategy,
    *,
    expert_par: int | None = None,
) -> MoEResult:
    """Estimate MoE training time and memory for one configuration.

    Args:
        moe: the MoE model.
        system: the hardware.
        strategy: the dense execution strategy (t, p, d, batch, ...).
        expert_par: expert-parallel degree; defaults to
            ``min(data_par, num_experts)``.  Must divide ``num_experts``.

    Raises:
        ValueError: on an invalid expert-parallel degree.
    """
    if expert_par is None:
        # Largest divisor of the expert count that fits the DP dimension.
        ep = max(
            d for d in range(1, min(strategy.data_par, moe.num_experts) + 1)
            if moe.num_experts % d == 0
        )
    else:
        ep = expert_par
        if ep < 1 or moe.num_experts % ep:
            raise ValueError(
                f"expert_par={ep} must divide num_experts={moe.num_experts}"
            )

    dense = evaluate(moe.base, system, strategy)
    if not dense.feasible:
        return MoEResult(
            dense=dense, moe_compute_time=0.0, all_to_all_time=0.0,
            expert_memory=0.0, batch_time=float("inf"), mem_total=0.0,
            feasible=False, infeasibility=dense.infeasibility,
        )

    base = moe.base
    t, p = strategy.tensor_par, strategy.pipeline_par
    e_bytes = base.bytes_per_element
    bpstage = strategy.blocks_per_stage(base.num_blocks)
    moe_per_stage = bpstage / moe.moe_every
    M = strategy.num_microbatches
    tokens = strategy.microbatch * base.seq_size

    # --- extra expert compute -------------------------------------------------
    # One dense MLP is already priced; MoE runs k * capacity of them.
    mlp_flops_fw = 4.0 * tokens * base.hidden * base.feedforward / t
    extra_factor = moe.experts_per_token * moe.capacity_factor - 1.0
    extra_fw = extra_factor * mlp_flops_fw
    rate = system.processor.engine_rate("matrix", mlp_flops_fw)
    per_layer_fw = extra_fw / rate
    per_layer_bw = 2.0 * per_layer_fw
    if strategy.recompute == "full":
        per_layer_bw += per_layer_fw
    moe_compute = M * moe_per_stage * (per_layer_fw + per_layer_bw)

    # --- all-to-all dispatch/return --------------------------------------------
    # Each token's hidden vector travels to its experts and back: payload
    # k * capacity * tokens * h * e per device per MoE layer, per direction.
    a2a_bytes = (
        moe.experts_per_token * moe.capacity_factor * tokens * base.hidden
        * e_bytes / t
    )
    span = min(system.num_procs, t * p * ep)
    net = system.network_for_span(span) if ep > 1 else None
    if net is None:
        a2a_each = 0.0
    else:
        # All-to-all moves (ep-1)/ep of the payload with ep-1 message steps.
        a2a_each = net.collective_time("all_gather", a2a_bytes, ep)
    passes = 4 if strategy.training else 2  # dispatch+return, fw (and bw)
    if strategy.recompute == "full" and strategy.training:
        passes += 2
    a2a_total = M * moe_per_stage * passes * a2a_each

    # --- expert memory -----------------------------------------------------------
    experts_per_device = moe.num_experts / ep
    extra_experts = experts_per_device - 1.0  # one MLP already counted
    expert_weight_bytes = moe.expert_parameters * e_bytes / t
    opt_shard = strategy.data_par if strategy.optimizer_sharding else 1
    per_layer_mem = extra_experts * expert_weight_bytes
    mem_extra = moe_per_stage * (
        per_layer_mem  # weights
        + (per_layer_mem if strategy.training else 0.0)  # grads
        + (extra_experts * moe.expert_parameters * 12.0 / t / opt_shard
           if strategy.training else 0.0)
    )

    mem_total = dense.mem1.total + mem_extra
    if mem_total > system.mem1.capacity:
        return MoEResult(
            dense=dense, moe_compute_time=moe_compute, all_to_all_time=a2a_total,
            expert_memory=mem_extra, batch_time=float("inf"),
            mem_total=mem_total, feasible=False,
            infeasibility=(
                f"expert memory pushes tier-1 to {mem_total / 2**30:.1f} GiB, "
                f"over {system.mem1.capacity / 2**30:.1f} GiB"
            ),
        )

    return MoEResult(
        dense=dense,
        moe_compute_time=moe_compute,
        all_to_all_time=a2a_total,
        expert_memory=mem_extra,
        batch_time=dense.batch_time + moe_compute + a2a_total,
        mem_total=mem_total,
        feasible=True,
    )
