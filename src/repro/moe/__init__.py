"""Mixture-of-Experts extension (GShard/GSPMD-style expert parallelism)."""

from .config import MoEConfig
from .model import MoEResult, calculate_moe

__all__ = ["MoEConfig", "MoEResult", "calculate_moe"]
