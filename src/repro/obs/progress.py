"""Progress reporting for long sweeps: candidates/sec, ETA, feasible fraction.

A :class:`ProgressReporter` is fed completion deltas by the search layer
(one update per finished chunk, or per system size in a scaling sweep) and
relays throttled snapshots to a callback — by default a single rewritten
status line on a stream (the CLI passes ``sys.stderr`` so reports never
contaminate piped stdout).
"""

from __future__ import annotations

import logging
import time
from typing import Callable, TextIO

logger = logging.getLogger(__name__)


class ProgressReporter:
    """Tracks sweep completion and emits throttled progress reports.

    Args:
        total: expected number of items; may be ``None`` until the search
            layer has enumerated the space and calls :meth:`set_total`.
        callback: called with the reporter on every (throttled) update and
            once from :meth:`finish`.  Overrides the default stream line.
        stream: where the default callback writes its status line.
        min_interval: minimum seconds between callback invocations.
        clock: injectable time source (tests pass a fake).
        unit: noun used in the default status line.
    """

    def __init__(
        self,
        total: int | None = None,
        *,
        callback: Callable[["ProgressReporter"], None] | None = None,
        stream: TextIO | None = None,
        min_interval: float = 0.2,
        clock: Callable[[], float] = time.perf_counter,
        unit: str = "candidates",
    ):
        self.total = total
        self.done = 0
        self.feasible = 0
        self.unit = unit
        self._callback = callback
        self._stream = stream
        self._min_interval = min_interval
        self._clock = clock
        self._start = clock()
        self._last_report = -float("inf")
        self.updates = 0  # number of callback invocations (telemetry/tests)

    def set_total(self, total: int) -> None:
        self.total = total

    # -- accumulation --------------------------------------------------------

    def update(self, done: int, feasible: int = 0) -> None:
        """Record ``done`` newly-finished items, ``feasible`` of which passed."""
        self.done += done
        self.feasible += feasible
        now = self._clock()
        complete = self.total is not None and self.done >= self.total
        if complete or now - self._last_report >= self._min_interval:
            self._last_report = now
            self._report(final=False)

    def finish(self) -> None:
        """Force a final report (and terminate the status line)."""
        self._report(final=True)

    # -- derived rates -------------------------------------------------------

    @property
    def elapsed(self) -> float:
        # The default clock (perf_counter) is monotonic, but an injected
        # clock may not be: clamp so a backwards step never yields negative
        # elapsed time (and, downstream, a negative rate).
        return max(self._clock() - self._start, 0.0)

    @property
    def rate(self) -> float:
        """Items completed per second so far (0.0 before the clock moves)."""
        dt = self.elapsed
        return self.done / dt if dt > 0 else 0.0

    @property
    def eta(self) -> float | None:
        """Estimated seconds remaining.

        ``None`` whenever no defensible estimate exists: unknown total, no
        completions yet, or a zero rate (stalled clock or stalled sweep) —
        never a ``ZeroDivisionError``, an ``inf`` or a negative number.
        Overshoot (``done > total``) clamps to 0.
        """
        if self.total is None or self.done == 0:
            return None
        rate = self.rate
        if rate <= 0:
            return None
        remaining = max(self.total - self.done, 0)
        return remaining / rate

    @property
    def feasible_fraction(self) -> float:
        return self.feasible / self.done if self.done else 0.0

    # -- output --------------------------------------------------------------

    def status_line(self) -> str:
        total = f"/{self.total:,}" if self.total is not None else ""
        line = (
            f"{self.done:,}{total} {self.unit} · {self.rate:,.0f}/s · "
            f"{self.feasible_fraction * 100:.1f}% feasible"
        )
        eta = self.eta
        if eta is not None:
            line += f" · ETA {eta:.1f}s"
        return line

    def _report(self, final: bool) -> None:
        self.updates += 1
        if self._callback is not None:
            self._callback(self)
            return
        if self._stream is not None:
            self._stream.write("\r" + self.status_line().ljust(72))
            if final:
                self._stream.write("\n")
            self._stream.flush()
        else:
            logger.debug("progress: %s", self.status_line())
