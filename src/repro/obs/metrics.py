"""Counters and wall-time histograms with associative cross-process merging.

A :class:`MetricsRegistry` is the mutable accumulator the engine and search
layers increment while instrumented.  Its :meth:`~MetricsRegistry.snapshot`
is a plain, picklable dict, so ``ProcessPoolExecutor`` workers return one
snapshot per chunk and the parent folds them back in with
:meth:`~MetricsRegistry.merge` — the merge is associative and commutative
(counters add; histogram count/sum add, min/max combine, buckets add), so
the aggregate is independent of chunk order and worker count.

Histograms keep count/sum/min/max plus sparse power-of-two buckets keyed by
the value's binary exponent: enough to report means, extremes and a
log-scale distribution of per-stage evaluation times without storing
samples.
"""

from __future__ import annotations

import logging
import math
import threading
from typing import Any, Iterable, Mapping

logger = logging.getLogger(__name__)


class Counter:
    """A monotonically-growing scalar."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.value!r})"


class Histogram:
    """Streaming distribution summary over non-negative observations."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        # binary exponent of the observation -> number of observations
        self.buckets: dict[int, int] = {}

    def observe(self, x: float) -> None:
        self.count += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        exp = math.frexp(x)[1] if x > 0 else 0
        self.buckets[exp] = self.buckets.get(exp, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def bucket_upper_bound(exp: int) -> float:
        """Inclusive upper edge of the bucket keyed by binary exponent ``exp``.

        ``observe`` files ``x > 0`` under ``math.frexp(x)[1]``, i.e. bucket
        ``e`` holds ``[2**(e-1), 2**e)``; non-positive observations land in
        bucket 0 (upper edge 1.0), which still bounds them from above.
        """
        return math.ldexp(1.0, exp)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) from the power-of-two buckets.

        Linear interpolation inside the covering bucket, clamped to the
        exact observed ``[min, max]`` — good to within a factor of two by
        construction, exact at the extremes.  Returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for exp in sorted(self.buckets):
            n = self.buckets[exp]
            if cumulative + n >= rank:
                hi = self.bucket_upper_bound(exp)
                lo = hi / 2.0
                frac = (rank - cumulative) / n
                est = lo + (hi - lo) * frac
                return min(max(est, self.min), self.max)
            cumulative += n
        return self.max

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for exp, n in other.buckets.items():
            self.buckets[exp] = self.buckets.get(exp, 0) + n

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": dict(self.buckets),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Histogram":
        h = cls()
        h.count = int(d["count"])
        h.total = float(d["total"])
        h.min = float(d["min"])
        h.max = float(d["max"])
        h.buckets = {int(k): int(v) for k, v in d["buckets"].items()}
        return h

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, total={self.total:.6g})"


class MetricsRegistry:
    """Named counters and histograms, created on first touch.

    :meth:`inc`, :meth:`observe`, :meth:`merge` and the readers hold an
    internal lock, so a registry can be shared across threads (the service's
    HTTP handler pool and dispatch thread all increment one registry).  The
    handles returned by :meth:`counter` / :meth:`histogram` are *not*
    individually synchronized — mutate through the registry when sharing it.
    """

    __slots__ = ("counters", "histograms", "_lock")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- accumulation --------------------------------------------------------

    def _counter_locked(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def _histogram_locked(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counter_locked(name)

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self._histogram_locked(name)

    def inc(self, name: str, n: float = 1.0) -> None:
        with self._lock:
            self._counter_locked(name).inc(n)

    def observe(self, name: str, x: float) -> None:
        with self._lock:
            self._histogram_locked(name).observe(x)

    # -- reading -------------------------------------------------------------

    def value(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            c = self.counters.get(name)
            return c.value if c is not None else default

    def stage_total(self, name: str) -> float:
        """Sum of all observations of histogram ``name`` (0.0 if absent)."""
        with self._lock:
            h = self.histograms.get(name)
            return h.total if h is not None else 0.0

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict copy, safe to pickle across process boundaries."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self.counters.items()},
                "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
            }

    def merge(self, snap: Mapping[str, Any]) -> None:
        """Fold a snapshot into this registry (associative, commutative)."""
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self._counter_locked(name).inc(value)
            for name, hd in snap.get("histograms", {}).items():
                self._histogram_locked(name).merge(Histogram.from_dict(hd))

    @classmethod
    def from_snapshots(cls, snaps: Iterable[Mapping[str, Any]]) -> "MetricsRegistry":
        reg = cls()
        for snap in snaps:
            reg.merge(snap)
        return reg
