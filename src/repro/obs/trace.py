"""Span tracing with Chrome ``trace_event`` export.

A :class:`Tracer` records wall-clock spans — hierarchical by timestamp
containment, the way ``chrome://tracing`` and Perfetto render them — and
serializes to the Trace Event JSON format those viewers load directly.

Two properties matter for a tool whose hot path evaluates a candidate in
tens of microseconds:

* **Disabled is free.**  A disabled tracer returns one shared no-op context
  manager from :meth:`Tracer.span`; nothing is allocated and nothing is
  recorded.  The engine and search layers additionally gate every
  instrumentation site on ``tracer is not None``, so the default
  (un-traced) path pays only untaken branches.
* **Mergeable across processes.**  Timestamps come from
  ``time.perf_counter()`` (CLOCK_MONOTONIC on Linux, shared by every
  process on the machine), so events recorded inside
  ``ProcessPoolExecutor`` workers can be shipped back as plain dicts and
  concatenated onto the parent's timeline with :meth:`Tracer.add_events`;
  each worker's ``pid`` keeps its track separate in the viewer.

Sweep-scale caveat: per-candidate spans at 10^5+ candidates would produce
gigabyte traces, so batched evaluation records *aggregate* stage spans —
one span per pipeline stage per chunk, sized by the chunk's accumulated
stage time (see ``repro.search._evaluate_chunk``).  Single-candidate
:func:`repro.engine.evaluate` records real per-stage spans.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..fsutil import atomic_write_text

logger = logging.getLogger(__name__)

# Trace-event timestamps are microseconds.
_US = 1e6

# The HTTP header carrying a serialized TraceContext (client -> server).
TRACE_HEADER = "X-Repro-Trace"


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of a distributed trace.

    ``trace_id`` names the whole trace (one per coordinator
    :class:`Tracer`); ``parent`` optionally names the span under which the
    remote work should nest.  The context crosses process boundaries as a
    plain dict (pickled into ``multiprocessing`` chunk args) and HTTP
    boundaries as the :data:`TRACE_HEADER` header value
    (``<trace_id>`` or ``<trace_id>;<parent>``).
    """

    trace_id: str
    parent: str | None = None

    def to_header(self) -> str:
        return self.trace_id if self.parent is None else f"{self.trace_id};{self.parent}"

    @classmethod
    def from_header(cls, value: str) -> "TraceContext | None":
        value = value.strip()
        if not value:
            return None
        trace_id, _, parent = value.partition(";")
        trace_id = trace_id.strip()
        if not trace_id:
            return None
        return cls(trace_id=trace_id, parent=parent.strip() or None)

    def to_dict(self) -> dict[str, Any]:
        return {"trace_id": self.trace_id, "parent": self.parent}

    @classmethod
    def from_dict(cls, d: Any) -> "TraceContext | None":
        if not isinstance(d, dict) or not d.get("trace_id"):
            return None
        return cls(trace_id=str(d["trace_id"]), parent=d.get("parent") or None)


def new_trace_id() -> str:
    """A fresh 32-hex-char trace identifier."""
    return uuid.uuid4().hex


class _NullSpan:
    """The shared no-op context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


NULL_SPAN = _NullSpan()


class _Span:
    """One live span: records a complete ("X") event on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict | None):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        end = time.perf_counter()
        self._tracer._record(self._name, self._cat, self._start, end - self._start,
                             self._args)


class Tracer:
    """Collects spans as Chrome trace events.

    ``span`` is the only API the instrumented code paths use::

        with tracer.span("memory", cat="engine.stage"):
            stage_memory(ctx)

    Disabled tracers (``Tracer(enabled=False)``) hand back :data:`NULL_SPAN`
    and record nothing.
    """

    def __init__(self, enabled: bool = True, trace_id: str | None = None):
        self.enabled = enabled
        self.trace_id = trace_id or new_trace_id()
        self._events: list[dict[str, Any]] = []
        self._pid = os.getpid()
        # pid -> display label for merged foreign events ("worker"/"server");
        # our own pid renders as "main".
        self._pid_labels: dict[int, str] = {}

    def context(self, parent: str | None = None) -> TraceContext:
        """The propagation context to ship across a process/HTTP boundary."""
        return TraceContext(trace_id=self.trace_id, parent=parent)

    # -- recording -----------------------------------------------------------

    def span(self, name: str, cat: str = "task", **args: Any):
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, cat, args or None)

    def add_span(
        self,
        name: str,
        cat: str,
        start: float,
        duration: float,
        *,
        tid: int | None = None,
        **args: Any,
    ) -> None:
        """Record a span with explicit ``perf_counter`` timing.

        Used for aggregate spans (per-stage totals within a sweep chunk)
        whose extent is computed rather than measured inline.
        """
        if not self.enabled:
            return
        self._record(name, cat, start, duration, args or None, tid=tid)

    def instant(self, name: str, cat: str = "mark", **args: Any) -> None:
        """Record a zero-duration instant event (rendered as an arrowhead)."""
        if not self.enabled:
            return
        event: dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "ts": time.perf_counter() * _US,
            "pid": self._pid,
            "tid": threading.get_ident(),
            "s": "t",
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def _record(
        self,
        name: str,
        cat: str,
        start: float,
        duration: float,
        args: dict | None,
        *,
        tid: int | None = None,
    ) -> None:
        event: dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start * _US,
            "dur": max(duration, 0.0) * _US,
            "pid": self._pid,
            "tid": threading.get_ident() if tid is None else tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def add_events(self, events: list[dict[str, Any]], label: str | None = None) -> None:
        """Merge raw events recorded elsewhere (typically a worker process).

        ``label`` names the originating process kind ("worker", "server");
        foreign pids keep their own timeline lane in the viewer and render as
        ``"<label> <pid>"`` (defaulting to ``"worker <pid>"``).
        """
        self._events.extend(events)
        if label is not None:
            for e in events:
                pid = e.get("pid")
                if isinstance(pid, int) and pid != self._pid:
                    self._pid_labels[pid] = label

    # -- export --------------------------------------------------------------

    def events(self) -> list[dict[str, Any]]:
        return list(self._events)

    def to_chrome(self) -> dict[str, Any]:
        """The complete JSON-object trace, ready for ``json.dump``.

        Timestamps are rebased so the earliest event starts at zero, and one
        ``process_name`` metadata event labels each pid track.  The trace
        identifier rides along both as a top-level ``otherData`` entry and in
        each metadata event, so a stitched multi-process trace is
        self-describing.
        """
        events = [dict(e) for e in self._events]
        if events:
            t0 = min(e["ts"] for e in events)
            for e in events:
                e["ts"] -= t0
        pids = sorted({e["pid"] for e in events})

        def _label(pid: int) -> str:
            if pid == self._pid:
                return "main"
            kind = self._pid_labels.get(pid, "worker")
            return f"{kind} {pid}"

        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": _label(pid)},
            }
            for pid in pids
        ]
        return {
            "traceEvents": meta + events,
            "displayTimeUnit": "ms",
            "otherData": {"trace_id": self.trace_id},
        }

    def write(self, path: str | Path) -> Path:
        """Serialize the trace to ``path`` as Chrome trace-event JSON.

        The write is atomic (temp file + ``os.replace``): an interrupted
        run leaves either the previous trace or the new one, never a
        truncated file the viewer cannot load.
        """
        path = Path(path)
        atomic_write_text(path, json.dumps(self.to_chrome(), indent=1))
        logger.debug("wrote %d trace events to %s", len(self._events), path)
        return path


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------

# Required keys (and value types) per event phase we emit.
_COMPLETE_KEYS = {
    "name": str,
    "cat": str,
    "ph": str,
    "ts": (int, float),
    "dur": (int, float),
    "pid": int,
    "tid": int,
}
_METADATA_KEYS = {"name": str, "ph": str, "pid": int}
_INSTANT_KEYS = {"name": str, "ph": str, "ts": (int, float), "pid": int, "tid": int}


def validate_trace(obj: Any) -> list[str]:
    """Check a loaded trace object against the Chrome trace-event schema.

    Returns a list of human-readable problems; an empty list means the trace
    is loadable by ``chrome://tracing`` / Perfetto.  Only the JSON-object
    form (``{"traceEvents": [...]}``) and the phases this package emits
    (``X``, ``M``, ``i``) are accepted.
    """
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"trace must be a JSON object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["trace object must carry a 'traceEvents' list"]
    for n, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {n}: not an object")
            continue
        ph = event.get("ph")
        required = {"X": _COMPLETE_KEYS, "M": _METADATA_KEYS, "i": _INSTANT_KEYS}.get(ph)
        if required is None:
            errors.append(f"event {n}: unknown phase {ph!r}")
            continue
        for key, types in required.items():
            if key not in event:
                errors.append(f"event {n} ({ph}): missing key {key!r}")
            elif not isinstance(event[key], types):
                errors.append(
                    f"event {n} ({ph}): key {key!r} has type "
                    f"{type(event[key]).__name__}"
                )
        if ph == "X" and isinstance(event.get("dur"), (int, float)) and event["dur"] < 0:
            errors.append(f"event {n}: negative duration")
    return errors


def validate_trace_file(path: str | Path) -> list[str]:
    """Load ``path`` as JSON and run :func:`validate_trace` on it."""
    try:
        obj = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        return [f"unreadable trace file: {err}"]
    return validate_trace(obj)
