"""Prometheus text-format rendering of a :class:`MetricsRegistry`.

The evaluation service exposes ``GET /metrics`` in the Prometheus
text exposition format (version 0.0.4) so a stock Prometheus scrape — or a
``curl | grep`` — can watch cache hit rates and queue depths without any
client library.  Only the registry's own structures are rendered: counters
become ``counter`` samples, histograms become ``summary``-style
``_count``/``_sum`` pairs plus ``_min``/``_max`` gauges (the registry keeps
extremes, not quantiles).
"""

from __future__ import annotations

import re
from typing import Mapping

from .metrics import MetricsRegistry

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """Map a registry metric name onto the Prometheus grammar.

    Dots (the registry's namespace separator) become underscores; any other
    character outside ``[a-zA-Z0-9_:]`` is squashed to ``_``; a leading
    digit gets a ``_`` prefix.
    """
    out = _INVALID.sub("_", name.replace(".", "_"))
    if out and out[0].isdigit():
        out = "_" + out
    return out


def render_prometheus(
    registry: MetricsRegistry,
    *,
    gauges: Mapping[str, float] | None = None,
) -> str:
    """Render the registry (plus caller-supplied ``gauges``) as scrape text.

    ``gauges`` carries point-in-time server state the registry deliberately
    does not accumulate — queue depth, in-flight requests, uptime.
    """
    # Render from a locked snapshot: the registry may be concurrently
    # incremented by other threads while a scrape is being served.
    snap = registry.snapshot()
    counters = snap["counters"]
    histograms = snap["histograms"]
    lines: list[str] = []
    for name in sorted(counters):
        pname = prometheus_name(name)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {counters[name]:g}")
    for name in sorted(histograms):
        hist = histograms[name]
        pname = prometheus_name(name)
        lines.append(f"# TYPE {pname} summary")
        lines.append(f"{pname}_count {hist['count']}")
        lines.append(f"{pname}_sum {hist['total']:g}")
        if hist["count"]:
            lines.append(f"# TYPE {pname}_min gauge")
            lines.append(f"{pname}_min {hist['min']:g}")
            lines.append(f"# TYPE {pname}_max gauge")
            lines.append(f"{pname}_max {hist['max']:g}")
    for name in sorted(gauges or {}):
        pname = prometheus_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {gauges[name]:g}")
    return "\n".join(lines) + "\n"
