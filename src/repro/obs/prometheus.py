"""Prometheus text-format rendering of a :class:`MetricsRegistry`.

The evaluation service exposes ``GET /metrics`` in the Prometheus
text exposition format (version 0.0.4) so a stock Prometheus scrape — or a
``curl | grep`` — can watch cache hit rates, queue depths and latency
distributions without any client library.  Counters become ``counter``
samples, histograms become real ``histogram`` families — cumulative
``_bucket{le="..."}`` series derived from the registry's power-of-two
buckets, plus ``_sum``/``_count`` — so p50/p95/p99 come straight out of
``histogram_quantile()``; observed extremes ride along as ``_min``/``_max``
gauges.

Every exported name carries the ``repro_`` namespace prefix (one tool, one
namespace — scrapes of mixed fleets stay greppable), and label values are
escaped per the exposition grammar (``\\``, ``"`` and newlines).
"""

from __future__ import annotations

import re
from typing import Mapping

from .metrics import Histogram, MetricsRegistry

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

# Namespace prefix applied to every exported sample name.
NAMESPACE = "repro"


def prometheus_name(name: str) -> str:
    """Map a registry metric name onto the Prometheus grammar.

    Dots (the registry's namespace separator) become underscores; any other
    character outside ``[a-zA-Z0-9_:]`` is squashed to ``_``; a leading
    digit gets a ``_`` prefix.  The :data:`NAMESPACE` prefix is applied
    idempotently (a name already starting with ``repro_`` is kept as-is).
    """
    out = _INVALID.sub("_", name.replace(".", "_"))
    if out and out[0].isdigit():
        out = "_" + out
    if out != NAMESPACE and not out.startswith(NAMESPACE + "_"):
        out = f"{NAMESPACE}_{out}"
    return out


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format.

    Backslash, double-quote and newline are the three characters the
    grammar requires escaping inside ``label="..."``; everything else
    passes through verbatim.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_le(bound: float) -> str:
    """Render a bucket upper bound the way Prometheus conventions expect."""
    if bound == float("inf"):
        return "+Inf"
    return f"{bound:g}"


def render_histogram(name: str, hist: Mapping[str, object]) -> list[str]:
    """Render one snapshot histogram as a Prometheus ``histogram`` family.

    The registry's sparse power-of-two buckets become cumulative
    ``_bucket{le="2^e"}`` series (ordered, each including everything below
    it) capped by the mandatory ``le="+Inf"`` bucket equal to ``_count``.
    """
    pname = prometheus_name(name)
    count = int(hist["count"])  # type: ignore[arg-type]
    total = float(hist["total"])  # type: ignore[arg-type]
    buckets: dict[int, int] = {
        int(k): int(v) for k, v in hist["buckets"].items()  # type: ignore[union-attr]
    }
    lines = [f"# TYPE {pname} histogram"]
    cumulative = 0
    for exp in sorted(buckets):
        cumulative += buckets[exp]
        le = escape_label_value(_format_le(Histogram.bucket_upper_bound(exp)))
        lines.append(f'{pname}_bucket{{le="{le}"}} {cumulative}')
    lines.append(f'{pname}_bucket{{le="+Inf"}} {count}')
    lines.append(f"{pname}_sum {total:g}")
    lines.append(f"{pname}_count {count}")
    if count:
        lines.append(f"# TYPE {pname}_min gauge")
        lines.append(f"{pname}_min {hist['min']:g}")
        lines.append(f"# TYPE {pname}_max gauge")
        lines.append(f"{pname}_max {hist['max']:g}")
    return lines


def render_prometheus(
    registry: MetricsRegistry,
    *,
    gauges: Mapping[str, float] | None = None,
) -> str:
    """Render the registry (plus caller-supplied ``gauges``) as scrape text.

    ``gauges`` carries point-in-time server state the registry deliberately
    does not accumulate — queue depth, in-flight requests, uptime.
    """
    # Render from a locked snapshot: the registry may be concurrently
    # incremented by other threads while a scrape is being served.
    snap = registry.snapshot()
    counters = snap["counters"]
    histograms = snap["histograms"]
    lines: list[str] = []
    for name in sorted(counters):
        pname = prometheus_name(name)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {counters[name]:g}")
    for name in sorted(histograms):
        lines.extend(render_histogram(name, histograms[name]))
    for name in sorted(gauges or {}):
        pname = prometheus_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {gauges[name]:g}")
    return "\n".join(lines) + "\n"
