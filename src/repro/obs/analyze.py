"""Post-hoc analysis of stitched traces and event journals.

``repro trace`` loads a Chrome trace (written by :class:`~repro.obs.Tracer`,
possibly stitched from coordinator, worker and server spans) plus an
optional flight-recorder journal (:mod:`repro.obs.events`) and answers the
questions a distributed sweep raises after the fact:

* **critical path** — the backward chain of spans that actually bounded the
  wall clock (everything else overlapped with it);
* **per-worker utilization and stragglers** — how busy each pid lane was,
  and which chunks ran long relative to their peers;
* **stage-time breakdown** — aggregate wall seconds per engine pipeline
  stage across every chunk;
* **journal-derived effectiveness** — retry hotspots, cache hit ratio,
  coalescing rate and backpressure rejections from the event journal.

Everything here runs on plain loaded JSON; nothing imports the model, so
the module stays importable anywhere (CI validators, notebooks).
"""

from __future__ import annotations

import json
import logging
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

logger = logging.getLogger(__name__)

_US = 1e6

# Synthetic in-chunk breakdown spans; never on the critical path themselves.
_AGGREGATE_CATS = {"engine.stage"}

# Two spans "chain" when the predecessor ends within this slack of the
# successor's start (scheduling gaps between chunks are real wait time and
# break the chain; float jitter within a microsecond does not).
_CHAIN_SLACK_US = 1.0


@dataclass
class LaneStats:
    """One pid's timeline lane: label, busy time, span count."""

    pid: int
    label: str
    busy_s: float
    utilization: float
    spans: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "label": self.label,
            "busy_s": self.busy_s,
            "utilization": self.utilization,
            "spans": self.spans,
        }


@dataclass
class TraceReport:
    """Everything ``repro trace`` reports, renderable as text or JSON."""

    trace_id: str | None
    wall_s: float
    span_count: int
    lanes: list[LaneStats] = field(default_factory=list)
    critical_path: list[dict[str, Any]] = field(default_factory=list)
    critical_path_s: float = 0.0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    stragglers: list[dict[str, Any]] = field(default_factory=list)
    # journal-derived (None when no journal was supplied)
    retry_hotspots: list[dict[str, Any]] = field(default_factory=list)
    cache: dict[str, Any] | None = None
    coalescing: dict[str, Any] | None = None
    backpressure_rejects: int = 0
    skipped_chunks: int = 0
    truncated: bool = False
    event_count: int = 0
    torn_lines: list[dict[str, Any]] = field(default_factory=list)
    fabric: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "wall_s": self.wall_s,
            "span_count": self.span_count,
            "lanes": [lane.to_dict() for lane in self.lanes],
            "critical_path": self.critical_path,
            "critical_path_s": self.critical_path_s,
            "stage_seconds": self.stage_seconds,
            "stragglers": self.stragglers,
            "retry_hotspots": self.retry_hotspots,
            "cache": self.cache,
            "coalescing": self.coalescing,
            "backpressure_rejects": self.backpressure_rejects,
            "skipped_chunks": self.skipped_chunks,
            "truncated": self.truncated,
            "event_count": self.event_count,
            "torn_lines": self.torn_lines,
            "fabric": self.fabric,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    def to_text(self) -> str:
        lines = [
            f"trace            {self.trace_id or '(no trace_id)'}",
            f"wall time        {self.wall_s:.3f} s "
            f"({self.span_count} spans)",
        ]
        if self.critical_path:
            lines.append(
                f"critical path    {self.critical_path_s:.3f} s over "
                f"{len(self.critical_path)} spans "
                f"({self.critical_path_s / self.wall_s * 100:.0f}% of wall)"
                if self.wall_s > 0 else
                f"critical path    {self.critical_path_s:.3f} s"
            )
            for step in self.critical_path:
                lines.append(
                    f"  {step['name']:<24} pid {step['pid']:<8} "
                    f"{step['start_s']:8.3f}s +{step['dur_s']:.3f}s"
                )
        if self.lanes:
            lines.append("lanes")
            for lane in self.lanes:
                lines.append(
                    f"  {lane.label:<16} pid {lane.pid:<8} busy "
                    f"{lane.busy_s:7.3f}s ({lane.utilization * 100:5.1f}%) "
                    f"{lane.spans} spans"
                )
        if self.stragglers:
            lines.append("stragglers")
            for s in self.stragglers:
                lines.append(
                    f"  {s['name']:<24} pid {s['pid']:<8} {s['dur_s']:.3f}s "
                    f"({s['reason']})"
                )
        if self.stage_seconds:
            per = "  ".join(
                f"{stage} {secs:.3f}s" for stage, secs in self.stage_seconds.items()
            )
            lines.append(f"stage breakdown  {per}")
        if self.event_count:
            lines.append(f"journal          {self.event_count} events")
            if self.retry_hotspots:
                hot = ", ".join(
                    f"chunk {h['chunk']} x{h['failures']}" for h in self.retry_hotspots
                )
                lines.append(f"  retry hotspots {hot}")
            if self.cache is not None:
                lines.append(
                    f"  cache          {self.cache['hits']} hits / "
                    f"{self.cache['misses']} misses "
                    f"({self.cache['hit_ratio'] * 100:.1f}% hit ratio)"
                )
            if self.coalescing is not None:
                lines.append(
                    f"  coalescing     {self.coalescing['coalesced']} of "
                    f"{self.coalescing['requests']} requests coalesced "
                    f"({self.coalescing['rate'] * 100:.1f}%)"
                )
            if self.backpressure_rejects:
                lines.append(
                    f"  backpressure   {self.backpressure_rejects} rejections"
                )
            if self.skipped_chunks:
                lines.append(f"  skipped chunks {self.skipped_chunks}")
            if self.truncated:
                lines.append("  truncated      deadline hit; sweep is partial")
            if self.fabric is not None:
                f = self.fabric
                lines.append(
                    f"  fabric         {f['workers_joined']} workers "
                    f"({f['workers_dead']} died), "
                    f"{f['chunks_merged']} chunks merged"
                )
                lines.append(
                    f"    leases       {f['leases_granted']} granted, "
                    f"{f['leases_expired']} expired, "
                    f"{f['leases_stolen']} stolen, "
                    f"{f['serial_fallbacks']} serial fallbacks"
                )
                if f.get("sweep_s") is not None:
                    lines.append(f"    sweep window {f['sweep_s']:.3f} s")
            if self.torn_lines:
                lines.append(
                    f"  torn writes    {len(self.torn_lines)} malformed "
                    "journal/cache lines skipped on load"
                )
                for t in self.torn_lines[:5]:
                    lines.append(
                        f"    {t.get('store', '?'):<12} {t.get('path', '?')} "
                        f"line {t.get('line', '?')} @ byte {t.get('offset', '?')}"
                    )
        return "\n".join(lines)


def load_trace(path: str | Path) -> dict[str, Any]:
    obj = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ValueError(f"{path} is not a Chrome trace-event JSON object")
    return obj


def _complete_spans(trace: dict[str, Any]) -> list[dict[str, Any]]:
    return [
        e for e in trace.get("traceEvents", [])
        if isinstance(e, dict) and e.get("ph") == "X"
        and isinstance(e.get("ts"), (int, float))
        and isinstance(e.get("dur"), (int, float))
    ]


def _pid_labels(trace: dict[str, Any]) -> dict[int, str]:
    labels: dict[int, str] = {}
    for e in trace.get("traceEvents", []):
        if isinstance(e, dict) and e.get("ph") == "M" and e.get("name") == "process_name":
            name = (e.get("args") or {}).get("name")
            if isinstance(name, str):
                labels[e.get("pid")] = name
    return labels


def _merged_busy(intervals: list[tuple[float, float]]) -> float:
    """Total covered extent of possibly-overlapping [start, end) intervals."""
    busy = 0.0
    last_end = -float("inf")
    for start, end in sorted(intervals):
        if end <= last_end:
            continue
        busy += end - max(start, last_end)
        last_end = end
    return busy


def _top_level(spans: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Spans not strictly nested inside another span on the same lane.

    Synthetic aggregate spans (the per-stage in-chunk breakdown) are
    excluded outright — their placement is presentation, not measurement.
    """
    spans = [s for s in spans if s.get("cat") not in _AGGREGATE_CATS]
    by_lane: dict[tuple[Any, Any], list[dict[str, Any]]] = {}
    for s in spans:
        by_lane.setdefault((s.get("pid"), s.get("tid")), []).append(s)
    top: list[dict[str, Any]] = []
    for lane in by_lane.values():
        lane.sort(key=lambda s: (s["ts"], -s["dur"]))
        open_end = -float("inf")
        for s in lane:
            end = s["ts"] + s["dur"]
            if s["ts"] >= open_end - 1e-9 or end > open_end:
                top.append(s)
                open_end = max(open_end, end)
    return top


def _critical_path(spans: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Greedy backward chaining: from the last-ending span, repeatedly hop
    to the latest-ending span that finished before the current one began.

    On a trace whose spans cover the busy time, this recovers the chain of
    work that bounded the wall clock; gaps between chained spans are wait
    time (scheduling, queueing) the report surfaces implicitly via the
    critical-path-vs-wall ratio.
    """
    if not spans:
        return []
    remaining = sorted(spans, key=lambda s: s["ts"] + s["dur"], reverse=True)
    path = [remaining[0]]
    for s in remaining[1:]:
        if s["ts"] + s["dur"] <= path[-1]["ts"] + _CHAIN_SLACK_US:
            path.append(s)
    path.reverse()
    return path


def analyze_trace(
    trace: dict[str, Any],
    events: list[dict[str, Any]] | None = None,
) -> TraceReport:
    """Build a :class:`TraceReport` from a loaded trace and optional journal."""
    spans = _complete_spans(trace)
    labels = _pid_labels(trace)
    trace_id = None
    other = trace.get("otherData")
    if isinstance(other, dict):
        trace_id = other.get("trace_id")

    if spans:
        t_min = min(s["ts"] for s in spans)
        t_max = max(s["ts"] + s["dur"] for s in spans)
        wall_s = (t_max - t_min) / _US
    else:
        t_min = 0.0
        wall_s = 0.0

    lanes: list[LaneStats] = []
    by_pid: dict[int, list[dict[str, Any]]] = {}
    for s in spans:
        by_pid.setdefault(s["pid"], []).append(s)
    for pid in sorted(by_pid):
        own = [s for s in by_pid[pid] if s.get("cat") not in _AGGREGATE_CATS]
        busy = _merged_busy([(s["ts"], s["ts"] + s["dur"]) for s in own]) / _US
        lanes.append(LaneStats(
            pid=pid,
            label=labels.get(pid, str(pid)),
            busy_s=busy,
            utilization=busy / wall_s if wall_s > 0 else 0.0,
            spans=len(own),
        ))

    top = _top_level(spans)
    path = _critical_path(top)
    critical_path = [
        {
            "name": s.get("name", "?"),
            "cat": s.get("cat", "?"),
            "pid": s.get("pid"),
            "start_s": (s["ts"] - t_min) / _US,
            "dur_s": s["dur"] / _US,
        }
        for s in path
    ]

    stage_seconds: dict[str, float] = {}
    for s in spans:
        if s.get("cat") == "engine.stage":
            name = s.get("name", "?")
            stage_seconds[name] = stage_seconds.get(name, 0.0) + s["dur"] / _US

    stragglers: list[dict[str, Any]] = []
    chunk_spans = [s for s in spans if s.get("cat") == "search.chunk"]
    if len(chunk_spans) >= 2:
        durations = [s["dur"] for s in chunk_spans]
        median = statistics.median(durations)
        last = max(chunk_spans, key=lambda s: s["ts"] + s["dur"])
        for s in chunk_spans:
            reasons = []
            if median > 0 and s["dur"] > 1.5 * median:
                reasons.append(f"{s['dur'] / median:.1f}x median chunk time")
            if s is last:
                reasons.append("finished last")
            if reasons:
                stragglers.append({
                    "name": s.get("name", "?"),
                    "pid": s.get("pid"),
                    "dur_s": s["dur"] / _US,
                    "reason": ", ".join(reasons),
                })
        stragglers.sort(key=lambda s: -s["dur_s"])

    report = TraceReport(
        trace_id=trace_id,
        wall_s=wall_s,
        span_count=len(spans),
        lanes=lanes,
        critical_path=critical_path,
        critical_path_s=sum(step["dur_s"] for step in critical_path),
        stage_seconds=stage_seconds,
        stragglers=stragglers,
    )
    if events:
        _analyze_events(report, events)
    return report


def _analyze_events(report: TraceReport, events: list[dict[str, Any]]) -> None:
    report.event_count = len(events)
    failures: dict[Any, int] = {}
    requests = coalesced = hits = misses = 0
    fabric = {
        "workers_joined": 0, "workers_dead": 0, "chunks_merged": 0,
        "leases_granted": 0, "leases_expired": 0, "leases_stolen": 0,
        "serial_fallbacks": 0, "sweep_s": None,
    }
    saw_fabric = False
    for e in events:
        kind = e.get("kind")
        if kind in ("chunk.retry", "chunk.timeout"):
            chunk = e.get("chunk")
            failures[chunk] = failures.get(chunk, 0) + 1
        elif kind == "chunk.skipped":
            report.skipped_chunks += 1
        elif kind == "sweep.truncated":
            report.truncated = True
        elif kind == "request.done":
            requests += 1
        elif kind == "coalesce":
            coalesced += 1
        elif kind == "cache.hit":
            hits += 1
        elif kind == "cache.miss":
            misses += 1
        elif kind in ("backpressure.reject", "draining.reject"):
            report.backpressure_rejects += 1
        elif kind == "journal.torn":
            report.torn_lines.append({
                "path": e.get("path"), "line": e.get("line"),
                "offset": e.get("offset"), "store": e.get("store"),
            })
        elif kind in ("fabric.start", "fabric.done", "worker.join",
                      "worker.dead", "lease.grant", "lease.expire",
                      "lease.steal", "merge.chunk"):
            saw_fabric = True
            if kind == "worker.join":
                fabric["workers_joined"] += 1
            elif kind == "worker.dead":
                fabric["workers_dead"] += 1
            elif kind == "merge.chunk" and not e.get("stale"):
                fabric["chunks_merged"] += 1
            elif kind == "lease.grant":
                fabric["leases_granted"] += 1
            elif kind == "lease.expire":
                fabric["leases_expired"] += 1
            elif kind == "lease.steal":
                fabric["leases_stolen"] += 1
            elif kind == "fabric.done":
                fabric["sweep_s"] = e.get("sweep_s")
        elif kind == "chunk.serial_fallback":
            fabric["serial_fallbacks"] += 1
    if saw_fabric:
        report.fabric = fabric
    report.retry_hotspots = [
        {"chunk": chunk, "failures": n}
        for chunk, n in sorted(failures.items(), key=lambda kv: -kv[1])[:10]
    ]
    if hits or misses:
        report.cache = {
            "hits": hits,
            "misses": misses,
            "hit_ratio": hits / (hits + misses),
        }
    if requests or coalesced:
        report.coalescing = {
            "requests": requests,
            "coalesced": coalesced,
            "rate": coalesced / requests if requests else 0.0,
        }


def analyze_files(
    trace_path: str | Path,
    events_path: str | Path | None = None,
) -> TraceReport:
    """Load and analyze a trace file plus an optional event journal."""
    from .events import read_events

    trace = load_trace(trace_path)
    events = read_events(events_path) if events_path is not None else None
    return analyze_trace(trace, events)
