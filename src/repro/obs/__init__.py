"""Observability: tracing spans, metrics, progress, and sweep summaries.

This package is the instrumentation layer the staged engine
(:mod:`repro.engine`), the search engines (:mod:`repro.search`) and the CLI
thread their telemetry through:

* :class:`Tracer` — context-manager span tracing with Chrome
  ``trace_event`` JSON export (``chrome://tracing`` / Perfetto), free when
  disabled;
* :class:`MetricsRegistry` — counters and wall-time histograms whose
  snapshots merge associatively across ``ProcessPoolExecutor`` workers;
* :class:`ProgressReporter` — throttled candidates/sec / ETA / feasible-
  fraction reporting;
* :class:`PruneStats` / :class:`SweepStats` — typed summaries of what a
  batched evaluation or full search actually did.

Everything here is standalone stdlib code: the obs layer never imports the
model, so any subsystem can adopt it without dependency cycles.
"""

from .events import (
    EVENT_KINDS,
    EVENTS_VERSION,
    EventJournal,
    read_events,
    validate_events,
    validate_events_file,
)
from .metrics import Counter, Histogram, MetricsRegistry
from .progress import ProgressReporter
from .prometheus import escape_label_value, prometheus_name, render_prometheus
from .stats import (
    M_BOUND_EVALS,
    M_BOUND_PRUNED,
    M_BOUND_SKIPPED_BUCKETS,
    M_BOUND_TILES,
    M_BUCKET_HITS,
    M_CANDIDATES,
    M_COLUMNAR_BATCHES,
    M_COLUMNAR_CANDIDATES,
    M_COLUMNAR_FALLBACK,
    M_COMM_CACHE_HITS,
    M_COMM_CACHE_MISSES,
    M_EVALUATED_FULL,
    M_MEMORY_BUCKETS,
    M_PROFILE_GROUPS,
    M_REJECT_MEMORY,
    M_REJECT_VALIDATE,
    M_SHARED_INFEASIBLE,
    M_SURROGATE_SEEDED,
    STAGE_NAMES,
    PruneStats,
    SweepStats,
    stage_metric,
)
from .trace import (
    NULL_SPAN,
    TRACE_HEADER,
    TraceContext,
    Tracer,
    new_trace_id,
    validate_trace,
    validate_trace_file,
)

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "EVENTS_VERSION",
    "EventJournal",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "ProgressReporter",
    "PruneStats",
    "STAGE_NAMES",
    "SweepStats",
    "TRACE_HEADER",
    "TraceContext",
    "Tracer",
    "M_BOUND_EVALS",
    "M_BOUND_PRUNED",
    "M_BOUND_SKIPPED_BUCKETS",
    "M_BOUND_TILES",
    "M_BUCKET_HITS",
    "M_CANDIDATES",
    "M_COLUMNAR_BATCHES",
    "M_COLUMNAR_CANDIDATES",
    "M_COLUMNAR_FALLBACK",
    "M_COMM_CACHE_HITS",
    "M_COMM_CACHE_MISSES",
    "M_EVALUATED_FULL",
    "M_MEMORY_BUCKETS",
    "M_PROFILE_GROUPS",
    "M_REJECT_MEMORY",
    "M_REJECT_VALIDATE",
    "M_SHARED_INFEASIBLE",
    "M_SURROGATE_SEEDED",
    "escape_label_value",
    "new_trace_id",
    "prometheus_name",
    "read_events",
    "render_prometheus",
    "stage_metric",
    "validate_events",
    "validate_events_file",
    "validate_trace",
    "validate_trace_file",
]
