"""The flight recorder: a structured, append-only JSONL event journal.

Spans answer "where did the time go"; counters answer "how much of each
thing happened".  Neither answers "what exactly happened, in order, when a
sweep went sideways at 2am" — that is this module's job.  An
:class:`EventJournal` records one JSON object per line for every discrete
decision the pipeline makes: chunk dispatch/completion, retries and
timeouts, serial fallbacks, cache hits and misses, request coalescing,
backpressure rejections, deadline truncation.

Design constraints, in order:

* **Append-only and crash-safe.**  Lines are written with a single
  ``os.write`` to an ``O_APPEND`` descriptor; on POSIX a sub-``PIPE_BUF``
  append is atomic, so concurrent writers (the supervisor thread and the
  service's handler threads share one journal) never interleave bytes and
  a crash never leaves a torn line.
* **Schema-versioned.**  Every line carries ``"v": EVENTS_VERSION`` plus
  the required envelope (``kind``, ``ts`` wall-clock epoch seconds,
  ``mono`` the machine-wide ``perf_counter`` timebase shared with traces,
  ``pid``); :func:`validate_events_file` checks the envelope and flags
  unknown kinds, mirroring ``validate_trace_file`` for Chrome traces.
* **Bounded.**  When the journal would exceed ``max_bytes`` it rotates:
  the current file is atomically renamed to ``<path>.1`` (``os.replace``,
  the same primitive :func:`repro.fsutil.atomic_write_text` rests on) and
  a fresh file continues — one generation of history is kept.

``repro trace --events`` (:mod:`repro.obs.analyze`) joins the journal with
a stitched Chrome trace via the shared ``mono`` timebase and ``trace_id``.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from pathlib import Path
from typing import Any, Iterator

logger = logging.getLogger(__name__)

EVENTS_VERSION = 1

# Every kind the pipeline emits; the validator flags anything else as a
# probable typo.  Grouped by emitter.
EVENT_KINDS = frozenset({
    # search coordinator (execution_search / system_search)
    "search.start",
    "search.done",
    "chunk.resumed",
    "sweep.size",
    # fault supervision (search/faults.run_supervised)
    "chunk.dispatch",
    "chunk.done",
    "chunk.retry",
    "chunk.timeout",
    "chunk.serial_fallback",
    "chunk.skipped",
    "sweep.truncated",
    # evaluation service (service/server + service/dispatch)
    "request.done",
    "cache.hit",
    "cache.miss",
    "coalesce",
    "backpressure.reject",
    "draining.reject",
    "batch.dispatch",
    # search fabric (fabric/coordinator)
    "fabric.start",
    "fabric.done",
    "worker.join",
    "worker.dead",
    "lease.grant",
    "lease.expire",
    "lease.steal",
    "merge.chunk",
    # torn-write detection (checkpoint journal + service disk cache)
    "journal.torn",
    # serving co-design (serving/search + inference/search)
    "serve.start",
    "serve.done",
    "deployments.start",
    "deployments.done",
})

# Envelope keys every line must carry (and their JSON types).
_ENVELOPE = {
    "v": int,
    "kind": str,
    "ts": (int, float),
    "mono": (int, float),
    "pid": int,
}

_DEFAULT_MAX_BYTES = 64 * 2**20


class EventJournal:
    """Append structured events to a JSONL file with bounded rotation.

    Thread-safe; cheap enough to leave on (one dict, one ``json.dumps``,
    one ``os.write`` per event — events are emitted at chunk/request
    granularity, never per candidate).  ``source`` tags every line with the
    emitting role ("search", "server", ...), so merged journals stay
    attributable.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        source: str | None = None,
        trace_id: str | None = None,
        max_bytes: int = _DEFAULT_MAX_BYTES,
    ):
        if max_bytes < 4096:
            raise ValueError("max_bytes must be >= 4096")
        self.path = Path(path)
        self.source = source
        self.trace_id = trace_id
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._fd: int | None = None
        self._size = 0

    # -- lifecycle -----------------------------------------------------------

    def _open_locked(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
            )
            self._size = os.fstat(self._fd).st_size
        return self._fd

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- emission ------------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        """Append one event.  Unknown ``kind`` values are allowed at runtime
        (forward compatibility) but flagged by :func:`validate_events_file`."""
        record: dict[str, Any] = {
            "v": EVENTS_VERSION,
            "kind": kind,
            "ts": time.time(),
            "mono": time.perf_counter(),
            "pid": os.getpid(),
        }
        if self.source is not None:
            record["source"] = self.source
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        record.update(fields)
        line = (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8")
        with self._lock:
            fd = self._open_locked()
            if self._size + len(line) > self.max_bytes and self._size > 0:
                self._rotate_locked()
                fd = self._open_locked()
            os.write(fd, line)
            self._size += len(line)

    def _rotate_locked(self) -> None:
        """Atomically shunt the full journal aside and start a fresh one."""
        os.close(self._fd)  # type: ignore[arg-type]
        self._fd = None
        self._size = 0
        rotated = self.path.with_name(self.path.name + ".1")
        try:
            os.replace(self.path, rotated)
        except OSError:  # pragma: no cover - rotation is best-effort
            logger.exception("event journal rotation failed for %s", self.path)


# ---------------------------------------------------------------------------
# Reading and validation
# ---------------------------------------------------------------------------

def read_events(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Load every event from a journal file (rotated generation first).

    Returns events in write order; a missing file yields an empty list (a
    run that emitted nothing is not an error).
    """
    return list(iter_events(path))


def iter_events(path: str | os.PathLike) -> Iterator[dict[str, Any]]:
    path = Path(path)
    for p in (path.with_name(path.name + ".1"), path):
        if not p.exists():
            continue
        with p.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield json.loads(line)


def validate_events(events: list[Any]) -> list[str]:
    """Check loaded events against the v1 journal schema.

    Returns human-readable problems; empty means every line carries the
    required envelope, a supported schema version, and a known kind.
    """
    errors: list[str] = []
    for n, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {n}: not an object")
            continue
        for key, types in _ENVELOPE.items():
            if key not in event:
                errors.append(f"event {n}: missing key {key!r}")
            elif not isinstance(event[key], types) or isinstance(event[key], bool):
                errors.append(
                    f"event {n}: key {key!r} has type {type(event[key]).__name__}"
                )
        v = event.get("v")
        if isinstance(v, int) and v > EVENTS_VERSION:
            errors.append(f"event {n}: unsupported schema version {v}")
        kind = event.get("kind")
        if isinstance(kind, str) and kind not in EVENT_KINDS:
            errors.append(f"event {n}: unknown kind {kind!r}")
    return errors


def validate_events_file(path: str | os.PathLike) -> list[str]:
    """Load ``path`` as JSONL and run :func:`validate_events` on it."""
    path = Path(path)
    if not path.exists():
        return [f"no such event journal: {path}"]
    events: list[Any] = []
    try:
        for n, line in enumerate(path.read_text(encoding="utf-8").splitlines()):
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as err:
                return [f"line {n}: not valid JSON ({err})"]
    except OSError as err:
        return [f"unreadable event journal: {err}"]
    return validate_events(events)
