"""Structured summaries of instrumented runs: pruning and sweep statistics.

The engine increments the ``engine.*`` metrics named here while evaluating
with a :class:`~repro.obs.metrics.MetricsRegistry` attached;
:class:`PruneStats` reads them back as a typed summary of one
``evaluate_many`` call, and :class:`SweepStats` wraps that with wall-clock
context (elapsed time, worker count, search-level feasibility) for
attachment to a :class:`~repro.search.SearchResult`.

Both are frozen dataclasses assembled *after* the hot path finishes — the
sweep itself only touches counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .metrics import MetricsRegistry

# The five pipeline stages, in execution order (mirrors repro.engine.PIPELINE).
STAGE_NAMES = ("validate", "profile", "memory", "comm", "assemble")

# -- engine metric names ------------------------------------------------------
M_CANDIDATES = "engine.candidates"
M_REJECT_VALIDATE = "engine.rejected.validate"
M_REJECT_MEMORY = "engine.rejected.memory"
M_SHARED_INFEASIBLE = "engine.memory.shared_infeasible"
M_PROFILE_GROUPS = "engine.profile.groups"
M_MEMORY_BUCKETS = "engine.memory.buckets"
M_BUCKET_HITS = "engine.memory.bucket_hits"
M_EVALUATED_FULL = "engine.evaluated_full"
M_BOUND_EVALS = "engine.bound.evals"
M_BOUND_PRUNED = "engine.bound.pruned"
M_BOUND_TILES = "engine.bound.tiles"
M_BOUND_SKIPPED_BUCKETS = "engine.bound.skipped_buckets"
M_SURROGATE_SEEDED = "engine.surrogate.seeded"
M_COMM_CACHE_HITS = "engine.comm_cache.hits"
M_COMM_CACHE_MISSES = "engine.comm_cache.misses"
M_COLUMNAR_BATCHES = "engine.columnar.batches"
M_COLUMNAR_CANDIDATES = "engine.columnar.candidates"
M_COLUMNAR_FALLBACK = "engine.columnar.fallback"

# -- search metric names ------------------------------------------------------
# Histogram of per-chunk wall seconds, observed inside each worker and merged
# into the parent registry with the engine counters.
M_CHUNK_SECONDS = "search.chunk.seconds"


def stage_metric(stage: str) -> str:
    """Histogram name recording wall seconds spent in ``stage``."""
    return f"engine.stage.{stage}.seconds"


@dataclass(frozen=True)
class PruneStats:
    """What one batched ``evaluate_many(prune=True)`` call actually did.

    ``shared_infeasible`` counts candidates short-circuited by an already-
    rejected memory bucket (they never allocated an evaluation context);
    ``bucket_hits`` counts every candidate served an existing memory plan or
    rejection, feasible or not.  ``stage_seconds`` is aggregate wall time
    per pipeline stage, at the granularity the pruned path runs them
    (validate per candidate, profile per group, memory per bucket,
    comm/assemble per survivor).

    The bound-and-prune layer adds four counters: ``bound_evals`` roofline
    lower bounds computed (one per feasible memory bucket when a
    ``prune_above`` threshold is active), ``bound_pruned`` feasible
    candidates skipped because their bound already exceeded the threshold
    (they are *not* part of ``evaluated_full`` — they never ran the comm or
    assembly stages), and ``comm_cache_hits`` / ``comm_cache_misses`` from
    the process-global comm kernel caches
    (:func:`repro.engine.stages.comm_cache_stats`).

    The columnar engine adds three more: ``columnar_batches`` struct-of-
    arrays batches executed, ``columnar_candidates`` candidates those
    batches covered (the remaining ``candidates`` went through the scalar
    path), and ``columnar_fallback`` requests that asked for the columnar
    path but fell back to scalar (NumPy too old / import failure).

    The adaptive best-bound-first layer adds ``bound_tiles`` bucket-ordered
    tiles executed, ``bound_skipped_buckets`` memory buckets whose comm and
    assembly stages never ran because their sound lower bound already
    exceeded the tightening threshold (their candidates are a subset of
    ``bound_pruned``), and ``surrogate_seeded`` tile-0 seed buckets picked
    by the online surrogate ranking instead of bound order.
    """

    candidates: int = 0
    rejected_validate: int = 0
    rejected_memory: int = 0
    shared_infeasible: int = 0
    profile_groups: int = 0
    memory_buckets: int = 0
    bucket_hits: int = 0
    evaluated_full: int = 0
    bound_evals: int = 0
    bound_pruned: int = 0
    bound_tiles: int = 0
    bound_skipped_buckets: int = 0
    surrogate_seeded: int = 0
    comm_cache_hits: int = 0
    comm_cache_misses: int = 0
    columnar_batches: int = 0
    columnar_candidates: int = 0
    columnar_fallback: int = 0
    stage_seconds: Mapping[str, float] = field(default_factory=dict)

    @classmethod
    def from_metrics(cls, reg: "MetricsRegistry") -> "PruneStats":
        return cls(
            candidates=int(reg.value(M_CANDIDATES)),
            rejected_validate=int(reg.value(M_REJECT_VALIDATE)),
            rejected_memory=int(reg.value(M_REJECT_MEMORY)),
            shared_infeasible=int(reg.value(M_SHARED_INFEASIBLE)),
            profile_groups=int(reg.value(M_PROFILE_GROUPS)),
            memory_buckets=int(reg.value(M_MEMORY_BUCKETS)),
            bucket_hits=int(reg.value(M_BUCKET_HITS)),
            evaluated_full=int(reg.value(M_EVALUATED_FULL)),
            bound_evals=int(reg.value(M_BOUND_EVALS)),
            bound_pruned=int(reg.value(M_BOUND_PRUNED)),
            bound_tiles=int(reg.value(M_BOUND_TILES)),
            bound_skipped_buckets=int(reg.value(M_BOUND_SKIPPED_BUCKETS)),
            surrogate_seeded=int(reg.value(M_SURROGATE_SEEDED)),
            comm_cache_hits=int(reg.value(M_COMM_CACHE_HITS)),
            comm_cache_misses=int(reg.value(M_COMM_CACHE_MISSES)),
            columnar_batches=int(reg.value(M_COLUMNAR_BATCHES)),
            columnar_candidates=int(reg.value(M_COLUMNAR_CANDIDATES)),
            columnar_fallback=int(reg.value(M_COLUMNAR_FALLBACK)),
            stage_seconds=MappingProxyType(
                {s: reg.stage_total(stage_metric(s)) for s in STAGE_NAMES}
            ),
        )

    # -- derived rates -------------------------------------------------------

    @property
    def validated(self) -> int:
        """Candidates that survived structural validation."""
        return self.candidates - self.rejected_validate

    @property
    def rejected(self) -> int:
        return self.rejected_validate + self.rejected_memory

    @property
    def profile_dedup_rate(self) -> float:
        """Fraction of validated candidates that shared another's profile."""
        if self.validated == 0:
            return 0.0
        return 1.0 - self.profile_groups / self.validated

    @property
    def bucket_hit_rate(self) -> float:
        """Fraction of validated candidates served a memoized memory plan."""
        if self.validated == 0:
            return 0.0
        return self.bucket_hits / self.validated

    @property
    def bound_prune_rate(self) -> float:
        """Fraction of memory-feasible candidates skipped by bound pruning."""
        survivors = self.evaluated_full + self.bound_pruned
        if survivors == 0:
            return 0.0
        return self.bound_pruned / survivors

    @property
    def comm_cache_hit_rate(self) -> float:
        lookups = self.comm_cache_hits + self.comm_cache_misses
        if lookups == 0:
            return 0.0
        return self.comm_cache_hits / lookups

    def merged(self, other: "PruneStats") -> "PruneStats":
        seconds = dict(self.stage_seconds)
        for k, v in other.stage_seconds.items():
            seconds[k] = seconds.get(k, 0.0) + v
        return PruneStats(
            candidates=self.candidates + other.candidates,
            rejected_validate=self.rejected_validate + other.rejected_validate,
            rejected_memory=self.rejected_memory + other.rejected_memory,
            shared_infeasible=self.shared_infeasible + other.shared_infeasible,
            profile_groups=self.profile_groups + other.profile_groups,
            memory_buckets=self.memory_buckets + other.memory_buckets,
            bucket_hits=self.bucket_hits + other.bucket_hits,
            evaluated_full=self.evaluated_full + other.evaluated_full,
            bound_evals=self.bound_evals + other.bound_evals,
            bound_pruned=self.bound_pruned + other.bound_pruned,
            bound_tiles=self.bound_tiles + other.bound_tiles,
            bound_skipped_buckets=(
                self.bound_skipped_buckets + other.bound_skipped_buckets
            ),
            surrogate_seeded=self.surrogate_seeded + other.surrogate_seeded,
            comm_cache_hits=self.comm_cache_hits + other.comm_cache_hits,
            comm_cache_misses=self.comm_cache_misses + other.comm_cache_misses,
            columnar_batches=self.columnar_batches + other.columnar_batches,
            columnar_candidates=self.columnar_candidates + other.columnar_candidates,
            columnar_fallback=self.columnar_fallback + other.columnar_fallback,
            stage_seconds=MappingProxyType(seconds),
        )

    def summary(self) -> str:
        lines = [
            f"candidates            {self.candidates:,}",
            f"rejected: validate    {self.rejected_validate:,}",
            f"rejected: memory      {self.rejected_memory:,} "
            f"({self.shared_infeasible:,} shared a bucket rejection)",
            f"fully evaluated       {self.evaluated_full:,}",
            f"profile groups        {self.profile_groups:,} "
            f"({self.profile_dedup_rate * 100:.1f}% dedup)",
            f"memory buckets        {self.memory_buckets:,} "
            f"({self.bucket_hit_rate * 100:.1f}% hit rate)",
        ]
        if self.bound_evals or self.bound_pruned:
            lines.append(
                f"bound pruned          {self.bound_pruned:,} "
                f"({self.bound_prune_rate * 100:.1f}% of feasible, "
                f"{self.bound_evals:,} bounds computed)"
            )
        if self.bound_tiles:
            lines.append(
                f"adaptive tiles        {self.bound_tiles:,} "
                f"({self.bound_skipped_buckets:,} buckets skipped, "
                f"{self.surrogate_seeded:,} surrogate-seeded)"
            )
        if self.comm_cache_hits or self.comm_cache_misses:
            lines.append(
                f"comm kernel cache     {self.comm_cache_hits:,} hits / "
                f"{self.comm_cache_misses:,} misses "
                f"({self.comm_cache_hit_rate * 100:.1f}% hit rate)"
            )
        if self.columnar_batches or self.columnar_fallback:
            lines.append(
                f"columnar batches      {self.columnar_batches:,} "
                f"({self.columnar_candidates:,} candidates, "
                f"{self.columnar_fallback:,} scalar fallbacks)"
            )
        total = sum(self.stage_seconds.values())
        if total > 0:
            per = "  ".join(
                f"{s} {self.stage_seconds.get(s, 0.0):.3f}s" for s in STAGE_NAMES
            )
            lines.append(f"stage wall time       {per}")
        return "\n".join(lines)


@dataclass(frozen=True)
class SweepStats:
    """One sweep's engine statistics plus wall-clock context.

    ``num_evaluated`` / ``num_feasible`` are the *search-level* figures: a
    result constraint can reject engine-feasible candidates, while bound
    pruning counts candidates as feasible without fully evaluating them —
    so ``num_feasible`` relates to ``engine.evaluated_full +
    engine.bound_pruned``, not to ``evaluated_full`` alone.

    The fault-tolerance fields describe what the supervision layer did:
    ``retries`` counts chunk re-attempts (including serial fallback runs),
    ``skipped`` lists the candidate-index ranges ``[start, stop)`` of
    chunks that failed every retry and were dropped from the sweep,
    ``resumed_chunks`` counts chunks restored from a checkpoint journal
    instead of evaluated, and ``truncated`` is set when a ``--deadline``
    stopped the sweep at a chunk boundary.
    """

    engine: PruneStats
    elapsed: float
    workers: int = 1
    num_evaluated: int = 0
    num_feasible: int = 0
    retries: int = 0
    skipped: tuple[tuple[int, int], ...] = ()
    resumed_chunks: int = 0
    truncated: bool = False

    @property
    def num_skipped(self) -> int:
        """Candidates lost to skipped ranges."""
        return sum(stop - start for start, stop in self.skipped)

    @property
    def candidates_per_sec(self) -> float:
        return self.num_evaluated / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def feasible_fraction(self) -> float:
        return self.num_feasible / self.num_evaluated if self.num_evaluated else 0.0

    @classmethod
    def merge(cls, items: Iterable["SweepStats"]) -> "SweepStats":
        """Combine stats from sequential sweeps (e.g. one per system size)."""
        items = list(items)
        if not items:
            return cls(engine=PruneStats(), elapsed=0.0)
        engine = items[0].engine
        for s in items[1:]:
            engine = engine.merged(s.engine)
        return cls(
            engine=engine,
            elapsed=sum(s.elapsed for s in items),
            workers=max(s.workers for s in items),
            num_evaluated=sum(s.num_evaluated for s in items),
            num_feasible=sum(s.num_feasible for s in items),
            retries=sum(s.retries for s in items),
            skipped=tuple(r for s in items for r in s.skipped),
            resumed_chunks=sum(s.resumed_chunks for s in items),
            truncated=any(s.truncated for s in items),
        )

    def summary(self) -> str:
        head = (
            f"evaluated {self.num_evaluated:,} candidates in {self.elapsed:.2f} s "
            f"({self.candidates_per_sec:,.0f} candidates/s, {self.workers} "
            f"worker{'s' if self.workers != 1 else ''})\n"
            f"feasible              {self.num_feasible:,} "
            f"({self.feasible_fraction * 100:.1f}%)"
        )
        fault_lines = []
        if self.resumed_chunks:
            fault_lines.append(f"resumed from journal  {self.resumed_chunks:,} chunks")
        if self.retries:
            fault_lines.append(f"chunk retries         {self.retries:,}")
        if self.skipped:
            ranges = ", ".join(f"[{a}, {b})" for a, b in self.skipped)
            fault_lines.append(
                f"skipped ranges        {ranges} ({self.num_skipped:,} candidates)"
            )
        if self.truncated:
            fault_lines.append("truncated             deadline hit; results are partial")
        tail = ("\n" + "\n".join(fault_lines)) if fault_lines else ""
        return head + "\n" + self.engine.summary() + tail
