"""repro — a from-scratch reproduction of Calculon (Isaev et al., SC '23).

An analytical performance model and codesign search tool for transformer LLM
training and inference on large-scale distributed systems.  The model takes
three specifications — the LLM, the system, and the execution strategy — and
returns a complete time/memory/efficiency breakdown in well under a
millisecond, enabling exhaustive searches over millions of configurations.

Typical use::

    from repro import calculate, ExecutionStrategy
    from repro.llm import GPT3_175B
    from repro.hardware import a100_system

    result = calculate(
        GPT3_175B,
        a100_system(4096),
        ExecutionStrategy(tensor_par=8, pipeline_par=64, data_par=8,
                          batch=4096, recompute="full"),
    )
    print(result.summary())
"""

import logging as _logging

from .core import (
    MemoryBreakdown,
    OffloadStats,
    PerformanceResult,
    TimeBreakdown,
    calculate,
)
from .engine import (
    EvalContext,
    FeasibilityReport,
    check_feasible,
    evaluate,
    evaluate_many,
)
from .execution import ExecutionStrategy, StrategyError
from .hardware import MemoryTier, Network, Processor, System
from .llm import LLMConfig

# Library logging hygiene: every module logs under the "repro" hierarchy and
# the root of that hierarchy carries a NullHandler, so importing applications
# see no output unless they configure logging themselves (PEP 282 etiquette).
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "EvalContext",
    "ExecutionStrategy",
    "FeasibilityReport",
    "LLMConfig",
    "MemoryBreakdown",
    "MemoryTier",
    "Network",
    "OffloadStats",
    "PerformanceResult",
    "Processor",
    "StrategyError",
    "System",
    "TimeBreakdown",
    "calculate",
    "check_feasible",
    "evaluate",
    "evaluate_many",
    "__version__",
]
