"""Pure-columnar candidate enumeration for the execution search.

:func:`candidate_columns` produces the exact candidate sequence of
:func:`repro.search.execution_search.candidate_strategies` — same filters,
same order — directly as int64 NumPy columns, without ever constructing the
(hundreds of thousands of) :class:`~repro.execution.strategy.ExecutionStrategy`
objects.  The columns feed
:meth:`repro.engine.batch.EvalBatch.from_columns`; the handful of candidates
a search actually reports (the top-k winners, the prune-seed sample) are
materialized on demand via :meth:`~repro.engine.batch.EvalBatch.strategy_at`.

The inner option product — recompute x seq-par modes x TP overlap x DP
overlap x optimizer sharding x fused activations x 1F1B x offload modes —
is identical for every (t, p, d, m, v) prefix except for the sequence-parallel
filter (``sp`` requires ``t > 1`` and ``t | seq``), which depends only on
``t``.  So the product is built **once** as a small combo table (plus an
sp-free variant), and each prefix contributes ``tile(combos)`` against
``repeat(m, v)`` — enumeration cost scales with the number of *distinct*
prefixes, not with the candidate count.

Importing this module requires the columnar engine (NumPy >= 1.24);
callers treat ``ImportError`` as "fall back to scalar enumeration".
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from ..engine.batch import (
    COLUMN_NAMES,
    RECOMPUTE_NAMES,
    TP_MODE_NAMES,
    TP_OVERLAP_NAMES,
)
from ..execution.strategy import divisors, factorizations
from ..hardware.system import System
from ..llm.config import LLMConfig

# Combo-table column layout (the non-prefix strategy dimensions, in the
# order ExecutionStrategy consumes them).
_COMBO_NAMES = (
    "rc", "sp", "redo", "rs_ag", "tpo", "dpo", "osh", "fus", "f1b",
    "w_off", "a_off", "o_off",
)

_TPM_1D = TP_MODE_NAMES.index("1d")


def _name_codes(names, table: tuple[str, ...]) -> list[int] | None:
    """Map mode names to their columnar codes; None if any name is unknown."""
    codes = []
    for name in names:
        try:
            codes.append(table.index(name))
        except ValueError:
            return None
    return codes


def _combo_table(opts) -> np.ndarray | None:
    """The inner option product as an (n_combos, 12) int64 table.

    Rows appear in the exact ``itertools.product`` order of the scalar
    enumerator's inner loop; the dependent flags (``tp_redo_sp``,
    ``pp_rs_ag``) are already and-ed with ``seq_par``, mirroring the
    strategy constructor.  Returns None when an option uses a mode name the
    columnar codes don't cover (the caller then falls back to scalar
    enumeration, whose validate stage reports the bad name).
    """
    rc_codes = _name_codes(opts.recompute, RECOMPUTE_NAMES)
    tpo_codes = _name_codes(opts.tp_overlap, TP_OVERLAP_NAMES)
    if rc_codes is None or tpo_codes is None:
        return None
    rows = [
        (
            rc,
            int(bool(sp)),
            int(bool(redo and sp)),
            int(bool(ppsg and sp)),
            tpo,
            int(bool(dpo)),
            int(bool(osh)),
            int(bool(fus)),
            int(bool(f1b)),
            int(bool(off[0])),
            int(bool(off[1])),
            int(bool(off[2])),
        )
        for rc, (sp, redo, ppsg), tpo, dpo, osh, fus, f1b, off in itertools.product(
            rc_codes,
            opts.seq_par_modes,
            tpo_codes,
            opts.dp_overlap,
            opts.optimizer_sharding,
            opts.fused_activations,
            opts.pp_1f1b,
            opts.offload_modes,
        )
    ]
    return np.asarray(rows, dtype=np.int64).reshape(len(rows), len(_COMBO_NAMES))


def candidate_columns(
    llm: LLMConfig,
    system: System,
    batch: int,
    opts,
) -> dict[str, np.ndarray] | None:
    """Every candidate of the option space, as int64 columns.

    Row ``i`` of the returned columns is candidate ``i`` of
    ``candidate_strategies(llm, system, batch, opts)`` — the structural
    filters (head/shape divisibility, block and batch bounds, the
    microbatch/interleaving ranges, the seq-par degeneracy rules) are
    replicated exactly, so a batch built from these columns evaluates the
    identical candidate stream.  Returns None when the option space cannot
    be encoded (unknown mode names); ``opts`` must be a resolved
    :class:`~repro.search.execution_search.SearchOptions`.
    """
    combo_full = _combo_table(opts)
    if combo_full is None:
        return None
    combo_nosp = combo_full[combo_full[:, _COMBO_NAMES.index("sp")] == 0]

    t_l: list[np.ndarray] = []
    p_l: list[np.ndarray] = []
    d_l: list[np.ndarray] = []
    m_l: list[np.ndarray] = []
    v_l: list[np.ndarray] = []
    combo_l: list[np.ndarray] = []
    n = system.num_procs
    for t, p, d in factorizations(n):
        if t > min(opts.max_tensor_par, llm.attn_heads) or llm.attn_heads % t:
            continue
        if llm.hidden % t or llm.feedforward % t:
            continue
        if p > llm.num_blocks:
            continue
        if d > batch or batch % d:
            continue
        local_batch = batch // d
        microbatches = [
            m
            for m in divisors(local_batch)
            if m <= opts.max_microbatch
            and (not opts.microbatch_powers_of_two or (m & (m - 1)) == 0)
        ]
        if opts.interleaving_values is not None:
            interleavings = [
                v
                for v in opts.interleaving_values
                if v == 1 or (p > 1 and v <= math.ceil(llm.num_blocks / p))
            ]
        else:
            bpstage = math.ceil(llm.num_blocks / p)
            interleavings = [v for v in divisors(bpstage) if v == 1 or p > 1]
        sp_ok = t != 1 and llm.seq_size % t == 0
        combo = combo_full if sp_ok else combo_nosp
        k = combo.shape[0]
        n_mv = len(microbatches) * len(interleavings)
        if k == 0 or n_mv == 0:
            continue
        mv_m = np.repeat(
            np.asarray(microbatches, dtype=np.int64), len(interleavings)
        )
        mv_v = np.tile(
            np.asarray(interleavings, dtype=np.int64), len(microbatches)
        )
        rows = n_mv * k
        t_l.append(np.full(rows, t, dtype=np.int64))
        p_l.append(np.full(rows, p, dtype=np.int64))
        d_l.append(np.full(rows, d, dtype=np.int64))
        m_l.append(np.repeat(mv_m, k))
        v_l.append(np.repeat(mv_v, k))
        combo_l.append(np.tile(combo, (n_mv, 1)))

    if not t_l:
        zero = np.zeros(0, dtype=np.int64)
        return {name: zero.copy() for name in COLUMN_NAMES}
    combos = np.concatenate(combo_l, axis=0)
    total = combos.shape[0]
    cols: dict[str, np.ndarray] = {
        "t": np.concatenate(t_l),
        "p": np.concatenate(p_l),
        "d": np.concatenate(d_l),
        "batch": np.full(total, int(batch), dtype=np.int64),
        "m": np.concatenate(m_l),
        "v": np.concatenate(v_l),
        "tpm": np.full(total, _TPM_1D, dtype=np.int64),
        "training": np.full(total, int(bool(opts.training)), dtype=np.int64),
    }
    for j, name in enumerate(_COMBO_NAMES):
        cols[name] = np.ascontiguousarray(combos[:, j])
    return cols


__all__ = ["candidate_columns"]
