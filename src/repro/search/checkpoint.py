"""Chunk-granularity checkpoint journal for resumable sweeps.

A multi-hour search campaign must survive a worker crash, an OOM kill or a
Ctrl-C without throwing away every evaluated chunk.  The journal is a JSONL
file: a header line identifying the run, then one record per completed unit
of work (an execution-search chunk, a scaling-sweep size, a multi-start
seed).  Three properties make it safe to resume from:

* **Content-keyed.**  The header carries a SHA-256 :func:`run_key` over the
  LLM spec, the system spec, the search options and the engine version.  A
  ``--resume`` against a journal whose key does not match the current
  problem raises :class:`CheckpointMismatch` instead of silently mixing
  results from two different runs.
* **Atomically written.**  Every flush rewrites the whole journal through
  :func:`repro.fsutil.atomic_write_text` (temp file + ``os.replace``), so
  the file on disk is always a complete, parseable journal — a run killed
  mid-write loses at most the chunk being recorded, never the journal.
* **Order-independent.**  Records are keyed by a record id; loading is a
  pure set-merge, so any permutation of the record lines — or any prefix of
  a run — reconstructs the same state.  Resuming after *any* interruption
  point therefore reproduces the uninterrupted result bit-identically
  (property-tested in ``tests/test_checkpoint.py``).

Journals deliberately store *strategies and scalars*, not pickled result
objects: on resume, the few journaled top-k strategies are re-evaluated
through the (deterministic) engine, which keeps journals small, humanly
inspectable, and robust to dataclass evolution.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import EventJournal

# run_key lives in repro.cachekey since the evaluation service's result
# cache shares it; re-exported here because journals and callers predate
# the move (``from repro.search.checkpoint import run_key`` keeps working).
from ..cachekey import run_key
from ..fsutil import atomic_write_text, iter_jsonl_lines, report_torn_line

__all__ = ["CheckpointJournal", "CheckpointMismatch", "run_key"]

logger = logging.getLogger(__name__)

JOURNAL_MAGIC = "calculon-journal"
JOURNAL_VERSION = 1


class CheckpointMismatch(RuntimeError):
    """A resume attempt against a journal written for a different run."""


class CheckpointJournal:
    """An append-style journal of completed work units, keyed by record id.

    ``meta`` carries run-shape facts a resume must reuse (e.g. the chunk
    size that determines chunk boundaries); on resume the *journal's* meta
    wins over the caller's, so a resumed run slices the candidate space
    exactly as the original did.
    """

    def __init__(
        self,
        path: str | Path,
        key: str,
        meta: Mapping[str, Any] | None = None,
    ):
        self.path = Path(path)
        self.key = key
        self.meta: dict[str, Any] = dict(meta or {})
        self._records: dict[str, Any] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str | Path,
        key: str,
        *,
        resume: bool = False,
        meta: Mapping[str, Any] | None = None,
        events: "EventJournal | None" = None,
    ) -> "CheckpointJournal":
        """Create (or, with ``resume``, reload) the journal at ``path``.

        Without ``resume`` an existing file is started over.  With it, a
        matching journal's records and meta are adopted; a key mismatch
        raises :class:`CheckpointMismatch`; a missing or unparseable file
        degrades to a fresh journal (there is nothing to resume from).
        ``events`` receives a ``journal.torn`` event per malformed line
        found while loading (see :meth:`load`).
        """
        journal = cls(path, key, meta)
        if resume:
            existing = cls.load(path, events=events)
            if existing is not None:
                if existing.key != key:
                    raise CheckpointMismatch(
                        f"journal {path} was written for a different run "
                        f"(journal key {existing.key[:12]}…, expected {key[:12]}…); "
                        "delete it or drop --resume to start over"
                    )
                journal.meta = existing.meta or journal.meta
                journal._records = existing._records
                logger.info(
                    "resuming from %s: %d completed records",
                    path, len(existing._records),
                )
        journal.flush()
        return journal

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        events: "EventJournal | None" = None,
    ) -> "CheckpointJournal | None":
        """Parse a journal file; ``None`` if absent or headerless.

        Malformed lines are skipped so a damaged journal still yields its
        intact records — but never *silently*: each one is logged with its
        byte offset and, when an ``events`` flight recorder is supplied,
        emitted as a ``journal.torn`` event (surfaced by ``repro trace``
        rollups).  The atomic writer cannot produce a torn line itself, so
        one here means the file was crash-torn by another writer or
        hand-edited — exactly the situation worth an audit trail.  Record
        order is irrelevant; a duplicated id keeps the last occurrence.
        """
        path = Path(path)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        journal: CheckpointJournal | None = None
        for n, offset, line in iter_jsonl_lines(data):
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                report_torn_line(path, n, offset, len(line), events,
                                 kind="journal")
                continue
            kind = obj.get("kind")
            if kind == JOURNAL_MAGIC:
                journal = cls(path, obj.get("key", ""), obj.get("meta") or {})
            elif kind == "record" and journal is not None and "id" in obj:
                journal._records[str(obj["id"])] = obj.get("data")
            else:
                logger.warning("%s:%d: skipping unrecognized journal line", path, n)
        return journal

    # -- recording -----------------------------------------------------------

    def record(self, record_id: str, data: Any) -> None:
        """Journal one completed unit of work and flush to disk."""
        self._records[str(record_id)] = data
        self.flush()

    def flush(self) -> None:
        lines = [
            json.dumps(
                {
                    "kind": JOURNAL_MAGIC,
                    "version": JOURNAL_VERSION,
                    "key": self.key,
                    "meta": self.meta,
                }
            )
        ]
        lines += [
            json.dumps({"kind": "record", "id": rid, "data": data})
            for rid, data in sorted(self._records.items())
        ]
        atomic_write_text(self.path, "\n".join(lines) + "\n")

    # -- reading -------------------------------------------------------------

    def __contains__(self, record_id: str) -> bool:
        return str(record_id) in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, record_id: str) -> Any:
        return self._records[str(record_id)]

    def ids(self) -> Iterator[str]:
        return iter(sorted(self._records))

    def records(self) -> dict[str, Any]:
        return dict(self._records)
