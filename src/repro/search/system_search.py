"""Optimal system-size search (paper §5.2) and scaling studies (Figs. 7, 10, 11).

For every candidate system size (multiples of 8 GPUs in the paper) the full
execution space is searched and the best performer recorded.  The resulting
perf-vs-size curve exposes the "efficiency cliffs": sudden drops where an LLM's
shape does not map evenly onto the processor count.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Sequence

import numpy as np

from ..execution.strategy import ExecutionStrategy
from ..hardware.system import System
from ..llm.config import LLMConfig
from ..obs import EventJournal, ProgressReporter, SweepStats, Tracer
from ..obs.stats import PruneStats
from .checkpoint import CheckpointJournal, run_key
from .execution_search import SearchOptions, search

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ScalingPoint:
    """Best achievable performance at one system size."""

    num_procs: int
    sample_rate: float
    batch_time: float
    mfu: float
    strategy: ExecutionStrategy | None
    feasible: bool
    stats: SweepStats | None = field(default=None, compare=False)

    @property
    def per_proc_rate(self) -> float:
        return self.sample_rate / self.num_procs if self.num_procs else 0.0


@dataclass
class ScalingCurve:
    """A perf-vs-system-size sweep for one LLM.

    ``truncated`` is set when a wall-clock deadline stopped the sweep at a
    size boundary; ``points`` then covers only the sizes completed in time.
    """

    llm_name: str
    points: list[ScalingPoint]
    truncated: bool = False

    def sizes(self) -> np.ndarray:
        return np.array([p.num_procs for p in self.points])

    def rates(self) -> np.ndarray:
        return np.array([p.sample_rate for p in self.points])

    def relative_scaling(self) -> np.ndarray:
        """Per-processor efficiency relative to the best point (Fig. 7 y-axis).

        A value of 1.0 means perfect scaling; efficiency cliffs appear as
        points well below their neighbours.
        """
        per_proc = np.array([p.per_proc_rate for p in self.points])
        peak = per_proc.max() if len(per_proc) and per_proc.max() > 0 else 1.0
        return per_proc / peak

    def cliff_depths(self) -> np.ndarray:
        """Drop of each point below the running envelope of ``relative_scaling``."""
        rel = self.relative_scaling()
        envelope = np.maximum.accumulate(rel)
        return envelope - rel

    def total_stats(self) -> SweepStats | None:
        """Merged sweep statistics across every instrumented size."""
        stats = [p.stats for p in self.points if p.stats is not None]
        return SweepStats.merge(stats) if stats else None


def best_at_size(
    llm: LLMConfig,
    system_factory: Callable[[int], System],
    num_procs: int,
    batch: int,
    options: SearchOptions | None = None,
    *,
    workers: int | None = None,
    bound_prune: bool = True,
    columnar: bool | None = None,
    tracer: Tracer | None = None,
    collect_stats: bool = False,
    events: EventJournal | None = None,
) -> ScalingPoint:
    """Search the execution space at one system size.

    ``workers`` is forwarded to :func:`repro.search.search`; the default
    ``None`` applies its :func:`~repro.search.auto_workers` heuristic, so
    large per-size spaces parallelize while small ones stay serial.
    ``bound_prune`` is forwarded too, and bites hard here: the inner search
    keeps only the single best configuration (``top_k=1``, no rate
    histogram), the exact regime where roofline bound pruning skips the
    comm/timing stages for almost the whole feasible space.  ``columnar``
    is forwarded as well — serial per-size searches then evaluate their
    whole space as one vectorized batch (``False`` forces the scalar
    pipeline; the point is identical either way).  ``tracer`` and
    ``collect_stats`` instrument the inner search; the point's
    :class:`~repro.obs.SweepStats` lands on ``ScalingPoint.stats``.
    ``events`` threads a flight-recorder journal into the inner search
    (which records the full chunk lifecycle; see :func:`repro.search.search`).
    """
    system = system_factory(num_procs)
    result = search(
        llm, system, batch, options, workers=workers, keep_rates=False, top_k=1,
        bound_prune=bound_prune, columnar=columnar, tracer=tracer,
        collect_stats=collect_stats, events=events,
    )
    if result.best is None:
        return ScalingPoint(
            num_procs=num_procs,
            sample_rate=0.0,
            batch_time=float("inf"),
            mfu=0.0,
            strategy=None,
            feasible=False,
            stats=result.stats,
        )
    return ScalingPoint(
        num_procs=num_procs,
        sample_rate=result.best.sample_rate,
        batch_time=result.best.batch_time,
        mfu=result.best.mfu,
        strategy=result.best_strategy,
        feasible=True,
        stats=result.stats,
    )


def scaling_sweep(
    llm: LLMConfig,
    system_factory: Callable[[int], System],
    sizes: Sequence[int],
    batch: int,
    options: SearchOptions | None = None,
    *,
    workers: int | None = None,
    bound_prune: bool = True,
    columnar: bool | None = None,
    tracer: Tracer | None = None,
    collect_stats: bool = False,
    progress: ProgressReporter | None = None,
    events: EventJournal | None = None,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = False,
    deadline: float | None = None,
) -> ScalingCurve:
    """Best performance at each system size (one Fig. 7 / Fig. 10 panel).

    ``workers`` is honored by every inner per-size search (``None`` =
    auto-select, 0/1 = serial, N = process count), so a Fig. 7 sweep over
    thousands of processors can use the whole machine.  ``bound_prune``
    and ``columnar`` reach every inner search (see :func:`best_at_size`;
    the curve is identical either way).

    With a ``tracer``, each per-size search is wrapped in a ``size=N`` span
    (chunk and stage spans of the inner searches nest beneath it);
    ``collect_stats`` records a :class:`~repro.obs.SweepStats` per point
    (merge them with :meth:`ScalingCurve.total_stats`); ``progress`` ticks
    once per completed size, with feasibility as the success count.
    ``events`` records a ``sweep.size`` flight-recorder event per completed
    size (plus the inner searches' chunk lifecycle) and ``sweep.truncated``
    / ``chunk.resumed`` markers for deadline stops and journal restores.

    ``checkpoint`` journals each completed size so an interrupted sweep can
    ``resume`` without redoing finished sizes (restored points carry
    ``stats=None``).  ``deadline`` is a wall-clock budget in seconds; when
    it passes the sweep stops cleanly at a size boundary and the returned
    curve is flagged ``truncated=True``.
    """
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")
    if progress is not None:
        progress.set_total(len(sizes))
        progress.unit = "sizes"
    logger.debug("scaling sweep: %s over %d sizes", llm.name, len(sizes))
    journal = None
    if checkpoint is not None and sizes:
        key = run_key(
            llm, system_factory(max(sizes)), batch,
            options or SearchOptions(), kind="sweep",
            extra={"sizes": [int(n) for n in sizes]},
        )
        journal = CheckpointJournal.open(
            checkpoint, key, resume=resume, events=events, meta={"llm": llm.name},
        )
    t_start = perf_counter()
    points = []
    truncated = False
    span = tracer.span if tracer is not None else None
    for n in sizes:
        record_id = f"size={n}"
        if journal is not None and record_id in journal:
            points.append(_point_from_payload(journal.get(record_id)))
            if events is not None:
                events.emit("chunk.resumed", size=int(n))
            if progress is not None:
                progress.update(1, int(points[-1].feasible))
            continue
        if deadline is not None and perf_counter() - t_start >= deadline:
            truncated = True
            logger.warning("scaling sweep deadline hit; stopping before size %d", n)
            if events is not None:
                events.emit("sweep.truncated", next_size=int(n))
            break
        t_size = perf_counter()
        if span is not None:
            with span(f"size={n}", cat="sweep.size"):
                point = best_at_size(llm, system_factory, n, batch, options,
                                     workers=workers, bound_prune=bound_prune,
                                     columnar=columnar, tracer=tracer,
                                     collect_stats=collect_stats, events=events)
        else:
            point = best_at_size(llm, system_factory, n, batch, options,
                                 workers=workers, bound_prune=bound_prune,
                                 columnar=columnar,
                                 collect_stats=collect_stats, events=events)
        if events is not None:
            events.emit(
                "sweep.size", size=int(n), seconds=perf_counter() - t_size,
                feasible=bool(point.feasible),
            )
        points.append(point)
        if journal is not None:
            journal.record(record_id, _point_payload(point))
        if progress is not None:
            progress.update(1, int(point.feasible))
    if progress is not None:
        progress.finish()
    return ScalingCurve(llm_name=llm.name, points=points, truncated=truncated)


def _point_payload(point: ScalingPoint) -> dict:
    return {
        "num_procs": point.num_procs,
        "sample_rate": point.sample_rate,
        "batch_time": point.batch_time,
        "mfu": point.mfu,
        "strategy": point.strategy.to_dict() if point.strategy is not None else None,
        "feasible": point.feasible,
    }


def _point_from_payload(payload: dict) -> ScalingPoint:
    strategy = payload.get("strategy")
    return ScalingPoint(
        num_procs=int(payload["num_procs"]),
        sample_rate=float(payload["sample_rate"]),
        batch_time=float(payload["batch_time"]),
        mfu=float(payload["mfu"]),
        strategy=ExecutionStrategy.from_dict(strategy) if strategy else None,
        feasible=bool(payload["feasible"]),
        # A marker SweepStats: no engine work happened, but total_stats()
        # should still report that this size came from the journal.
        stats=SweepStats(engine=PruneStats(), elapsed=0.0, resumed_chunks=1),
    )


def offload_speedups(
    baseline: ScalingCurve, offloaded: ScalingCurve
) -> list[tuple[int, float]]:
    """Relative speedup from offloading at each size (Fig. 11).

    Returns ``(size, speedup_percent)``; ``inf`` marks sizes only feasible
    with offloading (the paper's "infinite speedup" points).
    """
    out: list[tuple[int, float]] = []
    for b, o in zip(baseline.points, offloaded.points):
        if b.num_procs != o.num_procs:
            raise ValueError("curves must cover identical size grids")
        if not o.feasible:
            continue
        if not b.feasible or b.sample_rate == 0:
            out.append((b.num_procs, float("inf")))
        else:
            out.append((b.num_procs, (o.sample_rate / b.sample_rate - 1.0) * 100.0))
    return out
