"""Local-search refinement: hill climbing through the execution space.

The exhaustive engine (§5.1) is exact but grows combinatorially.  For
interactive use, this module hill-climbs from a seed strategy: each move
perturbs one dimension (shifting parallelism between t/p/d while preserving
the processor count, scaling the microbatch or interleaving, toggling one
optimization) and keeps the best feasible neighbour until no move improves.

Exhaustive search remains the ground truth; the test suite checks that
multi-start hill climbing lands within a few percent of it on small spaces.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass

from ..core.results import PerformanceResult
from ..engine import evaluate, evaluate_many, prune_threshold_for_rate
from ..execution.strategy import ExecutionStrategy
from ..hardware.system import System
from ..llm.config import LLMConfig
from ..obs import NULL_SPAN, MetricsRegistry, Tracer
from .checkpoint import CheckpointJournal, run_key

logger = logging.getLogger(__name__)

# Refine-layer metric names (the engine's own counters accumulate alongside
# these in the same registry).
M_REFINE_STEPS = "refine.steps"
M_REFINE_EVALUATIONS = "refine.evaluations"
M_REFINE_SEEDS = "refine.seeds"


@dataclass(frozen=True)
class RefineResult:
    """Outcome of one hill-climbing run."""

    best: PerformanceResult
    best_strategy: ExecutionStrategy
    evaluations: int
    steps: int


def neighbours(strategy: ExecutionStrategy) -> list[ExecutionStrategy]:
    """All single-move perturbations of a strategy.

    Moves preserve ``t * p * d`` so every neighbour targets the same system;
    infeasible neighbours are rejected later by the model, not here.
    """
    t, p, d = strategy.tensor_par, strategy.pipeline_par, strategy.data_par
    out: list[ExecutionStrategy] = []

    # Shift a factor of 2 between any ordered pair of parallelism modes.
    for src, dst in (
        ("t", "p"), ("t", "d"), ("p", "t"), ("p", "d"), ("d", "t"), ("d", "p")
    ):
        vals = {"t": t, "p": p, "d": d}
        if vals[src] % 2:
            continue
        vals[src] //= 2
        vals[dst] *= 2
        out.append(
            strategy.evolve(
                tensor_par=vals["t"], pipeline_par=vals["p"], data_par=vals["d"]
            )
        )

    # Microbatch and interleaving scaling.
    for m in (strategy.microbatch * 2, strategy.microbatch // 2):
        if m >= 1:
            out.append(strategy.evolve(microbatch=m))
    for v in (strategy.pp_interleaving * 2, strategy.pp_interleaving // 2):
        if v >= 1:
            out.append(strategy.evolve(pp_interleaving=v))

    # Single-flag toggles and mode steps.
    out.append(strategy.evolve(optimizer_sharding=not strategy.optimizer_sharding))
    out.append(strategy.evolve(dp_overlap=not strategy.dp_overlap))
    out.append(strategy.evolve(fused_activations=not strategy.fused_activations))
    if strategy.seq_par:
        out.append(
            strategy.evolve(seq_par=False, tp_redo_sp=False, pp_rs_ag=False)
        )
    else:
        out.append(strategy.evolve(seq_par=True, tp_redo_sp=True))
    modes = ("none", "attn_only", "full")
    idx = modes.index(strategy.recompute)
    for j in (idx - 1, idx + 1):
        if 0 <= j < len(modes):
            out.append(strategy.evolve(recompute=modes[j]))
    overlaps = ("none", "pipe", "ring")
    oidx = overlaps.index(strategy.tp_overlap)
    for j in (oidx - 1, oidx + 1):
        if 0 <= j < len(overlaps):
            out.append(strategy.evolve(tp_overlap=overlaps[j]))

    return out


def hill_climb(
    llm: LLMConfig,
    system: System,
    seed: ExecutionStrategy,
    *,
    max_steps: int = 100,
    bound_prune: bool = True,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> RefineResult | None:
    """Greedy ascent on sample rate from a seed strategy.

    Returns ``None`` when the seed itself is infeasible and no neighbour is
    feasible either.

    ``bound_prune`` lets each neighbourhood evaluation skip the comm/timing
    stages for moves whose roofline lower bound proves they cannot beat the
    current rate — the climb's trajectory and answer are unchanged because
    the admission test (strictly better than current) would reject those
    moves anyway.

    ``tracer`` wraps the climb in a ``hill_climb`` span with one
    ``refine.step`` child per accepted move; ``metrics`` accumulates the
    ``refine.*`` counters plus the engine's own counters for every batched
    neighbourhood evaluation.
    """
    if max_steps < 1:
        raise ValueError("max_steps must be >= 1")
    climb_span = (
        tracer.span("hill_climb", cat="refine", seed=seed.short_name())
        if tracer is not None
        else None
    )
    if climb_span is not None:
        climb_span.__enter__()
    try:
        result = _hill_climb_inner(
            llm, system, seed, max_steps=max_steps, bound_prune=bound_prune,
            tracer=tracer, metrics=metrics,
        )
    finally:
        if climb_span is not None:
            climb_span.__exit__(None, None, None)
    return result


def _hill_climb_inner(
    llm: LLMConfig,
    system: System,
    seed: ExecutionStrategy,
    *,
    max_steps: int,
    bound_prune: bool,
    tracer: Tracer | None,
    metrics: MetricsRegistry | None,
) -> RefineResult | None:
    current_strategy = seed
    current = evaluate(llm, system, seed, metrics=metrics)
    evaluations = 1
    if not current.feasible:
        # Try to bootstrap from any feasible neighbour.
        for cand in neighbours(seed):
            res = evaluate(llm, system, cand, metrics=metrics)
            evaluations += 1
            if res.feasible:
                current_strategy, current = cand, res
                break
        else:
            if metrics is not None:
                metrics.inc(M_REFINE_EVALUATIONS, evaluations)
            return None

    steps = 0
    for _ in range(max_steps):
        # One batched engine call per step: the neighbourhood shares block
        # profiles heavily (only t/m/recompute moves change the profile) and
        # memory-infeasible moves are pruned before any timing work.
        moves = neighbours(current_strategy)
        # A move is only accepted when strictly better than the current
        # rate, so a prune threshold at exactly that rate is lossless:
        # bound-pruned moves (rate provably <= current) come back with
        # sample_rate 0.0 and fail the admission test like any non-improving
        # neighbour would.
        prune_above = (
            prune_threshold_for_rate(
                float(current_strategy.batch), current.sample_rate
            )
            if bound_prune and current.sample_rate > 0.0
            else None
        )
        span = (
            tracer.span("refine.step", cat="refine", moves=len(moves))
            if tracer is not None
            else NULL_SPAN
        )
        with span:
            best_move: tuple[ExecutionStrategy, PerformanceResult] | None = None
            for cand, res in zip(
                moves,
                evaluate_many(
                    llm, system, moves, prune=True, prune_above=prune_above,
                    metrics=metrics,
                ),
            ):
                evaluations += 1
                if res.feasible and res.sample_rate > current.sample_rate and (
                    best_move is None or res.sample_rate > best_move[1].sample_rate
                ):
                    best_move = (cand, res)
        if best_move is None:
            break
        current_strategy, current = best_move
        steps += 1

    if metrics is not None:
        metrics.inc(M_REFINE_EVALUATIONS, evaluations)
        metrics.inc(M_REFINE_STEPS, steps)
    logger.debug(
        "hill climb from %s: %d steps, %d evaluations",
        seed.short_name(), steps, evaluations,
    )
    return RefineResult(
        best=current,
        best_strategy=current_strategy,
        evaluations=evaluations,
        steps=steps,
    )


def multi_start(
    llm: LLMConfig,
    system: System,
    seeds: list[ExecutionStrategy],
    *,
    max_steps: int = 100,
    bound_prune: bool = True,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = False,
    events=None,
) -> RefineResult | None:
    """Hill climb from several seeds, returning the overall best.

    ``bound_prune`` is forwarded to every :func:`hill_climb` (see there;
    the refined answer is unchanged either way).

    ``checkpoint`` journals each finished climb so an interrupted
    multi-start can ``resume`` and skip completed seeds; a restored climb's
    best strategy is re-evaluated through the deterministic engine and its
    journaled evaluation/step counts are restored, so the resumed answer
    matches an uninterrupted run.  ``events`` (an
    :class:`~repro.obs.EventJournal`) flight-records torn journal lines
    found while resuming.
    """
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")
    journal = None
    if checkpoint is not None:
        key = run_key(
            llm, system, 0, None, kind="refine",
            extra={
                "seeds": [s.to_dict() for s in seeds],
                "max_steps": max_steps,
            },
        )
        journal = CheckpointJournal.open(
            checkpoint, key, resume=resume, events=events, meta={"llm": llm.name},
        )
    best: RefineResult | None = None
    total_evals = 0
    if metrics is not None:
        metrics.inc(M_REFINE_SEEDS, len(seeds))
    for i, seed in enumerate(seeds):
        record_id = f"seed={i}"
        if journal is not None and record_id in journal:
            res = _climb_from_payload(llm, system, journal.get(record_id))
        else:
            res = hill_climb(
                llm, system, seed, max_steps=max_steps,
                bound_prune=bound_prune, tracer=tracer, metrics=metrics,
            )
            if journal is not None:
                journal.record(record_id, _climb_payload(res))
        if res is None:
            continue
        total_evals += res.evaluations
        if best is None or res.best.sample_rate > best.best.sample_rate:
            best = RefineResult(
                best=res.best,
                best_strategy=res.best_strategy,
                evaluations=total_evals,
                steps=res.steps,
            )
        else:
            best = RefineResult(
                best=best.best,
                best_strategy=best.best_strategy,
                evaluations=total_evals,
                steps=best.steps,
            )
    return best


def _climb_payload(res: RefineResult | None) -> dict | None:
    if res is None:
        return None
    return {
        "strategy": res.best_strategy.to_dict(),
        "rate": res.best.sample_rate,
        "evaluations": res.evaluations,
        "steps": res.steps,
    }


def _climb_from_payload(
    llm: LLMConfig, system: System, payload: dict | None
) -> RefineResult | None:
    if payload is None:
        return None
    strategy = ExecutionStrategy.from_dict(payload["strategy"])
    return RefineResult(
        best=evaluate(llm, system, strategy),
        best_strategy=strategy,
        evaluations=int(payload["evaluations"]),
        steps=int(payload["steps"]),
    )
