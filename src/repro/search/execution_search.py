"""Optimal execution search engine (paper §5.1).

Exhaustively enumerates execution configurations for a given LLM, system and
global batch size, evaluates each with the analytical model, and returns the
best performer (by sample rate) plus distribution statistics.  The
enumeration covers the full Table-1 space; :class:`SearchOptions` restricts
any dimension for scoped studies (e.g. Fig. 5's "original optimizations").

A multi-core map mirrors the paper's "minutes on a standard desktop" claim:
the per-configuration model is fast (well under a millisecond) and
configurations are independent, so the sweep parallelizes trivially.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import math
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from time import perf_counter

import numpy as np

from ..core.results import PerformanceResult
from ..engine import (
    comm_cache_stats,
    evaluate,
    evaluate_many,
    iter_evaluate,
    prune_threshold_for_rate,
)
from ..execution.strategy import ExecutionStrategy, divisors, factorizations
from ..hardware.system import System
from ..llm.config import LLMConfig
from ..obs import (
    M_COMM_CACHE_HITS,
    M_COMM_CACHE_MISSES,
    EventJournal,
    MetricsRegistry,
    ProgressReporter,
    PruneStats,
    SweepStats,
    Tracer,
)
from ..obs.stats import (
    M_BOUND_SKIPPED_BUCKETS,
    M_BOUND_TILES,
    M_CHUNK_SECONDS,
    M_SURROGATE_SEEDED,
    STAGE_NAMES,
    stage_metric,
)
from .checkpoint import CheckpointJournal, run_key
from .faults import FaultInjector, RetryPolicy, run_supervised
from .surrogate import (
    load_surrogate,
    seed_sample_size,
    store_surrogate,
    surrogate_key,
)

logger = logging.getLogger(__name__)

# Below this many candidates per worker, pool startup + pickling costs more
# than the evaluation itself (the per-candidate model runs in ~tens of
# microseconds), so the auto heuristic stays serial.  See auto_workers().
MIN_STRATEGIES_PER_WORKER = 2000


@dataclass(frozen=True)
class SearchOptions:
    """Which execution dimensions to sweep (paper Table 1 "range" column).

    Each tuple lists the values tried for that dimension; fixing a dimension
    to a single value removes it from the sweep.  ``seq_par_modes`` entries
    are ``(seq_par, tp_redo_sp, pp_rs_ag)`` triples, keeping the dependent
    flags consistent by construction.
    """

    recompute: tuple[str, ...] = ("none", "attn_only", "full")
    seq_par_modes: tuple[tuple[bool, bool, bool], ...] = (
        (False, False, False),
        (True, True, True),
    )
    tp_overlap: tuple[str, ...] = ("none", "ring")
    dp_overlap: tuple[bool, ...] = (False, True)
    optimizer_sharding: tuple[bool, ...] = (False, True)
    fused_activations: tuple[bool, ...] = (False, True)
    pp_1f1b: tuple[bool, ...] = (True,)
    offload_modes: tuple[tuple[bool, bool, bool], ...] = ((False, False, False),)
    max_tensor_par: int = 64
    max_microbatch: int = 64
    microbatch_powers_of_two: bool = True
    interleaving_values: tuple[int, ...] | None = None  # None -> divisors of L/p
    training: bool = True

    @classmethod
    def megatron_baseline(cls) -> "SearchOptions":
        """The "original optimizations" regime of Fig. 5(a): full recompute,
        1F1B + microbatching, no sequence parallelism, no overlap/sharding."""
        return cls(
            recompute=("full",),
            seq_par_modes=((False, False, False),),
            tp_overlap=("none",),
            dp_overlap=(False,),
            optimizer_sharding=(False,),
            fused_activations=(False,),
        )

    @classmethod
    def seq_par_regime(cls) -> "SearchOptions":
        """Fig. 5(b): sequence parallelism + selective recompute added."""
        return cls(
            recompute=("attn_only", "full"),
            seq_par_modes=((True, True, True),),
            tp_overlap=("none",),
            dp_overlap=(False,),
            optimizer_sharding=(False,),
            fused_activations=(False,),
        )

    @classmethod
    def all_optimizations(cls) -> "SearchOptions":
        """Fig. 5(c,d): the full Table-1 space."""
        return cls()

    @classmethod
    def all_with_offload(cls) -> "SearchOptions":
        """§6: the full space plus weight+activation+optimizer offload."""
        return cls(
            offload_modes=((False, False, False), (True, True, True))
        )

    def with_offload_only(self) -> "SearchOptions":
        return replace(self, offload_modes=((True, True, True),))


@dataclass
class SearchResult:
    """Outcome of one exhaustive execution search.

    ``stats`` is populated when the search ran with ``collect_stats=True``
    or with any fault-tolerance feature active: a
    :class:`~repro.obs.SweepStats` whose engine counters are merged across
    every worker chunk and whose retry/skip/resume counters describe what
    the supervision layer did.  ``truncated`` is set when a ``deadline``
    stopped the sweep at a chunk boundary — the result is then valid but
    covers only the evaluated prefix of the space.
    """

    best: PerformanceResult | None
    best_strategy: ExecutionStrategy | None
    top: list[tuple[ExecutionStrategy, PerformanceResult]]
    num_evaluated: int
    num_feasible: int
    sample_rates: np.ndarray  # feasible configurations' sample rates
    stats: SweepStats | None = None
    truncated: bool = False

    @property
    def feasible_fraction(self) -> float:
        if self.num_evaluated == 0:
            return 0.0
        return self.num_feasible / self.num_evaluated


def candidate_strategies(
    llm: LLMConfig,
    system: System,
    batch: int,
    options: SearchOptions | None = None,
):
    """Yield every candidate :class:`ExecutionStrategy` in the option space.

    Structural constraints that need no model evaluation (t beyond the head
    count, p beyond the block count, batch divisibility) are pruned here;
    everything else is left to the model's feasibility check.
    """
    opts = options or SearchOptions()
    n = system.num_procs
    for t, p, d in factorizations(n):
        if t > min(opts.max_tensor_par, llm.attn_heads) or llm.attn_heads % t:
            continue
        if llm.hidden % t or llm.feedforward % t:
            continue
        if p > llm.num_blocks:
            continue
        if d > batch or batch % d:
            continue
        local_batch = batch // d
        microbatches = [
            m
            for m in divisors(local_batch)
            if m <= opts.max_microbatch
            and (not opts.microbatch_powers_of_two or (m & (m - 1)) == 0)
        ]
        if opts.interleaving_values is not None:
            interleavings = [
                v
                for v in opts.interleaving_values
                if v == 1 or (p > 1 and v <= math.ceil(llm.num_blocks / p))
            ]
        else:
            bpstage = math.ceil(llm.num_blocks / p)
            interleavings = [v for v in divisors(bpstage) if v == 1 or p > 1]
        for m, v in itertools.product(microbatches, interleavings):
            for rc, (sp, redo, ppsg), tpo, dpo, osh, fus, f1b, off in itertools.product(
                opts.recompute,
                opts.seq_par_modes,
                opts.tp_overlap,
                opts.dp_overlap,
                opts.optimizer_sharding,
                opts.fused_activations,
                opts.pp_1f1b,
                opts.offload_modes,
            ):
                if sp and llm.seq_size % t:
                    continue
                if sp and t == 1:
                    continue  # degenerate: SP is a no-op without TP
                yield ExecutionStrategy(
                    tensor_par=t,
                    pipeline_par=p,
                    data_par=d,
                    batch=batch,
                    microbatch=m,
                    pp_interleaving=v,
                    pp_1f1b=f1b,
                    pp_rs_ag=ppsg and sp,
                    seq_par=sp,
                    tp_redo_sp=redo and sp,
                    tp_overlap=tpo,
                    dp_overlap=dpo,
                    optimizer_sharding=osh,
                    recompute=rc,
                    fused_activations=fus,
                    weight_offload=off[0],
                    activation_offload=off[1],
                    optimizer_offload=off[2],
                    training=opts.training,
                )


def auto_workers(num_strategies: int, cpu_count: int | None = None) -> int:
    """Process count for a sweep of ``num_strategies`` candidates.

    The heuristic: one worker per :data:`MIN_STRATEGIES_PER_WORKER`
    candidates, capped at the machine's core count and floored at one.
    Small sweeps therefore run serially *by design* — even on a many-core
    machine — because forking a pool and pickling the problem costs more
    than evaluating a few thousand sub-millisecond candidates.  Callers who
    know better pass ``workers`` explicitly.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    return max(1, min(cpus, num_strategies // MIN_STRATEGIES_PER_WORKER))


def _chunk_trace_events(
    tracer: Tracer,
    chunk_index: int,
    registry: MetricsRegistry,
    start: float,
    elapsed: float,
    n_strategies: int,
    feasible: int,
) -> None:
    """Record one chunk span plus per-stage aggregate child spans.

    Per-candidate stage spans at sweep scale would dwarf the work being
    traced, so each chunk carries five synthetic child spans — one per
    pipeline stage, sized by the chunk's accumulated stage wall time and
    laid out sequentially from the chunk start.  They render as an in-chunk
    breakdown in Perfetto; only their durations (not their placement) are
    measurements.

    The chunk span carries the tracer's ``trace_id`` in its args, so spans
    shipped back from worker processes remain attributable to the
    coordinator's trace after stitching.
    """
    tracer.add_span(
        f"chunk[{chunk_index}]",
        "search.chunk",
        start,
        elapsed,
        candidates=n_strategies,
        feasible=feasible,
        trace_id=tracer.trace_id,
    )
    offset = start
    for stage in STAGE_NAMES:
        dur = registry.stage_total(stage_metric(stage))
        if dur <= 0.0:
            continue
        tracer.add_span(stage, "engine.stage", offset, dur, aggregate=True)
        offset += dur
    tiles = int(registry.value(M_BOUND_TILES))
    if tiles > 0:
        # Adaptive tiled pass: one synthetic span carrying the tile/skip/
        # seed counters, so traces show how hard the threshold bit.
        tracer.add_span(
            "adaptive", "engine.stage", start, elapsed, aggregate=True,
            bound_tiles=tiles,
            bound_skipped_buckets=int(registry.value(M_BOUND_SKIPPED_BUCKETS)),
            surrogate_seeded=int(registry.value(M_SURROGATE_SEEDED)),
        )


def _evaluate_chunk(
    args: tuple[
        LLMConfig, System, list[ExecutionStrategy], int, object, bool, int,
        FaultInjector | None, bool, float, bool | None, str | None,
    ]
) -> tuple[
    int,
    int,
    list[tuple[ExecutionStrategy, PerformanceResult]],
    list[float],
    dict | None,
    list[dict] | None,
]:
    (llm, system, strategies, top_k, constraint, instrument, chunk_index,
     injector, bound_prune, seed_floor, columnar, trace_id) = args
    if injector is not None:
        injector.fire(chunk_index)
    registry = MetricsRegistry() if instrument else None
    start = perf_counter()
    # Bounded min-heap of (rate, tiebreak, strategy, result): O(n log k) with
    # k live entries, instead of periodically re-sorting a 4k-long list.
    heap: list[tuple[float, int, ExecutionStrategy, PerformanceResult]] = []
    rates: list[float] = []
    feasible = 0
    # Bound pruning: the engine skips comm/assembly for any candidate whose
    # roofline lower bound proves its rate cannot beat the heap's current
    # k-th best.  The ceiling is a batch-time threshold derived from the
    # rate floor so that pruning exactly mirrors the heap's strict
    # `rate > heap[0][0]` admission test (see prune_threshold_for_rate) —
    # the retained top-k stays bit-identical to an unpruned run.  An
    # optional seed floor (from search()'s cheap pre-pass) tightens the
    # ceiling before this chunk's own heap fills.
    prune_above = None
    if not math.isfinite(seed_floor) or seed_floor < 0.0:
        # A gossiped/seeded floor from an empty or all-infeasible heap can
        # arrive as -inf or nan; pruning on it would discard the whole
        # chunk, so it is clamped to "no floor" here (and again inside
        # prune_threshold_for_rate).
        seed_floor = 0.0
    floor_rate = seed_floor
    if bound_prune and strategies and top_k > 0:
        batch = float(strategies[0].batch)
        ceiling = [prune_threshold_for_rate(batch, floor_rate)]

        def prune_above() -> float:
            return ceiling[0]

    for idx, res in iter_evaluate(
        llm, system, strategies, prune=True, prune_above=prune_above,
        metrics=registry, columnar=columnar,
    ):
        if res.pruned:
            # Memory-feasible, provably outside the top-k; counts toward
            # feasibility (the comm/assemble stages never reject) but has
            # no rate to record.
            feasible += 1
            continue
        if not res.feasible:
            continue
        if constraint is not None and not constraint(res):
            continue
        feasible += 1
        rate = res.sample_rate
        rates.append(rate)
        entry = (rate, idx, strategies[idx], res)
        if len(heap) < top_k:
            heapq.heappush(heap, entry)
        elif rate > heap[0][0]:
            heapq.heapreplace(heap, entry)
        else:
            continue
        if prune_above is not None and len(heap) == top_k:
            kth = heap[0][0]
            if kth > floor_rate:
                floor_rate = kth
                ceiling[0] = prune_threshold_for_rate(batch, floor_rate)
    ranked = sorted(heap, key=lambda entry: (-entry[0], entry[1]))
    top = [(strat, res) for _, _, strat, res in ranked]
    snapshot = events = None
    if registry is not None:
        elapsed = perf_counter() - start
        # Per-chunk latency distribution, merged into the parent registry
        # alongside the engine counters (p50/p95 straggler visibility).
        registry.observe(M_CHUNK_SECONDS, elapsed)
        # The worker's tracer adopts the coordinator's trace context, so the
        # chunk spans it ships back belong to the caller's trace_id.
        tracer = Tracer(trace_id=trace_id)
        _chunk_trace_events(
            tracer, chunk_index, registry, start, elapsed,
            len(strategies), feasible,
        )
        snapshot = registry.snapshot()
        events = tracer.events()
    return len(strategies), feasible, top, rates, snapshot, events


def _chunk_payload(result: tuple, keep_rates: bool) -> dict:
    """A chunk result as a JSON-safe journal record.

    Top-k entries store the strategy and its rate, not the full
    :class:`PerformanceResult` — resume re-evaluates the handful of
    journaled strategies through the deterministic engine, keeping the
    journal small and schema-stable.
    """
    n, feasible, top, rates, snapshot, _events = result
    return {
        "n": n,
        "feasible": feasible,
        "top": [[res.sample_rate, strat.to_dict()] for strat, res in top],
        "rates": list(rates) if keep_rates else None,
        "snapshot": snapshot,
    }


def _chunk_from_payload(llm: LLMConfig, system: System, payload: dict) -> tuple:
    """Reconstruct a chunk result tuple from its journal record."""
    top = []
    for _rate, strat_dict in payload["top"]:
        strat = ExecutionStrategy.from_dict(strat_dict)
        top.append((strat, evaluate(llm, system, strat)))
    return (
        int(payload["n"]),
        int(payload["feasible"]),
        top,
        list(payload.get("rates") or []),
        payload.get("snapshot"),
        None,
    )


def _search_columnar(
    llm: LLMConfig,
    system: System,
    batch: int,
    cols: dict,
    engine_batch,
    *,
    top_k: int,
    keep_rates: bool,
    instrument: bool,
    collect_stats: bool,
    tracer: Tracer | None,
    progress: ProgressReporter | None,
    t_start: float,
    options: SearchOptions | None = None,
    bound_prune: bool = True,
    prune_seed: int = 0,
    surrogate: bool = True,
    floor_rate: float = 0.0,
) -> SearchResult:
    """Evaluate the whole candidate space as one vectorized columnar batch.

    No chunking and no heap: the top-k is selected from the survivor rate
    column with the scalar heap's exact retention rule (ties at the k-th
    rate keep the earliest candidates in *stream* order; the returned list
    is then ordered by rate, ties by enumeration index), and only those k
    winners are materialized as :class:`ExecutionStrategy` objects and
    re-evaluated through the scalar pipeline — bit-identical by the
    engine's columnar equivalence contract, and a few microseconds each.

    When the caller needs nothing beyond the top-k (``bound_prune`` with
    ``keep_rates=False``), evaluation runs the adaptive best-bound-first
    tiled path (:class:`repro.engine.batch.AdaptivePlan`): buckets are
    visited in roofline-bound order, the running k-th-best rate tightens a
    strict threshold between tiles, and hopeless buckets never reach the
    comm stage.  An online surrogate (``surrogate=True``) picks the tile-0
    seed sample from persisted observations of previous runs —
    ``prune_seed`` sizes that sample (its stride semantics apply only to
    the scalar chunked path).  Both tiling and seeding affect speed only:
    the retained top-k stays bit-identical to the untiled, unseeded run.
    With ``keep_rates`` every candidate's rate is needed, so the batch
    runs untiled exactly as before.
    """
    eb = engine_batch.EvalBatch.from_columns(llm, system, cols)
    n = eb.n
    if progress is not None:
        progress.set_total(n)
    registry = MetricsRegistry() if instrument else None
    plan = None
    sur = sur_key = None
    do_adaptive = bool(bound_prune and not keep_rates and top_k > 0)
    if do_adaptive:
        seed_fn = on_tile = None
        if surrogate:
            sur_key = surrogate_key(llm, system, batch,
                                    options or SearchOptions())
            sur = load_surrogate(sur_key)
            seed_n = seed_sample_size(prune_seed, top_k)
            if seed_n > 0:
                def seed_fn(batch_state):
                    return sur.seed_buckets(batch_state, seed_n)

            def on_tile(tile_b, bid_s, rate_s):
                sur.observe_tile(eb, bid_s, rate_s)

        plan = engine_batch.AdaptivePlan(
            top_k=top_k, floor_rate=floor_rate,
            seed_fn=seed_fn, on_tile=on_tile,
        )
    t_run = perf_counter()
    if registry is not None:
        cc0 = comm_cache_stats()
    try:
        engine_batch.run_batch(
            eb, prune_above=None, metrics=registry, adaptive=plan
        )
    finally:
        if registry is not None:
            cc1 = comm_cache_stats()
            registry.inc(M_COMM_CACHE_HITS, cc1[0] - cc0[0])
            registry.inc(M_COMM_CACHE_MISSES, cc1[1] - cc0[1])
    if sur is not None and sur_key is not None:
        store_surrogate(sur_key, sur)
    # Bound-pruned candidates are memory-feasible by construction — the
    # comm/assemble stages never reject — so they count toward feasibility
    # exactly as on the scalar pruned path.
    num_feasible = int(eb.n_s) + int(getattr(eb, "n_pruned", 0))
    top: list[tuple[ExecutionStrategy, PerformanceResult]] = []
    if top_k > 0 and num_feasible > 0:
        srank = eb.stream_rank[eb.sidx]
        keep = np.lexsort((srank, -eb.rate_s))[:top_k]
        order = np.lexsort((eb.sidx[keep], -eb.rate_s[keep]))
        for i in keep[order]:
            strat = eb.strategy_at(int(eb.sidx[i]))
            top.append((strat, evaluate(llm, system, strat)))
    rates = np.empty(0)
    if keep_rates and num_feasible > 0:
        rates = eb.rate_s[np.argsort(eb.stream_rank[eb.sidx])]
    if progress is not None:
        progress.update(n, num_feasible)
        progress.finish()
    if tracer is not None and registry is not None:
        _chunk_trace_events(
            tracer, 0, registry, t_run, perf_counter() - t_run, n, num_feasible,
        )
    stats = None
    if collect_stats:
        stats = SweepStats(
            engine=PruneStats.from_metrics(registry),
            elapsed=perf_counter() - t_start,
            workers=1,
            num_evaluated=n,
            num_feasible=num_feasible,
            retries=0,
            skipped=(),
            resumed_chunks=0,
            truncated=False,
        )
    best_strategy, best = (top[0][0], top[0][1]) if top else (None, None)
    return SearchResult(
        best=best,
        best_strategy=best_strategy,
        top=top,
        num_evaluated=n,
        num_feasible=num_feasible,
        sample_rates=rates,
        stats=stats,
        truncated=False,
    )


def search(
    llm: LLMConfig,
    system: System,
    batch: int,
    options: SearchOptions | None = None,
    *,
    top_k: int = 10,
    workers: int | None = None,
    keep_rates: bool = True,
    constraint=None,
    bound_prune: bool = True,
    prune_seed: int = 0,
    columnar: bool | None = None,
    surrogate: bool = True,
    tracer: Tracer | None = None,
    collect_stats: bool = False,
    progress: ProgressReporter | None = None,
    events: EventJournal | None = None,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = False,
    deadline: float | None = None,
    retry_policy: RetryPolicy | None = None,
    fault_injector: FaultInjector | None = None,
) -> SearchResult:
    """Exhaustively search the execution space; return the best performer.

    Args:
        llm, system, batch: the fixed problem.
        options: sweep restrictions; defaults to the full Table-1 space.
        top_k: how many best configurations to retain.
        workers: process count; ``None`` applies :func:`auto_workers`
            (serial below ~2k candidates per core, documented there);
            0/1 forces serial.
        keep_rates: retain every feasible sample rate (Fig. 6 histograms).
        constraint: optional predicate on feasible results — return False to
            reject a configuration (e.g. a memory or MFU floor).  Must be a
            picklable (module-level) callable when ``workers > 1``.
        bound_prune: let the engine skip the comm/timing stages for
            candidates whose roofline lower bound proves they cannot enter
            the top-k (see :mod:`repro.engine.bounds`).  The retained top-k
            is bit-identical to an unpruned run.  Only engages when the
            search needs nothing but the top-k — ``keep_rates=False``, no
            ``constraint`` — because pruned candidates carry no sample rate
            for histograms and no breakdown for a predicate to inspect.
            ``num_feasible`` still counts pruned candidates (the comm and
            assembly stages never reject).
        prune_seed: seed the prune threshold before the main pass.  On the
            scalar chunked path this many evenly-strided candidates are
            evaluated serially first and the k-th best rate found seeds
            every chunk's ceiling (with seeding the top-k *rates* are
            unchanged, but a different member of an exact k-th-rate tie
            may be retained).  On the pure-columnar adaptive path it sizes
            the surrogate-picked tile-0 seed sample instead (0 keeps the
            default size, negative disables seeding) and the result stays
            fully bit-identical — seeding only reorders evaluation.
        columnar: route evaluation through the vectorized columnar engine
            (:mod:`repro.engine.batch`).  ``None`` (the default) engages it
            whenever it applies; ``False`` forces the scalar pipeline
            everywhere.  A serial search with no ``constraint`` and no
            fault-tolerance features runs *pure*-columnar: candidates are
            enumerated straight into NumPy columns and the whole space is
            evaluated as one struct-of-arrays batch, materializing only
            the top-k winners.  With ``bound_prune`` and
            ``keep_rates=False`` that batch runs the adaptive
            best-bound-first tiled path — buckets visited in roofline-
            bound order, a strict self-tightening threshold skipping
            hopeless buckets — which is where the engine's pruning pays
            off most (see :func:`_search_columnar`).  Multi-worker and
            supervised searches keep their chunked dispatch, with each
            chunk evaluated columnar inside
            :func:`~repro.engine.iter_evaluate`.  Results are bit-identical
            either way.
        surrogate: let the adaptive columnar path seed tile 0 from the
            online learned ranking persisted in the surrogate store (see
            :mod:`repro.search.surrogate`).  Speed-only — top-k identical
            on or off; ``--no-surrogate`` maps here.
        tracer: records enumeration/chunk/stage spans (worker events merge
            onto the parent timeline; CLOCK_MONOTONIC is machine-wide).
        collect_stats: attach a :class:`~repro.obs.SweepStats` (per-stage
            rejection counts, dedup hit rates, candidates/sec) to the
            result, aggregated across worker chunks.
        progress: fed one update per finished chunk (its total is set to
            the candidate count once enumeration finishes).
        events: a :class:`~repro.obs.EventJournal` flight recorder; the
            search emits ``search.start``/``search.done`` plus the full
            chunk lifecycle (dispatch, done, retry, timeout, fallback,
            skip, resume, truncation).  Supplying a journal engages the
            supervised chunked dispatch path — the layer where the
            lifecycle exists — so a journaled serial search is chunked
            like a checkpointed one.
        checkpoint: path of a JSONL checkpoint journal; every completed
            chunk is journaled so an interrupted sweep can be resumed.
        resume: reload ``checkpoint`` and skip already-journaled chunks
            (bit-identical to an uninterrupted run); raises
            :class:`~repro.search.checkpoint.CheckpointMismatch` when the
            journal belongs to a different problem.
        deadline: wall-clock budget in seconds (measured from this call).
            Enumeration stops cleanly at a chunk boundary once it passes
            and the partial result is flagged ``truncated=True``.
        retry_policy: per-chunk timeout / bounded-retry / backoff policy
            (see :class:`~repro.search.faults.RetryPolicy`).  A chunk that
            fails every pool retry is re-run serially; if it still fails
            its range is recorded in ``stats.skipped`` instead of aborting.
        fault_injector: deterministic test hook that makes one chunk raise,
            hang or crash (see :class:`~repro.search.faults.FaultInjector`).

    ``events`` or any of the last five arguments engages the supervised
    dispatch path (and forces chunked evaluation); without them the fast
    legacy dispatch is used and behavior is unchanged.
    """
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")
    t_start = perf_counter()
    instrument = collect_stats or tracer is not None
    fault_mode = (
        events is not None
        or checkpoint is not None
        or deadline is not None
        or retry_policy is not None
        or fault_injector is not None
    )
    # Pure-columnar dispatch: a serial, unsupervised, unconstrained search
    # never needs per-candidate scalar results, so enumerate straight into
    # NumPy columns and evaluate the whole space as one vectorized batch.
    # ImportError (NumPy below the columnar floor) and unencodable option
    # spaces fall back to the scalar enumeration below.
    engine_batch = search_columns = None
    if columnar is not False and constraint is None and not fault_mode:
        try:
            from ..engine import batch as engine_batch
            from . import columns as search_columns
        except ImportError:
            engine_batch = search_columns = None
    t0 = perf_counter()
    cols = None
    if search_columns is not None:
        cols = search_columns.candidate_columns(
            llm, system, batch, options or SearchOptions()
        )
    if cols is not None:
        n_cand = int(cols["t"].shape[0])
        workers = auto_workers(n_cand) if workers is None else workers
        if workers <= 1:
            if tracer is not None:
                tracer.add_span("enumerate", "search", t0,
                                perf_counter() - t0, candidates=n_cand)
            return _search_columnar(
                llm, system, batch, cols, engine_batch,
                top_k=top_k, keep_rates=keep_rates, instrument=instrument,
                collect_stats=collect_stats, tracer=tracer,
                progress=progress, t_start=t_start,
                options=options, bound_prune=bound_prune,
                prune_seed=prune_seed, surrogate=surrogate,
            )
    strategies = list(candidate_strategies(llm, system, batch, options))
    if tracer is not None:
        tracer.add_span("enumerate", "search", t0, perf_counter() - t0,
                        candidates=len(strategies))
    if progress is not None:
        progress.set_total(len(strategies))
    if workers is None:
        workers = auto_workers(len(strategies))
    # Bound pruning engages only when the caller needs nothing beyond the
    # top-k ranking (see the docstring); the flag rides into every chunk.
    do_prune = bool(
        bound_prune and constraint is None and not keep_rates and top_k > 0
    )
    seed_floor = 0.0
    if do_prune and prune_seed > 0 and len(strategies) > 0:
        stride = max(1, len(strategies) // prune_seed)
        sample = strategies[::stride][:prune_seed]
        sample_rates = sorted(
            (r.sample_rate for r in evaluate_many(llm, system, sample)
             if r.feasible),
            reverse=True,
        )
        if len(sample_rates) >= top_k:
            seed_floor = sample_rates[top_k - 1]
    # Instrumented, progress-reporting or fault-supervised serial runs are
    # chunked too — checkpoints, deadlines and retries all operate at chunk
    # granularity; a plain serial run stays single-chunk (identical behavior
    # to the fast path).
    chunked = workers > 1 or ((instrument or progress is not None or fault_mode)
                              and len(strategies) > 1)
    step = max(len(strategies), 1)
    if chunked:
        step = math.ceil(len(strategies) / (max(workers, 1) * 4))

    journal = None
    if checkpoint is not None:
        key = run_key(
            llm, system, batch, options or SearchOptions(), kind="search",
            extra={
                "top_k": top_k,
                "keep_rates": keep_rates,
                "constraint": getattr(constraint, "__qualname__", str(constraint))
                if constraint is not None else None,
                # prune_seed can change which member of an exact rate tie is
                # retained, so a seeded journal never mixes with an unseeded
                # resume; seedless pruning is bit-identical and needs no key.
                "prune_seed": int(prune_seed) if do_prune else 0,
            },
        )
        journal = CheckpointJournal.open(
            checkpoint, key, resume=resume, events=events,
            meta={
                "step": step,
                "num_candidates": len(strategies),
                "trace_id": tracer.trace_id if tracer is not None else None,
            },
        )
        # The journal's chunk layout wins: resuming with a different worker
        # count must slice the space exactly as the original run did.
        step = int(journal.meta.get("step", step)) or step
        # So does its trace identity: a resumed run continues the original
        # trace, letting the stitched Chrome trace span both invocations.
        if tracer is not None and journal.meta.get("trace_id"):
            tracer.trace_id = str(journal.meta["trace_id"])

    chunks: list[list[ExecutionStrategy]] = [strategies]
    if chunked:
        chunks = [strategies[i : i + step] for i in range(0, len(strategies), step)]
    logger.debug(
        "search: %d candidates, %d workers, %d chunks (instrumented=%s, "
        "supervised=%s)",
        len(strategies), workers, len(chunks), instrument, fault_mode,
    )

    trace_id = tracer.trace_id if tracer is not None else None
    args = [
        (llm, system, c, top_k, constraint, instrument, n, fault_injector,
         do_prune, seed_floor, columnar, trace_id)
        for n, c in enumerate(chunks)
    ]
    truncated = False
    retries = 0
    resumed = 0
    skipped_ranges: tuple[tuple[int, int], ...] = ()
    results: list[tuple[int, int, list, list, dict | None, list | None]]
    if events is not None:
        events.emit(
            "search.start", candidates=len(strategies),
            workers=max(workers, 1), chunks=len(chunks), trace_id=trace_id,
        )
    if fault_mode:
        chunk_results: dict[int, tuple] = {}
        tasks: dict[int, tuple] = {}
        for n, a in enumerate(args):
            if journal is not None and str(n) in journal:
                chunk_results[n] = _chunk_from_payload(llm, system, journal.get(str(n)))
                resumed += 1
                if events is not None:
                    events.emit("chunk.resumed", chunk=n)
            else:
                tasks[n] = a
        if progress is not None:
            for n in sorted(chunk_results):
                progress.update(chunk_results[n][0], chunk_results[n][1])

        def _on_chunk(n: int, r: tuple) -> None:
            chunk_results[n] = r
            if journal is not None:
                journal.record(str(n), _chunk_payload(r, keep_rates))
            if progress is not None:
                progress.update(r[0], r[1])

        report = run_supervised(
            _evaluate_chunk,
            tasks,
            workers=max(workers, 1),
            policy=retry_policy,
            deadline=t_start + deadline if deadline is not None else None,
            on_result=_on_chunk,
            events=events,
            tracer=tracer,
        )
        truncated = report.truncated
        retries = report.retries
        skipped_ranges = tuple(
            (n * step, min((n + 1) * step, len(strategies)))
            for n in report.skipped
        )
        results = [chunk_results[n] for n in sorted(chunk_results)]
    elif workers > 1 and len(chunks) > 1:
        results = [None] * len(chunks)  # type: ignore[list-item]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {pool.submit(_evaluate_chunk, a): n for n, a in enumerate(args)}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    n = pending.pop(future)
                    results[n] = future.result()
                    if progress is not None:
                        progress.update(results[n][0], results[n][1])
    else:
        # Serial chunked dispatch runs chunks in sequence, so the prune
        # threshold can gossip forward: the running k-th-best rate across
        # completed chunks seeds the next chunk's ceiling.  Lossless for
        # the merged top-k — the merge keeps earlier chunks' members of an
        # exact k-th-rate tie, which is precisely what the earlier-chunk
        # floor prunes from later chunks.
        results = []
        gossip_heap: list[float] = []
        floor = seed_floor
        for a in args:
            if do_prune and floor > a[9]:
                a = a[:9] + (floor,) + a[10:]
            r = _evaluate_chunk(a)
            results.append(r)
            if progress is not None:
                progress.update(r[0], r[1])
            if do_prune and top_k > 0:
                for _strat, res in r[2]:
                    rate = res.sample_rate
                    if not math.isfinite(rate):
                        continue
                    if len(gossip_heap) < top_k:
                        heapq.heappush(gossip_heap, rate)
                    elif rate > gossip_heap[0]:
                        heapq.heapreplace(gossip_heap, rate)
                if len(gossip_heap) == top_k and gossip_heap[0] > floor:
                    floor = gossip_heap[0]
    if progress is not None:
        progress.finish()

    num_eval = sum(r[0] for r in results)
    num_feasible = sum(r[1] for r in results)
    merged = [sr for r in results for sr in r[2]]
    merged.sort(key=lambda sr: -sr[1].sample_rate)
    merged = merged[:top_k]
    rates = (
        np.concatenate([np.asarray(r[3], dtype=float) for r in results])
        if keep_rates and any(r[3] for r in results)
        else np.empty(0)
    )
    best_strategy, best = (merged[0][0], merged[0][1]) if merged else (None, None)

    stats = None
    if tracer is not None:
        for r in results:
            if r[5]:
                tracer.add_events(r[5])
    if collect_stats or fault_mode:
        registry = MetricsRegistry.from_snapshots(
            r[4] for r in results if r[4] is not None
        )
        stats = SweepStats(
            engine=PruneStats.from_metrics(registry),
            elapsed=perf_counter() - t_start,
            workers=max(workers, 1),
            num_evaluated=num_eval,
            num_feasible=num_feasible,
            retries=retries,
            skipped=skipped_ranges,
            resumed_chunks=resumed,
            truncated=truncated,
        )
    if events is not None:
        events.emit(
            "search.done", seconds=perf_counter() - t_start,
            evaluated=num_eval, feasible=num_feasible, retries=retries,
            resumed=resumed, truncated=truncated,
        )
    return SearchResult(
        best=best,
        best_strategy=best_strategy,
        top=merged,
        num_evaluated=num_eval,
        num_feasible=num_feasible,
        sample_rates=rates,
        stats=stats,
        truncated=truncated,
    )
