"""Fault supervision for long-running sweeps: retry, timeout, degrade, stop.

A Fig.-6-scale search dispatches thousands of independent chunks to a
process pool over minutes or hours.  At that scale worker failures stop
being exceptional: a chunk can OOM, a worker can be killed by the OS, a
machine can wedge.  :func:`run_supervised` wraps chunk dispatch with the
supervision policy the search engines share:

* **bounded retry with exponential backoff** — a failed chunk is retried up
  to :attr:`RetryPolicy.max_retries` times, waiting
  ``backoff_base * backoff_factor**attempt`` (capped at ``backoff_max``)
  between attempts;
* **per-chunk timeout** — with :attr:`RetryPolicy.timeout` set, a chunk
  running longer than the budget is presumed hung: the pool is torn down
  (hung workers are terminated), innocent in-flight chunks are re-queued
  without an attempt penalty, and the hung chunk is charged one attempt;
* **graceful degradation** — a chunk that exhausts its pool retries is
  re-run serially in the parent process (``serial_fallback``); if it still
  fails it is recorded as *skipped* and the sweep continues, so one
  poisoned range cannot abort an hours-long campaign;
* **wall-clock deadline** — enumeration stops cleanly at a chunk boundary
  once the deadline passes; chunks never started are reported as
  *pending* and the caller flags its result ``truncated``.

:class:`FaultInjector` is the deterministic test hook behind all of this:
it makes the Nth chunk raise, hang, or kill its process, for the first
``fail_attempts`` attempts, so every recovery path above is exercisable in
tests and CI without flaky timing games.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Mapping

logger = logging.getLogger(__name__)

# Poll interval of the supervision loop.  Failures are rare; completions are
# harvested with ``wait(..., FIRST_COMPLETED)``, so the tick only bounds how
# quickly timeouts and backoff expiries are noticed.
TICK = 0.05


class FaultInjected(RuntimeError):
    """The error a :class:`FaultInjector` raises in ``exception`` mode."""


@dataclass(frozen=True)
class RetryPolicy:
    """How chunk failures are retried, backed off, timed out and degraded.

    ``max_retries`` counts *re*-tries: a chunk is attempted at most
    ``max_retries + 1`` times in the pool before degradation kicks in.
    ``timeout`` is seconds of wall clock per chunk attempt (``None``
    disables hang detection).  ``serial_fallback`` controls the final
    in-parent re-run; disable it when a hang is suspected (a serial re-run
    of a hanging chunk would hang the parent).
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    timeout: float | None = None
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_max < 0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")

    def delay(self, attempt: int) -> float:
        """Backoff before re-attempt ``attempt + 1`` (``attempt`` is 0-based)."""
        return min(self.backoff_max, self.backoff_base * self.backoff_factor**attempt)

    def delays(self) -> list[float]:
        """The full backoff schedule, one entry per allowed retry."""
        return [self.delay(a) for a in range(self.max_retries)]


class FaultInjector:
    """Deterministically fail one chunk: raise, hang, or kill the process.

    ``fire(chunk_index)`` is called by the chunk evaluator at the start of
    every attempt; it does nothing unless ``chunk_index`` matches.  The
    first ``fail_attempts`` matching attempts fail in the configured
    ``mode``; later attempts succeed, which is how retry-then-recover paths
    are tested.  Attempts are counted in-process by default; pass a
    ``state_path`` (one byte is appended per attempt) to count across
    processes — a pickled injector cannot carry mutable state back from a
    pool worker.
    """

    MODES = ("exception", "hang", "crash")

    def __init__(
        self,
        chunk_index: int,
        mode: str = "exception",
        *,
        fail_attempts: int = 1,
        state_path: str | os.PathLike | None = None,
        hang_seconds: float = 3600.0,
        exit_code: int = 23,
    ):
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.chunk_index = chunk_index
        self.mode = mode
        self.fail_attempts = fail_attempts
        self.state_path = os.fspath(state_path) if state_path is not None else None
        self.hang_seconds = hang_seconds
        self.exit_code = exit_code
        self._local_attempts = 0

    def _next_attempt(self) -> int:
        if self.state_path is None:
            n = self._local_attempts
            self._local_attempts += 1
            return n
        # O_APPEND keeps the count monotonic even when attempts land in
        # different worker processes.
        fd = os.open(self.state_path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o600)
        try:
            n = os.fstat(fd).st_size
            os.write(fd, b"x")
        finally:
            os.close(fd)
        return n

    def fire(self, chunk_index: int) -> None:
        """Fail (or not) according to the configured mode and attempt count."""
        if chunk_index != self.chunk_index:
            return
        attempt = self._next_attempt()
        if attempt >= self.fail_attempts:
            return
        if self.mode == "exception":
            raise FaultInjected(
                f"injected failure on chunk {chunk_index} (attempt {attempt})"
            )
        if self.mode == "hang":
            time.sleep(self.hang_seconds)
            return
        os._exit(self.exit_code)  # "crash": die without cleanup, like a SIGKILL


@dataclass
class SupervisionReport:
    """What :func:`run_supervised` actually ran, retried, skipped or left."""

    results: dict[int, Any] = field(default_factory=dict)
    skipped: list[int] = field(default_factory=list)
    pending: list[int] = field(default_factory=list)
    retries: int = 0
    truncated: bool = False


def run_supervised(
    fn: Callable[[Any], Any],
    tasks: Mapping[int, Any],
    *,
    workers: int,
    policy: RetryPolicy | None = None,
    deadline: float | None = None,
    on_result: Callable[[int, Any], None] | None = None,
    events: Any | None = None,
    tracer: Any | None = None,
) -> SupervisionReport:
    """Run ``fn(tasks[i])`` for every task under the supervision policy.

    ``tasks`` maps a chunk index to the (picklable) argument for ``fn``;
    results land in :attr:`SupervisionReport.results` keyed the same way.
    ``deadline`` is an absolute ``time.perf_counter()`` instant — tasks not
    yet started when it passes are left in ``pending`` and the report is
    flagged ``truncated``.  ``on_result`` is invoked in the parent, in
    completion order, as each chunk finishes (this is where the search
    layer journals checkpoints and ticks progress).

    ``events`` is an optional :class:`~repro.obs.EventJournal`: the
    supervisor records the chunk lifecycle (dispatch, done, retry, timeout,
    serial fallback, skip, deadline truncation) as it happens.  ``tracer``
    is an optional :class:`~repro.obs.Tracer`: a chunk that *fails* still
    gets a span — closed here by the supervisor, since a crashed or hung
    worker never returns its own trace events — so failed attempts are
    visible on the timeline, not silent gaps.

    ``workers <= 1`` runs serially in-process: retries and backoff apply,
    but a crash-mode fault kills the caller (there is no isolation to fall
    back on) and ``timeout`` cannot interrupt a hung chunk.
    """
    policy = policy or RetryPolicy()
    report = SupervisionReport()
    if workers <= 1:
        _run_serial(fn, tasks, policy, deadline, on_result, report, events, tracer)
    else:
        _run_pool(fn, tasks, workers, policy, deadline, on_result, report,
                  events, tracer)
    report.skipped.sort()
    report.pending.sort()
    return report


def _emit(events, kind: str, **fields: Any) -> None:
    """Journal one supervision event; a ``None`` journal costs a branch."""
    if events is not None:
        events.emit(kind, **fields)


def _close_failed_span(tracer, index: int, started: float, err: BaseException,
                       attempt: int) -> None:
    """Record the span of a failed chunk attempt on the supervisor's lane.

    The worker that owned the attempt may be dead (crash) or hung
    (timeout), so its own span was never closed; the supervisor knows the
    dispatch instant and the failure instant and closes the span itself.
    """
    if tracer is not None:
        tracer.add_span(
            f"chunk[{index}] failed", "search.fault", started,
            perf_counter() - started,
            chunk=index, attempt=attempt, error=repr(err),
        )


def _record(report, on_result, index, result) -> None:
    report.results[index] = result
    if on_result is not None:
        on_result(index, result)


def _run_serial(fn, tasks, policy, deadline, on_result, report,
                events=None, tracer=None) -> None:
    order = sorted(tasks)
    # Timing calls are gated on instrumentation being attached: the serial
    # loop must not consume extra perf_counter() reads when uninstrumented
    # (tests pin deadline behavior to a fake clock, and the fast path stays
    # fast).
    instrumented = events is not None or tracer is not None
    for pos, index in enumerate(order):
        if deadline is not None and perf_counter() >= deadline:
            report.truncated = True
            report.pending.extend(order[pos:])
            _emit(events, "sweep.truncated", pending=len(order) - pos)
            return
        for attempt in range(policy.max_retries + 1):
            started = perf_counter() if instrumented else 0.0
            _emit(events, "chunk.dispatch", chunk=index, attempt=attempt,
                  mode="serial")
            try:
                result = fn(tasks[index])
            except Exception as err:
                logger.warning(
                    "chunk %d failed (attempt %d/%d): %s",
                    index, attempt + 1, policy.max_retries + 1, err,
                )
                _close_failed_span(tracer, index, started, err, attempt)
                if attempt < policy.max_retries:
                    report.retries += 1
                    _emit(events, "chunk.retry", chunk=index, attempt=attempt,
                          error=repr(err))
                    time.sleep(policy.delay(attempt))
                    continue
                report.skipped.append(index)
                _emit(events, "chunk.skipped", chunk=index, error=repr(err))
                break
            else:
                _record(report, on_result, index, result)
                if events is not None:
                    events.emit("chunk.done", chunk=index,
                                seconds=perf_counter() - started)
                break


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even if its workers are hung or dead."""
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - already-dead process races
            pass


def _run_pool(fn, tasks, workers, policy, deadline, on_result, report,
              events=None, tracer=None) -> None:
    queue: list[int] = sorted(tasks)
    attempts: dict[int, int] = {}
    not_before: dict[int, float] = {}
    pool = ProcessPoolExecutor(max_workers=workers)
    inflight: dict[Any, tuple[int, float]] = {}

    def fail(index: int, err: BaseException, started: float) -> None:
        attempt = attempts.get(index, 0)
        logger.warning(
            "chunk %d failed (attempt %d/%d): %s",
            index, attempt + 1, policy.max_retries + 1, err,
        )
        _close_failed_span(tracer, index, started, err, attempt)
        kind = "chunk.timeout" if isinstance(err, TimeoutError) else "chunk.retry"
        if attempt < policy.max_retries:
            attempts[index] = attempt + 1
            report.retries += 1
            _emit(events, kind, chunk=index, attempt=attempt, error=repr(err))
            not_before[index] = perf_counter() + policy.delay(attempt)
            queue.append(index)
            return
        _emit(events, kind, chunk=index, attempt=attempt, error=repr(err),
              exhausted=True)
        if policy.serial_fallback:
            # Last resort before giving up on the range: out of the pool,
            # in the parent, where no pickling or worker state is involved.
            logger.warning("chunk %d: retries exhausted, re-running serially", index)
            report.retries += 1
            _emit(events, "chunk.serial_fallback", chunk=index)
            serial_start = perf_counter()
            try:
                _record(report, on_result, index, fn(tasks[index]))
                if events is not None:
                    events.emit("chunk.done", chunk=index,
                                mode="serial_fallback",
                                seconds=perf_counter() - serial_start)
                return
            except Exception as serial_err:
                logger.error("chunk %d failed serially too: %s", index, serial_err)
                _close_failed_span(tracer, index, serial_start, serial_err,
                                   attempt + 1)
        report.skipped.append(index)
        _emit(events, "chunk.skipped", chunk=index, error=repr(err))

    def submit(index: int) -> bool:
        nonlocal pool
        try:
            future = pool.submit(fn, tasks[index])
        except BrokenProcessPool:
            _kill_pool(pool)
            pool = ProcessPoolExecutor(max_workers=workers)
            future = pool.submit(fn, tasks[index])
        inflight[future] = (index, perf_counter())
        _emit(events, "chunk.dispatch", chunk=index,
              attempt=attempts.get(index, 0), mode="pool")
        return True

    try:
        while queue or inflight:
            now = perf_counter()
            if deadline is not None and now >= deadline and queue:
                report.truncated = True
                report.pending.extend(queue)
                _emit(events, "sweep.truncated", pending=len(queue))
                queue.clear()
            while queue and len(inflight) < workers:
                ready = next(
                    (i for i in queue if now >= not_before.get(i, 0.0)), None
                )
                if ready is None:
                    break
                queue.remove(ready)
                submit(ready)
            if not inflight:
                if queue:
                    time.sleep(TICK)  # everything eligible is backing off
                    continue
                break

            done, _ = wait(set(inflight), timeout=TICK, return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                index, started = inflight.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool as err:
                    broken = True
                    fail(index, err, started)
                except Exception as err:
                    fail(index, err, started)
                else:
                    _record(report, on_result, index, result)
                    if events is not None:
                        events.emit("chunk.done", chunk=index,
                                    seconds=perf_counter() - started)
            if broken:
                # A dead worker poisons every future in the pool; siblings are
                # charged an attempt too (the crasher is indistinguishable).
                for future, (index, started) in list(inflight.items()):
                    del inflight[future]
                    fail(index, BrokenProcessPool("sibling worker died"), started)
                _kill_pool(pool)
                pool = ProcessPoolExecutor(max_workers=workers)

            if policy.timeout is not None and inflight:
                now = perf_counter()
                hung = [
                    (future, index, started)
                    for future, (index, started) in inflight.items()
                    if now - started > policy.timeout
                ]
                if hung:
                    # No portable way to kill one pool worker: tear the pool
                    # down, charge the hung chunks an attempt, and re-queue
                    # the innocent in-flight chunks without penalty.
                    for future, index, _started in hung:
                        del inflight[future]
                    for future, (index, _started) in list(inflight.items()):
                        del inflight[future]
                        queue.insert(0, index)
                    _kill_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=workers)
                    for _future, index, started in hung:
                        fail(index, TimeoutError(
                            f"chunk exceeded {policy.timeout:.3g}s timeout"
                        ), started)
    finally:
        _kill_pool(pool)
