"""Online surrogate ranking for adaptive best-bound-first search.

The tiled engine path (:func:`repro.engine.batch.batch_adaptive`) visits
memory buckets best-analytic-bound-first, so its pruning threshold tightens
as early as the *bound* allows.  This module adds a second, learned signal:
an incremental least-squares regressor over fast-path artifact features —
flops, bytes and comm volumes that the profile/memory stages already
materialized as columns — predicting each bucket's achievable rate.  A
trained surrogate picks the tile-0 seed sample (the buckets evaluated
first), which pre-tightens the threshold before bound order takes over,
replacing the stride-based ``prune_seed`` pre-pass on the columnar path.

Soundness: the surrogate is a **speed-only** hint.  It influences nothing
but the order in which buckets are visited; the engine's strict threshold
(:func:`repro.engine.bounds.strict_prune_threshold_for_rate`) alone decides
what is skipped, so a badly trained — or adversarially wrong — surrogate
can only cost wall-clock, never change the top-k.

State is a pair of accumulated normal equations (``X'X``, ``X'y``), trained
incrementally from each completed tile and persisted through the service
result cache keyed by :func:`repro.cachekey.run_key` with
``kind="surrogate"`` — the same problem searched twice seeds its second run
from the first run's observations.  A process-local registry fronts the
cache so serial re-searches benefit even without a disk-backed store.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from ..cachekey import run_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.batch import EvalBatch
    from ..service.cache import ResultCache

__all__ = [
    "MIN_OBSERVATIONS",
    "N_FEATURES",
    "RateSurrogate",
    "configure_surrogate_store",
    "load_surrogate",
    "store_surrogate",
    "surrogate_key",
]

# Feature vector layout (per memory bucket); see bucket_features().
N_FEATURES = 10

# Ridge term keeping the normal equations solvable while the observation
# matrix is still rank-deficient (early tiles explore few buckets).
_RIDGE = 1e-6

# Below this many observed survivors the ranking is noise — callers fall
# back to pure bound order.
MIN_OBSERVATIONS = 64


class RateSurrogate:
    """Incremental ridge regression from bucket features to log rate.

    Keeps only the accumulated normal equations, so ``observe`` is O(F²)
    per row regardless of history length and the whole state serializes to
    a few hundred floats.
    """

    __slots__ = ("xtx", "xty", "count")

    def __init__(
        self,
        xtx: np.ndarray | None = None,
        xty: np.ndarray | None = None,
        count: int = 0,
    ):
        self.xtx = (
            np.zeros((N_FEATURES, N_FEATURES), dtype=np.float64)
            if xtx is None
            else np.asarray(xtx, dtype=np.float64)
        )
        self.xty = (
            np.zeros(N_FEATURES, dtype=np.float64)
            if xty is None
            else np.asarray(xty, dtype=np.float64)
        )
        self.count = int(count)

    # -- features ------------------------------------------------------------

    @staticmethod
    def bucket_features(eb: "EvalBatch") -> np.ndarray:
        """``(n_buckets, N_FEATURES)`` float features from fast-path columns.

        Everything here was already materialized by the profile/memory
        stages; no comm kernel or assembly work runs.  Log transforms keep
        the linear model sane across the many-orders-of-magnitude spread
        of flops/bytes.
        """
        b = eb.b

        def gp(field: str) -> np.ndarray:
            return eb.gprof[field][b["group"]]

        Mb = (b["M"] * b["bp"]).astype(np.float64)
        tr = (b["training"] != 0).astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            feats = np.stack(
                [
                    np.ones(eb.n_buckets, dtype=np.float64),
                    np.log1p(Mb * gp("flops_fw")),
                    np.log1p(tr * Mb * gp("flops_bw")),
                    np.log1p(gp("weight_bytes")),
                    np.log1p(gp("tp_fw_comm") + gp("tp_bw_comm")),
                    np.log1p(tr * b["opt_bytes"].astype(np.float64)),
                    np.log1p(b["t"].astype(np.float64)),
                    np.log1p(b["p"].astype(np.float64)),
                    np.log1p(b["d"].astype(np.float64)),
                    np.log1p(b["M"].astype(np.float64)),
                ],
                axis=1,
            )
        return np.nan_to_num(feats, nan=0.0, posinf=0.0, neginf=0.0)

    @staticmethod
    def _features_cached(eb: "EvalBatch") -> np.ndarray:
        """Per-batch feature matrix, computed once and stashed on ``eb``.

        ``observe_tile`` fires once per tile; recomputing the (n_buckets,
        F) matrix each time would dominate the surrogate's cost.  The
        matrix depends only on post-memory-stage state, which never
        changes across tiles.
        """
        feats = getattr(eb, "surrogate_feats", None)
        if feats is None:
            feats = RateSurrogate.bucket_features(eb)
            eb.surrogate_feats = feats
        return feats

    # -- training ------------------------------------------------------------

    def observe(self, feats: np.ndarray, rates: np.ndarray) -> None:
        """Fold observed ``(features, rate)`` rows into the normal equations.

        ``feats`` is ``(n, N_FEATURES)``; ``rates`` are the survivors'
        sample rates (non-positive rates are dropped — they carry no
        ranking signal).
        """
        rates = np.asarray(rates, dtype=np.float64)
        keep = np.isfinite(rates) & (rates > 0.0)
        if not np.any(keep):
            return
        X = np.asarray(feats, dtype=np.float64)[keep]
        y = np.log1p(rates[keep])
        self.xtx += X.T @ X
        self.xty += X.T @ y
        self.count += int(X.shape[0])

    def observe_tile(
        self, eb: "EvalBatch", bid_s: np.ndarray, rate_s: np.ndarray
    ) -> None:
        """Train from one completed tile's survivor columns."""
        if bid_s.shape[0] == 0:
            return
        self.observe(self._features_cached(eb)[bid_s], rate_s)

    # -- ranking -------------------------------------------------------------

    @property
    def trained(self) -> bool:
        return self.count >= MIN_OBSERVATIONS

    def weights(self) -> np.ndarray | None:
        """Solve the ridge system; ``None`` when unusable."""
        try:
            w = np.linalg.solve(
                self.xtx + _RIDGE * np.eye(N_FEATURES), self.xty
            )
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate state
            return None
        if not np.all(np.isfinite(w)):  # pragma: no cover - degenerate state
            return None
        return w

    def seed_buckets(self, eb: "EvalBatch", limit: int) -> np.ndarray | None:
        """Predicted-best feasible buckets, best first; ``None`` if untrained.

        The caller puts these in tile 0.  Mis-ranking costs speed only:
        the strict threshold still decides every skip.
        """
        if limit <= 0 or not self.trained:
            return None
        w = self.weights()
        if w is None:
            return None
        fb = np.flatnonzero(eb.b["ok"])
        if fb.size == 0:
            return None
        scores = self._features_cached(eb) @ w
        order = fb[np.argsort(-scores[fb], kind="stable")]
        return order[:limit]

    # -- serialization -------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        return {
            "version": 1,
            "xtx": self.xtx.tolist(),
            "xty": self.xty.tolist(),
            "count": self.count,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "RateSurrogate | None":
        if not isinstance(payload, dict) or payload.get("version") != 1:
            return None
        try:
            xtx = np.asarray(payload["xtx"], dtype=np.float64)
            xty = np.asarray(payload["xty"], dtype=np.float64)
            count = int(payload["count"])
        except (KeyError, TypeError, ValueError):
            return None
        if xtx.shape != (N_FEATURES, N_FEATURES) or xty.shape != (N_FEATURES,):
            return None
        return cls(xtx=xtx, xty=xty, count=count)


# -- persistence --------------------------------------------------------------
#
# A process-local LRU fronts an optional ResultCache: load checks memory
# first, then the configured store; store writes through to both.  The
# registry is deliberately tiny — surrogate state is a speed hint, not a
# result.

_LOCK = threading.Lock()
_MEMORY: dict[str, Any] = {}
_MEMORY_MAX = 64
_STORE: "ResultCache | None" = None


def configure_surrogate_store(cache: "ResultCache | None") -> None:
    """Attach (or detach, with ``None``) a result cache for persistence."""
    global _STORE
    with _LOCK:
        _STORE = cache


def surrogate_key(llm, system, batch: int, options) -> str:
    """Content key identifying one search problem's surrogate state."""
    return run_key(llm, system, batch, options, kind="surrogate")


def load_surrogate(key: str) -> RateSurrogate:
    """The persisted surrogate for ``key``, or a fresh empty one."""
    with _LOCK:
        payload = _MEMORY.get(key)
        store = _STORE
    if payload is None and store is not None:
        payload = store.get(key)
    sur = RateSurrogate.from_payload(payload)
    return sur if sur is not None else RateSurrogate()


def store_surrogate(key: str, sur: RateSurrogate) -> None:
    """Write-through persist; silently skips an unwritable disk store."""
    payload = sur.to_payload()
    with _LOCK:
        _MEMORY[key] = payload
        while len(_MEMORY) > _MEMORY_MAX:
            _MEMORY.pop(next(iter(_MEMORY)))
        store = _STORE
    if store is not None:
        try:
            store.put(key, payload)
        except OSError:  # pragma: no cover - disk store unavailable
            pass


def seed_sample_size(prune_seed: int, top_k: int) -> int:
    """Tile-0 seed size from the ``--prune-seed`` knob.

    On the adaptive columnar path ``prune_seed`` no longer means "stride
    this many scalar pre-evaluations"; it sizes the surrogate-picked seed
    sample.  ``0`` keeps the default (enough buckets to fill a tile);
    negative disables seeding.
    """
    if prune_seed < 0:
        return 0
    if prune_seed == 0:
        return max(64, top_k)
    return max(int(prune_seed), top_k)


def _reset_for_tests() -> None:
    """Clear process-local state (test isolation hook)."""
    global _STORE
    with _LOCK:
        _MEMORY.clear()
        _STORE = None
