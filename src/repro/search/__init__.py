"""Search engines: execution-space, system-size and budgeted system search."""

from .cost import (
    BudgetEntry,
    DDR5_PRICES,
    H100_BASE_PRICE,
    HBM3_PRICES,
    SystemDesign,
    all_designs,
    budget_table,
    evaluate_design,
)
from .execution_search import (
    SearchOptions,
    SearchResult,
    auto_workers,
    candidate_strategies,
    search,
)
from .refine import RefineResult, hill_climb, multi_start, neighbours
from .tco import PowerModel, TCOReport, tco_report
from .system_search import (
    ScalingCurve,
    ScalingPoint,
    best_at_size,
    offload_speedups,
    scaling_sweep,
)

__all__ = [
    "BudgetEntry",
    "DDR5_PRICES",
    "H100_BASE_PRICE",
    "HBM3_PRICES",
    "RefineResult",
    "ScalingCurve",
    "ScalingPoint",
    "SearchOptions",
    "SearchResult",
    "PowerModel",
    "SystemDesign",
    "TCOReport",
    "all_designs",
    "auto_workers",
    "best_at_size",
    "budget_table",
    "candidate_strategies",
    "evaluate_design",
    "hill_climb",
    "multi_start",
    "neighbours",
    "offload_speedups",
    "scaling_sweep",
    "search",
    "tco_report",
]
