"""Search engines: execution-space, system-size and budgeted system search.

Long-running sweeps are fault-tolerant: :mod:`repro.search.checkpoint`
journals completed chunks for ``resume``, and :mod:`repro.search.faults`
supervises worker dispatch (retry with backoff, per-chunk timeout, skip
ranges, wall-clock deadlines).  See ``docs/RELIABILITY.md``.
"""

from .checkpoint import CheckpointJournal, CheckpointMismatch, run_key
from .cost import (
    BudgetEntry,
    DDR5_PRICES,
    H100_BASE_PRICE,
    HBM3_PRICES,
    SystemDesign,
    all_designs,
    budget_table,
    evaluate_design,
)
from .execution_search import (
    SearchOptions,
    SearchResult,
    auto_workers,
    candidate_strategies,
    search,
)
from .faults import (
    FaultInjected,
    FaultInjector,
    RetryPolicy,
    SupervisionReport,
    run_supervised,
)
from .refine import RefineResult, hill_climb, multi_start, neighbours
from .tco import PowerModel, TCOReport, tco_report
from .system_search import (
    ScalingCurve,
    ScalingPoint,
    best_at_size,
    offload_speedups,
    scaling_sweep,
)

__all__ = [
    "BudgetEntry",
    "CheckpointJournal",
    "CheckpointMismatch",
    "DDR5_PRICES",
    "FaultInjected",
    "FaultInjector",
    "H100_BASE_PRICE",
    "HBM3_PRICES",
    "RefineResult",
    "RetryPolicy",
    "SupervisionReport",
    "ScalingCurve",
    "ScalingPoint",
    "SearchOptions",
    "SearchResult",
    "PowerModel",
    "SystemDesign",
    "TCOReport",
    "all_designs",
    "auto_workers",
    "best_at_size",
    "budget_table",
    "candidate_strategies",
    "evaluate_design",
    "hill_climb",
    "multi_start",
    "neighbours",
    "offload_speedups",
    "run_key",
    "run_supervised",
    "scaling_sweep",
    "search",
    "tco_report",
]
