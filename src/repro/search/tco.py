"""Total-cost-of-ownership model (paper §6).

"The decision to use offloading or not should come after analyzing total cost
of ownership (TCO), as even small efficiency gains can accumulate during long
system use time."  This module combines the §7 capital-cost model with an
operating-cost model (power draw, PUE, electricity price, lifetime) so design
comparisons can be made on dollars-per-token rather than raw throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cost import BudgetEntry, SystemDesign

HOURS_PER_YEAR = 8766.0

# Public board-power figures: 400 W (A100 SXM), 700 W (H100 SXM).
DEFAULT_GPU_WATTS = 700.0
# DDR5 DIMM power per GiB (about 0.4 W/GiB including the controller).
DDR_WATTS_PER_GIB = 0.4
# Per-GPU share of fabric + host infrastructure.
INFRA_WATTS = 300.0


@dataclass(frozen=True)
class PowerModel:
    """Electrical model of one deployed GPU with its memory options."""

    gpu_watts: float = DEFAULT_GPU_WATTS
    ddr_watts_per_gib: float = DDR_WATTS_PER_GIB
    infra_watts: float = INFRA_WATTS
    pue: float = 1.3  # datacenter power-usage effectiveness
    dollars_per_kwh: float = 0.10
    utilization: float = 0.85  # average draw relative to peak while training

    def __post_init__(self) -> None:
        if self.gpu_watts <= 0 or self.infra_watts < 0:
            raise ValueError("power figures must be positive")
        if self.pue < 1.0:
            raise ValueError("PUE cannot be below 1.0")
        if not 0 < self.utilization <= 1:
            raise ValueError("utilization must be in (0, 1]")
        if self.dollars_per_kwh < 0:
            raise ValueError("electricity price must be non-negative")

    def watts_per_gpu(self, design: SystemDesign) -> float:
        """Wall power per deployed GPU, including its DDR5 and infra share."""
        board = self.gpu_watts + design.ddr_gib * self.ddr_watts_per_gib
        return (board * self.utilization + self.infra_watts) * self.pue

    def annual_energy_cost(self, design: SystemDesign, num_gpus: int) -> float:
        """Dollars of electricity per year for ``num_gpus``."""
        if num_gpus < 0:
            raise ValueError("num_gpus must be non-negative")
        kw = self.watts_per_gpu(design) * num_gpus / 1000.0
        return kw * HOURS_PER_YEAR * self.dollars_per_kwh


@dataclass(frozen=True)
class TCOReport:
    """Lifetime cost and cost-efficiency of one evaluated design."""

    design: SystemDesign
    llm_name: str
    num_gpus: int
    sample_rate: float
    capex: float
    annual_opex: float
    lifetime_years: float

    @property
    def total_cost(self) -> float:
        return self.capex + self.annual_opex * self.lifetime_years

    @property
    def samples_per_dollar(self) -> float:
        """Lifetime training samples per total dollar of ownership."""
        if self.total_cost <= 0:
            return 0.0
        lifetime_seconds = self.lifetime_years * HOURS_PER_YEAR * 3600.0
        return self.sample_rate * lifetime_seconds / self.total_cost

    @property
    def dollars_per_million_samples(self) -> float:
        sd = self.samples_per_dollar
        return 1e6 / sd if sd > 0 else float("inf")


def tco_report(
    entry: BudgetEntry,
    *,
    power: PowerModel | None = None,
    lifetime_years: float = 4.0,
) -> TCOReport:
    """Lifetime TCO for one budget-search result cell.

    Args:
        entry: a :func:`repro.search.evaluate_design` result.
        power: electrical model; defaults to H100-class figures.
        lifetime_years: amortization period.
    """
    if lifetime_years <= 0:
        raise ValueError("lifetime_years must be positive")
    pm = power or PowerModel()
    return TCOReport(
        design=entry.design,
        llm_name=entry.llm_name,
        num_gpus=entry.used_gpus,
        sample_rate=entry.sample_rate,
        capex=entry.cost,
        annual_opex=pm.annual_energy_cost(entry.design, entry.used_gpus),
        lifetime_years=lifetime_years,
    )
