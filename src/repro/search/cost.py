"""System cost model and budgeted optimal-system search (paper §7, Table 3).

The paper prices a theoretical H100-based design: $20k per GPU including all
infrastructure but no memory, plus HBM3 options (20/40/80/120 GiB, all at
3 TB/s) and optional secondary DDR5 (256/512/1024 GiB at 100 GB/s per
direction).  Under a fixed budget, each of the 16 memory designs affords a
different GPU count; the search sweeps system sizes per design and LLM to
maximize performance and performance-per-dollar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..hardware.system import System, ddr5_offload, h100_system
from ..llm.config import LLMConfig
from .execution_search import SearchOptions
from .system_search import ScalingPoint, best_at_size

H100_BASE_PRICE = 20_000.0

HBM3_PRICES: dict[int, float] = {20: 2_250.0, 40: 5_000.0, 80: 10_000.0, 120: 20_000.0}
DDR5_PRICES: dict[int, float] = {0: 0.0, 256: 2_500.0, 512: 10_000.0, 1024: 20_000.0}


@dataclass(frozen=True)
class SystemDesign:
    """One H100 memory configuration from the Table-3 grid."""

    hbm_gib: int
    ddr_gib: int

    def __post_init__(self) -> None:
        if self.hbm_gib not in HBM3_PRICES:
            raise ValueError(f"unsupported HBM3 option {self.hbm_gib} GiB")
        if self.ddr_gib not in DDR5_PRICES:
            raise ValueError(f"unsupported DDR5 option {self.ddr_gib} GiB")

    @property
    def price_per_gpu(self) -> float:
        return H100_BASE_PRICE + HBM3_PRICES[self.hbm_gib] + DDR5_PRICES[self.ddr_gib]

    def max_gpus(self, budget: float, multiple: int = 8) -> int:
        """Largest affordable GPU count, rounded down to ``multiple``."""
        if budget < self.price_per_gpu:
            return 0
        n = int(budget // self.price_per_gpu)
        return n - n % multiple

    def build(self, num_procs: int) -> System:
        offload = ddr5_offload(self.ddr_gib) if self.ddr_gib else None
        return h100_system(num_procs, hbm_gib=self.hbm_gib, offload=offload)

    def label(self) -> str:
        return f"{self.hbm_gib}G/{self.ddr_gib}G"


def all_designs() -> list[SystemDesign]:
    """The 16 HBM3 x DDR5 permutations of Table 3."""
    return [
        SystemDesign(hbm_gib=h, ddr_gib=d)
        for d in sorted(DDR5_PRICES)
        for h in sorted(HBM3_PRICES)
    ]


@dataclass(frozen=True)
class BudgetEntry:
    """One Table-3 row-cell: a design evaluated for one LLM."""

    design: SystemDesign
    llm_name: str
    max_gpus: int
    used_gpus: int
    sample_rate: float
    mfu: float
    cost: float  # of the GPUs actually used

    @property
    def perf_per_million(self) -> float:
        """Sample rate per million dollars of deployed hardware."""
        if self.cost <= 0:
            return 0.0
        return self.sample_rate / (self.cost / 1e6)


def evaluate_design(
    design: SystemDesign,
    llm: LLMConfig,
    budget: float,
    batch: int,
    *,
    options: SearchOptions | None = None,
    size_candidates: Sequence[int] | None = None,
    workers: int | None = 0,
) -> BudgetEntry:
    """Best performance a design achieves for one LLM under the budget.

    ``size_candidates`` restricts the sizes tried (the paper sweeps every
    multiple of 8; benches use a coarser grid for runtime).  Sizes above the
    affordable maximum are skipped.
    """
    max_gpus = design.max_gpus(budget)
    if options is None:
        options = (
            SearchOptions.all_with_offload() if design.ddr_gib else SearchOptions()
        )
    if size_candidates is None:
        step = max(8, (max_gpus // 16) - (max_gpus // 16) % 8)
        size_candidates = range(step, max_gpus + 1, step)
    best: ScalingPoint | None = None
    for n in size_candidates:
        if n < 1 or n > max_gpus:
            continue
        point = best_at_size(llm, design.build, n, batch, options, workers=workers)
        if point.feasible and (best is None or point.sample_rate > best.sample_rate):
            best = point
    if best is None:
        return BudgetEntry(
            design=design,
            llm_name=llm.name,
            max_gpus=max_gpus,
            used_gpus=0,
            sample_rate=0.0,
            mfu=0.0,
            cost=0.0,
        )
    return BudgetEntry(
        design=design,
        llm_name=llm.name,
        max_gpus=max_gpus,
        used_gpus=best.num_procs,
        sample_rate=best.sample_rate,
        mfu=best.mfu,
        cost=best.num_procs * design.price_per_gpu,
    )


def budget_table(
    llms: Sequence[LLMConfig],
    budget: float = 125e6,
    batch: int = 4096,
    *,
    designs: Sequence[SystemDesign] | None = None,
    options: SearchOptions | None = None,
    size_candidates: Sequence[int] | None = None,
    workers: int | None = 0,
) -> list[list[BudgetEntry]]:
    """Compute the full Table-3 grid: one row per design, one cell per LLM."""
    rows = []
    for design in designs or all_designs():
        rows.append(
            [
                evaluate_design(
                    design,
                    llm,
                    budget,
                    batch,
                    options=options,
                    size_candidates=size_candidates,
                    workers=workers,
                )
                for llm in llms
            ]
        )
    return rows
