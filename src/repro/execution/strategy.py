"""Execution strategy: how an LLM is mapped onto a system (paper §2.3).

An :class:`ExecutionStrategy` captures the (t, p, d) parallelization split and
every software optimization of Table 1: microbatching, 1F1B and interleaved
pipeline scheduling, PP RS+AG, sequence parallelism and its TP redo, TP
communication overlap, DP overlap, optimizer sharding, activation recompute,
fused layers, and the three tensor-offload switches.

Feasibility constraints (§2.3's "range" column, plus shape-divisibility rules)
are enforced by :meth:`ExecutionStrategy.validate`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator

from ..hardware.system import System
from ..llm.config import LLMConfig

RECOMPUTE_MODES = ("none", "attn_only", "full")
TP_OVERLAP_MODES = ("none", "pipe", "ring")


class StrategyError(ValueError):
    """An execution strategy that violates a feasibility constraint."""


@dataclass(frozen=True)
class ExecutionStrategy:
    """A complete software configuration for training (or inference).

    Attributes:
        tensor_par: TP degree ``t`` (1..attn_heads).
        pipeline_par: PP degree ``p`` (1..blocks).
        data_par: DP degree ``d`` (1..batch).
        batch: global batch size in samples.
        microbatch: microbatch size ``m`` (1..batch/d).
        pp_interleaving: interleaved-schedule chunk count ``v``
            (1..blocks/p); 1 means no interleaving.
        pp_1f1b: use the 1F1B schedule (limits in-flight microbatches to
            ``p`` instead of the full microbatch count).
        pp_rs_ag: scatter pipeline point-to-point tensors across the TP
            group (reduce-scatter + all-gather around the p2p, [20]).
        seq_par: Megatron sequence parallelism [20].
        tp_redo_sp: re-gather sharded stashes in the backward pass (requires
            ``seq_par``).
        tp_mode: ``"1d"`` (Megatron column/row split) or ``"2d"`` (Optimus-
            style grid distribution; needs a square ``tensor_par`` and no
            ``seq_par`` — see paper §6's discussion of multi-dimensional
            GEMM distribution).
        tp_overlap: hide TP collectives behind GEMMs: ``"none"``, ``"pipe"``
            (pipelined chunks) or ``"ring"`` (fine-grained ring overlap).
        dp_overlap: overlap DP gradient communication with the backward pass.
        optimizer_sharding: ZeRO-1 optimizer-state sharding across DP.
        recompute: activation recomputation mode.
        fused_activations: fuse element-wise layers into producer GEMMs.
        weight_offload / activation_offload / optimizer_offload: stash the
            corresponding tensors in the tier-2 memory (§6).
        training: True for training, False for inference (forward only).
    """

    tensor_par: int
    pipeline_par: int
    data_par: int
    batch: int
    microbatch: int = 1
    pp_interleaving: int = 1
    pp_1f1b: bool = True
    pp_rs_ag: bool = False
    seq_par: bool = False
    tp_redo_sp: bool = False
    tp_mode: str = "1d"
    tp_overlap: str = "none"
    dp_overlap: bool = False
    optimizer_sharding: bool = False
    recompute: str = "none"
    fused_activations: bool = False
    weight_offload: bool = False
    activation_offload: bool = False
    optimizer_offload: bool = False
    training: bool = True

    # -- derived quantities ---------------------------------------------------

    @property
    def num_procs(self) -> int:
        return self.tensor_par * self.pipeline_par * self.data_par

    @property
    def local_batch(self) -> int:
        """Samples processed by one data-parallel replica per batch."""
        return self.batch // self.data_par

    @property
    def num_microbatches(self) -> int:
        """Microbatches per pipeline flush (``batch / (d * m)``)."""
        return self.local_batch // self.microbatch

    @property
    def offloading(self) -> bool:
        return self.weight_offload or self.activation_offload or self.optimizer_offload

    def blocks_per_stage(self, num_blocks: int) -> int:
        """Transformer blocks held by the busiest pipeline stage."""
        return math.ceil(num_blocks / self.pipeline_par)

    def blocks_per_chunk(self, num_blocks: int) -> int:
        """Blocks per interleaving chunk on the busiest stage."""
        return math.ceil(self.blocks_per_stage(num_blocks) / self.pp_interleaving)

    # -- validation -----------------------------------------------------------

    def validate(self, llm: LLMConfig, system: System) -> None:
        """Raise :class:`StrategyError` on any infeasible combination."""
        t, p, d = self.tensor_par, self.pipeline_par, self.data_par
        if min(t, p, d) < 1:
            raise StrategyError("t, p, d must all be >= 1")
        if self.num_procs != system.num_procs:
            raise StrategyError(
                f"t*p*d = {self.num_procs} != system size {system.num_procs}"
            )
        if t > llm.attn_heads:
            raise StrategyError(f"t={t} exceeds attn_heads={llm.attn_heads}")
        if llm.attn_heads % t or llm.hidden % t or llm.feedforward % t:
            raise StrategyError(f"t={t} does not evenly divide the model shape")
        if p > llm.num_blocks:
            raise StrategyError(f"p={p} exceeds num_blocks={llm.num_blocks}")
        if d > self.batch:
            raise StrategyError(f"d={d} exceeds batch={self.batch}")
        if self.batch % d:
            raise StrategyError(f"d={d} does not divide batch={self.batch}")
        if self.microbatch < 1 or self.local_batch % self.microbatch:
            raise StrategyError(
                f"microbatch={self.microbatch} does not divide local batch "
                f"{self.local_batch}"
            )
        v = self.pp_interleaving
        if v < 1 or v > self.blocks_per_stage(llm.num_blocks):
            raise StrategyError(
                f"interleaving v={v} outside 1..blocks/p="
                f"{self.blocks_per_stage(llm.num_blocks)}"
            )
        if v > 1 and p == 1:
            raise StrategyError("interleaving requires pipeline parallelism (p > 1)")
        if self.recompute not in RECOMPUTE_MODES:
            raise StrategyError(f"unknown recompute mode {self.recompute!r}")
        if self.tp_overlap not in TP_OVERLAP_MODES:
            raise StrategyError(f"unknown tp_overlap mode {self.tp_overlap!r}")
        if self.tp_mode not in ("1d", "2d"):
            raise StrategyError(f"unknown tp_mode {self.tp_mode!r}")
        if self.tp_mode == "2d":
            if self.seq_par:
                raise StrategyError("tp_mode='2d' cannot combine with seq_par")
            r = math.isqrt(t)
            if t > 1 and r * r != t:
                raise StrategyError(f"tp_mode='2d' needs a square t, got {t}")
        if self.seq_par and llm.seq_size % t:
            raise StrategyError(f"seq_par requires t={t} to divide seq={llm.seq_size}")
        if self.tp_redo_sp and not self.seq_par:
            raise StrategyError("tp_redo_sp requires seq_par")
        if self.pp_rs_ag and not self.seq_par:
            raise StrategyError("pp_rs_ag operates on sequence-sharded tensors")
        if self.offloading and not system.has_offload:
            raise StrategyError("offloading requires a tier-2 memory (system.mem2)")
        if not self.training and self.recompute != "none":
            raise StrategyError("inference never recomputes activations")

    def is_valid(self, llm: LLMConfig, system: System) -> bool:
        try:
            self.validate(llm, system)
        except StrategyError:
            return False
        return True

    # -- convenience ----------------------------------------------------------

    def evolve(self, **kwargs) -> "ExecutionStrategy":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def short_name(self) -> str:
        return (
            f"t{self.tensor_par}p{self.pipeline_par}d{self.data_par}"
            f"m{self.microbatch}v{self.pp_interleaving}"
        )

    def to_dict(self) -> dict:
        return {
            "tensor_par": self.tensor_par,
            "pipeline_par": self.pipeline_par,
            "data_par": self.data_par,
            "batch": self.batch,
            "microbatch": self.microbatch,
            "pp_interleaving": self.pp_interleaving,
            "pp_1f1b": self.pp_1f1b,
            "pp_rs_ag": self.pp_rs_ag,
            "seq_par": self.seq_par,
            "tp_redo_sp": self.tp_redo_sp,
            "tp_mode": self.tp_mode,
            "tp_overlap": self.tp_overlap,
            "dp_overlap": self.dp_overlap,
            "optimizer_sharding": self.optimizer_sharding,
            "recompute": self.recompute,
            "fused_activations": self.fused_activations,
            "weight_offload": self.weight_offload,
            "activation_offload": self.activation_offload,
            "optimizer_offload": self.optimizer_offload,
            "training": self.training,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionStrategy":
        return cls(**data)


def factorizations(n: int) -> Iterator[tuple[int, int, int]]:
    """All ordered triples (t, p, d) with ``t * p * d == n``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    for t in range(1, n + 1):
        if n % t:
            continue
        rest = n // t
        for p in range(1, rest + 1):
            if rest % p:
                continue
            yield t, p, rest // p


def divisors(n: int) -> list[int]:
    """Sorted positive divisors of ``n``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    small, large = [], []
    i = 1
    while i * i <= n:
        if n % i == 0:
            small.append(i)
            if i != n // i:
                large.append(n // i)
        i += 1
    return small + large[::-1]
