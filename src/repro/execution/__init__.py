"""Execution strategies: parallelization splits and software optimizations."""

from .presets import (
    PRESETS,
    calculon_software,
    get_strategy_preset,
    megatron_baseline,
    megatron_seq_par,
    zero_offload,
)
from .strategy import (
    RECOMPUTE_MODES,
    TP_OVERLAP_MODES,
    ExecutionStrategy,
    StrategyError,
    divisors,
    factorizations,
)

__all__ = [
    "ExecutionStrategy",
    "PRESETS",
    "calculon_software",
    "get_strategy_preset",
    "megatron_baseline",
    "megatron_seq_par",
    "zero_offload",
    "RECOMPUTE_MODES",
    "StrategyError",
    "TP_OVERLAP_MODES",
    "divisors",
    "factorizations",
]
