"""Named execution-strategy presets.

The paper's studies compare recurring strategy families; these constructors
produce them for any (t, p, d, batch) shape, so examples and user code can
say what they mean instead of listing a dozen flags.
"""

from __future__ import annotations

from .strategy import ExecutionStrategy


def megatron_baseline(
    t: int, p: int, d: int, batch: int, *, microbatch: int = 1,
    interleaving: int = 1,
) -> ExecutionStrategy:
    """The "original optimizations" regime [29]: full recompute, 1F1B,
    microbatching — Fig. 5(a)'s software set."""
    return ExecutionStrategy(
        tensor_par=t,
        pipeline_par=p,
        data_par=d,
        batch=batch,
        microbatch=microbatch,
        pp_interleaving=interleaving,
        recompute="full",
    )


def megatron_seq_par(
    t: int, p: int, d: int, batch: int, *, microbatch: int = 1,
    interleaving: int = 1,
) -> ExecutionStrategy:
    """Sequence parallelism + selective recompute [20] — Fig. 5(b), the
    "Seq+Sel" validation rows of Table 2."""
    return ExecutionStrategy(
        tensor_par=t,
        pipeline_par=p,
        data_par=d,
        batch=batch,
        microbatch=microbatch,
        pp_interleaving=interleaving,
        recompute="attn_only",
        seq_par=True,
        tp_redo_sp=True,
        pp_rs_ag=True,
    )


def calculon_software(
    t: int, p: int, d: int, batch: int, *, microbatch: int = 2,
    interleaving: int = 8,
) -> ExecutionStrategy:
    """The search-discovered software-only optimum of Table 4: selective
    recompute + SP, TP/DP overlap, optimizer sharding, fused activations."""
    return ExecutionStrategy(
        tensor_par=t,
        pipeline_par=p,
        data_par=d,
        batch=batch,
        microbatch=microbatch,
        pp_interleaving=interleaving if p > 1 else 1,
        recompute="attn_only",
        seq_par=True,
        tp_overlap="ring",
        dp_overlap=True,
        optimizer_sharding=True,
        fused_activations=True,
    )


def zero_offload(
    t: int, p: int, d: int, batch: int, *, microbatch: int = 4,
) -> ExecutionStrategy:
    """The Table-4 offload strategy: everything stashed in tier-2, no
    recompute, DP-heavy (requires a system with ``mem2``)."""
    return ExecutionStrategy(
        tensor_par=t,
        pipeline_par=p,
        data_par=d,
        batch=batch,
        microbatch=microbatch,
        recompute="none",
        seq_par=True,
        tp_overlap="ring",
        dp_overlap=True,
        optimizer_sharding=True,
        fused_activations=True,
        weight_offload=True,
        activation_offload=True,
        optimizer_offload=True,
    )


PRESETS = {
    "megatron-baseline": megatron_baseline,
    "megatron-seq-par": megatron_seq_par,
    "calculon-software": calculon_software,
    "zero-offload": zero_offload,
}


def get_strategy_preset(name: str):
    """Look up a strategy-family constructor by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy preset {name!r}; known: {sorted(PRESETS)}"
        ) from None
