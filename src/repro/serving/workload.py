"""Serving traffic mixes and percentile SLO targets.

A serving co-design question is posed against a *workload* — the offered
traffic (arrival rate plus prompt/output length distributions) — and an
*SLO* — the percentile latency targets a deployment must meet.  Both are
small frozen dataclasses with deterministic JSON round-trips
(``to_dict``/``from_dict``): they ride into
:func:`repro.cachekey.run_key` extras so serving-search checkpoints and
caches can never collide with training-search keys for the same
(LLM, system), and into checkpoint journal headers so a resumed
serve-search provably answers the same question.

Sampling is seeded and consumption-ordered (arrivals, then prompts, then
outputs from one :class:`numpy.random.Generator`), so two runs of the same
workload see bit-identical traffic — the foundation of the serving
simulator's determinism guarantee (``docs/SERVING.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

__all__ = ["LengthDist", "SLOSpec", "ServeWorkload"]


@dataclass(frozen=True)
class LengthDist:
    """A token-length distribution: fixed, or uniform over ``[low, high]``."""

    kind: str = "fixed"
    value: int = 2048  # the fixed length
    low: int = 1  # uniform bounds, inclusive
    high: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("fixed", "uniform"):
            raise ValueError(f"unknown length distribution kind {self.kind!r}")
        if self.kind == "fixed" and self.value < 1:
            raise ValueError("fixed length must be >= 1")
        if self.kind == "uniform" and not 1 <= self.low <= self.high:
            raise ValueError("uniform bounds need 1 <= low <= high")

    @classmethod
    def fixed(cls, value: int) -> "LengthDist":
        return cls(kind="fixed", value=value)

    @classmethod
    def uniform(cls, low: int, high: int) -> "LengthDist":
        return cls(kind="uniform", low=low, high=high)

    @classmethod
    def parse(cls, spec: str) -> "LengthDist":
        """``"2048"`` -> fixed(2048); ``"128:4096"`` -> uniform(128, 4096)."""
        text = spec.strip()
        if ":" in text:
            lo, hi = text.split(":", 1)
            return cls.uniform(int(lo), int(hi))
        return cls.fixed(int(text))

    @property
    def min_len(self) -> int:
        return self.value if self.kind == "fixed" else self.low

    @property
    def max_len(self) -> int:
        return self.value if self.kind == "fixed" else self.high

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` lengths as an int64 array (deterministic given ``rng``)."""
        if self.kind == "fixed":
            return np.full(n, self.value, dtype=np.int64)
        return rng.integers(self.low, self.high + 1, size=n, dtype=np.int64)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value,
                "low": self.low, "high": self.high}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LengthDist":
        return cls(
            kind=str(data.get("kind", "fixed")),
            value=int(data.get("value", 2048)),
            low=int(data.get("low", 1)),
            high=int(data.get("high", 1)),
        )

    def short_name(self) -> str:
        if self.kind == "fixed":
            return str(self.value)
        return f"{self.low}:{self.high}"


@dataclass(frozen=True)
class ServeWorkload:
    """The offered serving traffic: a rate and length distributions.

    ``arrival_rate`` is requests per second (Poisson); ``prompt`` and
    ``output`` are token-length distributions; ``num_requests`` bounds the
    simulated horizon; ``seed`` fixes the sampled traffic.
    """

    arrival_rate: float
    prompt: LengthDist = LengthDist.fixed(2048)
    output: LengthDist = LengthDist.fixed(256)
    num_requests: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")

    def sample(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw the traffic: ``(arrival_times, prompt_lens, output_lens)``.

        One generator, fixed consumption order — the same workload always
        yields the same arrays, and two workloads differing only in
        ``arrival_rate`` see the *same* interarrival draws scaled by the
        rate (which is what makes latency-vs-rate comparisons, and the
        monotonicity property tests, meaningful).
        """
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(1.0 / self.arrival_rate, self.num_requests)
        arrivals = np.cumsum(gaps)
        prompts = self.prompt.sample(rng, self.num_requests)
        outputs = self.output.sample(rng, self.num_requests)
        return arrivals, prompts, outputs

    @property
    def max_context(self) -> int:
        return self.prompt.max_len + self.output.max_len

    def to_dict(self) -> dict[str, Any]:
        return {
            "arrival_rate": self.arrival_rate,
            "prompt": self.prompt.to_dict(),
            "output": self.output.to_dict(),
            "num_requests": self.num_requests,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeWorkload":
        return cls(
            arrival_rate=float(data["arrival_rate"]),
            prompt=LengthDist.from_dict(data.get("prompt", {})),
            output=LengthDist.from_dict(data.get("output", {})),
            num_requests=int(data.get("num_requests", 200)),
            seed=int(data.get("seed", 0)),
        )


@dataclass(frozen=True)
class SLOSpec:
    """Percentile latency targets a deployment must meet.

    ``ttft_*`` bound time-to-first-token percentiles in seconds;
    ``tpot_p95`` bounds the 95th-percentile per-output-token latency in
    seconds per token.  ``None`` leaves a percentile unconstrained.  The
    p95 targets double as the *per-request* deadlines behind goodput: a
    completed request is "good" when its own TTFT and per-token latency
    meet them (see ``docs/SERVING.md``).
    """

    ttft_p50: float | None = None
    ttft_p95: float | None = None
    ttft_p99: float | None = None
    tpot_p95: float | None = None

    def __post_init__(self) -> None:
        for name in ("ttft_p50", "ttft_p95", "ttft_p99", "tpot_p95"):
            v = getattr(self, name)
            if v is not None and v <= 0:
                raise ValueError(f"{name} must be positive when set")

    @property
    def constrained(self) -> bool:
        return any(
            v is not None
            for v in (self.ttft_p50, self.ttft_p95, self.ttft_p99, self.tpot_p95)
        )

    def violations(self, stats: Any) -> tuple[str, ...]:
        """Human-readable SLO violations for one :class:`ServeStats`."""
        out = []
        for name, limit in (
            ("ttft_p50", self.ttft_p50),
            ("ttft_p95", self.ttft_p95),
            ("ttft_p99", self.ttft_p99),
            ("tpot_p95", self.tpot_p95),
        ):
            if limit is None:
                continue
            measured = getattr(stats, name)
            if measured > limit:
                out.append(f"{name} {measured:.4f}s > {limit:.4f}s")
        return tuple(out)

    def satisfied(self, stats: Any) -> bool:
        return not self.violations(stats)

    def request_is_good(self, ttft: float, tpot: float) -> bool:
        """Per-request goodput test against the p95 targets as deadlines."""
        if self.ttft_p95 is not None and ttft > self.ttft_p95:
            return False
        if self.tpot_p95 is not None and tpot > self.tpot_p95:
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        return {
            "ttft_p50": self.ttft_p50,
            "ttft_p95": self.ttft_p95,
            "ttft_p99": self.ttft_p99,
            "tpot_p95": self.tpot_p95,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SLOSpec":
        def _opt(name: str) -> float | None:
            v = data.get(name)
            return None if v is None else float(v)

        return cls(
            ttft_p50=_opt("ttft_p50"),
            ttft_p95=_opt("ttft_p95"),
            ttft_p99=_opt("ttft_p99"),
            tpot_p95=_opt("tpot_p95"),
        )

    def short_name(self) -> str:
        parts = []
        if self.ttft_p50 is not None:
            parts.append(f"ttft_p50<={self.ttft_p50:g}s")
        if self.ttft_p95 is not None:
            parts.append(f"ttft_p95<={self.ttft_p95:g}s")
        if self.ttft_p99 is not None:
            parts.append(f"ttft_p99<={self.ttft_p99:g}s")
        if self.tpot_p95 is not None:
            parts.append(f"tpot_p95<={self.tpot_p95:g}s")
        return " ".join(parts) if parts else "unconstrained"
