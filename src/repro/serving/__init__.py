"""SLO-constrained serving co-design (`repro serve-search`).

Turns the per-block inference model into a serving-system co-designer: a
deterministic continuous-batching simulator with KV paging/offload
(:mod:`.simulator`), disaggregated prefill/decode plans joined by KV
transfer over the network model (:mod:`.disagg`), sound percentile SLO
bounds for prune-safe admission (:mod:`.bounds`), and a checkpointable,
fault-supervised deployment search (:mod:`.search`).

Not to be confused with :mod:`repro.service` — the persistent HTTP
*evaluation service* behind ``repro serve``.  This package models
hypothetical serving *deployments*; see ``docs/SERVING.md`` vs
``docs/SERVICE.md``.
"""

from .bounds import TPOT_SAFETY, ServeBounds, plan_bounds, slo_admits
from .disagg import (
    ServePlan,
    check_plan,
    kv_transfer_time,
    simulate_disagg,
    simulate_plan,
)
from .search import (
    MIN_PLANS_PER_WORKER,
    ServeSearchOptions,
    ServeSearchResult,
    candidate_plans,
    serve_auto_workers,
    serve_search,
)
from .simulator import (
    ServeStats,
    check_serveability,
    decode_step_time,
    kv_reserve_bytes,
    prefill_time,
    simulate_serve,
    weights_bytes,
)
from .stats import (
    M_DEPLOY_CANDIDATES,
    M_DEPLOY_FEASIBLE,
    M_SERVE_CANDIDATES,
    M_SERVE_INFEASIBLE,
    M_SERVE_PRUNED,
    M_SERVE_REQUESTS,
    M_SERVE_SECONDS,
    M_SERVE_SIMULATED,
    M_SERVE_VIOLATED,
    ServeSearchStats,
)
from .workload import LengthDist, SLOSpec, ServeWorkload

__all__ = [
    "TPOT_SAFETY",
    "ServeBounds",
    "plan_bounds",
    "slo_admits",
    "ServePlan",
    "check_plan",
    "kv_transfer_time",
    "simulate_disagg",
    "simulate_plan",
    "MIN_PLANS_PER_WORKER",
    "ServeSearchOptions",
    "ServeSearchResult",
    "candidate_plans",
    "serve_auto_workers",
    "serve_search",
    "ServeStats",
    "check_serveability",
    "decode_step_time",
    "kv_reserve_bytes",
    "prefill_time",
    "simulate_serve",
    "weights_bytes",
    "M_DEPLOY_CANDIDATES",
    "M_DEPLOY_FEASIBLE",
    "M_SERVE_CANDIDATES",
    "M_SERVE_INFEASIBLE",
    "M_SERVE_PRUNED",
    "M_SERVE_REQUESTS",
    "M_SERVE_SECONDS",
    "M_SERVE_SIMULATED",
    "M_SERVE_VIOLATED",
    "ServeSearchStats",
    "LengthDist",
    "SLOSpec",
    "ServeWorkload",
]
