"""Sound lower bounds for SLO-constrained serve-search pruning.

Mirrors the ``engine/bounds.py`` discipline: a candidate may be skipped
only when a *provable* lower bound on its latency already violates the
SLO, so pruning can never change the reported top-k.  The proofs lean on
IEEE-754 round-to-nearest monotonicity and on the simulator's deliberate
arithmetic shapes (see :mod:`repro.serving.simulator`):

* **TTFT.**  The simulator computes each request's TTFT as
  ``fl(wait + prefill)`` (colocated) or ``fl(fl(wait + prefill) + transfer)``
  (disaggregated) with ``wait >= 0`` exact, so every measured TTFT
  dominates the same request's ``prefill`` (resp. ``fl(prefill + transfer)``)
  sample.  Element-wise domination is preserved by order statistics, and
  ``np.percentile``'s linear interpolation is a convex combination of
  order statistics — so the percentile of the prefill-only samples
  (computed with the *same* ``np.percentile`` call) lower-bounds the
  measured TTFT percentile.

* **TPOT.**  Every decode step costs at least
  ``decode_step_time(batch=1, context=min_prompt)``: the step model is
  monotone non-decreasing in batch and context, the simulator's integer
  context mean never drops below the smallest prompt, and paging only
  adds.  A request's span is an fl-sum of ``m`` such steps (plus
  non-negative waits), so ``fl(span / m) >= s_min * (1 - eps)^(m+1)`` with
  ``eps = 2**-53``.  :data:`TPOT_SAFETY` = ``1 - 2**-30`` absorbs that
  rounding slack for any ``m`` up to ~8M output tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.system import System
from ..llm.config import LLMConfig
from .disagg import ServePlan, kv_transfer_time
from .simulator import decode_step_time, prefill_time
from .workload import SLOSpec, ServeWorkload

__all__ = ["TPOT_SAFETY", "ServeBounds", "plan_bounds", "slo_admits"]

# Multiplicative slack absorbing fl-summation/division rounding in the
# simulator's per-request span accounting (sound for spans of up to ~2^23
# steps; see the module docstring).
TPOT_SAFETY = 1.0 - 2.0**-30


@dataclass(frozen=True)
class ServeBounds:
    """Provable lower bounds on one plan's measured serving percentiles."""

    ttft_p50: float
    ttft_p95: float
    ttft_p99: float
    tpot_p95: float

    def violated(self, slo: SLOSpec) -> tuple[str, ...]:
        """SLO targets this plan provably cannot meet."""
        out = []
        for name, limit in (
            ("ttft_p50", slo.ttft_p50),
            ("ttft_p95", slo.ttft_p95),
            ("ttft_p99", slo.ttft_p99),
            ("tpot_p95", slo.tpot_p95),
        ):
            if limit is not None and getattr(self, name) > limit:
                out.append(name)
        return tuple(out)


def plan_bounds(
    llm: LLMConfig,
    system: System,
    plan: ServePlan,
    workload: ServeWorkload,
    prompts: np.ndarray | None = None,
) -> ServeBounds:
    """Lower-bound a plan's TTFT percentiles and per-token latency.

    ``prompts`` may carry the workload's pre-sampled prompt lengths to
    avoid re-sampling inside tight search loops.
    """
    if prompts is None:
        _, prompts, _ = workload.sample()

    dec = plan.decode
    if plan.prefill is None:
        pre = dec
        pre_system = system
        decode_system = system
        transfer_by_len: dict[int, float] = {}
    else:
        pre = plan.prefill
        pre_system = system.with_num_procs(pre.num_procs)
        decode_system = system.with_num_procs(dec.num_procs)
        transfer_by_len = {
            int(n): kv_transfer_time(llm, system, int(n))
            for n in np.unique(prompts)
        }

    base = np.empty(len(prompts))
    for i, n in enumerate(prompts):
        pf = prefill_time(
            llm, pre_system, pre.tensor_par, pre.pipeline_par, int(n)
        )
        tr = transfer_by_len.get(int(n), 0.0)
        # Same fl shape as the simulator's per-request floor: pf, or
        # fl(pf + transfer) for disaggregated plans.
        base[i] = pf + tr if tr else pf

    min_prompt = int(prompts.min())
    step_floor = decode_step_time(
        llm, decode_system, dec.tensor_par, dec.pipeline_par, 1, min_prompt
    )
    return ServeBounds(
        ttft_p50=float(np.percentile(base, 50)),
        ttft_p95=float(np.percentile(base, 95)),
        ttft_p99=float(np.percentile(base, 99)),
        tpot_p95=step_floor * TPOT_SAFETY,
    )


def slo_admits(bounds: ServeBounds, slo: SLOSpec | None) -> bool:
    """False iff the plan *provably* violates the SLO (safe to prune)."""
    if slo is None or not slo.constrained:
        return True
    return not bounds.violated(slo)
