"""Deterministic continuous-batching serving simulator.

Drives the analytical per-block inference model
(:mod:`repro.inference.decode`) with seeded Poisson arrivals and
iteration-level scheduling, and measures what a capacity planner needs:
TTFT percentiles, per-output-token latency, goodput under per-request
deadlines, and KV-cache pressure (resident peak, host-offload traffic).

Three properties are load-bearing and deliberately engineered:

* **Determinism.**  All randomness comes from the workload's seeded
  sample; the event loop itself is sequential float arithmetic.  The same
  ``(llm, system, plan, workload)`` always produces a bit-identical
  :class:`ServeStats` — serve-search's top-k guarantee rests on this.

* **Bound soundness.**  TTFT is accumulated as ``fl(wait + prefill)``
  with ``wait = fl(admit − arrival) ≥ 0`` — never as a
  ``completion − arrival`` subtraction — so every measured TTFT is
  ``≥`` its request's pure prefill time under IEEE-754 round-to-nearest
  monotonicity.  Per-request decode spans are fl-sums of non-negative
  step times.  :mod:`repro.serving.bounds` builds its prune-safe lower
  bounds directly on these inequalities.

* **Exact KV conservation.**  KV reservations are tracked in integer
  bytes (``tensor_par`` divides ``hidden``, so per-request reservations
  are exact), which makes ``kv_allocated_bytes == kv_freed_bytes`` an
  exact invariant rather than a float-tolerance one — Hypothesis checks
  it in ``tests/test_serving_properties.py``.

The older fixed-length simulator (:func:`repro.inference.batching.simulate_serving`)
is kept untouched for backward compatibility; this module generalizes it
with length distributions, KV paging/offload, data-parallel replicas, and
per-request latency accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from ..core.flops import layer_fw_time
from ..hardware.system import System
from ..llm.blocks import build_block
from ..llm.config import LLMConfig
from ..inference.decode import profile_decode_block
from ..inference.model import InferenceStrategy
from .workload import SLOSpec, ServeWorkload

__all__ = [
    "ServeStats",
    "simulate_serve",
    "prefill_time",
    "decode_step_time",
    "weights_bytes",
    "kv_reserve_bytes",
]


# ---------------------------------------------------------------------------
# Cached analytical kernels (shared by the simulator and serving/bounds.py —
# sharing the exact float pipeline is what keeps the SLO bounds sound).
# ---------------------------------------------------------------------------


@lru_cache(maxsize=4096)
def prefill_time(
    llm: LLMConfig, system: System, tensor_par: int, pipeline_par: int,
    prompt_len: int,
) -> float:
    """One request's prefill latency: a batch-1 forward pass over the prompt."""
    t, p = tensor_par, pipeline_par
    L = llm.num_blocks
    proc, hbm = system.processor, system.mem1
    tp_net = system.network_for_span(t) if t > 1 else None
    block = build_block(
        llm.with_seq(prompt_len), microbatch=1, tensor_par=t, seq_par=False
    )
    fw_block = sum(layer_fw_time(proc, hbm, l).total for l in block.layers)
    tp_block = (
        sum(tp_net.collective_time(c.op, c.nbytes, t) for c in block.tp_comm_fw)
        if tp_net
        else 0.0
    )
    total = L * (fw_block + tp_block)
    if p > 1:
        pp_net = system.network_for_span(min(system.num_procs, t * p))
        p2p_bytes = prompt_len * llm.hidden * llm.bytes_per_element
        total += (p - 1) * pp_net.collective_time("p2p", p2p_bytes, 2)
    return total


@lru_cache(maxsize=65536)
def decode_step_time(
    llm: LLMConfig, system: System, tensor_par: int, pipeline_par: int,
    batch: int, context: int,
) -> float:
    """One decode iteration for ``batch`` sequences at ``context`` length.

    Monotone non-decreasing in both ``batch`` and ``context`` (FLOPs,
    memory traffic, and collective payloads all grow with them) — the
    property the TPOT lower bound in :mod:`repro.serving.bounds` relies on.
    """
    t, p = tensor_par, pipeline_par
    prof = profile_decode_block(
        llm, batch=batch, context=max(context, 1), tensor_par=t
    )
    proc, hbm = system.processor, system.mem1
    compute = proc.compute_time("matrix", prof.flops)
    vector = proc.compute_time("vector", prof.vector_flops)
    memory = hbm.access_time(prof.traffic)
    block = max(compute + vector, memory)
    comm = 0.0
    if t > 1:
        net = system.network_for_span(t)
        comm = prof.tp_comm_count * net.collective_time(
            "all_reduce", prof.tp_comm_bytes, t
        )
    step = llm.num_blocks * (block + comm)
    if p > 1:
        pp_net = system.network_for_span(min(system.num_procs, t * p))
        hop_bytes = batch * llm.hidden * llm.bytes_per_element
        step += p * pp_net.collective_time("p2p", hop_bytes, 2)
    return step


@lru_cache(maxsize=1024)
def weights_bytes(llm: LLMConfig, tensor_par: int, pipeline_par: int) -> float:
    """Per-processor weight footprint for a (t, p)-sharded deployment."""
    bpstage = math.ceil(llm.num_blocks / pipeline_par)
    block = build_block(llm, microbatch=1, tensor_par=tensor_par, seq_par=False)
    return bpstage * block.weight_bytes()


def kv_reserve_bytes(
    llm: LLMConfig, context: int, tensor_par: int, pipeline_par: int
) -> int:
    """Per-processor KV reservation for one request at full ``context``.

    Integer-exact: K and V rows of ``hidden / t`` elements per block over
    the ``ceil(L / p)`` blocks hosted per pipeline stage.
    """
    bpstage = -(-llm.num_blocks // pipeline_par)
    return (
        2 * context * llm.hidden * int(llm.bytes_per_element) * bpstage
        // tensor_par
    )


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServeStats:
    """Measured behaviour of one simulated serving deployment."""

    completed: int
    duration: float
    throughput_rps: float
    tokens_per_second: float
    ttft_p50: float
    ttft_p95: float
    ttft_p99: float
    tpot_p50: float
    tpot_p95: float
    tpot_p99: float
    goodput_rps: float  # completed-in-SLO requests per second
    good_requests: int
    mean_batch: float  # average decode-batch occupancy
    max_queue: int
    kv_allocated_bytes: int
    kv_freed_bytes: int
    kv_peak_bytes: int  # per-replica peak KV residency
    kv_offload_bytes: float  # bytes streamed over the offload tier
    ttfts: tuple[float, ...]  # per-request, arrival order
    tpots: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.completed < 0 or self.duration < 0:
            raise ValueError("stats must be non-negative")

    def summary(self) -> dict[str, float]:
        return {
            "completed": self.completed,
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "tokens_per_second": self.tokens_per_second,
            "ttft_p50": self.ttft_p50,
            "ttft_p95": self.ttft_p95,
            "ttft_p99": self.ttft_p99,
            "tpot_p95": self.tpot_p95,
            "mean_batch": self.mean_batch,
            "max_queue": self.max_queue,
            "kv_peak_gib": self.kv_peak_bytes / 2**30,
            "kv_offload_gib": self.kv_offload_bytes / 2**30,
        }


def _percentile(values: np.ndarray, q: float) -> float:
    return float(np.percentile(values, q)) if values.size else 0.0


# ---------------------------------------------------------------------------
# Event loop
# ---------------------------------------------------------------------------


@dataclass
class _ReplicaOutcome:
    ttft: dict[int, float]
    span: dict[int, float]  # fl-sum of decode step times (+ waits, disagg)
    end_time: float
    occupancy_time: float
    max_queue: int
    kv_allocated: int
    kv_freed: int
    kv_peak: int
    kv_offload: float


def _replica_loop(
    llm: LLMConfig,
    system: System,
    tensor_par: int,
    pipeline_par: int,
    ids: Sequence[int],
    ready: np.ndarray,
    prompts: np.ndarray,
    outputs: np.ndarray,
    *,
    hbm_kv_budget: float,
    offload_capacity: float,
    offload_seconds_per_byte: float,
    max_batch: int | None,
    charge_prefill: bool,
    wait_in_span: bool,
) -> _ReplicaOutcome:
    """Continuous-batching loop for one replica over its request subset.

    ``ready[i]`` is when request ``i`` becomes eligible (its arrival for a
    colocated deployment; prefill-done + KV-transfer for the decode side of
    a disaggregated one).  ``charge_prefill`` stalls the batch for each
    admitted request's prefill (chunked-prefill, single-queue model);
    ``wait_in_span`` folds admission wait into the per-token span (the
    decode side of disaggregation, where TTFT was already paid upstream).
    """
    order = sorted(ids, key=lambda i: (ready[i], i))
    n = len(order)
    ttft: dict[int, float] = {}
    span: dict[int, float] = {}
    now = 0.0
    next_ready = 0
    queue: list[int] = []
    active: dict[int, int] = {}  # request id -> tokens generated
    resident: dict[int, int] = {}  # request id -> reserved KV bytes
    resident_total = 0
    done = 0
    occupancy = 0.0
    max_queue = 0
    kv_allocated = 0
    kv_freed = 0
    kv_peak = 0
    kv_offload = 0.0
    capacity = hbm_kv_budget + offload_capacity

    while done < n:
        while next_ready < n and ready[order[next_ready]] <= now:
            queue.append(order[next_ready])
            next_ready += 1
        max_queue = max(max_queue, len(queue))

        # Admit FIFO while the batch slot and the full-context KV
        # reservation fit in HBM + offload.
        while queue and (max_batch is None or len(active) < max_batch):
            rid = queue[0]
            need = kv_reserve_bytes(
                llm, int(prompts[rid] + outputs[rid]), tensor_par, pipeline_par
            )
            if resident_total + need > capacity:
                break
            queue.pop(0)
            admit = max(now, float(ready[rid]))
            wait = admit - float(ready[rid])  # exact >= 0: admit >= ready
            if charge_prefill:
                pf = prefill_time(
                    llm, system, tensor_par, pipeline_par, int(prompts[rid])
                )
                now = admit + pf
                ttft[rid] = wait + pf  # fl(wait + prefill) >= prefill
            else:
                now = admit
            span[rid] = wait if wait_in_span else 0.0
            active[rid] = 0
            resident[rid] = need
            resident_total += need
            kv_allocated += need
            kv_peak = max(kv_peak, resident_total)

        if not active:
            if next_ready < n:
                now = max(now, float(ready[order[next_ready]]))
                continue
            break

        # One decode iteration for the whole running batch.  Context is the
        # integer mean of the active requests' current lengths, which keeps
        # it >= the smallest prompt (the TPOT bound's anchor).
        ctx = sum(int(prompts[r]) + g for r, g in active.items()) // len(active)
        step = decode_step_time(
            llm, system, tensor_par, pipeline_par, len(active), ctx
        )
        # KV beyond the HBM budget pages over the offload tier each step.
        overflow = resident_total - hbm_kv_budget
        if overflow > 0:
            step += overflow * offload_seconds_per_byte
            kv_offload += overflow
        now += step
        occupancy += step * len(active)
        finished = []
        for rid in active:
            active[rid] += 1
            span[rid] += step
            if active[rid] >= int(outputs[rid]):
                finished.append(rid)
        for rid in finished:
            del active[rid]
            resident_total -= resident[rid]
            kv_freed += resident.pop(rid)
            done += 1

    return _ReplicaOutcome(
        ttft=ttft,
        span=span,
        end_time=now,
        occupancy_time=occupancy,
        max_queue=max_queue,
        kv_allocated=kv_allocated,
        kv_freed=kv_freed,
        kv_peak=kv_peak,
        kv_offload=kv_offload,
    )


def check_serveability(
    llm: LLMConfig,
    system: System,
    strategy: InferenceStrategy,
    workload: ServeWorkload,
) -> str | None:
    """Why one request could never be served, or ``None`` if it can.

    The same test gates both :func:`simulate_serve` (raises) and
    serve-search candidate screening (counts infeasible without raising).
    """
    t, p = strategy.tensor_par, strategy.pipeline_par
    if llm.attn_heads % t or llm.hidden % t or llm.feedforward % t:
        return f"tensor_par={t} must divide the model shape"
    if p > llm.num_blocks:
        return f"pipeline_par={p} exceeds {llm.num_blocks} blocks"
    weights = weights_bytes(llm, t, p)
    if weights >= system.mem1.capacity:
        return (
            f"weights {weights / 2**30:.1f} GiB exceed HBM "
            f"{system.mem1.capacity / 2**30:.1f} GiB"
        )
    worst = kv_reserve_bytes(
        llm, workload.prompt.max_len + workload.output.max_len, t, p
    )
    budget = system.mem1.capacity - weights
    budget += system.mem2.capacity if system.mem2 is not None else 0.0
    if worst > budget:
        return (
            f"one request's KV cache ({worst / 2**30:.1f} GiB) exceeds the "
            f"{budget / 2**30:.1f} GiB KV budget"
        )
    return None


def simulate_serve(
    llm: LLMConfig,
    system: System,
    strategy: InferenceStrategy,
    workload: ServeWorkload,
    *,
    slo: SLOSpec | None = None,
    max_batch: int | None = None,
) -> ServeStats:
    """Simulate continuous-batching serving for a colocated deployment.

    ``strategy.data_par`` replicas each run the continuous-batching loop
    over their round-robin share of the traffic; ``tensor_par`` and
    ``pipeline_par`` shard the model within a replica.  KV reservations
    beyond HBM page to the system's ``mem2`` offload tier, costing every
    decode step the overflow's transfer time.

    Raises:
        ValueError: if even a single request cannot fit.
    """
    strategy.validate(llm, system)
    if max_batch is not None and max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    reason = check_serveability(llm, system, strategy, workload)
    if reason is not None:
        raise ValueError(f"unserveable deployment: {reason}")

    t, p, d = strategy.tensor_par, strategy.pipeline_par, strategy.data_par
    arrivals, prompts, outputs = workload.sample()
    hbm_kv_budget = system.mem1.capacity - weights_bytes(llm, t, p)
    if system.mem2 is not None:
        offload_capacity = system.mem2.capacity
        offload_seconds_per_byte = 1.0 / (
            system.mem2.bandwidth * system.mem2.efficiency
        )
    else:
        offload_capacity = 0.0
        offload_seconds_per_byte = 0.0

    outcomes = [
        _replica_loop(
            llm, system, t, p,
            [i for i in range(workload.num_requests) if i % d == rep],
            arrivals, prompts, outputs,
            hbm_kv_budget=hbm_kv_budget,
            offload_capacity=offload_capacity,
            offload_seconds_per_byte=offload_seconds_per_byte,
            max_batch=max_batch,
            charge_prefill=True,
            wait_in_span=False,
        )
        for rep in range(d)
    ]
    return _assemble_stats(outcomes, outputs, slo, workload.num_requests)


def _assemble_stats(
    outcomes: Sequence[_ReplicaOutcome],
    outputs: np.ndarray,
    slo: SLOSpec | None,
    num_requests: int,
) -> ServeStats:
    ttft_by_id: dict[int, float] = {}
    span_by_id: dict[int, float] = {}
    for out in outcomes:
        ttft_by_id.update(out.ttft)
        span_by_id.update(out.span)

    completed_ids = sorted(span_by_id)
    ttfts = tuple(ttft_by_id[i] for i in completed_ids)
    tpots = tuple(span_by_id[i] / int(outputs[i]) for i in completed_ids)
    ttft_arr = np.array(ttfts) if ttfts else np.empty(0)
    tpot_arr = np.array(tpots) if tpots else np.empty(0)

    duration = max((o.end_time for o in outcomes), default=0.0)
    duration = duration if duration > 0 else 1e-12
    completed = len(completed_ids)
    total_tokens = int(sum(int(outputs[i]) for i in completed_ids))
    if slo is None:
        good = completed
    else:
        good = sum(
            1 for i in completed_ids
            if slo.request_is_good(ttft_by_id[i], span_by_id[i] / int(outputs[i]))
        )
    return ServeStats(
        completed=completed,
        duration=duration,
        throughput_rps=completed / duration,
        tokens_per_second=total_tokens / duration,
        ttft_p50=_percentile(ttft_arr, 50),
        ttft_p95=_percentile(ttft_arr, 95),
        ttft_p99=_percentile(ttft_arr, 99),
        tpot_p50=_percentile(tpot_arr, 50),
        tpot_p95=_percentile(tpot_arr, 95),
        tpot_p99=_percentile(tpot_arr, 99),
        goodput_rps=good / duration,
        good_requests=good,
        mean_batch=sum(o.occupancy_time for o in outcomes) / duration,
        max_queue=max((o.max_queue for o in outcomes), default=0),
        kv_allocated_bytes=sum(o.kv_allocated for o in outcomes),
        kv_freed_bytes=sum(o.kv_freed for o in outcomes),
        kv_peak_bytes=max((o.kv_peak for o in outcomes), default=0),
        kv_offload_bytes=float(sum(o.kv_offload for o in outcomes)),
        ttfts=ttfts,
        tpots=tpots,
    )
