"""SLO-constrained serving deployment search.

Enumerates :class:`~repro.serving.disagg.ServePlan` candidates (colocated
parallelizations plus disaggregated prefill/decode splits of the same
system), simulates each against a traffic mix, and returns the top-k by
goodput among plans that meet the SLO.  Structure deliberately mirrors
:mod:`repro.search.execution_search`: chunked dispatch through
:func:`~repro.search.faults.run_supervised`, content-keyed checkpoint
journal with bit-identical resume, obs spans/events/metrics, and a sound
prune step — here the SLO lower-bound admission test of
:mod:`repro.serving.bounds` instead of the roofline bound.

The top-k guarantee: pruning only ever skips plans whose *lower bound*
already violates the SLO; such plans could never rank (ranking admits
only SLO-satisfying plans), so the pruned search's top-k is bit-identical
to the exhaustive one.  Tests keep the exhaustive scalar path as the
oracle (``tests/test_serve_search.py``).
"""

from __future__ import annotations

import heapq
import logging
import math
import os
from dataclasses import dataclass
from time import perf_counter

from ..execution.strategy import factorizations
from ..hardware.system import System
from ..llm.config import LLMConfig
from ..inference.model import InferenceStrategy
from ..obs import (
    EventJournal,
    MetricsRegistry,
    ProgressReporter,
    Tracer,
)
from ..obs.stats import M_CHUNK_SECONDS
from ..search.checkpoint import CheckpointJournal, run_key
from ..search.faults import FaultInjector, RetryPolicy, run_supervised
from .bounds import plan_bounds, slo_admits
from .disagg import ServePlan, check_plan, simulate_plan
from .simulator import ServeStats
from .stats import (
    M_SERVE_CANDIDATES,
    M_SERVE_INFEASIBLE,
    M_SERVE_PRUNED,
    M_SERVE_SIMULATED,
    M_SERVE_VIOLATED,
    ServeSearchStats,
)
from .workload import SLOSpec, ServeWorkload

logger = logging.getLogger(__name__)

# Serving simulations cost milliseconds (vs microseconds for the training
# model), so the serial threshold is far lower than execution search's.
MIN_PLANS_PER_WORKER = 64


@dataclass(frozen=True)
class ServeSearchOptions:
    """Which deployment dimensions serve-search sweeps.

    ``splits`` are prefill-cluster fractions tried for disaggregated
    plans (each rounded down to a whole processor count); ``max_batch``
    caps the continuous-batching occupancy per replica.
    """

    max_tensor_par: int = 64
    disagg: bool = True
    splits: tuple[float, ...] = (0.25, 0.5)
    max_batch: int | None = None

    def __post_init__(self) -> None:
        if any(not 0.0 < f < 1.0 for f in self.splits):
            raise ValueError("splits must be fractions in (0, 1)")


@dataclass
class ServeSearchResult:
    """Outcome of one serving deployment search.

    ``top`` ranks SLO-satisfying plans by ``(-goodput_rps, enumeration
    index)`` — deterministic, so reruns, resumes, and pruned runs agree
    bit-identically.
    """

    top: list[tuple[ServePlan, ServeStats]]
    num_candidates: int
    num_simulated: int
    num_pruned: int
    num_infeasible: int
    num_violated: int
    stats: ServeSearchStats | None = None
    truncated: bool = False

    @property
    def best(self) -> tuple[ServePlan, ServeStats] | None:
        return self.top[0] if self.top else None


def _strategies_for(
    llm: LLMConfig, num_procs: int, max_tensor_par: int
) -> list[InferenceStrategy]:
    """Valid (t, p, d) shardings of ``num_procs`` for this model."""
    out = []
    for t, p, d in factorizations(num_procs):
        if t > min(max_tensor_par, llm.attn_heads) or llm.attn_heads % t:
            continue
        if llm.hidden % t or llm.feedforward % t:
            continue
        if p > llm.num_blocks:
            continue
        out.append(InferenceStrategy(tensor_par=t, pipeline_par=p, data_par=d))
    return out


def candidate_plans(
    llm: LLMConfig,
    system: System,
    options: ServeSearchOptions | None = None,
) -> list[ServePlan]:
    """Every candidate plan, in deterministic enumeration order.

    Colocated plans first, then disaggregated plans grouped by split
    fraction — the enumeration index is the search's tiebreak, so this
    order is part of the result contract.
    """
    opts = options or ServeSearchOptions()
    n = system.num_procs
    plans = [
        ServePlan(decode=s) for s in _strategies_for(llm, n, opts.max_tensor_par)
    ]
    if opts.disagg and n >= 2:
        seen_splits: set[int] = set()
        for frac in opts.splits:
            n_pre = int(n * frac)
            if n_pre < 1 or n_pre >= n or n_pre in seen_splits:
                continue
            seen_splits.add(n_pre)
            pre_side = _strategies_for(llm, n_pre, opts.max_tensor_par)
            dec_side = _strategies_for(llm, n - n_pre, opts.max_tensor_par)
            plans.extend(
                ServePlan(decode=dec, prefill=pre)
                for pre in pre_side
                for dec in dec_side
            )
    return plans


def serve_auto_workers(num_plans: int, cpu_count: int | None = None) -> int:
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    return max(1, min(cpus, num_plans // MIN_PLANS_PER_WORKER))


def _serve_chunk(
    args: tuple[
        LLMConfig, System, list[tuple[int, ServePlan]], ServeWorkload,
        SLOSpec | None, int, bool, int, FaultInjector | None, bool,
        int | None, str | None,
    ]
) -> tuple[
    int, int, int, int, int,
    list[tuple[float, int, ServePlan, ServeStats]],
    dict | None, list[dict] | None,
]:
    """Simulate one chunk of ``(enumeration index, plan)`` pairs.

    Returns ``(n, simulated, pruned, infeasible, violated, top, snapshot,
    trace_events)`` with ``top`` the chunk's SLO-satisfying plans ranked by
    ``(-goodput, gidx)`` — an associative partial result safe to merge in
    any order (the fabric's serve chunks reuse this exact contract).
    """
    (llm, system, indexed, workload, slo, top_k, instrument, chunk_index,
     injector, prune, max_batch, trace_id) = args
    if injector is not None:
        injector.fire(chunk_index)
    registry = MetricsRegistry() if instrument else None
    start = perf_counter()
    _, prompts, _ = workload.sample()
    heap: list[tuple[float, int, int, ServePlan, ServeStats]] = []
    simulated = pruned = infeasible = violated = 0
    # Tiled bound pass — the serving twin of the engine's best-bound-first
    # tiling: price every plan's analytic SLO lower bounds up front, admit
    # or prune on them, then simulate the survivors best-bound-first
    # (smallest latency floor first).  ServeBounds carries no goodput upper
    # bound, so the ordering is a pure locality hint here; retention uses
    # the ``(goodput, -gidx)`` total order, so any simulation order yields
    # a bit-identical top-k.
    admitted: list[tuple[float, int, ServePlan]] = []
    for gidx, plan in indexed:
        if check_plan(llm, system, plan, workload) is not None:
            infeasible += 1
            continue
        bounds = plan_bounds(llm, system, plan, workload, prompts)
        if prune and slo is not None and not slo_admits(bounds, slo):
            # The lower bound already violates a target: the real run could
            # only be worse, so the plan provably cannot rank.  Skipping the
            # simulation cannot change the top-k.
            pruned += 1
            continue
        admitted.append((bounds.ttft_p95 + bounds.tpot_p95, gidx, plan))
    admitted.sort(key=lambda e: (e[0], e[1]))
    for _bound, gidx, plan in admitted:
        try:
            stats = simulate_plan(
                llm, system, plan, workload, slo=slo, max_batch=max_batch
            )
        except ValueError:
            infeasible += 1
            continue
        simulated += 1
        if slo is not None and not slo.satisfied(stats):
            violated += 1
            continue
        goodput = stats.goodput_rps
        entry = (goodput, -gidx, gidx, plan, stats)
        if len(heap) < top_k:
            heapq.heappush(heap, entry)
        elif (goodput, -gidx) > (heap[0][0], heap[0][1]):
            heapq.heapreplace(heap, entry)
    ranked = sorted(heap, key=lambda e: (-e[0], e[2]))
    top = [(g, gidx, plan, stats) for g, _, gidx, plan, stats in ranked]
    snapshot = events = None
    if registry is not None:
        elapsed = perf_counter() - start
        registry.inc(M_SERVE_CANDIDATES, len(indexed))
        registry.inc(M_SERVE_SIMULATED, simulated)
        registry.inc(M_SERVE_PRUNED, pruned)
        registry.inc(M_SERVE_INFEASIBLE, infeasible)
        registry.inc(M_SERVE_VIOLATED, violated)
        registry.observe(M_CHUNK_SECONDS, elapsed)
        tracer = Tracer(trace_id=trace_id)
        tracer.add_span(
            f"serve-chunk[{chunk_index}]", "serve.chunk", start, elapsed,
            plans=len(indexed), simulated=simulated, pruned=pruned,
            trace_id=trace_id,
        )
        snapshot = registry.snapshot()
        events = tracer.events()
    return (
        len(indexed), simulated, pruned, infeasible, violated, top,
        snapshot, events,
    )


def _chunk_payload(result: tuple) -> dict:
    """A serve chunk result as a JSON-safe journal record.

    Stores plans plus their goodput key, not full :class:`ServeStats` —
    resume re-simulates the few journaled plans through the deterministic
    simulator, keeping the journal small and schema-stable.
    """
    n, simulated, pruned, infeasible, violated, top, snapshot, _events = result
    return {
        "n": n,
        "simulated": simulated,
        "pruned": pruned,
        "infeasible": infeasible,
        "violated": violated,
        "top": [[g, gidx, plan.to_dict()] for g, gidx, plan, _stats in top],
        "snapshot": snapshot,
    }


def _chunk_from_payload(
    llm: LLMConfig,
    system: System,
    workload: ServeWorkload,
    slo: SLOSpec | None,
    max_batch: int | None,
    payload: dict,
) -> tuple:
    """Reconstruct a serve chunk result tuple from its journal record."""
    top = []
    for _g, gidx, plan_dict in payload["top"]:
        plan = ServePlan.from_dict(plan_dict)
        stats = simulate_plan(
            llm, system, plan, workload, slo=slo, max_batch=max_batch
        )
        top.append((stats.goodput_rps, int(gidx), plan, stats))
    return (
        int(payload["n"]),
        int(payload["simulated"]),
        int(payload["pruned"]),
        int(payload["infeasible"]),
        int(payload["violated"]),
        top,
        payload.get("snapshot"),
        None,
    )


def serve_search(
    llm: LLMConfig,
    system: System,
    workload: ServeWorkload,
    slo: SLOSpec | None = None,
    options: ServeSearchOptions | None = None,
    *,
    top_k: int = 5,
    workers: int | None = None,
    prune: bool = True,
    tracer: Tracer | None = None,
    collect_stats: bool = False,
    progress: ProgressReporter | None = None,
    events: EventJournal | None = None,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = False,
    deadline: float | None = None,
    retry_policy: RetryPolicy | None = None,
    fault_injector: FaultInjector | None = None,
) -> ServeSearchResult:
    """Find the deployments that serve ``workload`` within ``slo`` best.

    Ranking is by goodput (requests completing within their per-request
    deadlines, per second) among plans whose measured percentiles satisfy
    every SLO target; with no SLO, by throughput.  ``prune`` engages the
    sound lower-bound admission test — provably-violating plans are never
    simulated, and the top-k is bit-identical to ``prune=False``.

    The fault-tolerance surface (``events`` / ``checkpoint`` / ``resume`` /
    ``deadline`` / ``retry_policy`` / ``fault_injector``) behaves exactly
    like :func:`repro.search.execution_search.search`: supplying any of
    them engages supervised chunked dispatch, checkpoints record completed
    chunks under a :func:`~repro.cachekey.run_key` that includes the
    workload and SLO (so serving journals never collide with training
    ones), and a resumed run is bit-identical to an uninterrupted one.
    """
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")
    t_start = perf_counter()
    opts = options or ServeSearchOptions()
    instrument = collect_stats or tracer is not None
    fault_mode = (
        events is not None
        or checkpoint is not None
        or deadline is not None
        or retry_policy is not None
        or fault_injector is not None
    )

    t0 = perf_counter()
    plans = candidate_plans(llm, system, opts)
    indexed = list(enumerate(plans))
    if tracer is not None:
        tracer.add_span("enumerate", "serve-search", t0, perf_counter() - t0,
                        plans=len(plans))
    if progress is not None:
        progress.set_total(len(plans))
    if workers is None:
        workers = serve_auto_workers(len(plans))

    chunked = workers > 1 or ((instrument or progress is not None or fault_mode)
                              and len(plans) > 1)
    step = max(len(plans), 1)
    if chunked:
        step = math.ceil(len(plans) / (max(workers, 1) * 4))

    journal = None
    if checkpoint is not None:
        key = run_key(
            llm, system, 0, opts, kind="serve-search",
            extra={
                "workload": workload.to_dict(),
                "slo": slo.to_dict() if slo is not None else None,
                "top_k": top_k,
            },
        )
        journal = CheckpointJournal.open(
            checkpoint, key, resume=resume, events=events,
            meta={
                "step": step,
                "num_candidates": len(plans),
                "trace_id": tracer.trace_id if tracer is not None else None,
            },
        )
        step = int(journal.meta.get("step", step)) or step
        if tracer is not None and journal.meta.get("trace_id"):
            tracer.trace_id = str(journal.meta["trace_id"])

    chunks: list[list[tuple[int, ServePlan]]] = [indexed]
    if chunked:
        chunks = [indexed[i : i + step] for i in range(0, len(indexed), step)]
    logger.debug(
        "serve-search: %d plans, %d workers, %d chunks (supervised=%s)",
        len(plans), workers, len(chunks), fault_mode,
    )

    trace_id = tracer.trace_id if tracer is not None else None
    args = [
        (llm, system, c, workload, slo, top_k, instrument, n, fault_injector,
         prune, opts.max_batch, trace_id)
        for n, c in enumerate(chunks)
    ]
    truncated = False
    retries = 0
    resumed = 0
    skipped_ranges: tuple[tuple[int, int], ...] = ()
    if events is not None:
        events.emit(
            "serve.start", plans=len(plans), workers=max(workers, 1),
            chunks=len(chunks), trace_id=trace_id,
        )
    if fault_mode:
        chunk_results: dict[int, tuple] = {}
        tasks: dict[int, tuple] = {}
        for n, a in enumerate(args):
            if journal is not None and str(n) in journal:
                chunk_results[n] = _chunk_from_payload(
                    llm, system, workload, slo, opts.max_batch,
                    journal.get(str(n)),
                )
                resumed += 1
                if events is not None:
                    events.emit("chunk.resumed", chunk=n)
            else:
                tasks[n] = a
        if progress is not None:
            for n in sorted(chunk_results):
                progress.update(chunk_results[n][0], chunk_results[n][1])

        def _on_chunk(n: int, r: tuple) -> None:
            chunk_results[n] = r
            if journal is not None:
                journal.record(str(n), _chunk_payload(r))
            if progress is not None:
                progress.update(r[0], r[1])

        report = run_supervised(
            _serve_chunk,
            tasks,
            workers=max(workers, 1),
            policy=retry_policy,
            deadline=t_start + deadline if deadline is not None else None,
            on_result=_on_chunk,
            events=events,
            tracer=tracer,
        )
        truncated = report.truncated
        retries = report.retries
        skipped_ranges = tuple(
            (n * step, min((n + 1) * step, len(plans)))
            for n in report.skipped
        )
        results = [chunk_results[n] for n in sorted(chunk_results)]
    else:
        results = []
        for a in args:
            r = _serve_chunk(a)
            results.append(r)
            if progress is not None:
                progress.update(r[0], r[1])
    if progress is not None:
        progress.finish()

    num_candidates = sum(r[0] for r in results)
    num_simulated = sum(r[1] for r in results)
    num_pruned = sum(r[2] for r in results)
    num_infeasible = sum(r[3] for r in results)
    num_violated = sum(r[4] for r in results)
    merged = [entry for r in results for entry in r[5]]
    merged.sort(key=lambda e: (-e[0], e[1]))
    top = [(plan, stats) for _g, _gidx, plan, stats in merged[:top_k]]

    if tracer is not None:
        for r in results:
            if r[7]:
                tracer.add_events(r[7])
    stats = None
    if collect_stats or fault_mode:
        # The result-level totals are exact even when chunks ran without
        # metric snapshots (fault mode without --stats), so build the typed
        # summary from them directly; from_metrics() serves merged-registry
        # consumers (the fabric coordinator, the service exposition).
        stats = ServeSearchStats(
            candidates=num_candidates,
            simulated=num_simulated,
            pruned=num_pruned,
            violated=num_violated,
            infeasible=num_infeasible,
            elapsed=perf_counter() - t_start,
            workers=max(workers, 1),
            retries=retries,
            skipped=skipped_ranges,
            resumed_chunks=resumed,
            truncated=truncated,
        )
    if events is not None:
        events.emit(
            "serve.done", seconds=perf_counter() - t_start,
            plans=num_candidates, simulated=num_simulated,
            pruned=num_pruned, violated=num_violated,
            retries=retries, resumed=resumed, truncated=truncated,
        )
    return ServeSearchResult(
        top=top,
        num_candidates=num_candidates,
        num_simulated=num_simulated,
        num_pruned=num_pruned,
        num_infeasible=num_infeasible,
        num_violated=num_violated,
        stats=stats,
        truncated=truncated,
    )
