"""Disaggregated prefill/decode serving plans.

A :class:`ServePlan` is serve-search's unit of candidate: either a
colocated deployment (one :class:`~repro.inference.model.InferenceStrategy`
doing both phases on the whole system) or a disaggregated one — a prefill
cluster and a decode cluster carved out of the same system spec, joined by
KV-cache transfer costed through the existing network model (the
outermost — inter-cluster — tier, point-to-point).

Disaggregation model (documented in ``docs/SERVING.md``):

* The prefill cluster runs ``prefill.data_par`` replicas as FCFS servers;
  a request's prefill starts on the earliest-free replica.
* Finished prompts ship their KV cache (the full-model footprint for the
  prompt length) to the decode cluster over the outer network; TTFT for a
  disaggregated plan is ``fl(fl(wait + prefill) + transfer)`` — the fl-sum
  shape that keeps the percentile bound in :mod:`repro.serving.bounds`
  sound.
* The decode cluster runs the same continuous-batching loop as a
  colocated deployment, with arrivals replaced by KV-ready times and
  admission wait folded into the per-token span (the first token was
  already produced upstream).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping

import numpy as np

from ..hardware.system import System
from ..inference.decode import kv_cache_bytes
from ..llm.config import LLMConfig
from .simulator import (
    ServeStats,
    _assemble_stats,
    _replica_loop,
    check_serveability,
    kv_reserve_bytes,
    prefill_time,
    weights_bytes,
)
from ..inference.model import InferenceStrategy
from .workload import SLOSpec, ServeWorkload

__all__ = ["ServePlan", "simulate_plan", "simulate_disagg", "check_plan",
           "kv_transfer_time"]


@dataclass(frozen=True)
class ServePlan:
    """One serving deployment candidate: colocated or disaggregated."""

    decode: InferenceStrategy
    prefill: InferenceStrategy | None = None

    @property
    def disaggregated(self) -> bool:
        return self.prefill is not None

    @property
    def prefill_procs(self) -> int:
        return self.prefill.num_procs if self.prefill is not None else 0

    @property
    def total_procs(self) -> int:
        return self.decode.num_procs + self.prefill_procs

    def short_name(self) -> str:
        if self.prefill is None:
            return self.decode.short_name()
        return f"pre[{self.prefill.short_name()}]+dec[{self.decode.short_name()}]"

    def to_dict(self) -> dict[str, Any]:
        return {
            "decode": asdict(self.decode),
            "prefill": asdict(self.prefill) if self.prefill else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServePlan":
        prefill = data.get("prefill")
        return cls(
            decode=InferenceStrategy(**data["decode"]),
            prefill=InferenceStrategy(**prefill) if prefill else None,
        )


def kv_transfer_time(llm: LLMConfig, system: System, prompt_len: int) -> float:
    """Prefill→decode KV handoff over the inter-cluster network tier."""
    nbytes = kv_cache_bytes(llm, 1, prompt_len, 1)
    return system.networks[-1].collective_time("p2p", nbytes, 2)


def check_plan(
    llm: LLMConfig,
    system: System,
    plan: ServePlan,
    workload: ServeWorkload,
) -> str | None:
    """Why a plan could never serve the workload, or ``None`` if it can."""
    if plan.total_procs != system.num_procs:
        return (
            f"plan uses {plan.total_procs} processors, system has "
            f"{system.num_procs}"
        )
    if plan.prefill is None:
        return check_serveability(llm, system, plan.decode, workload)

    pre, dec = plan.prefill, plan.decode
    t, p = pre.tensor_par, pre.pipeline_par
    if llm.attn_heads % t or llm.hidden % t or llm.feedforward % t:
        return f"prefill tensor_par={t} must divide the model shape"
    if p > llm.num_blocks:
        return f"prefill pipeline_par={p} exceeds {llm.num_blocks} blocks"
    weights = weights_bytes(llm, t, p)
    need = weights + kv_reserve_bytes(llm, workload.prompt.max_len, t, p)
    if need >= system.mem1.capacity:
        return (
            f"prefill stage needs {need / 2**30:.1f} GiB, HBM is "
            f"{system.mem1.capacity / 2**30:.1f} GiB"
        )
    decode_system = system.with_num_procs(dec.num_procs)
    return check_serveability(llm, decode_system, dec, workload)


def simulate_disagg(
    llm: LLMConfig,
    system: System,
    plan: ServePlan,
    workload: ServeWorkload,
    *,
    slo: SLOSpec | None = None,
    max_batch: int | None = None,
) -> ServeStats:
    """Simulate a disaggregated prefill/decode deployment.

    Raises:
        ValueError: if the plan cannot serve even one request.
    """
    if plan.prefill is None:
        raise ValueError("simulate_disagg requires a disaggregated plan")
    reason = check_plan(llm, system, plan, workload)
    if reason is not None:
        raise ValueError(f"unserveable plan: {reason}")

    pre, dec = plan.prefill, plan.decode
    prefill_system = system.with_num_procs(pre.num_procs)
    decode_system = system.with_num_procs(dec.num_procs)
    arrivals, prompts, outputs = workload.sample()
    n = workload.num_requests

    # ---- prefill cluster: d_pre FCFS replicas --------------------------------
    free = [0.0] * pre.data_par
    ttft = np.empty(n)
    ready = np.empty(n)
    pre_max_queue = 0
    waiting = 0
    for i in range(n):
        slot = min(range(pre.data_par), key=lambda s: free[s])
        start = max(float(arrivals[i]), free[slot])
        waiting = sum(1 for s in free if s > arrivals[i])
        pre_max_queue = max(pre_max_queue, waiting)
        wait = start - float(arrivals[i])  # exact >= 0: start >= arrival
        pf = prefill_time(
            llm, prefill_system, pre.tensor_par, pre.pipeline_par,
            int(prompts[i]),
        )
        done = start + pf
        free[slot] = done
        transfer = kv_transfer_time(llm, system, int(prompts[i]))
        ttft[i] = (wait + pf) + transfer  # fl((wait+pf)+tr) >= fl(pf+tr)
        ready[i] = done + transfer

    # ---- decode cluster: continuous batching over KV-ready times -------------
    t, p, d = dec.tensor_par, dec.pipeline_par, dec.data_par
    hbm_kv_budget = decode_system.mem1.capacity - weights_bytes(llm, t, p)
    if decode_system.mem2 is not None:
        offload_capacity = decode_system.mem2.capacity
        offload_spb = 1.0 / (
            decode_system.mem2.bandwidth * decode_system.mem2.efficiency
        )
    else:
        offload_capacity = 0.0
        offload_spb = 0.0

    outcomes = []
    for rep in range(d):
        out = _replica_loop(
            llm, decode_system, t, p,
            [i for i in range(n) if i % d == rep],
            ready, prompts, outputs,
            hbm_kv_budget=hbm_kv_budget,
            offload_capacity=offload_capacity,
            offload_seconds_per_byte=offload_spb,
            max_batch=max_batch,
            charge_prefill=False,
            wait_in_span=True,
        )
        out.ttft = {i: float(ttft[i]) for i in out.span}
        out.max_queue = max(out.max_queue, pre_max_queue)
        outcomes.append(out)
    return _assemble_stats(outcomes, outputs, slo, n)


def simulate_plan(
    llm: LLMConfig,
    system: System,
    plan: ServePlan,
    workload: ServeWorkload,
    *,
    slo: SLOSpec | None = None,
    max_batch: int | None = None,
) -> ServeStats:
    """Simulate any :class:`ServePlan` (dispatches on disaggregation)."""
    if plan.prefill is None:
        from .simulator import simulate_serve

        return simulate_serve(
            llm, system, plan.decode, workload, slo=slo, max_batch=max_batch
        )
    return simulate_disagg(
        llm, system, plan, workload, slo=slo, max_batch=max_batch
    )
