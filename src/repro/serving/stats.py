"""Serving-search metric names and typed run summaries.

Mirrors :mod:`repro.obs.stats`: the serve-search hot path only bumps
counters on an attached :class:`~repro.obs.metrics.MetricsRegistry`;
:class:`ServeSearchStats` reads them back afterwards as a typed summary.
The same ``serving.*`` names are incremented by the evaluation service's
``POST /serve`` endpoint, so they surface as ``repro_serving_*`` on the
Prometheus ``/metrics`` exposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..obs.metrics import MetricsRegistry

# -- serve-search metric names (``repro_serving_*`` after exposition) ---------
M_SERVE_CANDIDATES = "serving.candidates"
M_SERVE_SIMULATED = "serving.simulated"
M_SERVE_PRUNED = "serving.slo_pruned"
M_SERVE_VIOLATED = "serving.slo_violated"
M_SERVE_INFEASIBLE = "serving.infeasible"

# -- service-side serving metrics ---------------------------------------------
M_SERVE_REQUESTS = "serving.requests"
M_SERVE_SECONDS = "serving.seconds"

# -- inference deployment search ----------------------------------------------
M_DEPLOY_CANDIDATES = "deploy.candidates"
M_DEPLOY_FEASIBLE = "deploy.feasible"

__all__ = [
    "M_SERVE_CANDIDATES",
    "M_SERVE_SIMULATED",
    "M_SERVE_PRUNED",
    "M_SERVE_VIOLATED",
    "M_SERVE_INFEASIBLE",
    "M_SERVE_REQUESTS",
    "M_SERVE_SECONDS",
    "M_DEPLOY_CANDIDATES",
    "M_DEPLOY_FEASIBLE",
    "ServeSearchStats",
]


@dataclass(frozen=True)
class ServeSearchStats:
    """What one serve-search actually did, with fault-layer context.

    ``pruned`` counts candidates whose sound SLO lower bound already
    violated a target (they were never simulated — that is what keeps the
    search fast); ``violated`` counts candidates that *were* simulated and
    missed the SLO; ``infeasible`` counts candidates that could not hold
    even one request.  ``simulated + pruned + infeasible == candidates``
    for an untruncated run with no skipped chunks.
    """

    candidates: int = 0
    simulated: int = 0
    pruned: int = 0
    violated: int = 0
    infeasible: int = 0
    elapsed: float = 0.0
    workers: int = 1
    retries: int = 0
    skipped: tuple[tuple[int, int], ...] = ()
    resumed_chunks: int = 0
    truncated: bool = False

    @classmethod
    def from_metrics(
        cls,
        reg: "MetricsRegistry",
        *,
        elapsed: float = 0.0,
        workers: int = 1,
        retries: int = 0,
        skipped: tuple[tuple[int, int], ...] = (),
        resumed_chunks: int = 0,
        truncated: bool = False,
    ) -> "ServeSearchStats":
        return cls(
            candidates=int(reg.value(M_SERVE_CANDIDATES)),
            simulated=int(reg.value(M_SERVE_SIMULATED)),
            pruned=int(reg.value(M_SERVE_PRUNED)),
            violated=int(reg.value(M_SERVE_VIOLATED)),
            infeasible=int(reg.value(M_SERVE_INFEASIBLE)),
            elapsed=elapsed,
            workers=workers,
            retries=retries,
            skipped=skipped,
            resumed_chunks=resumed_chunks,
            truncated=truncated,
        )

    @property
    def prune_rate(self) -> float:
        """Fraction of serveable candidates skipped by the SLO bound."""
        pool = self.simulated + self.pruned
        return self.pruned / pool if pool else 0.0

    @property
    def num_skipped(self) -> int:
        return sum(stop - start for start, stop in self.skipped)

    @classmethod
    def merge(cls, items: Iterable["ServeSearchStats"]) -> "ServeSearchStats":
        items = list(items)
        if not items:
            return cls()
        return cls(
            candidates=sum(s.candidates for s in items),
            simulated=sum(s.simulated for s in items),
            pruned=sum(s.pruned for s in items),
            violated=sum(s.violated for s in items),
            infeasible=sum(s.infeasible for s in items),
            elapsed=sum(s.elapsed for s in items),
            workers=max(s.workers for s in items),
            retries=sum(s.retries for s in items),
            skipped=tuple(r for s in items for r in s.skipped),
            resumed_chunks=sum(s.resumed_chunks for s in items),
            truncated=any(s.truncated for s in items),
        )

    def summary(self) -> str:
        lines = [
            f"candidate plans       {self.candidates:,}",
            f"simulated             {self.simulated:,} "
            f"in {self.elapsed:.2f} s ({self.workers} "
            f"worker{'s' if self.workers != 1 else ''})",
            f"slo-bound pruned      {self.pruned:,} "
            f"({self.prune_rate * 100:.1f}% of serveable)",
            f"slo violated          {self.violated:,} (simulated, missed SLO)",
            f"infeasible            {self.infeasible:,}",
        ]
        if self.resumed_chunks:
            lines.append(f"resumed from journal  {self.resumed_chunks:,} chunks")
        if self.retries:
            lines.append(f"chunk retries         {self.retries:,}")
        if self.skipped:
            ranges = ", ".join(f"[{a}, {b})" for a, b in self.skipped)
            lines.append(
                f"skipped ranges        {ranges} ({self.num_skipped:,} plans)"
            )
        if self.truncated:
            lines.append("truncated             deadline hit; results are partial")
        return "\n".join(lines)
