"""Crash-safe filesystem helpers.

Every file this package writes — reports, CSV/JSON exports, Chrome traces,
checkpoint journals — goes through :func:`atomic_write_text`: the content is
written to a temporary file in the destination directory, flushed and
fsync'd, then moved over the target with ``os.replace``.  POSIX guarantees
the replace is atomic, so a reader (or a resumed run) sees either the old
complete file or the new complete file, never a truncated intermediate —
even if the writing process is killed mid-write.

This module is intentionally dependency-free (stdlib only, no intra-package
imports) so any subsystem — ``repro.obs``, ``repro.io``, ``repro.search`` —
can use it without creating import cycles.
"""

from __future__ import annotations

import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

logger = logging.getLogger(__name__)


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> Path:
    """Write ``text`` to ``path`` atomically; returns the path.

    The temporary file is created next to the destination (``os.replace``
    must not cross filesystems) and removed if anything fails before the
    final rename.  After the rename the parent directory is fsync'd too:
    ``os.replace`` updates a directory entry, and that update lives in the
    directory's own metadata — without the directory fsync a power failure
    can durably keep the *old* entry even though the new file's data blocks
    were synced.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(prefix=f".{path.name}.", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already replaced or never created
            pass
        raise
    fsync_dir(path.parent)
    return path


def iter_jsonl_lines(data: bytes) -> Iterator[tuple[int, int, bytes]]:
    """Yield ``(line_number, byte_offset, raw_line)`` for a JSONL blob.

    ``line_number`` is 1-based, ``byte_offset`` is the line's start within
    ``data``, and ``raw_line`` is stripped of the trailing newline but not
    decoded — the caller decides what a malformed line means.  Blank lines
    are skipped.  Tracking offsets (instead of ``str.splitlines``) is the
    point: a crash-torn trailing line can be reported by the exact byte
    where the damage starts.
    """
    pos = 0
    n = 0
    for raw in data.split(b"\n"):
        n += 1
        offset = pos
        pos += len(raw) + 1
        line = raw.strip()
        if line:
            yield n, offset, line


def report_torn_line(
    path: str | Path,
    line_number: int,
    byte_offset: int,
    line_bytes: int,
    events: Any = None,
    *,
    kind: str = "journal",
) -> None:
    """Log (and flight-record) one malformed JSONL line.

    ``events``, when given, must expose ``emit(kind, **fields)`` (an
    :class:`repro.obs.EventJournal`); a ``journal.torn`` event makes the
    damage visible in ``repro trace`` rollups instead of only in a log
    nobody tails.  ``kind`` tags which store was damaged ("journal",
    "cache-shard", ...).
    """
    logger.warning(
        "%s:%d: skipping malformed %s line at byte offset %d (%d bytes)",
        path, line_number, kind, byte_offset, line_bytes,
    )
    if events is not None:
        events.emit(
            "journal.torn",
            path=str(path),
            line=line_number,
            offset=byte_offset,
            bytes=line_bytes,
            store=kind,
        )


def fsync_dir(path: str | Path) -> bool:
    """Best-effort fsync of a directory; True when the sync happened.

    Directory fsync is a durability upgrade, not a correctness requirement:
    on filesystems or platforms where opening or fsyncing a directory fails
    (network mounts, some containers, non-POSIX systems), the atomic-rename
    semantics of :func:`atomic_write_text` still hold, so failures degrade
    to a debug log instead of an exception.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError as err:
        logger.debug("cannot open directory %s for fsync: %s", path, err)
        return False
    try:
        os.fsync(fd)
    except OSError as err:
        logger.debug("directory fsync of %s failed: %s", path, err)
        return False
    finally:
        os.close(fd)
    return True
