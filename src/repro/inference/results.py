"""Result structures for the inference model."""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..units import human_bytes, human_time


@dataclass(frozen=True)
class InferenceResult:
    """Serving statistics for one (LLM, system, strategy, request shape).

    Attributes:
        llm_name / system_name / strategy_name: identification.
        batch: concurrent sequences.
        prompt_len / generate_len: request shape in tokens.
        prefill_time: time to process the prompt (time to first token).
        decode_step_time: latency of one generation step at mid context.
        generate_time: total time to produce ``generate_len`` tokens.
        tokens_per_second: aggregate decode throughput across the batch
            (including pipeline-parallel request interleaving).
        weights_bytes: per-processor resident weights.
        kv_cache_bytes: per-processor KV cache at maximum context.
        mem_used: total tier-1 bytes used.
        feasible / infeasibility: capacity check outcome.
    """

    llm_name: str
    system_name: str
    strategy_name: str
    batch: int
    prompt_len: int
    generate_len: int
    prefill_time: float = 0.0
    decode_step_time: float = 0.0
    generate_time: float = 0.0
    tokens_per_second: float = 0.0
    weights_bytes: float = 0.0
    kv_cache_bytes: float = 0.0
    mem_used: float = 0.0
    feasible: bool = True
    infeasibility: str = ""

    def __post_init__(self) -> None:
        for f in fields(self):
            val = getattr(self, f.name)
            if isinstance(val, float) and val < 0:
                raise ValueError(f"InferenceResult.{f.name} must be non-negative")

    @property
    def request_latency(self) -> float:
        """End-to-end latency for one request (prefill + all decode steps)."""
        return self.prefill_time + self.generate_time

    def summary(self) -> str:
        lines = [
            f"{self.llm_name} inference on {self.system_name} "
            f"[{self.strategy_name}] batch={self.batch} "
            f"prompt={self.prompt_len} gen={self.generate_len}"
        ]
        if not self.feasible:
            lines.append(f"  INFEASIBLE: {self.infeasibility}")
            return "\n".join(lines)
        lines += [
            f"  time to first token  {human_time(self.prefill_time)}",
            f"  per-token latency    {human_time(self.decode_step_time)}",
            f"  request latency      {human_time(self.request_latency)}",
            f"  decode throughput    {self.tokens_per_second:,.0f} tokens/s",
            f"  weights {human_bytes(self.weights_bytes)}   "
            f"KV cache {human_bytes(self.kv_cache_bytes)}   "
            f"total {human_bytes(self.mem_used)}",
        ]
        return "\n".join(lines)

    @classmethod
    def infeasible(
        cls,
        llm_name: str,
        system_name: str,
        strategy_name: str,
        batch: int,
        prompt_len: int,
        generate_len: int,
        reason: str,
    ) -> "InferenceResult":
        return cls(
            llm_name=llm_name,
            system_name=system_name,
            strategy_name=strategy_name,
            batch=batch,
            prompt_len=prompt_len,
            generate_len=generate_len,
            feasible=False,
            infeasibility=reason,
        )
