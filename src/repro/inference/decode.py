"""Decode-phase (autoregressive generation) block model.

Training and prefill process whole sequences; generation processes one token
per step while attending over a growing KV cache.  The decode block is
memory-bandwidth-bound: every step re-reads the block's weights and the
entire cache, so its analytical profile differs sharply from the training
block (GEMV-shaped ops, latency-dominated TP collectives).

The paper includes inference optimizations in its survey (§2.3, refs [1, 35]);
this module provides the decode-side substrate for those analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.config import LLMConfig


@dataclass(frozen=True)
class DecodeBlockProfile:
    """Per-step, per-block figures for a decode iteration on one processor.

    All values are per transformer block for a whole decode batch of
    ``batch`` sequences at context length ``context``, already sharded over
    the tensor-parallel degree.
    """

    flops: float  # matrix-engine FLOPs per step
    weight_read_bytes: float  # streamed weights per step
    cache_read_bytes: float  # KV cache read per step
    cache_write_bytes: float  # new K/V entries appended per step
    activation_bytes: float  # transient activations moved per step
    vector_flops: float  # element-wise work per step
    tp_comm_bytes: float  # per all-reduce payload
    tp_comm_count: int  # all-reduces per block per step

    @property
    def traffic(self) -> float:
        """Total tier-1 memory traffic per step."""
        return (
            self.weight_read_bytes
            + self.cache_read_bytes
            + self.cache_write_bytes
            + self.activation_bytes
        )


def kv_cache_bytes(
    llm: LLMConfig, batch: int, context: int, tensor_par: int = 1
) -> float:
    """KV-cache footprint per processor for the whole model.

    Two tensors (K and V) of shape ``[batch, context, hidden/t]`` per block.
    """
    if batch < 1 or context < 0 or tensor_par < 1:
        raise ValueError("batch >= 1, context >= 0, tensor_par >= 1 required")
    per_block = 2.0 * batch * context * llm.hidden * llm.bytes_per_element / tensor_par
    return per_block * llm.num_blocks


def profile_decode_block(
    llm: LLMConfig,
    *,
    batch: int,
    context: int,
    tensor_par: int = 1,
) -> DecodeBlockProfile:
    """Analytical profile of one decode step through one transformer block.

    Args:
        llm: model hyperparameters.
        batch: sequences decoded concurrently.
        context: current context length (tokens attended over).
        tensor_par: tensor-parallel degree.

    Raises:
        ValueError: on non-positive batch/context or non-dividing ``t``.
    """
    h, f, a = llm.hidden, llm.feedforward, llm.attn_heads
    t, e = tensor_par, llm.bytes_per_element
    if batch < 1 or context < 1:
        raise ValueError("batch and context must be >= 1")
    if a % t or h % t or f % t:
        raise ValueError(f"tensor_par={t} must divide the model shape")

    # GEMV-shaped projections: QKV (h x 3h/t), out (h/t x h), MLP (h x f/t,
    # f/t x h).  FLOPs are 2 * B * (in x out); weights stream once per step.
    proj_flops = 2.0 * batch * (h * 3 * h + h * h + 2 * h * f) / t
    weight_bytes = (3 * h * h + h * h + 2 * h * f) * e / t

    # Attention over the cache: QK^T and AV, each 2 * B * c * h / t FLOPs.
    attn_flops = 2.0 * 2.0 * batch * context * h / t
    cache_read = 2.0 * batch * context * h * e / t  # K and V, full context
    cache_write = 2.0 * batch * h * e / t  # append one K and one V row

    # Element-wise work: 2 LNs, softmax over [B, a/t, c], GeLU over [B, f/t],
    # dropouts disabled at inference.
    vector_flops = (
        7.0 * 2 * batch * h / t
        + 5.0 * batch * (a / t) * context
        + 8.0 * batch * f / t
        + 2.0 * batch * h / t  # residual adds
    )
    activation_bytes = batch * (6 * h + 2 * f) * e / t  # transient tensors

    return DecodeBlockProfile(
        flops=proj_flops + attn_flops,
        weight_read_bytes=weight_bytes,
        cache_read_bytes=cache_read,
        cache_write_bytes=cache_write,
        activation_bytes=activation_bytes,
        vector_flops=vector_flops,
        tp_comm_bytes=batch * h * e,
        tp_comm_count=2 if t > 1 else 0,
    )
