"""Continuous-batching serving simulator.

The analytical serving model (:mod:`repro.inference.model`) answers
steady-state questions; real serving systems face *queueing*: requests
arrive stochastically, join the running batch between decode iterations
(continuous batching), and leave when their generation completes.  This
iteration-level simulator drives the analytical decode-step model with a
Poisson arrival process and measures end-to-end request latency and
sustained throughput — the numbers a capacity planner actually needs.

Marked as an extension: the paper's model covers the per-step costs; the
queueing dynamics are this reproduction's addition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.system import System
from ..llm.config import LLMConfig
from .decode import kv_cache_bytes, profile_decode_block
from .model import InferenceStrategy, calculate_inference


@dataclass(frozen=True)
class ServingWorkload:
    """The offered load."""

    arrival_rate: float  # requests per second (Poisson)
    prompt_len: int = 2048
    generate_len: int = 256
    num_requests: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.prompt_len < 1 or self.generate_len < 1:
            raise ValueError("prompt_len and generate_len must be >= 1")
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")


@dataclass(frozen=True)
class ServingStats:
    """Measured behaviour of the simulated server."""

    completed: int
    duration: float
    throughput_rps: float  # completed requests per second
    tokens_per_second: float
    mean_latency: float
    p95_latency: float
    mean_batch: float  # average decode-batch occupancy
    max_queue: int

    def __post_init__(self) -> None:
        if self.completed < 0 or self.duration < 0:
            raise ValueError("stats must be non-negative")


def _decode_step_time(
    llm: LLMConfig, system: System, strategy: InferenceStrategy,
    batch: int, context: int,
) -> float:
    """One decode iteration for ``batch`` sequences at ``context`` length."""
    prof = profile_decode_block(
        llm, batch=batch, context=max(context, 1),
        tensor_par=strategy.tensor_par,
    )
    proc, hbm = system.processor, system.mem1
    compute = proc.compute_time("matrix", prof.flops)
    vector = proc.compute_time("vector", prof.vector_flops)
    memory = hbm.access_time(prof.traffic)
    block = max(compute + vector, memory)
    comm = 0.0
    if strategy.tensor_par > 1:
        net = system.network_for_span(strategy.tensor_par)
        comm = prof.tp_comm_count * net.collective_time(
            "all_reduce", prof.tp_comm_bytes, strategy.tensor_par
        )
    return llm.num_blocks * (block + comm)


def simulate_serving(
    llm: LLMConfig,
    system: System,
    strategy: InferenceStrategy,
    workload: ServingWorkload,
    *,
    max_batch: int | None = None,
) -> ServingStats:
    """Run the continuous-batching simulation.

    Admission control: a queued request joins the batch between iterations
    when both the batch slot and its full KV-cache reservation fit in HBM
    (weights + every active request's maximum context).  Joining charges the
    request's prefill time (chunked prefill: the batch stalls for it, a
    conservative single-queue model).

    Raises:
        ValueError: if even a single request cannot fit.
    """
    total_ctx = workload.prompt_len + workload.generate_len
    single = calculate_inference(
        llm, system, strategy,
        prompt_len=workload.prompt_len, generate_len=workload.generate_len,
    )
    if not single.feasible:
        raise ValueError(f"one request does not fit: {single.infeasibility}")

    # Capacity: how many concurrent requests' KV caches fit beside weights?
    bpstage = -(-llm.num_blocks // strategy.pipeline_par)
    per_request_cache = (
        kv_cache_bytes(llm, 1, total_ctx, strategy.tensor_par)
        * bpstage / llm.num_blocks
    )
    budget = system.mem1.capacity - single.weights_bytes
    capacity = max(1, int(budget // per_request_cache))
    if max_batch is not None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        capacity = min(capacity, max_batch)

    rng = np.random.default_rng(workload.seed)
    arrivals = np.cumsum(
        rng.exponential(1.0 / workload.arrival_rate, workload.num_requests)
    )
    prefill_each = single.prefill_time

    now = 0.0
    next_arrival = 0
    queue: list[int] = []  # request ids waiting
    active: dict[int, int] = {}  # request id -> tokens generated
    done_at: dict[int, float] = {}
    batch_occupancy_time = 0.0
    max_queue = 0

    while len(done_at) < workload.num_requests:
        # Pull in everything that has arrived by now.
        while next_arrival < workload.num_requests and arrivals[next_arrival] <= now:
            queue.append(next_arrival)
            next_arrival += 1
        max_queue = max(max_queue, len(queue))

        # Admit up to capacity; each admission charges its prefill.
        while queue and len(active) < capacity:
            rid = queue.pop(0)
            now = max(now, arrivals[rid]) + prefill_each
            active[rid] = 0

        if not active:
            # Idle: jump to the next arrival.
            if next_arrival < workload.num_requests:
                now = max(now, arrivals[next_arrival])
                continue
            break

        # One decode iteration for the whole running batch.
        avg_ctx = workload.prompt_len + int(
            sum(active.values()) / len(active)
        )
        step = _decode_step_time(llm, system, strategy, len(active), avg_ctx)
        now += step
        batch_occupancy_time += step * len(active)
        finished = []
        for rid in active:
            active[rid] += 1
            if active[rid] >= workload.generate_len:
                finished.append(rid)
        for rid in finished:
            del active[rid]
            done_at[rid] = now

    latencies = np.array(
        [done_at[i] - arrivals[i] for i in range(workload.num_requests)
         if i in done_at]
    )
    duration = now if now > 0 else 1e-12
    total_tokens = len(done_at) * workload.generate_len
    return ServingStats(
        completed=len(done_at),
        duration=duration,
        throughput_rps=len(done_at) / duration,
        tokens_per_second=total_tokens / duration,
        mean_latency=float(latencies.mean()) if latencies.size else 0.0,
        p95_latency=float(np.percentile(latencies, 95)) if latencies.size else 0.0,
        mean_batch=batch_occupancy_time / duration,
        max_queue=max_queue,
    )
