"""Inference (serving) model: prefill + KV-cache decode phases."""

from .batching import ServingStats, ServingWorkload, simulate_serving
from .decode import DecodeBlockProfile, kv_cache_bytes, profile_decode_block
from .model import InferenceStrategy, calculate_inference
from .results import InferenceResult
from .search import DeploymentPoint, candidate_deployments, search_deployments

__all__ = [
    "DecodeBlockProfile",
    "DeploymentPoint",
    "ServingStats",
    "ServingWorkload",
    "simulate_serving",
    "candidate_deployments",
    "search_deployments",
    "InferenceResult",
    "InferenceStrategy",
    "calculate_inference",
    "kv_cache_bytes",
    "profile_decode_block",
]
