"""Serving-deployment search: the inference counterpart of §5.1.

Given a model, a pool of processors and a request shape, enumerate the
(t, p, d, batch) deployment space and return the feasible frontier between
latency and throughput (no single "best" exists for serving — interactive
workloads buy latency, batch workloads buy tokens per second per GPU).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from ..analysis.pareto import Objective, pareto_front
from ..execution.strategy import divisors
from ..hardware.system import System
from ..llm.config import LLMConfig
from .model import InferenceStrategy, calculate_inference
from .results import InferenceResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import EventJournal, MetricsRegistry, Tracer


@dataclass(frozen=True)
class DeploymentPoint:
    """One evaluated serving deployment."""

    strategy: InferenceStrategy
    result: InferenceResult

    @property
    def tokens_per_second_per_proc(self) -> float:
        return self.result.tokens_per_second / self.strategy.num_procs


def candidate_deployments(
    llm: LLMConfig,
    system: System,
    *,
    batches: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    max_tensor_par: int = 64,
):
    """Yield every (t, p, d, batch) deployment for the processor pool."""
    n = system.num_procs
    for t in divisors(n):
        if t > min(max_tensor_par, llm.attn_heads) or llm.attn_heads % t:
            continue
        if llm.hidden % t or llm.feedforward % t:
            continue
        rest = n // t
        for p in divisors(rest):
            if p > llm.num_blocks:
                continue
            d = rest // p
            for batch in batches:
                yield InferenceStrategy(
                    tensor_par=t, pipeline_par=p, data_par=d, batch=batch
                )


def search_deployments(
    llm: LLMConfig,
    system: System,
    *,
    prompt_len: int = 2048,
    generate_len: int = 256,
    batches: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    max_tensor_par: int = 64,
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
    events: "EventJournal | None" = None,
) -> list[DeploymentPoint]:
    """Evaluate every deployment; return the latency/throughput Pareto front.

    The front is sorted fastest-decode first.  An empty list means nothing
    fits (e.g. the model's weights exceed the pool's total HBM).

    Observability mirrors the training search: ``tracer`` records one
    ``search_deployments`` span, ``metrics`` counts candidates and feasible
    deployments (``deploy.candidates`` / ``deploy.feasible``), and
    ``events`` brackets the sweep with ``deployments.start`` /
    ``deployments.done`` journal lines.
    """
    t0 = perf_counter()
    if events is not None:
        events.emit(
            "deployments.start", llm=llm.name, system=system.name,
            prompt_len=prompt_len, generate_len=generate_len,
        )
    candidates = 0
    points = []
    for strat in candidate_deployments(
        llm, system, batches=batches, max_tensor_par=max_tensor_par
    ):
        candidates += 1
        res = calculate_inference(
            llm, system, strat, prompt_len=prompt_len, generate_len=generate_len
        )
        if res.feasible and res.tokens_per_second > 0:
            points.append(DeploymentPoint(strategy=strat, result=res))
    if metrics is not None:
        from ..serving.stats import M_DEPLOY_CANDIDATES, M_DEPLOY_FEASIBLE

        metrics.inc(M_DEPLOY_CANDIDATES, candidates)
        metrics.inc(M_DEPLOY_FEASIBLE, len(points))
    objectives = (
        Objective("latency", key=lambda p: p.result.decode_step_time,
                  maximize=False),
        Objective("throughput", key=lambda p: p.result.tokens_per_second,
                  maximize=True),
    )
    front = pareto_front(points, objectives)
    front.sort(key=lambda p: p.result.decode_step_time)
    elapsed = perf_counter() - t0
    if tracer is not None:
        tracer.add_span(
            "search_deployments", "inference.search", t0, elapsed,
            candidates=candidates, feasible=len(points), front=len(front),
        )
    if events is not None:
        events.emit(
            "deployments.done", seconds=elapsed, candidates=candidates,
            feasible=len(points), front=len(front),
        )
    return front
