"""Analytical inference (serving) model.

Mirrors the training model's structure: one block is profiled and reused for
all blocks.  A request is served in two phases — *prefill* (the prompt moves
through the model as a full sequence, compute-bound, identical to a training
forward pass) and *decode* (one token per step over a growing KV cache,
memory-bound).  With pipeline parallelism, independent request batches are
interleaved across stages, so throughput scales with ``p`` while per-token
latency does not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.flops import layer_fw_time
from ..hardware.system import System
from ..llm.blocks import build_block
from ..llm.config import LLMConfig
from .decode import kv_cache_bytes, profile_decode_block
from .results import InferenceResult


@dataclass(frozen=True)
class InferenceStrategy:
    """How a model is deployed for serving.

    Attributes:
        tensor_par: TP degree within a serving replica.
        pipeline_par: PP degree within a replica.
        data_par: number of independent replicas (throughput multiplier).
        batch: concurrent sequences per replica.
        pipelined_requests: keep ``pipeline_par`` batches in flight so every
            stage is busy (throughput mode); otherwise a single batch ping-
            pongs through the pipeline (latency mode).
    """

    tensor_par: int
    pipeline_par: int
    data_par: int = 1
    batch: int = 1
    pipelined_requests: bool = True

    @property
    def num_procs(self) -> int:
        return self.tensor_par * self.pipeline_par * self.data_par

    def short_name(self) -> str:
        return f"t{self.tensor_par}p{self.pipeline_par}d{self.data_par}b{self.batch}"

    def validate(self, llm: LLMConfig, system: System) -> None:
        if min(self.tensor_par, self.pipeline_par, self.data_par) < 1:
            raise ValueError("t, p, d must be >= 1")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        if self.num_procs != system.num_procs:
            raise ValueError(
                f"t*p*d = {self.num_procs} != system size {system.num_procs}"
            )
        if llm.attn_heads % self.tensor_par or llm.hidden % self.tensor_par:
            raise ValueError("tensor_par must divide the model shape")
        if self.pipeline_par > llm.num_blocks:
            raise ValueError("pipeline_par exceeds the block count")


def calculate_inference(
    llm: LLMConfig,
    system: System,
    strategy: InferenceStrategy,
    *,
    prompt_len: int = 2048,
    generate_len: int = 256,
) -> InferenceResult:
    """Estimate serving statistics for one deployment.

    Returns an infeasible result (never raises) for capacity violations, so
    deployment searches can sweep freely; genuine misconfiguration (shape
    mismatches) raises ``ValueError``.
    """
    strategy.validate(llm, system)
    if prompt_len < 1 or generate_len < 0:
        raise ValueError("prompt_len >= 1 and generate_len >= 0 required")

    t, p, d = strategy.tensor_par, strategy.pipeline_par, strategy.data_par
    B = strategy.batch
    L = llm.num_blocks
    bpstage = math.ceil(L / p)
    proc, hbm = system.processor, system.mem1
    tp_net = system.network_for_span(t) if t > 1 else None
    pp_net = system.network_for_span(min(system.num_procs, t * p)) if p > 1 else None

    # ---- prefill: a training-style forward pass over the prompt ------------
    prefill_cfg = llm.with_seq(prompt_len)
    block = build_block(prefill_cfg, microbatch=B, tensor_par=t, seq_par=False)
    fw_block = sum(layer_fw_time(proc, hbm, l).total for l in block.layers)
    tp_block = (
        sum(tp_net.collective_time(c.op, c.nbytes, t) for c in block.tp_comm_fw)
        if tp_net
        else 0.0
    )
    prefill = L * (fw_block + tp_block)
    if pp_net is not None:
        p2p_bytes = B * prompt_len * llm.hidden * llm.bytes_per_element
        prefill += (p - 1) * pp_net.collective_time("p2p", p2p_bytes, 2)

    # ---- decode: one token per step at mid-generation context --------------
    context = prompt_len + max(generate_len, 1) // 2
    dec = profile_decode_block(llm, batch=B, context=context, tensor_par=t)
    compute = proc.compute_time("matrix", dec.flops)
    vector = proc.compute_time("vector", dec.vector_flops)
    memory = hbm.access_time(dec.traffic)
    block_step = max(compute + vector, memory)
    comm_step = (
        dec.tp_comm_count * tp_net.collective_time("all_reduce", dec.tp_comm_bytes, t)
        if tp_net
        else 0.0
    )
    step = L * (block_step + comm_step)
    if pp_net is not None:
        hop_bytes = B * llm.hidden * llm.bytes_per_element
        step += p * pp_net.collective_time("p2p", hop_bytes, 2)

    generate_time = generate_len * step
    # Pipelined serving keeps p request batches in flight: one batch-step
    # completes per stage-time.
    effective_batches = p if (strategy.pipelined_requests and p > 1) else 1
    tokens_per_second = (
        B * effective_batches * d / step if step > 0 and generate_len > 0 else 0.0
    )

    # ---- memory -------------------------------------------------------------
    weights = bpstage * block.weight_bytes()
    cache = (
        kv_cache_bytes(llm, B, prompt_len + generate_len, t) * bpstage / L
    ) * effective_batches
    transient = dec.activation_bytes * 2
    total = weights + cache + transient

    if total > system.mem1.capacity:
        return InferenceResult.infeasible(
            llm.name,
            system.name,
            strategy.short_name(),
            B,
            prompt_len,
            generate_len,
            f"memory {total / 2**30:.1f} GiB exceeds capacity "
            f"{system.mem1.capacity / 2**30:.1f} GiB",
        )

    return InferenceResult(
        llm_name=llm.name,
        system_name=system.name,
        strategy_name=strategy.short_name(),
        batch=B,
        prompt_len=prompt_len,
        generate_len=generate_len,
        prefill_time=prefill,
        decode_step_time=step,
        generate_time=generate_time,
        tokens_per_second=tokens_per_second,
        weights_bytes=weights,
        kv_cache_bytes=cache,
        mem_used=total,
    )
