"""Unit conversion helpers shared across the library.

All internal computation uses base SI units: bytes, seconds, FLOPs and
FLOP/s.  Capacities reported to users follow the paper's convention of
binary prefixes for memory capacity (GiB) and decimal prefixes for
bandwidth (GB/s) and compute throughput (TFLOP/s).
"""

from __future__ import annotations

# -- binary capacity prefixes ------------------------------------------------
KiB: int = 1024
MiB: int = 1024**2
GiB: int = 1024**3
TiB: int = 1024**4

# -- decimal bandwidth / rate prefixes ---------------------------------------
KB: int = 10**3
MB: int = 10**6
GB: int = 10**9
TB: int = 10**12

KFLOPS: int = 10**3
MFLOPS: int = 10**6
GFLOPS: int = 10**9
TFLOPS: int = 10**12
PFLOPS: int = 10**15

ZETTA: int = 10**21


def gib(nbytes: float) -> float:
    """Convert bytes to GiB."""
    return nbytes / GiB


def tib(nbytes: float) -> float:
    """Convert bytes to TiB."""
    return nbytes / TiB


def gbps(bytes_per_sec: float) -> float:
    """Convert bytes/second to GB/s (decimal)."""
    return bytes_per_sec / GB


def tflops(flops_per_sec: float) -> float:
    """Convert FLOP/s to TFLOP/s."""
    return flops_per_sec / TFLOPS


def human_bytes(nbytes: float) -> str:
    """Render a byte count with an appropriate binary prefix (e.g. '17.4 GiB')."""
    if nbytes < 0:
        raise ValueError(f"byte count must be non-negative, got {nbytes}")
    for limit, suffix in ((TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if nbytes >= limit:
            return f"{nbytes / limit:.2f} {suffix}"
    return f"{nbytes:.0f} B"


def human_rate(bytes_per_sec: float) -> str:
    """Render a bandwidth with an appropriate decimal prefix (e.g. '100 GB/s')."""
    if bytes_per_sec < 0:
        raise ValueError(f"rate must be non-negative, got {bytes_per_sec}")
    for limit, suffix in ((TB, "TB/s"), (GB, "GB/s"), (MB, "MB/s"), (KB, "KB/s")):
        if bytes_per_sec >= limit:
            return f"{bytes_per_sec / limit:.2f} {suffix}"
    return f"{bytes_per_sec:.0f} B/s"


def human_flops(flops: float) -> str:
    """Render a FLOP count (e.g. '1.23 ZFLOP', '312 TFLOP')."""
    if flops < 0:
        raise ValueError(f"FLOP count must be non-negative, got {flops}")
    for limit, suffix in (
        (ZETTA, "ZFLOP"),
        (10**18, "EFLOP"),
        (PFLOPS, "PFLOP"),
        (TFLOPS, "TFLOP"),
        (GFLOPS, "GFLOP"),
        (MFLOPS, "MFLOP"),
    ):
        if flops >= limit:
            return f"{flops / limit:.2f} {suffix}"
    return f"{flops:.0f} FLOP"


def human_time(seconds: float) -> str:
    """Render a duration (e.g. '16.7 s', '3.2 ms')."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds >= 1.0:
        return f"{seconds:.3g} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3g} us"
    return f"{seconds * 1e9:.3g} ns"
