"""CI end-to-end check of the evaluation service over real HTTP.

Boots ``python -m repro serve`` as a subprocess, fires cold, warm and
concurrent-identical requests through :class:`repro.service.ServiceClient`,
asserts ``/healthz`` and the cache-hit/coalescing metrics, SIGTERMs the
server and verifies the graceful drain (exit code 0).  Latency and
coalescing measurements land in ``BENCH_service.json`` for the artifact
upload.

Startup is failure-first: a reader thread captures everything the server
writes to stderr while the harness waits (with a deadline) for the URL
banner and then for ``/healthz``.  If the server dies or never comes up,
the check exits immediately with the captured stderr in the failure
message instead of hanging on a pipe read and leaving CI to time out
with no diagnostics.

Run from the repository root:  PYTHONPATH=src python .github/ci_service_check.py
"""

import json
import os
import signal
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.execution import ExecutionStrategy
from repro.fsutil import atomic_write_text
from repro.service import ServiceClient

STRATEGY = ExecutionStrategy(
    tensor_par=8, pipeline_par=8, data_par=1, batch=64, recompute="full"
)
N_CLIENTS = 8
STARTUP_DEADLINE_S = 30.0


def _startup_failure(why: str, captured: list) -> SystemExit:
    """Build the fail-fast exit carrying everything the server said."""
    stderr = "".join(captured).strip() or "<no stderr captured>"
    return SystemExit(
        f"service startup failed: {why}\n"
        f"--- captured server stderr ---\n{stderr}"
    )


def _await_banner(proc, captured: list, banner_seen: threading.Event) -> str:
    """Wait for the serve URL banner, failing fast if the server dies."""
    deadline = time.monotonic() + STARTUP_DEADLINE_S
    while time.monotonic() < deadline:
        if banner_seen.is_set():
            banner = next(line for line in captured if "http://" in line)
            return "http://" + banner.split("http://", 1)[1].split()[0]
        if proc.poll() is not None:
            raise _startup_failure(
                f"server exited {proc.returncode} before announcing its URL",
                captured,
            )
        time.sleep(0.05)
    raise _startup_failure(
        f"no URL banner within {STARTUP_DEADLINE_S:.0f}s", captured
    )


def _await_healthz(client, proc, captured: list) -> dict:
    """Poll ``/healthz`` until it answers, failing fast with stderr."""
    deadline = time.monotonic() + STARTUP_DEADLINE_S
    last_err: Exception | None = None
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise _startup_failure(
                f"server exited {proc.returncode} before /healthz came up",
                captured,
            )
        try:
            return client.healthz()
        except Exception as err:
            last_err = err
            time.sleep(0.1)
    raise _startup_failure(
        f"/healthz never came up within {STARTUP_DEADLINE_S:.0f}s "
        f"(last error: {last_err})",
        captured,
    )


def main() -> int:
    env = dict(os.environ, PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", "service-cache"],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    # Drain stderr continuously: the banner wait can't deadlock on a full
    # pipe, and on any startup failure the whole log is in the exit message.
    captured: list = []
    banner_seen = threading.Event()

    def _reader():
        for line in proc.stderr:
            captured.append(line)
            if "http://" in line:
                banner_seen.set()

    threading.Thread(target=_reader, daemon=True).start()
    try:
        url = _await_banner(proc, captured, banner_seen)
        client = ServiceClient(url)
        print(f"service up at {url}")

        health = _await_healthz(client, proc, captured)
        assert health["status"] == "ok", health

        # -- cold ------------------------------------------------------------
        t0 = time.perf_counter()
        cold = client.evaluate("gpt3-175b", "a100:64", STRATEGY)
        cold_s = time.perf_counter() - t0
        assert cold["cache"] == "miss", cold["cache"]
        assert cold["result"]["feasible"] is True

        # -- warm ------------------------------------------------------------
        warm_times = []
        for _ in range(10):
            t0 = time.perf_counter()
            warm = client.evaluate("gpt3-175b", "a100:64", STRATEGY)
            warm_times.append(time.perf_counter() - t0)
            assert warm["cache"] == "memory", warm["cache"]
        warm_s = statistics.median(warm_times)

        # -- concurrent identical queries ------------------------------------
        slow = STRATEGY.evolve(microbatch=16)
        barrier = threading.Barrier(N_CLIENTS)
        sources, errors = [], []

        def worker():
            try:
                barrier.wait(timeout=10)
                sources.append(client.evaluate("gpt3-175b", "a100:64", slow)["cache"])
            except Exception as err:
                errors.append(err)

        threads = [threading.Thread(target=worker) for _ in range(N_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors

        # -- metrics ---------------------------------------------------------
        hits = client.metric_value("repro_service_cache_hit_memory")
        coalesced = client.metric_value("repro_service_coalesced")
        requests = client.metric_value("repro_service_requests")
        assert hits >= 10, f"expected >= 10 memory hits, metrics report {hits}"
        assert requests >= N_CLIENTS + 11, requests

        # Request-latency histogram: one observation per request handled,
        # cumulative buckets up to +Inf, and a non-zero total.
        latency_count = client.metric_value("repro_service_request_seconds_count")
        latency_sum = client.metric_value("repro_service_request_seconds_sum")
        assert latency_count >= 11, latency_count
        assert latency_sum > 0.0, latency_sum
        exposition = client.metrics_text()
        assert "# TYPE repro_service_request_seconds histogram" in exposition
        assert 'repro_service_request_seconds_bucket{le="+Inf"}' in exposition

        # Hit-ratio gauge: 10 warm hits against a handful of misses.
        hit_ratio = client.metric_value("repro_service_cache_hit_ratio")
        assert 0.0 < hit_ratio < 1.0, hit_ratio
        served_cold = sources.count("miss")
        assert served_cold == 1, f"expected 1 leader, saw {sources}"
        coalescing_factor = N_CLIENTS / served_cold

        print(f"cold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.2f} ms "
              f"(speedup {cold_s / warm_s:.1f}x over HTTP)")
        print(f"{N_CLIENTS} concurrent identical queries -> sources {sources} "
              f"(coalesced metric {coalesced:.0f})")

        atomic_write_text(
            Path("BENCH_service.json"),
            json.dumps(
                {
                    "transport": "http",
                    "cold_s": cold_s,
                    "warm_median_s": warm_s,
                    "http_warm_speedup": cold_s / warm_s,
                    "concurrent_clients": N_CLIENTS,
                    "leader_requests": served_cold,
                    "coalesced_requests": coalesced,
                    "coalescing_factor": coalescing_factor,
                    "cache_memory_hits": hits,
                    "cache_hit_ratio": hit_ratio,
                    "request_latency_count": latency_count,
                    "request_latency_mean_s": latency_sum / latency_count,
                },
                indent=1,
            )
            + "\n",
        )

        # -- graceful drain on SIGTERM ---------------------------------------
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        assert rc == 0, f"server exited {rc} on SIGTERM"
        print("SIGTERM drained cleanly (exit 0)")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
