"""Benchmark-trend gate: fail CI when a headline speedup regresses >25%.

The observability job regenerates ``BENCH_engine.json`` in the working tree
(the bounds, pruning and columnar benchmarks each merge their key group);
this script then compares the fresh headline ratios against the committed
baseline (``git show <ref>:BENCH_engine.json``) and fails the job when one
has fallen by more than the tolerance.  Speedups are same-process ratios,
so they are meaningful across runner generations in a way absolute
seconds are not — but they are still scheduler noise on a single-core
host, where "parallel" work is merely time-sliced.  The gate therefore:

* skips entirely when the runner has fewer than 2 cores;
* skips a key whose *fresh* group was measured on fewer than 2 cores
  (``merge_bench`` tags every group with ``{group}_bench_cores``);
* treats a key present in the baseline but missing from the fresh record
  as a failure — a silently dropped benchmark must not pass the gate.

Run from the repository root:  python .github/ci_bench_trend.py
"""

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

# key -> the merge_bench group whose core tag qualifies its measurement
GATED_KEYS = {
    "columnar_speedup": "columnar",
    "speedup": "bounds",
}
DEFAULT_TOLERANCE = 0.25


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--record", default="BENCH_engine.json",
                    help="freshly regenerated benchmark record")
    ap.add_argument("--baseline-ref", default="HEAD",
                    help="git ref holding the committed baseline record")
    ap.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                    help="allowed fractional drop before failing (0.25 = 25%%)")
    args = ap.parse_args(argv)

    host_cores = os.cpu_count() or 1
    if host_cores < 2:
        print(f"[bench-trend] single-core host ({host_cores} core): "
              "speedup trends are scheduler noise here — skipping gate")
        return 0

    record_path = Path(args.record)
    if not record_path.exists():
        print(f"::error::[bench-trend] {record_path} was not regenerated "
              "before the gate ran", file=sys.stderr)
        return 1
    fresh = json.loads(record_path.read_text())

    proc = subprocess.run(
        ["git", "show", f"{args.baseline_ref}:{args.record}"],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        print(f"[bench-trend] no committed {args.record} at "
              f"{args.baseline_ref} — first run, nothing to compare")
        return 0
    baseline = json.loads(proc.stdout)

    failures: list[str] = []
    for key, group in GATED_KEYS.items():
        base = baseline.get(key)
        if base is None:
            print(f"[bench-trend] {key}: not in baseline (new metric), skipped")
            continue
        fresh_cores = int(fresh.get(f"{group}_bench_cores") or 0)
        if 0 < fresh_cores < 2:
            # merge_bench either refused the merge or tagged a single-core
            # measurement; either way the fresh number can't gate a trend.
            print(f"[bench-trend] {key}: fresh {group} group measured on "
                  f"{fresh_cores} core, skipped")
            continue
        cur = fresh.get(key)
        if cur is None:
            failures.append(
                f"{key}: baseline {base:.2f}x but missing from the fresh "
                "record — the benchmark silently stopped reporting it"
            )
            continue
        floor = base * (1.0 - args.tolerance)
        ok = cur >= floor
        print(f"[bench-trend] {key}: baseline {base:.2f}x -> fresh "
              f"{cur:.2f}x (floor {floor:.2f}x) "
              f"{'OK' if ok else 'REGRESSION'}")
        if not ok:
            failures.append(
                f"{key} regressed {1.0 - cur / base:.0%}: "
                f"{base:.2f}x -> {cur:.2f}x (tolerance {args.tolerance:.0%})"
            )

    for failure in failures:
        print(f"::error::[bench-trend] {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
