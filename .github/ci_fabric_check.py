"""CI kill-and-resume drill for the distributed search fabric.

Runs the GPT-3 175B / a100:4096 joint sweep on a 3-worker local cluster
with real worker subprocesses and a checkpointed coordinator, then proves
the fabric's two core claims under an induced fault:

1. **Work stealing survives worker death.**  One worker is started with
   ``REPRO_FABRIC_HOLD_AT_LEASE`` so it wedges mid-lease at a known point
   (~50% through its share); the harness waits for its ``HOLDING`` marker
   on stdout and SIGKILLs it.  The lease must expire, the worker must be
   declared dead, and a survivor must steal and finish the chunk.
2. **The answer is unchanged.**  The merged top-k must be bit-identical —
   same strategies, float-for-float equal results — to an uninterrupted
   single-process search of the same space.

The flight-recorder journal, the merged Chrome trace (coordinator +
surviving workers stitched by trace id) and the checkpoint journal are
left in ``fabric-artifacts/`` for the CI artifact upload; headline
numbers land in ``BENCH_fabric.json``.

Run from the repository root:  PYTHONPATH=src python .github/ci_fabric_check.py
"""

import json
import math
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.fabric import make_fabric_server
from repro.fsutil import atomic_write_text
from repro.io.specs import llm_from_spec, system_from_spec
from repro.obs import EventJournal, Tracer, read_events, validate_events_file
from repro.search import SearchOptions, search

WORKERS = 3
TOP_K = 10
BATCH = 4096
LEASE_TIMEOUT_S = 5.0
HOLD_AT_LEASE = 2  # the victim wedges on its 2nd lease: ~50% of its share
STARTUP_DEADLINE_S = 60.0
ARTIFACT_DIR = Path("fabric-artifacts")


def _spawn_worker(url: str, index: int, *, hold: bool) -> subprocess.Popen:
    env = dict(os.environ, PYTHONUNBUFFERED="1")
    if hold:
        env["REPRO_FABRIC_HOLD_AT_LEASE"] = str(HOLD_AT_LEASE)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "fabric",
         "--join", url, "--name", f"ci-{index}"],
        env=env,
        stdout=subprocess.PIPE if hold else subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        text=True,
    )


def _await_holding(victim: subprocess.Popen) -> int:
    """Block until the victim prints its HOLDING marker; return the chunk."""
    deadline = time.monotonic() + STARTUP_DEADLINE_S
    while time.monotonic() < deadline:
        line = victim.stdout.readline()
        if not line:
            raise SystemExit(
                f"victim worker exited {victim.poll()} before holding a lease"
            )
        if line.startswith("HOLDING"):
            return int(line.strip().split("chunk=", 1)[1])
    raise SystemExit(
        f"victim never reached its hold point within {STARTUP_DEADLINE_S:.0f}s"
    )


def main() -> int:
    llm = llm_from_spec("gpt3-175b")
    system = system_from_spec("a100:4096")
    options = SearchOptions.all_optimizations()
    ARTIFACT_DIR.mkdir(exist_ok=True)
    events_path = ARTIFACT_DIR / "fabric-events.jsonl"
    trace_path = ARTIFACT_DIR / "fabric-trace.json"
    checkpoint_path = ARTIFACT_DIR / "fabric-checkpoint.jsonl"
    # The journal appends; a leftover file from a previous local run would
    # mix stale events into this drill's assertions.
    for stale in (events_path, trace_path, checkpoint_path):
        stale.unlink(missing_ok=True)

    # -- uninterrupted single-process reference ------------------------------
    t0 = time.perf_counter()
    ref = search(llm, system, BATCH, options, top_k=TOP_K,
                 workers=0, keep_rates=False, columnar=True)
    ref_s = time.perf_counter() - t0
    print(f"single-process reference: {ref.num_evaluated} candidates "
          f"({ref.num_feasible} feasible) in {ref_s:.2f} s")

    # -- 3-worker cluster with one induced mid-lease death -------------------
    tracer = Tracer()
    procs: list[subprocess.Popen] = []
    t0 = time.perf_counter()
    with EventJournal(events_path, source="ci-fabric",
                      trace_id=tracer.trace_id) as events:
        server = make_fabric_server(
            llm, system, BATCH, options,
            top_k=TOP_K, expected_workers=WORKERS,
            lease_timeout=LEASE_TIMEOUT_S,
            checkpoint=str(checkpoint_path),
            events=events, tracer=tracer,
        )
        coord = server.coordinator
        url = f"http://127.0.0.1:{server.port}"
        threading.Thread(target=server.serve_forever,
                         kwargs={"poll_interval": 0.05}, daemon=True).start()
        try:
            victim = _spawn_worker(url, 0, hold=True)
            procs.append(victim)
            for i in range(1, WORKERS):
                procs.append(_spawn_worker(url, i, hold=False))

            held_chunk = _await_holding(victim)
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10)
            print(f"victim SIGKILLed while holding chunk {held_chunk} "
                  f"(lease expires in <= {LEASE_TIMEOUT_S:.0f} s)")

            fab = coord.result(timeout=300.0)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
            server.shutdown()
            server.server_close()
            server.service.stop(drain=False)
    total_s = time.perf_counter() - t0
    tracer.write(trace_path)
    sweep_s = coord.sweep_seconds

    # -- the lease must have been stolen, not fallen back or skipped ---------
    recorded = read_events(events_path)
    kinds = {e["kind"] for e in recorded}
    for required in ("lease.expire", "worker.dead", "lease.steal"):
        assert required in kinds, f"no {required} event in {sorted(kinds)}"
    steals = [e for e in recorded if e["kind"] == "lease.steal"]
    assert any(e["chunk"] == held_chunk for e in steals), \
        f"held chunk {held_chunk} was never stolen: {steals}"
    merges = [e for e in recorded if e["kind"] == "merge.chunk"]
    stolen_merge = [e for e in merges if e["chunk"] == held_chunk]
    assert stolen_merge and stolen_merge[-1]["worker"] is not None, \
        f"stolen chunk {held_chunk} not merged from a live worker"
    assert not fab.stats.skipped and not fab.truncated
    problems = validate_events_file(events_path)
    assert not problems, problems

    # -- threshold gossip actually reached the workers -----------------------
    # Once the merge heap holds top_k candidates, every subsequent lease
    # grant must carry the cluster's k-th-best rate as a pruning ceiling.
    # At least one worker must have received a tightened (positive, finite)
    # floor — a cluster that never gossips re-evaluates every bucket.
    grants = [e for e in recorded if e["kind"] == "lease.grant"]
    tightened = [
        e for e in grants
        if isinstance(e.get("floor_rate"), (int, float))
        and math.isfinite(e["floor_rate"]) and e["floor_rate"] > 0.0
    ]
    assert tightened, \
        f"no lease grant carried a tightened floor_rate across {len(grants)} grants"
    print(f"threshold gossip: {len(tightened)}/{len(grants)} lease grants "
          f"carried a tightened floor (max {max(e['floor_rate'] for e in tightened):.3f})")

    # -- bit-identity with the uninterrupted reference -----------------------
    assert len(fab.top) == len(ref.top) == TOP_K
    for (s_ref, r_ref), (s_fab, r_fab) in zip(ref.top, fab.top):
        assert s_ref == s_fab, (s_ref, s_fab)
        assert r_ref == r_fab, (s_ref, r_ref, r_fab)
    assert fab.num_evaluated == ref.num_evaluated
    assert fab.num_feasible == ref.num_feasible
    print(f"top-{TOP_K} bit-identical to the uninterrupted reference; "
          f"{len(merges)} chunks merged, sweep {sweep_s:.2f} s "
          f"(total incl. boot + lease expiry {total_s:.2f} s)")

    atomic_write_text(
        Path("BENCH_fabric.json"),
        json.dumps(
            {
                "workers": WORKERS,
                "candidates": fab.num_evaluated,
                "feasible": fab.num_feasible,
                "chunks_merged": len(merges),
                "held_chunk": held_chunk,
                "leases_stolen": len(steals),
                "gossip_tightened_grants": len(tightened),
                "reference_s": ref_s,
                "sweep_s": sweep_s,
                "total_s": total_s,
                "identical_topk": True,
            },
            indent=1,
        )
        + "\n",
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
