#!/usr/bin/env python
"""Serving capacity planning: how much load can one replica take?

Sweeps the offered request rate against a GPT-3-sized model on 8 A100s with
continuous batching, and finds the knee where latency departs from the
unloaded baseline — the practical capacity of the replica, and the number a
fleet planner multiplies by.
"""

from repro.hardware import a100_system
from repro.inference import (
    InferenceStrategy,
    ServingWorkload,
    calculate_inference,
    simulate_serving,
)
from repro.llm import MEGATRON_22B
from repro.viz import table

SYSTEM = a100_system(8)
STRATEGY = InferenceStrategy(tensor_par=8, pipeline_par=1, batch=1)
PROMPT, GEN = 1024, 128
RATES = (0.2, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


def main() -> None:
    single = calculate_inference(
        MEGATRON_22B, SYSTEM, STRATEGY, prompt_len=PROMPT, generate_len=GEN
    )
    print(
        f"{MEGATRON_22B.name} on 8x A100 (t=8): unloaded request latency "
        f"{single.request_latency:.2f} s\n"
    )
    rows = []
    knee = None
    for rate in RATES:
        stats = simulate_serving(
            MEGATRON_22B,
            SYSTEM,
            STRATEGY,
            ServingWorkload(arrival_rate=rate, prompt_len=PROMPT,
                            generate_len=GEN, num_requests=120, seed=3),
        )
        degraded = stats.mean_latency > 2 * single.request_latency
        if degraded and knee is None:
            knee = rate
        rows.append(
            (
                rate,
                f"{stats.mean_latency:.2f} s",
                f"{stats.p95_latency:.2f} s",
                round(stats.throughput_rps, 2),
                round(stats.tokens_per_second),
                round(stats.mean_batch, 1),
                stats.max_queue,
            )
        )
    print(
        table(
            ["req/s offered", "mean latency", "p95", "req/s served",
             "tokens/s", "avg batch", "max queue"],
            rows,
        )
    )
    if knee:
        print(
            f"\nlatency knee near {knee} req/s — plan fleet size as "
            f"offered_load / {knee:.1f} replicas with headroom."
        )


if __name__ == "__main__":
    main()
