#!/usr/bin/env python
"""Quickstart: evaluate one LLM/system/execution configuration.

Reproduces the paper's Fig. 3 scenario — GPT-3 175B training on 4,096
A100-80GiB GPUs with TP=8, PP=64, DP=8 and full activation recomputation —
and prints the complete time and memory breakdown.  The analytical model
evaluates in well under a millisecond, which is what makes exhaustive
codesign searches (see the other examples) practical.
"""

import time

from repro import ExecutionStrategy, calculate
from repro.hardware import a100_system
from repro.llm import GPT3_175B
from repro.viz import stacked_bars

def main() -> None:
    system = a100_system(4096)
    strategy = ExecutionStrategy(
        tensor_par=8,
        pipeline_par=64,
        data_par=8,
        batch=4096,
        microbatch=1,
        recompute="full",
    )

    start = time.perf_counter()
    result = calculate(GPT3_175B, system, strategy)
    elapsed = time.perf_counter() - start

    print(result.summary())
    print()
    print(stacked_bars([("Batch time", result.time.stacked())], unit=" s"))
    print()
    print(
        stacked_bars(
            [("HBM", [(k, v / 2**30) for k, v in result.mem1.stacked()])],
            unit=" GiB",
        )
    )
    print(f"\nmodel evaluated in {elapsed * 1e3:.3f} ms")

    # Try a better strategy: sequence parallelism + selective recompute.
    better = strategy.evolve(recompute="attn_only", seq_par=True, tp_redo_sp=True)
    improved = calculate(GPT3_175B, system, better)
    speedup = result.batch_time / improved.batch_time
    print(
        f"\nsequence parallelism + selective recompute: "
        f"{improved.batch_time:.1f} s ({speedup:.2f}x faster, "
        f"MFU {improved.mfu * 100:.1f}% vs {result.mfu * 100:.1f}%)"
    )


if __name__ == "__main__":
    main()
