#!/usr/bin/env python
"""Chinchilla-optimal campaign planner: size the model to the cluster.

Given a fixed cluster and a training deadline, which compute-optimal model
(Hoffmann et al.'s ~20 tokens/parameter) can you afford to train?  Walks a
model ladder, finds each size's best execution strategy, projects the full
campaign, and reports time and cost.
"""

from repro.analysis import plan_training_run
from repro.hardware import a100_system
from repro.llm.scaling_laws import chinchilla_tokens, model_ladder
from repro.search import SearchOptions, search
from repro.viz import table

NPROCS = 1024
BATCH = 1024
DEADLINE_DAYS = 60.0

OPTS = SearchOptions(
    recompute=("none", "attn_only", "full"),
    seq_par_modes=((True, True, True),),
    tp_overlap=("none",),
    dp_overlap=(True,),
    optimizer_sharding=(True,),
    fused_activations=(True,),
    max_microbatch=4,
)


def main() -> None:
    system = a100_system(NPROCS)
    print(
        f"cluster: {NPROCS} A100-80GiB | deadline {DEADLINE_DAYS:.0f} days | "
        f"Chinchilla-optimal token budgets\n"
    )
    rows = []
    best_fit = None
    for llm in model_ladder(3e9, 300e9, steps=6):
        tokens = chinchilla_tokens(llm.total_parameters)
        result = search(llm, system, BATCH, OPTS, top_k=1, workers=0,
                        keep_rates=False)
        if result.best_strategy is None:
            rows.append((llm.name, f"{llm.total_parameters / 1e9:.1f}B",
                         f"{tokens / 1e12:.2f}T", "-", "-", "-", "-"))
            continue
        plan = plan_training_run(
            llm, system, result.best_strategy, tokens=tokens,
        )
        fits = plan.days <= DEADLINE_DAYS
        if fits:
            best_fit = (llm, plan)
        rows.append(
            (
                llm.name,
                f"{llm.total_parameters / 1e9:.1f}B",
                f"{tokens / 1e12:.2f}T",
                result.best_strategy.short_name(),
                f"{plan.days:.1f}",
                f"${plan.cost() / 1e6:.2f}M",
                "yes" if fits else "no",
            )
        )
    print(
        table(
            ["model", "params", "tokens", "best config", "days", "cost@$1/h",
             "fits deadline"],
            rows,
        )
    )
    if best_fit:
        llm, plan = best_fit
        print(
            f"\nlargest compute-optimal model within the deadline: {llm.name} "
            f"({llm.total_parameters / 1e9:.0f}B, {plan.days:.1f} days, "
            f"MFU {plan.mfu * 100:.1f}%)"
        )


if __name__ == "__main__":
    main()
