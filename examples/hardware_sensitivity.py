#!/usr/bin/env python
"""Hardware sensitivity: which component should the next system improve?

Codesign starts by finding the binding constraint.  This example runs the
elasticity analysis for three very different operating points of GPT-3 175B
— compute-bound training, communication-heavy extreme tensor parallelism,
and offload-streaming training — and shows how the critical component shifts.
"""

from repro.analysis import sensitivity
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system, ddr5_offload
from repro.llm import GPT3_175B
from repro.viz import table

SYS = a100_system(64, hbm_gib=1_000_000)
SYS_OFF = a100_system(64, hbm_gib=1_000_000, offload=ddr5_offload(100_000, 25))

SCENARIOS = {
    "balanced training (t8 p2 d4, full recompute)": (
        SYS,
        ExecutionStrategy(tensor_par=8, pipeline_par=2, data_par=4, batch=64,
                          microbatch=1, recompute="full"),
    ),
    "extreme TP (t32 p2 d1)": (
        a100_system(64, hbm_gib=1_000_000, nvlink_size=32),
        ExecutionStrategy(tensor_par=32, pipeline_par=2, data_par=1, batch=64,
                          microbatch=1, recompute="full"),
    ),
    "offload-streaming (25 GB/s tier-2)": (
        SYS_OFF,
        ExecutionStrategy(tensor_par=8, pipeline_par=2, data_par=4, batch=64,
                          microbatch=1, recompute="none", weight_offload=True,
                          activation_offload=True, optimizer_offload=True,
                          optimizer_sharding=True),
    ),
}


def main() -> None:
    for name, (system, strategy) in SCENARIOS.items():
        print(f"\n=== {name}")
        rows = [
            (
                e.knob,
                f"{e.value:+.3f}",
                f"{e.speedup_at_2x:.2f}x",
            )
            for e in sensitivity(GPT3_175B, system, strategy)
        ]
        print(table(["component", "elasticity", "speedup if 2x better"], rows))
        most = rows[0][0]
        print(f"binding constraint: {most}")


if __name__ == "__main__":
    main()
