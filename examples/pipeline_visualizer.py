#!/usr/bin/env python
"""Pipeline-schedule visualizer: see the Fig. 2 schedule your strategy implies.

Builds the interleaved 1F1B schedule for a strategy's pipeline shape with the
*actual* per-chunk forward/backward times from the analytical model, renders
it as an ASCII Gantt chart, writes a Chrome-trace file you can open at
chrome://tracing (or ui.perfetto.dev), and compares the simulated bubble
against the closed form the model charges.
"""

import tempfile
from pathlib import Path

from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import GPT3_175B
from repro.simulator import render_gantt, simulate_strategy, write_trace

STRATEGY = ExecutionStrategy(
    tensor_par=8,
    pipeline_par=4,
    data_par=2,
    batch=48,
    microbatch=2,
    pp_interleaving=3,
    recompute="attn_only",
    seq_par=True,
    tp_redo_sp=True,
)


def main() -> None:
    system = a100_system(STRATEGY.num_procs, hbm_gib=1_000_000)
    llm = GPT3_175B

    cmp = simulate_strategy(llm, system, STRATEGY)
    timeline, params = cmp.timeline, cmp.params

    print(
        f"{llm.name} | {STRATEGY.short_name()} | "
        f"chunk fw {params.fw_time * 1e3:.1f} ms, "
        f"bw {params.bw_time * 1e3:.1f} ms, "
        f"{params.num_microbatches} microbatches\n"
    )
    print(render_gantt(timeline, cell_width=3))
    print(
        f"\nmakespan {timeline.stats.makespan:.3f} s | "
        f"simulated bubble {cmp.simulated_bubble:.3f} s "
        f"({timeline.stats.bubble_fraction * 100:.1f}%) | "
        f"analytical bubble {cmp.analytical_bubble:.3f} s "
        f"(gap {cmp.bubble_gap * 100:+.1f}%)"
    )

    out = Path(tempfile.gettempdir()) / "repro_pipeline_trace.json"
    write_trace(timeline, out)
    print(f"\nChrome trace written to {out} — open at chrome://tracing")


if __name__ == "__main__":
    main()
