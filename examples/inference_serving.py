#!/usr/bin/env python
"""Inference serving study: deploy GPT-3 175B for generation.

The paper's model covers inference as well as training (§2.3).  This example
sizes a serving deployment: how do tensor parallelism, batch size and request
pipelining trade off time-to-first-token, per-token latency, and aggregate
throughput — and when does the KV cache, not the weights, become the
capacity limit?
"""

from repro.hardware import a100_system, h100_system
from repro.inference import InferenceStrategy, calculate_inference
from repro.llm import GPT3_175B
from repro.viz import table


def main() -> None:
    print("GPT-3 175B serving on 8x A100-80GiB (prompt 2048, generate 256)\n")

    # --- tensor parallelism: latency lever -----------------------------------
    rows = []
    for t in (2, 4, 8):
        strat = InferenceStrategy(tensor_par=t, pipeline_par=8 // t, batch=8)
        res = calculate_inference(
            GPT3_175B, a100_system(8), strat, prompt_len=2048, generate_len=256
        )
        rows.append(
            (
                strat.short_name(),
                "ok" if res.feasible else "infeasible",
                f"{res.prefill_time:.2f} s" if res.feasible else "-",
                f"{res.decode_step_time * 1e3:.0f} ms" if res.feasible else "-",
                f"{res.tokens_per_second:.0f}" if res.feasible else "-",
            )
        )
    print(table(["deployment", "fits", "TTFT", "per-token", "tokens/s"], rows))

    # --- batch size: throughput lever, bounded by the KV cache ---------------
    print("\nbatch scaling at t=8 (decode is memory-bound, so batching is cheap):")
    rows = []
    for batch in (1, 4, 16, 64, 256):
        strat = InferenceStrategy(tensor_par=8, pipeline_par=1, batch=batch)
        res = calculate_inference(
            GPT3_175B, a100_system(8), strat, prompt_len=2048, generate_len=256
        )
        rows.append(
            (
                batch,
                "ok" if res.feasible else "KV cache OOM",
                f"{res.decode_step_time * 1e3:.0f} ms" if res.feasible else "-",
                f"{res.tokens_per_second:.0f}" if res.feasible else "-",
                f"{res.kv_cache_bytes / 2**30:.0f} GiB" if res.feasible else "-",
            )
        )
    print(table(["batch", "fits", "per-token", "tokens/s", "KV cache"], rows))

    # --- hardware generation --------------------------------------------------
    print("\nA100 vs H100 (t=8, batch 16):")
    rows = []
    for name, system in (("8x A100", a100_system(8)), ("8x H100", h100_system(8))):
        strat = InferenceStrategy(tensor_par=8, pipeline_par=1, batch=16)
        res = calculate_inference(
            GPT3_175B, system, strat, prompt_len=2048, generate_len=256
        )
        rows.append(
            (
                name,
                f"{res.prefill_time:.2f} s",
                f"{res.decode_step_time * 1e3:.0f} ms",
                f"{res.tokens_per_second:.0f}",
            )
        )
    print(table(["system", "TTFT", "per-token", "tokens/s"], rows))


if __name__ == "__main__":
    main()
