#!/usr/bin/env python
"""Sweep profiling: trace and meter an exhaustive execution search.

Runs the paper's GPT-3 175B search on a 64-GPU A100 system with the full
observability stack attached: a span tracer (exported as Chrome trace-event
JSON, loadable in ``chrome://tracing`` or https://ui.perfetto.dev), the
engine's pruning counters, and a live progress line.  The printed
``SweepStats`` shows where candidates died — structural validation, the
memory planner, or full evaluation — and how much work the profile-group
and memory-bucket dedup avoided.

The same telemetry is available from the command line::

    repro-calculon search gpt3-175b a100:64 --batch 64 \\
        --options baseline --stats --trace sweep_trace.json --progress
"""

import sys

from repro.hardware import a100_system
from repro.llm import GPT3_175B
from repro.obs import ProgressReporter, Tracer, validate_trace_file
from repro.search import SearchOptions, search

TRACE_PATH = "sweep_trace.json"


def main() -> None:
    tracer = Tracer()
    progress = ProgressReporter(stream=sys.stderr)

    result = search(
        GPT3_175B,
        a100_system(64),
        64,
        SearchOptions.megatron_baseline(),
        tracer=tracer,
        collect_stats=True,
        progress=progress,
    )

    print(f"best configuration    {result.best_strategy.short_name()}")
    print(f"batch time            {result.best.batch_time:.1f} s "
          f"(MFU {result.best.mfu * 100:.1f}%)")
    print()
    print(result.stats.summary())

    path = tracer.write(TRACE_PATH)
    problems = validate_trace_file(path)
    assert not problems, problems
    print(f"\nwrote {len(tracer.events())} trace events to {path}")
    print("open in chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
