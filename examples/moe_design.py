#!/usr/bin/env python
"""MoE codesign: how many experts can your cluster afford?

Mixture-of-Experts trades parameters for throughput: top-k routing keeps
per-token compute near the dense backbone while total parameters scale with
the expert count.  The costs are expert memory (every device hosts E/ep
experts) and the dispatch/return all-to-alls.  This example sweeps the
expert count on a fixed cluster and finds where memory or communication
closes the window.
"""

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import LLMConfig
from repro.moe import MoEConfig, calculate_moe
from repro.viz import table

BASE = LLMConfig(name="backbone-13b", hidden=5120, attn_heads=40,
                 seq_size=2048, num_blocks=40)
SYSTEM = a100_system(64)  # real 80 GiB HBM: memory will gate
STRATEGY = ExecutionStrategy(tensor_par=8, pipeline_par=2, data_par=4,
                             batch=64, microbatch=1, recompute="attn_only",
                             seq_par=True, tp_redo_sp=True,
                             optimizer_sharding=True)


def main() -> None:
    dense = calculate(BASE, SYSTEM, STRATEGY)
    print(
        f"dense backbone {BASE.total_parameters / 1e9:.1f}B: "
        f"{dense.batch_time:.2f} s/batch, {dense.mem1.total / 2**30:.0f} GiB HBM\n"
    )
    rows = []
    for experts in (4, 8, 16, 32, 64, 128, 256):
        cfg = MoEConfig(base=BASE, num_experts=experts, experts_per_token=2)
        res = calculate_moe(cfg, SYSTEM, STRATEGY)
        rows.append(
            (
                experts,
                f"{cfg.total_parameters / 1e9:.0f}B",
                f"{res.batch_time:.2f} s" if res.feasible else "OOM",
                f"{res.batch_time / dense.batch_time:.2f}x" if res.feasible else "-",
                f"{res.all_to_all_time:.2f} s" if res.feasible else "-",
                f"{res.mem_total / 2**30:.0f} GiB" if res.feasible else
                f"{res.mem_total / 2**30:.0f} GiB needed",
            )
        )
    print(
        table(
            ["experts", "params", "batch time", "vs dense", "all-to-all", "HBM"],
            rows,
        )
    )
    feasible = [r for r in rows if r[2] != "OOM"]
    if feasible:
        best = feasible[-1]
        print(
            f"\nlargest affordable MoE: {best[0]} experts ({best[1]} parameters) "
            f"at {best[3]} the dense batch time."
        )


if __name__ == "__main__":
    main()
