#!/usr/bin/env python
"""Efficiency cliffs: why buying more GPUs can make training slower (§5.2).

Sweeps system sizes for Turing-NLG 530B — a model with 105 transformer
blocks, deliberately not a power of two — and shows the paper's "efficiency
cliffs": sudden drops at sizes where no good (t, p, d) mapping exists, and
sizes where nothing runs at all.  Then shows how a 512 GiB DDR5 offload tier
fills in the cliffs ("future-proofing" per §6).
"""

from repro.hardware import a100_system, ddr5_offload
from repro.llm import TURING_530B
from repro.search import SearchOptions, offload_speedups, scaling_sweep
from repro.viz import scaling_plot, table

SIZES = [256, 384, 512, 640, 768, 896, 1024, 1100, 1280, 1536, 1792, 2048]
BATCH = 1536

OPTS = SearchOptions(
    recompute=("none", "attn_only", "full"),
    seq_par_modes=((True, True, True),),
    tp_overlap=("none",),
    dp_overlap=(False,),
    optimizer_sharding=(True,),
    fused_activations=(False,),
    max_microbatch=8,
)


def main() -> None:
    base = scaling_sweep(
        TURING_530B, lambda n: a100_system(n), SIZES, BATCH, OPTS, workers=0
    )
    off = scaling_sweep(
        TURING_530B,
        lambda n: a100_system(n, offload=ddr5_offload(512)),
        SIZES,
        BATCH,
        OPTS.with_offload_only(),
        workers=0,
    )
    # The offload system may also run resident strategies.
    for i, (b, o) in enumerate(zip(base.points, off.points)):
        if b.sample_rate > o.sample_rate:
            off.points[i] = b

    print(f"{TURING_530B.name}: relative per-GPU efficiency vs system size\n")
    print("without offloading:")
    print(scaling_plot(list(base.sizes()), list(base.relative_scaling())))
    print("\nwith 512 GiB @ 100 GB/s offloading:")
    print(scaling_plot(list(off.sizes()), list(off.relative_scaling())))

    speedup_by_size = dict(offload_speedups(base, off))
    rows = []
    for b, o in zip(base.points, off.points):
        sp = speedup_by_size.get(b.num_procs)
        if sp is None:
            sp_text = "-"
        elif sp == float("inf"):
            sp_text = "inf"
        else:
            sp_text = f"{sp:+.1f}%"
        rows.append(
            (
                b.num_procs,
                f"{b.sample_rate:.1f}" if b.feasible else "infeasible",
                f"{o.sample_rate:.1f}" if o.feasible else "infeasible",
                sp_text,
                b.strategy.short_name() if b.strategy else "-",
            )
        )
    print()
    print(table(["GPUs", "rate", "rate w/ offload", "speedup", "best config"],
                rows))

    depths = base.cliff_depths()
    worst = int(base.sizes()[depths.argmax()])
    print(
        f"\ndeepest cliff without offloading: {depths.max() * 100:.0f}% below "
        f"the envelope at {worst} GPUs"
    )


if __name__ == "__main__":
    main()
