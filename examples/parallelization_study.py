#!/usr/bin/env python
"""Parallelization study: find the optimal (t, p, d) split for a cluster.

A scaled-down version of the paper's §4.1/§5.1 analysis: exhaustively search
every execution configuration of Megatron-1T on a 512-GPU A100 cluster and
show (a) the best strategies found, (b) how lopsided splits lose, and (c) the
"needle in a haystack" distribution of configuration quality.
"""

import time

import numpy as np

from repro.hardware import a100_system
from repro.llm import MEGATRON_1T
from repro.search import SearchOptions, search
from repro.viz import stacked_bars, table

NPROCS = 512
BATCH = 512


def main() -> None:
    system = a100_system(NPROCS)

    start = time.perf_counter()
    result = search(
        MEGATRON_1T,
        system,
        BATCH,
        SearchOptions(max_microbatch=8),
        top_k=10,
        workers=0,
    )
    elapsed = time.perf_counter() - start

    print(
        f"searched {result.num_evaluated} configurations "
        f"({result.num_feasible} feasible) in {elapsed:.1f} s "
        f"({elapsed / result.num_evaluated * 1e6:.0f} us each)"
    )

    print("\nTop strategies by sample rate:")
    rows = [
        (
            s.short_name(),
            round(r.sample_rate, 2),
            round(r.batch_time, 1),
            f"{r.mfu * 100:.1f}%",
            s.recompute,
            "SP" if s.seq_par else "-",
            "shard" if s.optimizer_sharding else "-",
            s.tp_overlap,
        )
        for s, r in result.top
    ]
    print(
        table(
            ["config", "rate/s", "batch s", "MFU", "recompute", "seq", "opt", "overlap"],
            rows,
        )
    )

    best_strategy, best = result.top[0]
    print("\nBest strategy breakdown:")
    print(stacked_bars([("Batch", best.time.stacked())], unit=" s"))

    # Quality distribution: how rare are near-optimal configurations?
    rates = np.sort(result.sample_rates)
    top = rates[-1]
    within5 = int((rates > 0.95 * top).sum())
    within10 = int((rates > 0.90 * top).sum())
    spread = top / max(rates[0], 1e-9)
    print(
        f"\nspread between best and worst feasible configuration: {spread:.1f}x\n"
        f"within 5% of best: {within5} configs "
        f"({within5 / result.num_evaluated * 100:.3f}% of the space); "
        f"within 10%: {within10}"
    )


if __name__ == "__main__":
    main()
