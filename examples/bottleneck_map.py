#!/usr/bin/env python
"""Bottleneck map: what limits training across (model size, system size)?

Builds a phase diagram over a ladder of model scales and a range of cluster
sizes, labelling each cell with the dominant time component of its *best*
execution strategy — the codesign map the paper's individual studies sample.
Compute-bound cells are where the money goes to FLOPs; bubble- or
communication-bound cells are where software or network changes pay.
"""

from repro.analysis import phase_diagram
from repro.hardware import a100_system
from repro.llm.scaling_laws import model_ladder
from repro.search import SearchOptions
from repro.viz import heat_grid

SIZES = [32, 128, 512, 2048]
BATCH = 512

OPTS = SearchOptions(
    recompute=("attn_only", "full"),
    seq_par_modes=((True, True, True),),
    tp_overlap=("none",),
    dp_overlap=(False,),
    optimizer_sharding=(True,),
    fused_activations=(False,),
    max_microbatch=8,
)


def main() -> None:
    llms = model_ladder(3e9, 500e9, steps=4)
    rows = phase_diagram(llms, lambda n: a100_system(n), SIZES, BATCH, OPTS)

    cells = [
        [
            "--" if c.label == "infeasible"
            else f"{c.label} {c.share * 100:.0f}%"
            for c in row
        ]
        for row in rows
    ]
    print(f"dominant time component of the best strategy (batch {BATCH})\n")
    print(
        heat_grid(
            [f"{llm.total_parameters / 1e9:.0f}B" for llm in llms],
            [f"{n} GPUs" for n in SIZES],
            cells,
        )
    )
    print(
        "\nreading: 'compute 60%' = 60% of the best strategy's batch time is "
        "forward+backward+optimizer math; cells marked '--' cannot run."
    )

    mfus = [
        [f"{c.mfu * 100:.0f}%" if c.label != "infeasible" else "--" for c in row]
        for row in rows
    ]
    print("\nbest-achievable MFU per cell:\n")
    print(
        heat_grid(
            [f"{llm.total_parameters / 1e9:.0f}B" for llm in llms],
            [f"{n} GPUs" for n in SIZES],
            mfus,
        )
    )


if __name__ == "__main__":
    main()
