#!/usr/bin/env python
"""Custom specifications: model your own LLM and your own hardware.

Everything in the library is a plain, JSON-serializable specification — the
same workflow the reference tool uses.  This example defines a hypothetical
future accelerator ("XPU": 2 PFLOP/s, 160 GiB HBM at 6 TB/s, 900 GB/s
scale-up fabric of 16) and a 400B-parameter long-context LLM, saves both as
spec files, reloads them, and searches for the best way to train.
"""

import tempfile
from pathlib import Path

from repro.hardware import MemoryTier, Network, Processor, System
from repro.hardware.processor import DEFAULT_MATRIX_CURVE, DEFAULT_VECTOR_CURVE
from repro.io import load_llm, load_system, save_llm, save_system
from repro.llm import LLMConfig
from repro.search import SearchOptions, search
from repro.units import GB, GiB, TB, TFLOPS
from repro.viz import table


def build_xpu_system(num_procs: int) -> System:
    xpu = Processor(
        name="xpu",
        matrix_flops=2000 * TFLOPS,
        vector_flops=250 * TFLOPS,
        matrix_efficiency=DEFAULT_MATRIX_CURVE,
        vector_efficiency=DEFAULT_VECTOR_CURVE,
    )
    hbm = MemoryTier(
        name="hbm4", capacity=160 * GiB, bandwidth=6 * TB, efficiency=0.65
    )
    fabric = Network(
        name="xlink",
        size=16,
        bandwidth=900 * GB,
        latency=0.5e-6,
        efficiency=0.9,
        processor_usage=0.10,
        in_network_collectives=True,  # switch-based reductions
    )
    scale_out = Network(
        name="800g-eth",
        size=num_procs,
        bandwidth=100 * GB,
        latency=3e-6,
        efficiency=0.85,
        processor_usage=0.02,
    )
    return System(
        name=f"xpu-x{num_procs}",
        num_procs=num_procs,
        processor=xpu,
        mem1=hbm,
        networks=(fabric, scale_out),
    )


def main() -> None:
    llm = LLMConfig(
        name="future-400b-32k",
        hidden=16384,
        attn_heads=128,
        seq_size=8192,  # long-context variant
        num_blocks=120,
    )
    system = build_xpu_system(1024)

    # Round-trip through spec files — the reproducible-study workflow.
    with tempfile.TemporaryDirectory() as d:
        llm_path, sys_path = Path(d) / "llm.json", Path(d) / "system.json"
        save_llm(llm, llm_path)
        save_system(system, sys_path)
        llm = load_llm(llm_path)
        system = load_system(sys_path)
        print(f"specs saved and reloaded from {d}")

    print(
        f"\n{llm.name}: {llm.total_parameters / 1e9:.0f}B parameters, "
        f"seq {llm.seq_size}, {llm.num_blocks} blocks"
    )
    print(f"{system.name}: {system.num_procs} XPUs\n")

    result = search(
        llm,
        system,
        batch=1024,
        options=SearchOptions(max_microbatch=4),
        top_k=5,
        workers=0,
    )
    print(
        f"searched {result.num_evaluated} configurations, "
        f"{result.num_feasible} feasible"
    )
    rows = [
        (s.short_name(), round(r.sample_rate, 2), f"{r.mfu * 100:.1f}%",
         round(r.mem1.total / 2**30, 1), s.recompute, s.tp_overlap)
        for s, r in result.top
    ]
    print(table(["config", "rate/s", "MFU", "HBM GiB", "recompute", "overlap"], rows))
    print()
    print(result.best.summary())


if __name__ == "__main__":
    main()
