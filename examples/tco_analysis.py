#!/usr/bin/env python
"""Total cost of ownership: capex vs opex over a system's lifetime (§6).

"Even small efficiency gains can accumulate during long system use time."
This example compares three H100 memory designs for training Turing-NLG 530B:
not on purchase price or raw throughput, but on lifetime dollars per million
training samples, with power, PUE and electricity price in the loop.
"""

from repro.llm import TURING_530B
from repro.search import (
    PowerModel,
    SearchOptions,
    SystemDesign,
    evaluate_design,
    tco_report,
)
from repro.viz import table

BUDGET = 25e6
BATCH = 1024
LIFETIME_YEARS = 5.0

OPTS = SearchOptions(
    recompute=("none", "attn_only", "full"),
    seq_par_modes=((True, True, True),),
    tp_overlap=("none",),
    dp_overlap=(True,),
    optimizer_sharding=(True,),
    fused_activations=(True,),
    offload_modes=((False, False, False), (True, True, True)),
    max_microbatch=4,
)

DESIGNS = [SystemDesign(20, 0), SystemDesign(20, 256), SystemDesign(80, 0)]


def main() -> None:
    power = PowerModel(dollars_per_kwh=0.12, pue=1.25)
    print(
        f"Budget ${BUDGET / 1e6:.0f}M, lifetime {LIFETIME_YEARS:.0f} years, "
        f"electricity ${power.dollars_per_kwh}/kWh, PUE {power.pue}\n"
    )
    rows = []
    for design in DESIGNS:
        maxg = design.max_gpus(BUDGET)
        entry = evaluate_design(
            design,
            TURING_530B,
            BUDGET,
            BATCH,
            options=OPTS,
            size_candidates=sorted(
                {maxg, maxg - maxg % 512, 512} - {0}
            ),
            workers=0,
        )
        report = tco_report(entry, power=power, lifetime_years=LIFETIME_YEARS)
        rows.append(
            (
                design.label(),
                entry.used_gpus,
                round(entry.sample_rate, 1),
                f"${report.capex / 1e6:.1f}M",
                f"${report.annual_opex / 1e6:.2f}M/yr",
                f"${report.total_cost / 1e6:.1f}M",
                f"${report.dollars_per_million_samples:.2f}",
            )
        )
    print(
        table(
            ["design", "GPUs", "samples/s", "capex", "opex", "lifetime cost",
             "$ per 1M samples"],
            rows,
        )
    )
    best = min(rows, key=lambda r: float(r[-1].lstrip("$")))
    print(f"\nbest lifetime cost-efficiency: {best[0]}")


if __name__ == "__main__":
    main()
