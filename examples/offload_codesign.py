#!/usr/bin/env python
"""Offload codesign: sizing a second memory tier for LLM fine-tuning (§6).

The paper's headline offloading result: a modest DDR5 tier (512 GiB at
100 GB/s per GPU) lets Megatron-1T train efficiently on clusters far smaller
than its no-offload minimum, because weights/activations/optimizer state can
be stashed off-HBM and streamed back block by block (Fig. 8).

This example (1) finds the smallest A100 cluster that can train Megatron-1T
with and without the tier, (2) reports the offload bandwidth actually needed
for seamless streaming (Eq. 1), and (3) shows the HBM footprint collapse.
"""

from repro import ExecutionStrategy, calculate
from repro.hardware import a100_system, ddr5_offload
from repro.llm import MEGATRON_1T
from repro.search import SearchOptions, search
from repro.viz import table

BATCH = 512

BASE = SearchOptions(
    recompute=("none", "attn_only", "full"),
    seq_par_modes=((True, True, True),),
    tp_overlap=("none", "ring"),
    dp_overlap=(True,),
    optimizer_sharding=(True,),
    fused_activations=(True,),
    max_microbatch=8,
)
OFFLOAD = BASE.with_offload_only()


def best(nprocs: int, offload: bool):
    tier = ddr5_offload(512) if offload else None
    system = a100_system(nprocs, offload=tier)
    opts = OFFLOAD if offload else BASE
    res = search(MEGATRON_1T, system, BATCH, opts, workers=0, top_k=1,
                 keep_rates=False)
    return res.best_strategy, res.best


def main() -> None:
    print("Minimum cluster for Megatron-1T training (batch 512):\n")
    rows = []
    for nprocs in (32, 64, 128, 256, 512):
        _, plain = best(nprocs, offload=False)
        strat, off = best(nprocs, offload=True)
        rows.append(
            (
                nprocs,
                f"{plain.sample_rate:.2f}/s" if plain else "infeasible",
                f"{off.sample_rate:.2f}/s" if off else "infeasible",
                strat.short_name() if strat else "-",
            )
        )
    print(table(["GPUs", "no offload", "512G@100GB/s offload", "offload config"], rows))

    # Detailed look at the smallest offload-feasible size.
    for nprocs in (32, 64, 128, 256, 512):
        strat, off = best(nprocs, offload=True)
        if off is None:
            continue
        print(f"\nSmallest offload-feasible cluster: {nprocs} GPUs")
        print(off.summary())
        print(
            f"\nseamless-streaming bandwidth requirement (Eq. 1): "
            f"{off.offload.required_bandwidth / 1e9:.1f} GB/s "
            f"(tier provides 100 GB/s)"
        )
        break

    # Explicit strategy comparison at 512 GPUs: resident vs offloaded.
    system = a100_system(512, offload=ddr5_offload(512))
    resident = calculate(
        MEGATRON_1T,
        system,
        ExecutionStrategy(
            tensor_par=8, pipeline_par=32, data_par=2, batch=BATCH,
            microbatch=1, pp_interleaving=4, recompute="full",
            optimizer_sharding=True,
        ),
    )
    offloaded = calculate(
        MEGATRON_1T,
        system,
        ExecutionStrategy(
            tensor_par=8, pipeline_par=8, data_par=8, batch=BATCH,
            microbatch=1, pp_interleaving=2, recompute="none", seq_par=True,
            tp_redo_sp=True, optimizer_sharding=True, dp_overlap=True,
            weight_offload=True, activation_offload=True, optimizer_offload=True,
        ),
    )
    print("\nHBM footprint, resident vs offloaded (512 GPUs):")
    print(
        table(
            ["strategy", "batch s", "MFU", "HBM GiB", "tier-2 GiB"],
            [
                ("resident + full recompute", round(resident.batch_time, 1),
                 f"{resident.mfu * 100:.1f}%",
                 round(resident.mem1.total / 2**30, 1), 0),
                ("offloaded, no recompute", round(offloaded.batch_time, 1),
                 f"{offloaded.mfu * 100:.1f}%",
                 round(offloaded.mem1.total / 2**30, 1),
                 round(offloaded.offload.used_bytes / 2**30, 1)),
            ],
        )
    )


if __name__ == "__main__":
    main()
