#!/usr/bin/env python
"""Budget planner: choose a system design under a fixed budget (§7).

Given a budget, which H100 memory configuration (HBM3 capacity x optional
DDR5 offload tier) buys the most training throughput for your model?  This
example sweeps a subset of the paper's 16 Table-3 designs for a $25M budget
and a 530B-parameter model, reporting performance and performance-per-dollar.
"""

from repro.llm import TURING_530B
from repro.search import SearchOptions, SystemDesign, evaluate_design
from repro.viz import table

BUDGET = 25e6
BATCH = 1024

OPTS = SearchOptions(
    recompute=("none", "attn_only", "full"),
    seq_par_modes=((True, True, True),),
    tp_overlap=("none",),
    dp_overlap=(True,),
    optimizer_sharding=(True,),
    fused_activations=(True,),
    offload_modes=((False, False, False), (True, True, True)),
    max_microbatch=4,
)

DESIGNS = [
    SystemDesign(20, 0),
    SystemDesign(80, 0),
    SystemDesign(120, 0),
    SystemDesign(20, 256),
    SystemDesign(40, 256),
    SystemDesign(80, 512),
]


def sizes_for(design: SystemDesign):
    maxg = design.max_gpus(BUDGET)
    top512 = maxg - maxg % 512
    return sorted(
        n for n in {maxg, top512, top512 - 512, maxg // 2, 512} if 0 < n <= maxg
    )


def main() -> None:
    print(f"Budget: ${BUDGET / 1e6:.0f}M — training {TURING_530B.name}\n")
    rows = []
    for design in DESIGNS:
        entry = evaluate_design(
            design,
            TURING_530B,
            BUDGET,
            BATCH,
            options=OPTS,
            size_candidates=sizes_for(design),
            workers=0,
        )
        rows.append(
            (
                design.label(),
                f"${design.price_per_gpu / 1e3:.2f}k",
                entry.max_gpus,
                entry.used_gpus,
                round(entry.sample_rate, 1),
                round(entry.perf_per_million, 2),
            )
        )
    print(
        table(
            ["design", "price/GPU", "max GPUs", "used", "samples/s", "perf/$M"],
            rows,
        )
    )

    best = max(rows, key=lambda r: r[4])
    value = max(rows, key=lambda r: r[5])
    print(f"\nfastest design:    {best[0]} ({best[4]} samples/s)")
    print(f"best perf-per-$:   {value[0]} ({value[5]} samples/s per $M)")


if __name__ == "__main__":
    main()
