"""Fig. 10: LLM training scalability with 512 GiB @ 100 GB/s offloading.

Same sweep as Fig. 7 but with the DDR5 tier attached and offload strategies
in the search space.  Shape criteria: offloading keeps efficiency higher for
the larger models, mitigates the Fig. 7 cliffs (fewer/shallower dips, fewer
infeasible sizes), and enables small-system training of Megatron-1T.
"""

import pytest

from repro.hardware import a100_system, ddr5_offload
from repro.llm import GPT3_175B, MEGATRON_1T, TURING_530B
from repro.search import SearchOptions, scaling_sweep
from repro.viz import scaling_plot, table

from _helpers import banner

# Includes the small sizes (64, 128) where Megatron-1T cannot run at all
# without offloading — the paper's "infinite speedup" points.
SIZES = [64, 128, 256, 512, 768, 1024, 1536, 2048, 2560, 3072, 4096, 5120, 6144,
         7168, 8192, 1100, 2200, 4400, 6600]
SIZES = sorted(s - s % 8 for s in SIZES)
BATCH = 3072

BASE_OPTS = SearchOptions(
    recompute=("none", "attn_only", "full"),
    seq_par_modes=((True, True, True),),
    tp_overlap=("none",),
    dp_overlap=(False,),
    optimizer_sharding=(True,),
    fused_activations=(False,),
    max_microbatch=8,
)
OFFLOAD_OPTS = BASE_OPTS.with_offload_only()


def _factory(n):
    return a100_system(n, offload=ddr5_offload(512))


def _run():
    out = {}
    for llm in (GPT3_175B, TURING_530B, MEGATRON_1T):
        base = scaling_sweep(llm, lambda n: a100_system(n), SIZES, BATCH,
                             BASE_OPTS, workers=0)
        off = scaling_sweep(llm, _factory, SIZES, BATCH, OFFLOAD_OPTS, workers=0)
        # The offload system may also run non-offloaded strategies; take the
        # better of the two at each size (the searcher would).
        merged = [
            b if b.sample_rate >= o.sample_rate else o
            for b, o in zip(base.points, off.points)
        ]
        off.points = merged
        out[llm.name] = (base, off)
    return out


def test_fig10_offload_scaling(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)

    for name, (base, off) in curves.items():
        banner(f"Fig. 10 — {name}: scaling with 100 GB/s offloading")
        rel = off.relative_scaling()
        print(scaling_plot(list(off.sizes()), list(rel)))
        rows = [
            (
                p.num_procs,
                round(b.sample_rate, 1),
                round(p.sample_rate, 1),
                f"{r:.3f}",
            )
            for p, b, r in zip(off.points, base.points, rel)
        ]
        print(table(["size", "no-offload rate", "offload rate", "rel"], rows))

    # Offloading never hurts (the searcher can always ignore the tier).
    for name, (base, off) in curves.items():
        for b, o in zip(base.points, off.points):
            assert o.sample_rate >= b.sample_rate - 1e-9

    # It helps the big models more than GPT-3 (paper: modest impact on 175B,
    # significant on 530B/1T).
    def total_gain(pair):
        base, off = pair
        gains = [
            o.sample_rate / b.sample_rate
            for b, o in zip(base.points, off.points)
            if b.feasible and b.sample_rate > 0
        ]
        return sum(gains) / len(gains)

    assert total_gain(curves["megatron-1t"]) >= total_gain(curves["gpt3-175b"]) - 0.02

    # Offloading repairs at least one size that was infeasible without it.
    repaired = 0
    for name, (base, off) in curves.items():
        for b, o in zip(base.points, off.points):
            if not b.feasible and o.feasible:
                repaired += 1
    assert repaired >= 1
