"""Table 4 / Fig. 12: optimal strategies found by the search vs state-of-the-art.

Four Megatron-1T configurations on 4,096 GPUs (batch 4096):

1. "recompute" SOTA:   (8, 64, 8), m=1, v=2, full recompute         MFU 36.67%
2. "seq par" SOTA:     (8, 64, 8), m=1, v=2, attn recompute + SP    MFU 49.61%
3. Calculon SW:        (8, 16, 32), m=2, v=8, TP+DP overlap,
                       optimizer sharding, fused activations        MFU 70.96%
4. Calculon SW+offload:(8, 1, 512), m=6->4, full offload            MFU 76.71%

Shape criteria: MFU strictly increases down the ladder; the software-only
optimum already beats both SOTA baselines by a large margin (paper: ~30%
faster); offload adds a further improvement while slashing HBM usage.
"""

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system, ddr5_offload
from repro.llm import MEGATRON_1T
from repro.viz import stacked_bars, table

from _helpers import banner

BATCH = 4096
PAPER_MFU = {"recompute": 36.67, "seq par": 49.61, "calculon sw": 70.96,
             "calculon sw+offload": 76.71}


def _strategies():
    plain = a100_system(4096)
    offload = a100_system(4096, offload=ddr5_offload(512))
    return [
        (
            "recompute",
            plain,
            ExecutionStrategy(
                tensor_par=8, pipeline_par=64, data_par=8, batch=BATCH,
                microbatch=1, pp_interleaving=2, recompute="full",
            ),
        ),
        (
            "seq par",
            plain,
            ExecutionStrategy(
                tensor_par=8, pipeline_par=64, data_par=8, batch=BATCH,
                microbatch=1, pp_interleaving=2, recompute="attn_only",
                seq_par=True, tp_redo_sp=True, pp_rs_ag=True,
            ),
        ),
        (
            "calculon sw",
            plain,
            ExecutionStrategy(
                tensor_par=8, pipeline_par=16, data_par=32, batch=BATCH,
                microbatch=2, pp_interleaving=8, recompute="attn_only",
                seq_par=True, tp_overlap="ring", dp_overlap=True,
                optimizer_sharding=True, fused_activations=True,
            ),
        ),
        (
            "calculon sw+offload",
            offload,
            ExecutionStrategy(
                tensor_par=8, pipeline_par=1, data_par=512, batch=BATCH,
                microbatch=4, recompute="none", seq_par=True,
                tp_overlap="ring", dp_overlap=True, optimizer_sharding=True,
                fused_activations=True, weight_offload=True,
                activation_offload=True, optimizer_offload=True,
            ),
        ),
    ]


def _run():
    return [
        (name, calculate(MEGATRON_1T, system, strat))
        for name, system, strat in _strategies()
    ]


def test_table4_strategies(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    banner("Table 4 / Fig. 12 — strategy ladder for Megatron-1T on 4,096 GPUs")
    rows = [
        (
            name,
            res.strategy_name,
            round(res.batch_time, 1),
            f"{res.mfu * 100:.2f}%",
            f"{PAPER_MFU[name]:.2f}%",
            f"{res.mem1.total / 2**30:.0f} GiB",
        )
        for name, res in results
    ]
    print(table(["strategy", "config", "batch s", "our MFU", "paper MFU", "HBM"], rows))
    print()
    print(
        stacked_bars(
            [(name, [(k, v) for k, v in res.time.stacked() if v > 0])
             for name, res in results],
            unit=" s",
        )
    )
    print()
    print(
        stacked_bars(
            [(name, [(k, v / 2**30) for k, v in res.mem1.stacked() if v > 0])
             for name, res in results],
            unit=" GiB",
        )
    )

    by_name = dict(results)
    for name, res in results:
        assert res.feasible, f"{name}: {res.infeasibility}"

    # MFU climbs down the ladder (the paper's 36.7 -> 76.7 climb).  The final
    # offload step is a near-tie in time in our model (the sharded weight
    # all-gather cannot fully hide behind one microbatch's forward window)
    # while slashing HBM, so the ladder is asserted approximately monotone.
    mfus = [res.mfu for _, res in results]
    for prev, nxt in zip(mfus, mfus[1:]):
        assert nxt >= prev * 0.98
    assert mfus[-1] > mfus[0] * 1.4
    assert max(mfus) > mfus[0] * 1.4

    # The software-only optimum beats the seq-par SOTA (paper: ~30%; our
    # calibration rates the seq-par baseline higher, so the margin is
    # smaller — see EXPERIMENTS.md).
    assert by_name["calculon sw"].batch_time < 0.95 * by_name["seq par"].batch_time

    # Offload strategy uses dramatically less HBM (paper Fig. 12 right).
    assert (
        by_name["calculon sw+offload"].mem1.total
        < 0.7 * by_name["recompute"].mem1.total
    )

    # Our MFU ladder lands in the paper's neighbourhood.  The seq-par
    # baseline is the farthest off (we rate it ~15 points higher than the
    # paper); every strategy stays within 16 MFU points.
    for name, res in results:
        assert res.mfu * 100 == pytest.approx(PAPER_MFU[name], abs=16.0), name
