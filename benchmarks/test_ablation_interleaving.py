"""Ablation: pipeline-interleaving factor sweep (Table 1 "PP interleaving").

Interleaving divides the bubble by v at the cost of v-times more pipeline
point-to-point traffic and a larger activation footprint — the three-way
trade the paper's Fig. 2 schedule embodies.  The sweep quantifies each term.
"""

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import GPT3_175B
from repro.viz import table

from _helpers import banner

NPROCS = 64
BATCH = 64


def _run():
    system = a100_system(NPROCS, hbm_gib=1_000_000)
    out = []
    for v in (1, 2, 3, 4, 6, 12):
        res = calculate(
            GPT3_175B,
            system,
            ExecutionStrategy(
                tensor_par=8,
                pipeline_par=8,
                data_par=1,
                batch=BATCH,
                microbatch=1,
                pp_interleaving=v,
                recompute="full",
            ),
        )
        out.append((v, res))
    return out


def test_ablation_interleaving(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    banner("Ablation — interleaving: bubble vs PP traffic vs activation memory")
    print(
        table(
            ["v", "batch s", "bubble s", "PP comm total s", "activation GiB"],
            [
                (v, round(r.batch_time, 2), round(r.time.pp_bubble, 3),
                 round(r.time.pp_comm_total, 3),
                 round(r.mem1.activation / 2**30, 2))
                for v, r in rows
            ],
        )
    )

    by_v = dict(rows)
    # Bubble shrinks as 1/v.
    assert by_v[4].time.pp_bubble == pytest.approx(
        by_v[1].time.pp_bubble / 4, rel=0.02
    )
    assert by_v[12].time.pp_bubble < by_v[2].time.pp_bubble
    # PP traffic grows linearly with v.
    assert by_v[4].time.pp_comm_total == pytest.approx(
        4 * by_v[1].time.pp_comm_total, rel=0.05
    )
    # Activation footprint grows with interleaving (extra in-flight chunks).
    assert by_v[4].mem1.activation > by_v[1].mem1.activation
    # There is an interior sweet spot or saturation: the largest v is not
    # strictly the fastest once traffic costs kick in, or gains flatten.
    gains = [rows[i][1].batch_time - rows[i + 1][1].batch_time
             for i in range(len(rows) - 1)]
    assert gains[0] > gains[-1] - 1e-9
