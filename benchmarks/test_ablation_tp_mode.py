"""Ablation: 1-D vs 2-D tensor-parallel distribution (paper §6, ref [35]).

"TP up to 16 can achieve best performance with a single dimensional
distribution ... since distributing GEMM across more dimensions works better
only with larger TP partition sizes."  This bench sweeps the TP degree with
both distributions and locates the crossover.
"""

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import LLMConfig
from repro.viz import table

from _helpers import banner

# A wide model so large TP degrees still divide the shape evenly.
LLM = LLMConfig(name="tp-ablate", hidden=16384, attn_heads=256, seq_size=2048,
                num_blocks=8)
T_VALUES = (4, 16, 64, 256)


def _run():
    rows = []
    for t in T_VALUES:
        system = a100_system(t, hbm_gib=1_000_000, nvlink_size=t)
        base = dict(
            tensor_par=t, pipeline_par=1, data_par=1, batch=4, microbatch=4,
            recompute="none",
        )
        one_d = calculate(LLM, system, ExecutionStrategy(tp_mode="1d", **base))
        two_d = calculate(LLM, system, ExecutionStrategy(tp_mode="2d", **base))
        rows.append((t, one_d, two_d))
    return rows


def test_ablation_tp_mode(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    banner("Ablation — 1-D vs 2-D tensor parallelism (batch time, TP comm)")
    print(
        table(
            ["t", "1D s", "2D s", "1D TP comm", "2D TP comm", "winner"],
            [
                (
                    t,
                    round(a.batch_time, 3),
                    round(b.batch_time, 3),
                    round(a.time.tp_comm_total, 3),
                    round(b.time.tp_comm_total, 3),
                    "2D" if b.batch_time < a.batch_time else "1D",
                )
                for t, a, b in rows
            ],
        )
    )

    by_t = {t: (a, b) for t, a, b in rows}

    # Small TP degree: the single-dimensional split wins (weight tiles make
    # 2-D more expensive).
    a4, b4 = by_t[4]
    assert a4.batch_time <= b4.batch_time

    # Large TP degree: the 2-D grid's 1/sqrt(t) activation volume wins.
    a256, b256 = by_t[256]
    assert b256.batch_time < a256.batch_time
    assert b256.time.tp_comm_total < a256.time.tp_comm_total

    # The advantage of 2-D grows monotonically with t.
    ratios = [b.batch_time / a.batch_time for _, a, b in rows]
    assert ratios == sorted(ratios, reverse=True)
