"""Serving co-design acceptance benchmark: GPT-3 175B under a latency SLO.

Runs ``serve_search`` on GPT-3 175B over an h100:16 pool with a trace-style
workload (uniform 512-2048-token prompts, 64-256-token outputs, Poisson
arrivals) against a p95 TTFT + p95 per-token SLO, and gates on the PR's
acceptance criteria:

* the search returns a deployment that **meets the SLO** (every plan in the
  reported top-k satisfies it on the measured percentiles),
* the answer is **bit-identical across two runs** (every float field of
  every ``ServeStats`` in the top-k compares equal), and
* SLO-bound **pruning never changes the top-k** — the pruned search must
  match the exhaustive no-prune oracle entry for entry while actually
  skipping a nonzero share of the candidate space.

Measured wall-clocks (pruned vs oracle) and the winning deployment are
written to ``BENCH_serving.json``.
"""

import json
import time
from pathlib import Path

from repro.fsutil import atomic_write_text
from repro.hardware.system import h100_system
from repro.llm.config import GPT3_175B
from repro.serving import LengthDist, ServeWorkload, SLOSpec, serve_search

from _helpers import banner

TOP_K = 5
NPROCS = 16
SLO = SLOSpec(ttft_p95=0.35, tpot_p95=0.04)
WORKLOAD = ServeWorkload(
    arrival_rate=4.0,
    prompt=LengthDist.uniform(512, 2048),
    output=LengthDist.uniform(64, 256),
    num_requests=80,
    seed=7,
)


def _timed_search(prune):
    system = h100_system(NPROCS)
    t0 = time.perf_counter()
    result = serve_search(GPT3_175B, system, WORKLOAD, SLO,
                          top_k=TOP_K, prune=prune)
    return time.perf_counter() - t0, result


def _tops_identical(a, b):
    return len(a.top) == len(b.top) and all(
        pa == pb and sa == sb
        for (pa, sa), (pb, sb) in zip(a.top, b.top)
    )


def _run():
    t_first, first = _timed_search(prune=True)
    t_second, second = _timed_search(prune=True)
    t_oracle, oracle = _timed_search(prune=False)
    return t_first, first, t_second, second, t_oracle, oracle


def test_serve_search_slo_codesign(benchmark):
    t_first, first, t_second, second, t_oracle, oracle = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    banner(f"serve-search — GPT-3 175B, h100:{NPROCS}, "
           f"rate {WORKLOAD.arrival_rate}/s, SLO {SLO.short_name()}")
    best_plan, best_stats = first.top[0]
    print(f"candidates {first.num_candidates}  simulated {first.num_simulated}"
          f"  slo-pruned {first.num_pruned}  infeasible {first.num_infeasible}")
    print(f"pruned search   {t_first:.3f} s / {t_second:.3f} s (two runs)")
    print(f"no-prune oracle {t_oracle:.3f} s")
    print(f"best deployment {best_plan.short_name()}  "
          f"goodput {best_stats.goodput_rps:.3f} req/s  "
          f"TTFT p95 {best_stats.ttft_p95 * 1e3:.1f} ms  "
          f"TPOT p95 {best_stats.tpot_p95 * 1e3:.2f} ms")

    # Acceptance gate 1: a deployment that meets the SLO exists, and the
    # whole reported top-k honours it on the measured percentiles.
    assert first.top, "no deployment meets the SLO"
    for _, stats in first.top:
        assert SLO.satisfied(stats)

    # Acceptance gate 2: deterministic — two runs agree bit for bit.
    assert _tops_identical(first, second)

    # Acceptance gate 3: the bound is sound — pruning engaged but the
    # top-k matches the exhaustive oracle entry for entry.
    assert first.num_pruned > 0
    assert oracle.num_pruned == 0
    assert _tops_identical(first, oracle)

    path = Path("BENCH_serving.json")
    data = json.loads(path.read_text()) if path.exists() else {}
    data.update(
        {
            "llm": "GPT3_175B",
            "system": f"h100:{NPROCS}",
            "workload": WORKLOAD.to_dict(),
            "slo": SLO.to_dict(),
            "candidates": first.num_candidates,
            "simulated": first.num_simulated,
            "slo_pruned": first.num_pruned,
            "infeasible": first.num_infeasible,
            "pruned_s": min(t_first, t_second),
            "oracle_s": t_oracle,
            "best_plan": best_plan.short_name(),
            "goodput_rps": best_stats.goodput_rps,
            "ttft_p95_s": best_stats.ttft_p95,
            "tpot_p95_s": best_stats.tpot_p95,
            "deterministic": True,
            "prune_identical_topk": True,
        }
    )
    atomic_write_text(path, json.dumps(data, indent=1) + "\n")
