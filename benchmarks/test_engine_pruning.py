"""Engine pruning: batched evaluate_many vs. a naive calculate() loop.

The staged engine's sweep primitive owes its speed to two structural facts
about memory-constrained searches: (a) candidates sharing a block-profile key
are profiled once per group instead of once per call, and (b) the memory plan
rejects most candidates (on GPT-3 175B at 80 GiB/GPU, the large-batch space
is dominated by activation overflow) before any communication or timing work
runs.  This bench sweeps a slice of the paper's 4,096-GPU batch-4096 space
both ways and reports the pruned fraction and the wall-clock ratio.
"""

import gc
import time

from repro.core import calculate
from repro.engine import clear_caches, evaluate_many
from repro.hardware import a100_system
from repro.llm import GPT3_175B
from repro.search import SearchOptions, candidate_strategies

from _helpers import banner

NPROCS = 4096
BATCH = 4096


def _run():
    system = a100_system(NPROCS)
    strategies = list(
        candidate_strategies(GPT3_175B, system, BATCH, SearchOptions())
    )

    # Retaining ~100k results while the other path runs would distort the
    # timing with garbage-collector pressure: keep only the feasibility bits
    # and let each phase's results die young.
    clear_caches()
    gc.collect()
    t0 = time.perf_counter()
    naive_feasible = [
        calculate(GPT3_175B, system, s).feasible for s in strategies
    ]
    t_naive = time.perf_counter() - t0

    clear_caches()
    gc.collect()
    t0 = time.perf_counter()
    batched = evaluate_many(GPT3_175B, system, strategies, prune=True)
    t_batched = time.perf_counter() - t0
    batched_feasible = [r.feasible for r in batched]

    return strategies, naive_feasible, batched_feasible, t_naive, t_batched


def test_engine_pruning_speedup(benchmark):
    strategies, naive_feasible, batched_feasible, t_naive, t_batched = (
        benchmark.pedantic(_run, rounds=1, iterations=1)
    )

    feasible = sum(batched_feasible)
    pruned = 1.0 - feasible / len(strategies)
    ratio = t_naive / t_batched

    banner("engine pruning — GPT-3 175B, a100:4096, batch 4096")
    print(f"candidates          {len(strategies):,}")
    print(f"memory-pruned       {pruned * 100:.1f}% ({len(strategies) - feasible:,})")
    print(f"naive calculate()   {t_naive:.2f} s "
          f"({t_naive / len(strategies) * 1e6:.0f} us/candidate)")
    print(f"evaluate_many       {t_batched:.2f} s "
          f"({t_batched / len(strategies) * 1e6:.0f} us/candidate)")
    print(f"speedup             {ratio:.2f}x")

    # Identical results either way (the golden-equivalence suite checks every
    # field; here we spot-check the decisions that drive the pruning).
    assert naive_feasible == batched_feasible

    # The memory-constrained space is mostly infeasible, only survivors reach
    # the timing stages, and batching must pay off by a healthy margin.
    assert pruned > 0.5
    assert ratio >= 1.3
