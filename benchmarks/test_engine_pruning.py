"""Engine pruning: batched evaluate_many vs. a naive calculate() loop.

The staged engine's sweep primitive owes its speed to two structural facts
about memory-constrained searches: (a) candidates sharing a block-profile key
are profiled once per group instead of once per call, and (b) the memory plan
rejects most candidates (on GPT-3 175B at 80 GiB/GPU, the large-batch space
is dominated by activation overflow) before any communication or timing work
runs.  This bench sweeps a slice of the paper's 4,096-GPU batch-4096 space
both ways and asserts the pruning structure against the engine's own
``PruneStats`` counters — the instrumentation that ships with the sweep, not
a re-derivation — then bounds the wall-clock overhead of collecting them.
"""

import gc
import os
import tempfile
import time
from pathlib import Path

from repro.core import calculate
from repro.engine import clear_caches, evaluate_many
from repro.obs import EventJournal, MetricsRegistry, Tracer

from _helpers import banner, gpt3_sweep_space, merge_bench


def _run():
    llm, system, _batch, strategies = gpt3_sweep_space()

    # Retaining ~100k results while the other path runs would distort the
    # timing with garbage-collector pressure: keep only the feasibility bits
    # and let each phase's results die young.  ``columnar=False`` keeps this
    # a measurement of the *scalar* batched path — the columnar engine has
    # its own benchmark (test_engine_columnar.py).
    clear_caches()
    gc.collect()
    t0 = time.perf_counter()
    naive_feasible = [
        calculate(llm, system, s).feasible for s in strategies
    ]
    t_naive = time.perf_counter() - t0

    clear_caches()
    gc.collect()
    t0 = time.perf_counter()
    batched = evaluate_many(llm, system, strategies, prune=True, columnar=False)
    t_batched = time.perf_counter() - t0
    batched_feasible = [r.feasible for r in batched]
    del batched

    # Same sweep once more with the counters attached, to measure what the
    # stats collection itself costs on the hot path.
    clear_caches()
    gc.collect()
    t0 = time.perf_counter()
    counted, stats = evaluate_many(
        llm, system, strategies, prune=True, stats=True, columnar=False,
    )
    t_stats = time.perf_counter() - t0
    del counted

    # The full observability stack, attached the way a production chunked
    # sweep attaches it: per-stage latency histograms in a MetricsRegistry,
    # one tracer span per chunk (not per candidate), and an open
    # flight-recorder journal emitting the chunk lifecycle.  Compared
    # best-of-3 against a best-of-3 interleaved re-run of the stats-only
    # sweep because the expected delta is small enough for single-shot
    # scheduler noise to drown it.
    t_stats_best = float("inf")
    t_full = float("inf")
    with tempfile.TemporaryDirectory() as tmp:
        journal_path = os.path.join(tmp, "events.jsonl")
        for _ in range(3):
            clear_caches()
            gc.collect()
            t0 = time.perf_counter()
            counted, _ = evaluate_many(
                llm, system, strategies, prune=True, stats=True,
                columnar=False,
            )
            t_stats_best = min(t_stats_best, time.perf_counter() - t0)
            del counted

            clear_caches()
            gc.collect()
            registry = MetricsRegistry()
            tracer = Tracer()
            journal = EventJournal(journal_path, source="bench")
            t0 = time.perf_counter()
            with tracer.span("chunk[0]", cat="search.chunk"):
                journal.emit("chunk.dispatch", chunk=0, attempt=0,
                             mode="serial")
                counted, _ = evaluate_many(
                    llm, system, strategies, prune=True, stats=True,
                    metrics=registry, columnar=False,
                )
                journal.emit("chunk.done", chunk=0,
                             seconds=time.perf_counter() - t0)
            t_full = min(t_full, time.perf_counter() - t0)
            journal.close()
            del counted

    return (
        strategies, naive_feasible, batched_feasible,
        t_naive, t_batched, t_stats, stats, t_stats_best, t_full,
    )


def test_engine_pruning_speedup(benchmark):
    (
        strategies, naive_feasible, batched_feasible,
        t_naive, t_batched, t_stats, stats, t_stats_best, t_full,
    ) = benchmark.pedantic(_run, rounds=1, iterations=1)

    feasible = sum(batched_feasible)
    ratio = t_naive / t_batched
    overhead = t_stats / t_batched - 1.0
    full_overhead = t_full / t_stats_best - 1.0

    banner("engine pruning — GPT-3 175B, a100:4096, batch 4096")
    print(stats.summary())
    print(f"naive calculate()   {t_naive:.2f} s "
          f"({t_naive / len(strategies) * 1e6:.0f} us/candidate)")
    print(f"evaluate_many       {t_batched:.2f} s "
          f"({t_batched / len(strategies) * 1e6:.0f} us/candidate)")
    print(f"with stats=True     {t_stats:.2f} s ({overhead * 100:+.1f}%)")
    print(f"full observability  {t_full:.2f} s "
          f"({full_overhead * 100:+.1f}% over stats-only)")
    print(f"speedup             {ratio:.2f}x")

    # Identical results either way (the golden-equivalence suite checks every
    # field; here we spot-check the decisions that drive the pruning).
    assert naive_feasible == batched_feasible

    # The engine's own counters must tell the same story as the results:
    # every candidate accounted for, survivors equal to the feasible set,
    # and each validated candidate either formed a memory bucket or hit one.
    assert stats.candidates == len(strategies)
    assert stats.evaluated_full == feasible
    assert stats.candidates == (
        stats.rejected_validate + stats.rejected_memory + stats.evaluated_full
    )
    assert stats.memory_buckets + stats.bucket_hits == stats.validated

    # The structural facts the speedup rests on, read off the counters:
    # grouping collapses most profiles, buckets are shared heavily, and the
    # memory plan rejects most of the space before any timing work.
    assert stats.profile_groups < 0.5 * stats.validated
    assert stats.bucket_hit_rate > 0.5
    assert stats.shared_infeasible > 0
    pruned = stats.rejected / stats.candidates
    assert pruned > 0.5

    # Batching must pay off by a healthy margin.  Counting what it did costs
    # real time — two clock reads per candidate against a ~13 us/candidate
    # hot path, measured around +40% — but must stay bounded and must not
    # eat the speedup: even the counted sweep beats the naive loop.
    assert ratio >= 1.3
    assert overhead < 0.75
    assert t_naive / t_stats > 1.0

    # The flight-recorder layer (tracer span, journal events, latency
    # histograms) attaches at chunk/stage granularity, so it must be nearly
    # free on top of the per-candidate stats counters.
    assert full_overhead <= 0.05

    merge_bench(
        Path("BENCH_engine.json"),
        "pruning",
        {
            "pruning_naive_s": t_naive,
            "pruning_batched_s": t_batched,
            "pruning_stats_s": t_stats_best,
            "pruning_full_obs_s": t_full,
            "pruning_speedup": ratio,
            "stats_overhead": overhead,
            "full_instrumentation_overhead": full_overhead,
        },
    )
