"""Ablation: the size-dependent GEMM efficiency curve (§2.2).

The paper parameterizes matrix-engine performance by operation size because
small GEMMs run at a lower fraction of peak.  This ablation replaces the
calibrated curve with a flat one (matched at large sizes) and measures how
the predicted penalty of extreme tensor parallelism changes.

Expectation: with the curve, high TP degrees (thin local GEMMs) lose extra
throughput, so the flat-efficiency model *underestimates* the cost of large
t — the gap widens as t grows.
"""

from dataclasses import replace

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import EfficiencyCurve, a100_system
from repro.llm import GPT3_175B, LLMConfig
from repro.viz import table

from _helpers import banner

NPROCS = 64
BATCH = 64

# A small model: sharded 32 ways its GEMMs leave the efficiency plateau,
# which is exactly the regime the size-dependent curve exists to capture.
SMALL = LLMConfig(name="small-ablate", hidden=2048, attn_heads=32, seq_size=512,
                  num_blocks=16)


def _system(flat: bool):
    sys_ = a100_system(NPROCS, hbm_gib=1_000_000, nvlink_size=64)
    if not flat:
        return sys_
    proc = replace(
        sys_.processor,
        matrix_efficiency=EfficiencyCurve.flat(
            sys_.processor.matrix_efficiency(1e13)
        ),
    )
    return replace(sys_, processor=proc)


def _run():
    out = []
    for t in (1, 2, 4, 8, 16, 32):
        strat = ExecutionStrategy(
            tensor_par=t,
            pipeline_par=1,
            data_par=NPROCS // t,
            batch=BATCH,
            microbatch=1,
            recompute="full",
        )
        curved = calculate(SMALL, _system(False), strat)
        flat = calculate(SMALL, _system(True), strat)
        out.append((t, curved, flat))
    return out


def test_ablation_efficiency_curve(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    banner("Ablation — size-dependent GEMM efficiency vs flat efficiency")
    print(
        table(
            ["t", "curved s", "flat s", "curve penalty"],
            [
                (t, round(c.batch_time, 2), round(f.batch_time, 2),
                 f"{(c.batch_time / f.batch_time - 1) * 100:+.1f}%")
                for t, c, f in rows
            ],
        )
    )

    penalties = [c.batch_time / f.batch_time for t, c, f in rows]
    # The flat model can never be slower (it is matched at large sizes).
    assert all(p >= 1.0 - 1e-9 for p in penalties)
    # The curve's impact peaks at intermediate shard sizes: GEMMs have left
    # the efficiency plateau but are still compute-bound.  At extreme t the
    # ops turn memory-bound (roofline max) and TP communication dominates,
    # so the compute-efficiency penalty fades again.
    peak = max(penalties)
    assert peak > penalties[0] + 0.02
    peak_idx = penalties.index(peak)
    assert 0 < peak_idx < len(penalties) - 1
    assert penalties[-1] < peak
