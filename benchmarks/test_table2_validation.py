"""Table 2: validation against measured Selene batch times.

Reproduces the eight validation runs (22B/175B/530B/1T x {full recompute,
seqpar+selective recompute}) and prints paper-Selene, paper-Calculon and our
prediction side by side with deltas.
"""

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import get_preset
from repro.viz import table

from _helpers import banner

RUNS = [
    ("megatron-22b", 8, 8, 1, 1, 4),
    ("gpt3-175b", 64, 8, 8, 1, 64),
    ("turing-530b", 280, 8, 35, 1, 280),
    ("megatron-1t", 512, 8, 64, 1, 512),
]
SELENE = {"full": [1.42, 18.13, 49.05, 94.42], "seqsel": [1.10, 13.75, 37.83, 71.49]}
PAPER = {"full": [1.40, 18.03, 49.89, 90.08], "seqsel": [1.14, 13.64, 34.47, 66.04]}


def _predict(name, n, t, p, d, batch, seqsel):
    llm = get_preset(name)
    system = a100_system(n)
    kw = (
        dict(recompute="attn_only", seq_par=True, tp_redo_sp=True)
        if seqsel
        else dict(recompute="full")
    )
    best = None
    for mb in (1, 2, 4):
        if (batch // d) % mb:
            continue
        res = calculate(
            llm,
            system,
            ExecutionStrategy(
                tensor_par=t, pipeline_par=p, data_par=d, batch=batch,
                microbatch=mb, **kw,
            ),
        )
        if res.feasible and (best is None or res.batch_time < best):
            best = res.batch_time
    return best


def _run_all():
    out = {}
    for mode, seqsel in (("full", False), ("seqsel", True)):
        out[mode] = [
            _predict(name, n, t, p, d, batch, seqsel)
            for name, n, t, p, d, batch in RUNS
        ]
    return out


def test_table2_validation(benchmark):
    ours = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    banner("Table 2 — validation vs Selene (batch time, seconds)")
    rows = []
    errs = []
    for mode in ("full", "seqsel"):
        for (name, n, *_), selene, paper, mine in zip(
            RUNS, SELENE[mode], PAPER[mode], ours[mode]
        ):
            delta = (mine / selene - 1) * 100
            errs.append(abs(delta))
            rows.append((mode, name, n, selene, paper, round(mine, 2), f"{delta:+.1f}%"))
    print(
        table(
            ["mode", "model", "GPUs", "Selene s", "paper-Calculon s", "ours s", "delta"],
            rows,
        )
    )
    print(f"mean abs error {sum(errs) / len(errs):.2f}%   max {max(errs):.2f}%")

    # Paper's own model reaches 3.65% mean / 8.87% max; we require a
    # comparable (slightly looser) envelope from the re-derivation.
    assert sum(errs) / len(errs) < 10.0
    assert max(errs) < 15.0
    # Structural shape: seq+sel beats full recompute in every configuration.
    assert all(s < f for s, f in zip(ours["seqsel"], ours["full"]))
