"""Fig. 9: tensor-offloading study for Megatron-1T on 4,096 H100-80GiB.

(a,b) an *ideal* offload memory (infinite capacity and bandwidth): the model
reports the sample rate / HBM usage and the bandwidth/capacity the best
strategies actually consume.  (c,d) the same with a realistic 512 GiB @
100 GB/s DDR5 tier.

Shape criteria: with resource abundance the searcher picks strategies that
consume far more tier-2 resources; with the realistic tier, performance drops
only a few percent while consumption falls drastically; most performant
configurations keep HBM usage low (paper: under ~20 GB); required bandwidth
stays within technological reach (paper: <600 GB/s ideal, 100 GB/s adequate).
"""

import pytest

from repro.hardware import MemoryTier, h100_system
from repro.llm import MEGATRON_1T
from repro.search import SearchOptions
from repro.units import GB, GiB
from repro.viz import heat_grid

from _helpers import banner, best_over, grid_strategies

BATCH = 4096
NPROCS = 4096
T_VALUES = (1, 2, 4, 8, 16, 32)
P_VALUES = (1, 2, 4, 8, 16, 32)

IDEAL = MemoryTier(
    name="ideal", capacity=1e18, bandwidth=1e18, efficiency=1.0
)
REAL = MemoryTier(name="ddr5", capacity=512 * GiB, bandwidth=100 * GB, efficiency=0.9)

OPTS = SearchOptions(
    recompute=("none", "attn_only"),
    seq_par_modes=((False, False, False), (True, True, True)),
    tp_overlap=("none", "ring"),
    dp_overlap=(True,),
    optimizer_sharding=(True,),
    fused_activations=(True,),
    offload_modes=((True, True, True),),
    max_microbatch=8,
)


def _grid(tier):
    system = h100_system(NPROCS, hbm_gib=80, offload=tier)
    cells = {}
    for t in T_VALUES:
        for p in P_VALUES:
            if NPROCS % (t * p):
                continue
            d = NPROCS // (t * p)
            best = best_over(
                MEGATRON_1T, system, grid_strategies(MEGATRON_1T, BATCH, t, p, d, OPTS)
            )
            cells[(t, p)] = best
    return cells


def _run():
    return {"ideal": _grid(IDEAL), "real": _grid(REAL)}


def _print(cells, title, fmt):
    banner(title)
    rows = []
    for t in T_VALUES:
        row = []
        for p in P_VALUES:
            best = cells.get((t, p))
            row.append("--" if best is None else fmt(best[1]))
        rows.append(row)
    print(heat_grid([f"t={t}" for t in T_VALUES], [f"p={p}" for p in P_VALUES], rows))


def test_fig9_offload_grid(benchmark):
    grids = benchmark.pedantic(_run, rounds=1, iterations=1)
    ideal, real = grids["ideal"], grids["real"]

    _print(
        ideal,
        "Fig. 9(a) — ideal offload: sample rate / HBM GiB",
        lambda r: f"{r.sample_rate:.0f}/{r.mem1.total / 2**30:.0f}G",
    )
    _print(
        ideal,
        "Fig. 9(b) — ideal offload: required BW GB/s / tier-2 GiB",
        lambda r: f"{r.offload.required_bandwidth / 1e9:.0f}G/"
        f"{r.offload.used_bytes / 2**30:.0f}G",
    )
    _print(
        real,
        "Fig. 9(c) — 512 GiB @ 100 GB/s: sample rate / HBM GiB",
        lambda r: f"{r.sample_rate:.0f}/{r.mem1.total / 2**30:.0f}G",
    )
    _print(
        real,
        "Fig. 9(d) — 512 GiB @ 100 GB/s: required BW GB/s / tier-2 GiB",
        lambda r: f"{r.offload.required_bandwidth / 1e9:.0f}G/"
        f"{r.offload.used_bytes / 2**30:.0f}G",
    )

    ideal_best = max(
        (v[1] for v in ideal.values() if v), key=lambda r: r.sample_rate
    )
    real_best = max((v[1] for v in real.values() if v), key=lambda r: r.sample_rate)

    # Realistic offload keeps most of the ideal performance (paper: within a
    # few percent for many configurations).
    assert real_best.sample_rate > 0.80 * ideal_best.sample_rate

    # The ideal tier tempts the searcher into far larger tier-2 footprints.
    ideal_cap = max(v[1].offload.used_bytes for v in ideal.values() if v)
    real_cap = max(v[1].offload.used_bytes for v in real.values() if v)
    assert real_cap <= 512 * GiB
    assert ideal_cap > real_cap

    # Offloading keeps active HBM usage modest for the best configurations.
    assert real_best.mem1.total < 40 * GiB

    # Required offload bandwidths stay within current technology for the
    # best realistic configuration (paper: ~100 GB/s suffices).
    assert real_best.offload.required_bandwidth < 1e12
