"""Extension: Mixture-of-Experts trade-offs (GShard/GSPMD, the paper's
related-work systems).

Sweeps the expert count for a GPT-3-backbone MoE on 64 A100s and compares
against (a) the dense backbone and (b) a dense model of equal total
parameters.  Shape criteria: MoE reaches a parameter count far above the
backbone at a small compute premium; the equal-parameter dense model is much
slower; all-to-all cost and expert memory grow with the expert count.
"""

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import LLMConfig
from repro.moe import MoEConfig, calculate_moe
from repro.viz import table

from _helpers import banner

BASE = LLMConfig(name="moe-backbone", hidden=4096, attn_heads=32,
                 seq_size=2048, num_blocks=24)
SYS = a100_system(64, hbm_gib=1_000_000)
STRAT = ExecutionStrategy(tensor_par=4, pipeline_par=2, data_par=8, batch=64,
                          microbatch=1, recompute="none",
                          optimizer_sharding=True)
EXPERTS = (2, 8, 32, 128)


def _run():
    dense = calculate(BASE, SYS, STRAT)
    rows = []
    for E in EXPERTS:
        cfg = MoEConfig(base=BASE, num_experts=E, experts_per_token=2)
        rows.append((E, cfg, calculate_moe(cfg, SYS, STRAT)))
    return dense, rows


def test_ext_moe(benchmark):
    dense, rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    banner("Extension — MoE scaling on a 4096-hidden backbone (64 A100)")
    print(
        table(
            ["experts", "params", "batch s", "vs dense", "a2a s", "expert mem GiB"],
            [
                (
                    E,
                    f"{cfg.total_parameters / 1e9:.1f}B",
                    round(r.batch_time, 3),
                    f"{r.batch_time / dense.batch_time:.2f}x",
                    round(r.all_to_all_time, 3),
                    round(r.expert_memory / 2**30, 2),
                )
                for E, cfg, r in rows
            ],
        )
    )
    print(
        f"\ndense backbone: {BASE.total_parameters / 1e9:.1f}B params, "
        f"{dense.batch_time:.3f} s"
    )

    by_e = {E: (cfg, r) for E, cfg, r in rows}

    # Parameter count scales with the expert count at modest time premium.
    cfg128, r128 = by_e[128]
    assert cfg128.total_parameters > 10 * BASE.total_parameters
    assert r128.batch_time < 3 * dense.batch_time

    # Expert memory grows with the expert count (at the DP-bounded ep).
    mems = [r.expert_memory for _, _, r in rows]
    assert mems == sorted(mems)

    # An equal-parameter dense model is far slower than the 32-expert MoE.
    cfg32, r32 = by_e[32]
    extra = cfg32.total_parameters - BASE.total_parameters
    ff = int(BASE.feedforward + extra / (BASE.num_blocks * (2 * BASE.hidden + 1)))
    ff -= ff % 64
    dense_eq = LLMConfig(name="dense-eq", hidden=BASE.hidden,
                         attn_heads=BASE.attn_heads, seq_size=BASE.seq_size,
                         num_blocks=BASE.num_blocks, feedforward=ff)
    eq = calculate(dense_eq, SYS, STRAT)
    print(
        f"equal-parameter dense ({dense_eq.total_parameters / 1e9:.1f}B): "
        f"{eq.batch_time:.3f} s vs MoE-32 {r32.batch_time:.3f} s"
    )
    assert eq.feasible
    assert r32.batch_time < 0.6 * eq.batch_time
