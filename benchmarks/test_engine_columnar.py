"""Columnar engine: adaptive best-bound-first search vs the pruned scalar path.

Acceptance criterion for the adaptive columnar core (ISSUE 10, raising
ISSUE 6's 5x): a serial top-k search over the shared GPT-3 175B / 4,096-GPU /
batch-4096 space must run >= 10x faster through the adaptive columnar path
(candidates enumerated straight into NumPy columns, buckets visited
best-bound-first in geometrically growing tiles, a strict threshold skipping
buckets between tiles) than through the *bound-pruned scalar* path — the
strongest scalar configuration, measured fresh in this process so the ratio
is same-machine.  The assertion gate sits at 8x to absorb shared-runner
scheduler noise; the measured numbers are merged into ``BENCH_engine.json``
next to the bound-pruning results.

Two bit-exactness gates guard the speed claim: the adaptive top-k must match
the pruned scalar top-k AND the *unpruned scalar oracle* top-k entry for
entry (results equal as frozen dataclasses, every float bit-for-bit), so no
layer of pruning — scalar bound-and-prune or adaptive tiling — changed the
answer.

A final instrumented columnar run checks the adaptive counters: one batch
covering the whole space, zero scalar fallbacks, at least one tile, and a
non-trivial bucket skip rate.
"""

import gc
import time
from pathlib import Path

from repro.engine import clear_caches
from repro.search import search

from _helpers import banner, gpt3_sweep_problem, merge_bench

TOP_K = 10
ROUNDS = 3  # best-of-N damps scheduler noise on shared CI runners


def _timed_search(columnar: bool):
    llm, system, batch = gpt3_sweep_problem()
    best_t = None
    result = None
    for _ in range(ROUNDS):
        clear_caches()
        gc.collect()
        t0 = time.perf_counter()
        result = search(
            llm, system, batch, top_k=TOP_K, workers=0,
            keep_rates=False, columnar=columnar,
        )
        dt = time.perf_counter() - t0
        best_t = dt if best_t is None else min(best_t, dt)
    return best_t, result


def _run():
    # columnar=False with keep_rates=False engages bound pruning — the
    # scalar reference here is the best scalar search available.
    t_scalar, scalar = _timed_search(columnar=False)
    t_col, col = _timed_search(columnar=True)

    # The unpruned scalar oracle: every candidate fully evaluated, no
    # pruning of any kind.  Run once, untimed — it exists to prove the
    # answer, not to flatter the ratio.
    clear_caches()
    gc.collect()
    llm, system, batch = gpt3_sweep_problem()
    oracle = search(
        llm, system, batch, top_k=TOP_K, workers=0,
        keep_rates=False, bound_prune=False, columnar=False,
    )

    clear_caches()
    gc.collect()
    counted = search(
        llm, system, batch, top_k=TOP_K, workers=0,
        keep_rates=False, columnar=True, collect_stats=True,
    )
    return t_scalar, scalar, t_col, col, oracle, counted


def _same_topk(a, b) -> bool:
    return len(a.top) == len(b.top) == TOP_K and all(
        s1 == s2 and r1 == r2
        for (s1, r1), (s2, r2) in zip(a.top, b.top)
    )


def test_columnar_search_speedup(benchmark):
    t_scalar, scalar, t_col, col, oracle, counted = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    speedup = t_scalar / t_col
    stats = counted.stats.engine
    feasible_buckets = stats.bound_evals
    skip_rate = (
        stats.bound_skipped_buckets / feasible_buckets
        if feasible_buckets
        else 0.0
    )

    banner("adaptive columnar engine — GPT-3 175B, a100:4096, batch 4096, top-10")
    print(stats.summary())
    print(f"pruned scalar search  {t_scalar:.2f} s")
    print(f"adaptive columnar     {t_col:.2f} s")
    print(f"speedup               {speedup:.2f}x   (criterion: >= 10x, gate: >= 8x)")
    print(f"tiles                 {stats.bound_tiles}")
    print(f"bucket skip rate      {skip_rate:.1%}")

    # Bit-exactness gates: the adaptive columnar top-k must match both the
    # pruned scalar top-k and the unpruned scalar oracle entry for entry —
    # same strategies, results equal as frozen dataclasses (every float
    # field compared bit-for-bit).
    identical = _same_topk(scalar, col)
    identical_oracle = _same_topk(oracle, col)
    assert identical
    assert identical_oracle
    assert scalar.num_feasible == col.num_feasible == counted.num_feasible
    assert oracle.num_feasible == col.num_feasible
    assert scalar.num_evaluated == col.num_evaluated == counted.num_evaluated
    assert oracle.num_evaluated == col.num_evaluated

    # The counters must show the whole space rode the vectorized adaptive
    # path: one batch, no scalar fallbacks, tiled execution that actually
    # skipped buckets.
    assert stats.columnar_batches >= 1
    assert stats.columnar_candidates == counted.num_evaluated
    assert stats.columnar_fallback == 0
    assert stats.bound_tiles >= 1
    assert stats.bound_skipped_buckets > 0

    assert speedup >= 8.0

    # Merge into the engine benchmark record (the bounds benchmark writes
    # the scalar baseline/pruned fields; run orders may vary, so read
    # whatever is already there).  The ratio is same-process, so it is
    # meaningful even on one core — merge_bench tags the core count so
    # trend gates can tell hosts apart.
    merge_bench(
        Path("BENCH_engine.json"),
        "columnar",
        {
            "columnar_s": t_col,
            "columnar_pruned_scalar_s": t_scalar,
            "columnar_speedup": speedup,
            "columnar_identical_topk": identical,
            "columnar_identical_oracle_topk": identical_oracle,
            "columnar_candidates": counted.num_evaluated,
            "adaptive_tiles": stats.bound_tiles,
            "adaptive_bucket_skip_rate": skip_rate,
            "adaptive_seeded_buckets": stats.surrogate_seeded,
        },
    )
