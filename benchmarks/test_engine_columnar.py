"""Columnar engine: vectorized whole-space search vs the pruned scalar path.

Acceptance criterion for the columnar evaluation core (ISSUE 6): a serial
top-k search over the shared GPT-3 175B / 4,096-GPU / batch-4096 space must
run >= 5x faster through the pure-columnar path (candidates enumerated
straight into NumPy columns, every stage vectorized, only the winners
materialized) than through the *bound-pruned scalar* path — the strongest
scalar configuration, measured fresh in this process so the ratio is
same-machine — while retaining a bit-identical top-k.  The assertion gate
sits at 4x to absorb shared-runner scheduler noise; the measured numbers
are merged into ``BENCH_engine.json`` next to the bound-pruning results.

A third, instrumented columnar run checks the columnar counters: one batch
covering the whole space, zero scalar fallbacks.
"""

import gc
import json
import time
from pathlib import Path

from repro.engine import clear_caches
from repro.fsutil import atomic_write_text
from repro.search import search

from _helpers import banner, gpt3_sweep_problem

TOP_K = 10
ROUNDS = 2  # best-of-N damps scheduler noise on shared CI runners


def _timed_search(columnar: bool):
    llm, system, batch = gpt3_sweep_problem()
    best_t = None
    result = None
    for _ in range(ROUNDS):
        clear_caches()
        gc.collect()
        t0 = time.perf_counter()
        result = search(
            llm, system, batch, top_k=TOP_K, workers=0,
            keep_rates=False, columnar=columnar,
        )
        dt = time.perf_counter() - t0
        best_t = dt if best_t is None else min(best_t, dt)
    return best_t, result


def _run():
    # columnar=False with keep_rates=False engages bound pruning — the
    # scalar reference here is the best scalar search available.
    t_scalar, scalar = _timed_search(columnar=False)
    t_col, col = _timed_search(columnar=True)

    clear_caches()
    gc.collect()
    llm, system, batch = gpt3_sweep_problem()
    counted = search(
        llm, system, batch, top_k=TOP_K, workers=0,
        keep_rates=False, columnar=True, collect_stats=True,
    )
    return t_scalar, scalar, t_col, col, counted


def test_columnar_search_speedup(benchmark):
    t_scalar, scalar, t_col, col, counted = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    speedup = t_scalar / t_col
    stats = counted.stats.engine

    banner("columnar engine — GPT-3 175B, a100:4096, batch 4096, top-10")
    print(stats.summary())
    print(f"pruned scalar search  {t_scalar:.2f} s")
    print(f"columnar search       {t_col:.2f} s")
    print(f"speedup               {speedup:.2f}x   (criterion: >= 5x, gate: >= 4x)")

    # Bit-exactness gate: the columnar top-k must match the scalar top-k
    # entry for entry — same strategies, results equal as frozen dataclasses
    # (every float field compared bit-for-bit).
    identical = len(scalar.top) == len(col.top) == TOP_K and all(
        s1 == s2 and r1 == r2
        for (s1, r1), (s2, r2) in zip(scalar.top, col.top)
    )
    assert identical
    assert scalar.num_feasible == col.num_feasible == counted.num_feasible
    assert scalar.num_evaluated == col.num_evaluated == counted.num_evaluated

    # The counters must show the whole space rode the vectorized path.
    assert stats.columnar_batches >= 1
    assert stats.columnar_candidates == counted.num_evaluated
    assert stats.columnar_fallback == 0

    assert speedup >= 4.0

    # Merge into the engine benchmark record (the bounds benchmark writes
    # the scalar baseline/pruned fields; run orders may vary, so read
    # whatever is already there).
    path = Path("BENCH_engine.json")
    data = json.loads(path.read_text()) if path.exists() else {}
    data.update(
        {
            "columnar_s": t_col,
            "columnar_pruned_scalar_s": t_scalar,
            "columnar_speedup": speedup,
            "columnar_identical_topk": identical,
            "columnar_candidates": counted.num_evaluated,
        }
    )
    atomic_write_text(path, json.dumps(data, indent=1) + "\n")
