"""Fig. 4: parallelization-strategy analysis for Megatron-1T on 4,096 A100s.

Three slices through the (t, p, d) space — TP vs PP at DP=32, PP vs DP at
TP=8, TP vs DP at PP=32 — with batch 4096, optimizer sharding and 1F1B
(the paper's fixed software configuration).  The NVLink domain is sized to
the TP degree, exposing TP's implicit network cost.

Shape criteria: over-emphasizing any one parallelism mode degrades time (the
curve is convex with an interior optimum); TP cuts weight+activation memory,
PP cuts only weights, DP cuts neither.
"""

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import MEGATRON_1T
from repro.viz import stacked_bars

from _helpers import banner, best_over

BATCH = 4096
NPROCS = 4096


def _cell(t, p, d):
    """Best fixed-software configuration for one (t, p, d) split."""
    system = a100_system(NPROCS, nvlink_size=max(t, 8))
    cands = []
    for mb in (1, 2, 4):
        if (BATCH // d) % mb:
            continue
        for v in (1, 2):
            if p == 1 and v > 1:
                continue
            cands.append(
                ExecutionStrategy(
                    tensor_par=t,
                    pipeline_par=p,
                    data_par=d,
                    batch=BATCH,
                    microbatch=mb,
                    pp_interleaving=v,
                    optimizer_sharding=True,
                    recompute="full",
                )
            )
    return best_over(MEGATRON_1T, system, cands)


SLICES = {
    "TP vs PP (DP=32)": [(t, 128 // t, 32) for t in (1, 2, 4, 8, 16, 32)],
    "PP vs DP (TP=8)": [(8, p, 512 // p) for p in (1, 2, 4, 8, 16, 32, 64, 128)],
    "TP vs DP (PP=32)": [(t, 32, 128 // t) for t in (1, 2, 4, 8, 16, 32)],
}


def _run_all():
    return {
        name: [(tpd, _cell(*tpd)) for tpd in cells] for name, cells in SLICES.items()
    }


def test_fig4_parallelism(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    for name, cells in results.items():
        banner(f"Fig. 4 — {name}: Megatron-1T batch time and memory")
        time_rows, mem_rows = [], []
        for (t, p, d), best in cells:
            label = f"t{t} p{p} d{d}"
            if best is None:
                time_rows.append((label, [("infeasible", 0.0)]))
                mem_rows.append((label, [("infeasible", 0.0)]))
                continue
            _, res = best
            time_rows.append((label, [(k, v) for k, v in res.time.stacked() if v > 0]))
            mem_rows.append(
                (label, [(k, v / 2**30) for k, v in res.mem1.stacked() if v > 0])
            )
        print(stacked_bars(time_rows, unit=" s"))
        print()
        print(stacked_bars(mem_rows, unit=" GiB"))

    # --- shape assertions ----------------------------------------------------
    def times(slice_name):
        return [
            (tpd, b[1].batch_time if b else float("inf"))
            for tpd, b in results[slice_name]
        ]

    # Interior optimum: extremes are worse than the best interior point in
    # every slice (over-emphasizing one mode is bad).
    for name in SLICES:
        ts = times(name)
        vals = [v for _, v in ts]
        best_idx = vals.index(min(vals))
        assert 0 < best_idx < len(vals) - 1 or min(vals[0], vals[-1]) > min(vals), name

    # TP comm grows with t (TP vs PP slice).
    tp_cells = [b for _, b in results["TP vs PP (DP=32)"] if b]
    tp_comm = [r.time.tp_comm_total for _, r in tp_cells]
    assert tp_comm[-1] > tp_comm[0]

    # Memory along the TP-vs-PP slice (t*p fixed): weights stay ~constant —
    # t and p both shard them, trading one for the other.  (Activation
    # *stash* sharding under TP is asserted at the block level in
    # tests/test_blocks.py; under full recompute the checkpoints are
    # replicated across TP ranks, so no activation claim is made here.)
    tppp = {tpd: b for tpd, b in results["TP vs PP (DP=32)"] if b}
    lo_t = tppp[(1, 128, 32)][1].mem1
    hi_t = tppp[(32, 4, 32)][1].mem1
    assert hi_t.weight == pytest.approx(lo_t.weight, rel=0.05)

    # Low-p points run out of memory entirely (the paper's dashes); among the
    # feasible ones PP cuts weights and grows the bubble.
    ppdp = {tpd: b for tpd, b in results["PP vs DP (TP=8)"] if b}
    assert (8, 1, 512) not in ppdp and (8, 2, 256) not in ppdp
    lo_p = ppdp[(8, 8, 64)][1]
    hi_p = ppdp[(8, 128, 4)][1]
    assert hi_p.mem1.weight < lo_p.mem1.weight
    assert hi_p.time.pp_bubble > lo_p.time.pp_bubble
