"""Table 3: price/performance under a fixed $125M budget.

Sixteen H100 memory designs (HBM3 20/40/80/120 GiB x DDR5 0/256/512/1024 GiB)
are each sized to the budget, then the best system size and execution strategy
is searched per LLM.  The paper sweeps sizes exhaustively; the bench uses a
coarse size grid per design (documented in EXPERIMENTS.md).

Shape criteria: neither the cheapest nor the most expensive design wins; one
design is the top performer for all three LLMs; that winner pairs a small
HBM with a DDR5 offload tier (the paper's 20G/256G row).
"""

import pytest

from repro.llm import GPT3_175B, MEGATRON_1T, TURING_530B
from repro.search import SearchOptions, SystemDesign, all_designs, budget_table
from repro.viz import table

from _helpers import banner

BUDGET = 125e6
BATCH = 4096
LLMS = [GPT3_175B, TURING_530B, MEGATRON_1T]

OPTS = SearchOptions(
    recompute=("none", "attn_only", "full"),
    seq_par_modes=((True, True, True),),
    tp_overlap=("none", "ring"),
    dp_overlap=(True,),
    optimizer_sharding=(True,),
    fused_activations=(True,),
    offload_modes=((False, False, False), (True, True, True)),
    max_microbatch=8,
)


def _sizes_for(design: SystemDesign) -> list[int]:
    maxg = design.max_gpus(BUDGET)
    # Coarse grid: the affordable maximum, nearby highly-composite sizes
    # (multiples of 512 factor well against power-of-two batches, letting
    # cheaper designs actually exploit their larger GPU counts), and a few
    # common scales.
    candidates = {maxg, maxg * 3 // 4, maxg // 2, 2048, 3072, 4096}
    top512 = maxg - maxg % 512
    candidates.update({top512, top512 - 512})
    return sorted(n - n % 8 for n in candidates if 0 < n <= maxg)


def _run():
    return budget_table(
        LLMS,
        budget=BUDGET,
        batch=BATCH,
        options=OPTS,
        designs=all_designs(),
        size_candidates=None,
        workers=0,
    )


def test_table3_budget(benchmark):
    # budget_table computes its own candidates; override per design for the
    # coarse grid by calling evaluate_design directly.
    from repro.search import evaluate_design

    def run():
        rows = []
        for design in all_designs():
            rows.append(
                [
                    evaluate_design(
                        design,
                        llm,
                        BUDGET,
                        BATCH,
                        options=OPTS,
                        size_candidates=_sizes_for(design),
                        workers=0,
                    )
                    for llm in LLMS
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    banner("Table 3 — $125M budget, best size + strategy per design and LLM")
    out = []
    for row in rows:
        d = row[0].design
        cells = [d.label(), f"${d.price_per_gpu / 1e3:.2f}k", row[0].max_gpus]
        for e in row:
            cells += [e.used_gpus, round(e.sample_rate), round(e.perf_per_million, 1)]
        out.append(cells)
    headers = ["design", "price", "maxGPU"]
    for llm in LLMS:
        headers += [f"{llm.name[:9]} GPUs", "perf", "perf/$M"]
    print(table(headers, out))

    # Identify the winner by total performance across the three LLMs.
    def score(row):
        return sum(e.sample_rate for e in row)

    best_row = max(rows, key=score)
    winner = best_row[0].design
    print(f"\ntop performer: {winner.label()}")

    by_design = {r[0].design.label(): r for r in rows}

    # Neither the cheapest (20G/0) nor the most expensive (120G/1T) design wins.
    assert winner.label() not in ("20G/0G", "120G/1024G")
    assert score(best_row) > score(by_design["20G/0G"])
    assert score(best_row) > score(by_design["120G/1024G"])

    # Expensive HBM never pays off: no 120-GiB design tops any LLM column.
    for i in range(len(LLMS)):
        best_i = max(rows, key=lambda r: r[i].sample_rate)
        assert best_i[0].design.hbm_gib < 120, LLMS[i].name

    # For the largest model, the winning design pairs a small HBM with a
    # DDR5 offload tier (the paper's highlighted 20G/256G row).  In our
    # re-derivation the same holds for Megatron-1T; the smaller models are
    # near-ties between cheap-HBM designs (see EXPERIMENTS.md).
    best_1t = max(rows, key=lambda r: r[-1].sample_rate)[0].design
    assert best_1t.ddr_gib > 0
    assert best_1t.hbm_gib <= 40

    # A small-HBM + offload design keeps pace with the 80-GiB no-offload
    # design at a lower per-GPU price (the paper's cost-saving trade-off).
    cheap_off = by_design["20G/256G"]
    assert score(cheap_off) > 0.9 * score(by_design["80G/0G"])
    assert cheap_off[0].design.price_per_gpu < 30_000

    # Winner's performance-per-dollar beats the most expensive design's.
    for i in range(len(LLMS)):
        assert best_row[i].perf_per_million > by_design["120G/1024G"][i].perf_per_million
