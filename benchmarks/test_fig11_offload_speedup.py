"""Fig. 11: relative speedup of training due to 512 GiB @ 100 GB/s offloading.

Speedup of the best offload-enabled strategy over the best offload-free one
at each system size, for the three LLMs.  Shape criteria: GPT-3 gains little;
Turing-NLG and Megatron-1T typically gain on the order of 10-20%; small
systems show "infinite" speedup where the model only fits with offloading.
"""

import math

import pytest

from repro.hardware import a100_system, ddr5_offload
from repro.llm import GPT3_175B, MEGATRON_1T, TURING_530B
from repro.search import SearchOptions, offload_speedups, scaling_sweep
from repro.viz import table

from _helpers import banner

SIZES = [64, 128, 256, 512, 1024, 1536, 2048, 3072, 4096, 5120, 6144, 8192]
BATCH = 3072

BASE_OPTS = SearchOptions(
    recompute=("none", "attn_only", "full"),
    seq_par_modes=((True, True, True),),
    tp_overlap=("none",),
    dp_overlap=(False,),
    optimizer_sharding=(True,),
    fused_activations=(False,),
    max_microbatch=8,
)
OFFLOAD_OPTS = BASE_OPTS.with_offload_only()


def _run():
    out = {}
    for llm in (GPT3_175B, TURING_530B, MEGATRON_1T):
        base = scaling_sweep(llm, lambda n: a100_system(n), SIZES, BATCH,
                             BASE_OPTS, workers=0)
        off = scaling_sweep(
            llm,
            lambda n: a100_system(n, offload=ddr5_offload(512)),
            SIZES,
            BATCH,
            OFFLOAD_OPTS,
            workers=0,
        )
        # Merge: the offload-capable system may also run resident strategies.
        for i, (b, o) in enumerate(zip(base.points, off.points)):
            if b.sample_rate > o.sample_rate:
                off.points[i] = b
        out[llm.name] = (base, off)
    return out


def test_fig11_offload_speedup(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)

    speedups = {}
    banner("Fig. 11 — relative speedup from offloading (512 GiB @ 100 GB/s)")
    for name, (base, off) in curves.items():
        sp = offload_speedups(base, off)
        speedups[name] = dict(sp)
        rows = [
            (size, "inf" if math.isinf(v) else f"{v:+.1f}%") for size, v in sp
        ]
        print(f"\n{name}")
        print(table(["size", "speedup"], rows))

    finite = {
        name: [v for v in d.values() if math.isfinite(v)]
        for name, d in speedups.items()
    }

    # Offloading never slows training down (the searcher may ignore it).
    for vals in finite.values():
        assert all(v >= -1e-6 for v in vals)

    # The larger models benefit more on average than GPT-3.
    avg = {name: sum(v) / len(v) for name, v in finite.items() if v}
    assert avg["megatron-1t"] >= avg["gpt3-175b"] - 0.5
    assert avg["turing-530b"] >= avg["gpt3-175b"] - 0.5

    # Megatron-1T on a small system runs ONLY with offloading: the paper's
    # "infinite speedup" points below ~256 GPUs.
    m1t = speedups["megatron-1t"]
    assert any(math.isinf(v) for s, v in m1t.items() if s <= 256)
