"""Shared helpers for the per-figure/table benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation:
it runs the underlying study once (via ``benchmark.pedantic`` so
pytest-benchmark also records the study's runtime), prints the same
rows/series the paper reports, and asserts the *shape* criteria from
DESIGN.md (who wins, rough factors, crossovers) — absolute numbers are
testbed-dependent and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Sequence

from repro.core import calculate
from repro.core.results import PerformanceResult
from repro.execution import ExecutionStrategy
from repro.fsutil import atomic_write_text
from repro.hardware import System, a100_system
from repro.llm import GPT3_175B, LLMConfig
from repro.search import SearchOptions, candidate_strategies

# The engine-benchmark problem (docs/PERFORMANCE.md): the paper's GPT-3 175B
# / 4,096-GPU / batch-4096 study, whose full Table-1 space is ~100k
# candidates.  Shared by the pruning, bound and columnar benchmarks so they
# all measure the same sweep.
NPROCS = 4096
BATCH = 4096


def gpt3_sweep_problem() -> tuple[LLMConfig, System, int]:
    """The shared benchmark problem: (GPT-3 175B, a100:4096, batch 4096)."""
    return GPT3_175B, a100_system(NPROCS), BATCH


def gpt3_sweep_space() -> tuple[LLMConfig, System, int, list[ExecutionStrategy]]:
    """The benchmark problem plus its full Table-1 candidate list."""
    llm, system, batch = gpt3_sweep_problem()
    strategies = list(
        candidate_strategies(llm, system, batch, SearchOptions())
    )
    return llm, system, batch, strategies


def best_over(
    llm: LLMConfig,
    system: System,
    strategies: Sequence[ExecutionStrategy],
) -> tuple[ExecutionStrategy, PerformanceResult] | None:
    """Evaluate a strategy list, return the fastest feasible one."""
    best: tuple[ExecutionStrategy, PerformanceResult] | None = None
    for strat in strategies:
        res = calculate(llm, system, strat)
        if res.feasible and (best is None or res.batch_time < best[1].batch_time):
            best = (strat, res)
    return best


def grid_strategies(
    llm: LLMConfig,
    batch: int,
    t: int,
    p: int,
    d: int,
    options: SearchOptions,
) -> list[ExecutionStrategy]:
    """All strategy variants for a fixed (t, p, d) cell of a Fig. 5/9 grid."""
    import itertools

    if batch % d:
        return []
    local = batch // d
    microbatches = [
        m for m in (1, 2, 4, 8) if local % m == 0 and m <= options.max_microbatch
    ]
    bpstage = math.ceil(llm.num_blocks / p)
    interleavings = sorted(
        {v for v in (1, 2, 4, 8) if v <= bpstage and (v == 1 or p > 1)}
    )
    out = []
    for m, v in itertools.product(microbatches, interleavings):
        for rc, (sp, redo, ppsg), tpo, dpo, osh, fus, off in itertools.product(
            options.recompute,
            options.seq_par_modes,
            options.tp_overlap,
            options.dp_overlap,
            options.optimizer_sharding,
            options.fused_activations,
            options.offload_modes,
        ):
            if sp and (t == 1 or llm.seq_size % t):
                continue
            out.append(
                ExecutionStrategy(
                    tensor_par=t,
                    pipeline_par=p,
                    data_par=d,
                    batch=batch,
                    microbatch=m,
                    pp_interleaving=v,
                    pp_rs_ag=ppsg and sp,
                    seq_par=sp,
                    tp_redo_sp=redo and sp,
                    tp_overlap=tpo,
                    dp_overlap=dpo,
                    optimizer_sharding=osh,
                    recompute=rc,
                    fused_activations=fus,
                    weight_offload=off[0],
                    activation_offload=off[1],
                    optimizer_offload=off[2],
                )
            )
    return out


def merge_bench(
    path: str | Path,
    group: str,
    metrics: dict,
    cores: int | None = None,
) -> bool:
    """Merge one benchmark's metric group into a shared JSON record.

    Several benchmarks write disjoint key groups into the same record
    (``BENCH_engine.json``), and run orders vary, so each merge reads
    whatever is already there and updates only its own keys.  Because
    timing-derived metrics are only meaningful on comparable hosts, the
    group is tagged with the CPU core count it was measured on
    (``{group}_bench_cores``) — and a single-core run never overwrites a
    group previously measured on a multi-core host.  A throttled CI shard
    or laptop re-running one benchmark must not clobber real parallel
    measurements with numbers where workers were merely time-sliced (the
    ``fabric_speedup: 0.42`` incident).  Returns ``True`` if the record
    was updated, ``False`` if the merge was skipped.
    """
    cores = (os.cpu_count() or 1) if cores is None else int(cores)
    p = Path(path)
    data = json.loads(p.read_text()) if p.exists() else {}
    prev_cores = int(data.get(f"{group}_bench_cores") or 0)
    if cores < 2 and prev_cores >= 2:
        print(
            f"[merge_bench] keeping {group} metrics measured on "
            f"{prev_cores} cores; this host has {cores}"
        )
        return False
    data.update(metrics)
    data[f"{group}_bench_cores"] = cores
    atomic_write_text(p, json.dumps(data, indent=1) + "\n")
    return True


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
