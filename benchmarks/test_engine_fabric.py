"""Fabric cluster vs single-process columnar search on the paper problem.

Acceptance demo for the distributed search fabric: the GPT-3 175B /
a100:4096 / batch-4096 joint sweep (the same ~100k-candidate space the
pruning, bounds and columnar benchmarks share), sharded across a 4-worker
local cluster — real subprocesses, real loopback HTTP, lease-based work
stealing — must

* return a top-k **bit-identical** to the single-process columnar search
  (``benchmarks/test_engine_columnar.py``'s answer), and
* complete its sweep window (first lease grant -> last chunk merged, the
  steady-state cost of a long-lived cluster; worker process boot is paid
  once and excluded) faster than the single-process columnar wall-clock.

The sweep window is read from the ``fabric.done`` flight-recorder event —
the same journal operators would ship to ``repro trace``.  Measured
numbers are merged into ``BENCH_engine.json`` as ``fabric_s`` /
``fabric_total_s`` / ``fabric_speedup``.

The speedup criterion is physical, so it is gated on the hardware: four
worker processes can only beat one process when there is more than one
core to run them on.  On a single-core box the sweep does the same
arithmetic time-sliced plus protocol overhead, so the gate there is a
bounded-overhead check (sweep within 4x of the columnar baseline) and the
measured speedup is still recorded honestly.
"""

import gc
import os
import time
from pathlib import Path

from repro.engine import clear_caches
from repro.fabric import run_fabric
from repro.obs import EventJournal, read_events
from repro.search import search

from _helpers import banner, gpt3_sweep_problem, merge_bench

TOP_K = 10
WORKERS = 4
ROUNDS = 2  # best-of-N damps scheduler noise on shared CI runners
CORES = os.cpu_count() or 1


def _timed_columnar():
    llm, system, batch = gpt3_sweep_problem()
    best_t = None
    result = None
    for _ in range(ROUNDS):
        clear_caches()
        gc.collect()
        t0 = time.perf_counter()
        result = search(
            llm, system, batch, top_k=TOP_K, workers=0,
            keep_rates=False, columnar=True,
        )
        best_t = min(best_t, time.perf_counter() - t0) if best_t else \
            time.perf_counter() - t0
    return best_t, result


def _timed_fabric(tmp_path):
    llm, system, batch = gpt3_sweep_problem()
    best_sweep = best_total = None
    result = None
    for i in range(ROUNDS):
        clear_caches()
        gc.collect()
        events_path = tmp_path / f"fabric-events-{i}.jsonl"
        t0 = time.perf_counter()
        with EventJournal(events_path, source="fabric") as events:
            result = run_fabric(
                llm, system, batch, workers=WORKERS, top_k=TOP_K,
                events=events, timeout=600.0,
            )
        total = time.perf_counter() - t0
        done = [e for e in read_events(events_path)
                if e["kind"] == "fabric.done"][-1]
        sweep = float(done["sweep_s"])
        if best_sweep is None or sweep < best_sweep:
            best_sweep, best_total = sweep, total
    return best_sweep, best_total, result


def _run(tmp_path):
    t_col, col = _timed_columnar()
    sweep_s, total_s, fab = _timed_fabric(tmp_path)
    return t_col, col, sweep_s, total_s, fab


def test_fabric_cluster_speedup(benchmark, tmp_path):
    t_col, col, sweep_s, total_s, fab = benchmark.pedantic(
        _run, args=(tmp_path,), rounds=1, iterations=1
    )
    speedup = t_col / sweep_s

    criterion = "> 1x" if CORES >= 2 else f"overhead-bounded ({CORES} core)"
    banner(f"search fabric — GPT-3 175B, a100:4096, batch 4096, "
           f"{WORKERS} workers, top-10")
    print(f"single-process columnar  {t_col:.3f} s")
    print(f"fabric sweep window      {sweep_s:.3f} s "
          f"(total incl. worker boot {total_s:.2f} s)")
    print(f"fabric speedup           {speedup:.2f}x   (criterion: {criterion})")

    # Bit-exactness gate: the cluster-merged top-k must match the
    # single-process columnar answer entry for entry — same strategies,
    # results equal as frozen dataclasses (float fields bit-for-bit).
    identical = len(col.top) == len(fab.top) == TOP_K and all(
        s1 == s2 and r1 == r2
        for (s1, r1), (s2, r2) in zip(col.top, fab.top)
    )
    assert identical
    assert fab.num_evaluated == col.num_evaluated
    assert fab.num_feasible == col.num_feasible
    assert fab.stats is not None and fab.stats.workers == WORKERS
    assert not fab.stats.skipped and not fab.truncated

    # The distributed sweep must beat the single-process columnar search
    # wherever parallelism is physically available.  On a single-core box
    # (time-sliced workers, zero true parallelism) the gate degrades to a
    # bounded-overhead check so protocol regressions are still caught.
    if CORES >= 2:
        assert speedup > 1.0
    else:
        assert sweep_s < 4.0 * t_col

    # Merge into the engine benchmark record next to the columnar numbers
    # (run orders vary; read whatever the other benchmarks already wrote).
    # The fabric ratio is parallelism-dependent, so merge_bench refuses to
    # let a single-core run (time-sliced workers, speedup < 1 by
    # construction) overwrite numbers measured on a real multi-core host.
    merge_bench(
        Path("BENCH_engine.json"),
        "fabric",
        {
            "fabric_s": sweep_s,
            "fabric_total_s": total_s,
            "fabric_workers": WORKERS,
            "fabric_cores": CORES,
            "fabric_speedup": speedup,
            "fabric_identical_topk": identical,
            "fabric_candidates": fab.num_evaluated,
        },
        cores=CORES,
    )
