"""Ablation: collective-algorithm choice and in-network reduction (§2.2).

The network model's per-operation specification "is also the mechanism that
models the performance benefits of in-network collectives".  This bench
quantifies three levers on the data-parallel gradient all-reduce:

* algorithm choice (ring vs tree) across payload sizes and group sizes;
* in-network (switch) reduction — halving the wire traffic;
* hierarchical reduction through the NVLink islands — cutting the per-GPU
  inter-node traffic by the island size.
"""

import pytest

from repro.hardware import Network, best_time, hierarchical_all_reduce, ring_time
from repro.units import GB
from repro.viz import table

from _helpers import banner

NVLINK = Network(name="nvlink", size=8, bandwidth=300 * GB, latency=0.7e-6,
                 efficiency=0.85)
IB = Network(name="ib", size=4096, bandwidth=25 * GB, latency=5e-6,
             efficiency=0.85)
IB_SHARP = Network(name="ib-sharp", size=4096, bandwidth=25 * GB, latency=5e-6,
                   efficiency=0.85, in_network_collectives=True)


def _run():
    rows = []
    for nbytes in (1e4, 1e6, 1e8, 1e9, 1e10):
        for group in (8, 64, 512):
            flat = best_time(IB, "all_reduce", nbytes, group)
            sharp = best_time(IB_SHARP, "all_reduce", nbytes, group)
            hier = hierarchical_all_reduce(NVLINK, IB, nbytes, 8, group // 8 or 1)
            rows.append((nbytes, group, flat, sharp, hier))
    return rows


def test_ablation_collectives(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    banner("Ablation — all-reduce: flat vs in-network vs hierarchical")
    print(
        table(
            ["bytes", "group", "flat (alg)", "in-network", "hierarchical",
             "sharp gain", "hier gain"],
            [
                (
                    f"{int(nbytes):.0e}",
                    g,
                    f"{flat.time * 1e3:.3g} ms ({flat.algorithm})",
                    f"{sharp.time * 1e3:.3g} ms",
                    f"{hier * 1e3:.3g} ms",
                    f"{flat.time / sharp.time:.2f}x",
                    f"{flat.time / hier:.2f}x",
                )
                for nbytes, g, flat, sharp, hier in rows
            ],
        )
    )

    by_key = {(n, g): (f, s, h) for n, g, f, s, h in rows}

    # Small payloads pick the tree algorithm; large payloads pick ring.
    assert by_key[(1e4, 512)][0].algorithm == "tree"
    assert by_key[(1e10, 8)][0].algorithm == "ring"

    # In-network reduction approaches a 2x win for large payloads.
    flat, sharp, _ = by_key[(1e10, 512)]
    assert 1.7 < flat.time / sharp.time <= 2.01

    # Hierarchical reduction through 8-GPU islands wins big at scale.
    flat, _, hier = by_key[(1e9, 512)]
    assert flat.time / hier > 3.0

    # For a group inside one island the hierarchy degenerates gracefully.
    flat, _, hier = by_key[(1e8, 8)]
    assert hier <= flat.time  # NVLink beats IB for the same group
