"""Extension validation: the Megatron-LM weak-scaling ladder.

Narayanan et al. '21 (the paper's ref [29]) trained a ladder of models from
1.7B to 1T parameters on Selene, reporting achieved per-GPU throughput that
stays roughly flat (~44-52% of the A100's 312 TFLOP/s peak, counting the
recompute FLOPs as useful work, as they do).  Running the same public
configurations through our calibrated model should reproduce that flatness
and land in the same utilization band — an out-of-sample check beyond the
Table-2 fit.

Shapes/batches follow the published table (approximate where the paper
aggregates); the assertions use generous bands accordingly.
"""

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import LLMConfig
from repro.viz import table

from _helpers import banner

# (name, hidden, heads, blocks, t, p, gpus, global batch)
LADDER = [
    ("1.7B", 2304, 24, 24, 1, 1, 32, 512),
    ("3.6B", 3072, 32, 30, 2, 1, 64, 512),
    ("7.5B", 4096, 32, 36, 4, 1, 128, 512),
    ("18B", 6144, 48, 40, 8, 1, 256, 1024),
    ("39B", 8192, 64, 48, 8, 2, 512, 1536),
    ("76B", 10240, 80, 60, 8, 4, 1024, 1792),
    ("145B", 12288, 96, 80, 8, 8, 1536, 2304),
    ("310B", 16384, 128, 96, 8, 16, 1920, 2160),
    ("530B", 20480, 128, 105, 8, 35, 2520, 2520),
    ("1T", 25600, 160, 128, 8, 64, 3072, 3072),
]

A100_PEAK = 312e12


def _achieved_tflops_per_gpu(name, h, a, L, t, p, gpus, batch):
    llm = LLMConfig(name=f"ladder-{name}", hidden=h, attn_heads=a,
                    seq_size=2048, num_blocks=L)
    system = a100_system(gpus)
    d = gpus // (t * p)
    best = None
    for mb in (1, 2, 4, 8):
        if batch % d or (batch // d) % mb:
            continue
        res = calculate(
            llm,
            system,
            ExecutionStrategy(tensor_par=t, pipeline_par=p, data_par=d,
                              batch=batch, microbatch=mb, recompute="full"),
        )
        if res.feasible and (best is None or res.batch_time < best.batch_time):
            best = res
    if best is None:
        return None, None
    # Narayanan et al. count the recomputed forward pass as achieved work:
    # useful (fw+bw = 6ND) plus the recompute replay (+2ND) = 8/6 factor.
    model_flops = 8.0 * llm.total_parameters * batch * llm.seq_size
    achieved = model_flops / best.batch_time / gpus
    return achieved, best


def _run():
    rows = []
    for cfg in LADDER:
        achieved, best = _achieved_tflops_per_gpu(*cfg)
        rows.append((cfg, achieved, best))
    return rows


def test_ext_megatron_scaling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    banner("Extension — Megatron-LM weak-scaling ladder (achieved TFLOP/s/GPU)")
    print(
        table(
            ["model", "GPUs", "(t,p,d)", "batch s", "TFLOP/s/GPU", "% of peak"],
            [
                (
                    cfg[0],
                    cfg[6],
                    f"({cfg[4]},{cfg[5]},{cfg[6] // (cfg[4] * cfg[5])})",
                    round(best.batch_time, 1) if best else "-",
                    round(achieved / 1e12, 1) if achieved else "-",
                    f"{achieved / A100_PEAK * 100:.1f}%" if achieved else "-",
                )
                for cfg, achieved, best in rows
            ],
        )
    )

    achieved = [a for _, a, _ in rows if a is not None]
    assert len(achieved) == len(LADDER), "every ladder rung must be feasible"

    fractions = [a / A100_PEAK for a in achieved]
    # The published ladder sits around 0.44-0.52 of peak; allow a wide band.
    for name_cfg, frac in zip(LADDER, fractions):
        assert 0.30 < frac < 0.70, (name_cfg[0], frac)

    # Weak scaling: per-GPU throughput stays roughly flat from 32 GPUs to
    # 3,072 GPUs — the headline of that paper (their spread is ~1.2x; our
    # model rises slightly more with scale, ~1.5x, because the larger
    # hidden sizes push GEMMs further up the efficiency curve).
    assert max(fractions) / min(fractions) < 1.6

    # The large models do not collapse relative to the small ones.
    assert fractions[-1] > 0.75 * fractions[0]
