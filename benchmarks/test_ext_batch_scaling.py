"""Extension: global batch-size scaling (the bubble-amortization curve).

Training efficiency depends on the one knob the system designer does not
own: the global batch.  Small batches leave the pipeline mostly bubble
(M < p); large batches amortize fill/drain and fixed costs.  The bench sweeps
the batch with a fixed parallelization and with re-searched strategies.

Shape criteria: MFU rises monotonically with batch under a fixed strategy
and saturates; re-searching at each batch never loses to the fixed strategy;
the M = p crossover is visible as the steepest part of the curve.
"""

import pytest

from repro.analysis import batch_sweep_fixed, batch_sweep_searched
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import GPT3_175B
from repro.search import SearchOptions
from repro.viz import table

from _helpers import banner

BATCHES = (8, 16, 32, 64, 128, 256, 512)
STRAT = ExecutionStrategy(
    tensor_par=8, pipeline_par=8, data_par=1, batch=64, microbatch=1,
    recompute="attn_only", seq_par=True, tp_redo_sp=True,
    optimizer_sharding=True,
)
OPTS = SearchOptions(
    recompute=("attn_only", "full"),
    seq_par_modes=((True, True, True),),
    tp_overlap=("none",),
    dp_overlap=(False,),
    optimizer_sharding=(True,),
    fused_activations=(False,),
    max_microbatch=4,
)


def _run():
    system = a100_system(64)
    fixed = batch_sweep_fixed(GPT3_175B, system, STRAT, BATCHES)
    searched = batch_sweep_searched(GPT3_175B, system, BATCHES, OPTS)
    return fixed, searched


def test_ext_batch_scaling(benchmark):
    fixed, searched = benchmark.pedantic(_run, rounds=1, iterations=1)

    banner("Extension — GPT-3 175B on 64 A100: batch-size scaling")
    print(
        table(
            ["batch", "fixed MFU", "fixed rate", "searched MFU", "searched rate"],
            [
                (
                    f.batch,
                    f"{f.mfu * 100:.1f}%" if f.feasible else "--",
                    round(f.sample_rate, 2),
                    f"{s.mfu * 100:.1f}%" if s.feasible else "--",
                    round(s.sample_rate, 2),
                )
                for f, s in zip(fixed, searched)
            ],
        )
    )

    feas = [p for p in fixed if p.feasible]
    assert len(feas) >= 5
    mfus = [p.mfu for p in feas]
    # MFU rises with batch (bubble amortization) and saturates.
    assert mfus == sorted(mfus)
    assert mfus[-1] > 1.5 * mfus[0]
    last_gain = mfus[-1] / mfus[-2]
    first_gain = mfus[1] / mfus[0]
    assert first_gain > last_gain  # diminishing returns

    # Re-searching each batch never loses to the fixed strategy.
    for f, s in zip(fixed, searched):
        if f.feasible:
            assert s.sample_rate >= f.sample_rate - 1e-9
