"""Ablation: scale-out topology oversubscription (network substrate).

The paper's network model is per-tier bandwidth/latency; real fabrics taper.
This ablation derates the InfiniBand tier with a fat-tree oversubscription
factor and measures how the data-parallel gradient all-reduce — the
collective that spans the whole machine — loses time, and how in-network
reduction buys some of it back.
"""

import pytest

from repro.hardware import Network, best_time, effective_network
from repro.hardware.topology import FatTree
from repro.units import GB
from repro.viz import table

from _helpers import banner

IB = Network(name="ib-ndr", size=4096, bandwidth=50 * GB, latency=5e-6,
             efficiency=0.85)
GRAD_BYTES = 2e9  # a 1B-parameter-per-rank gradient buffer
SPANS = (32, 256, 2048)
TAPERS = (1.0, 2.0, 4.0, 8.0)


def _run():
    rows = []
    for taper in TAPERS:
        ft = FatTree(leaf_size=32, oversubscription=taper)
        for span in SPANS:
            net = effective_network(IB, ft, span)
            plain = best_time(net, "all_reduce", GRAD_BYTES, span)
            sharp_net = Network(
                name="ib-sharp", size=net.size, bandwidth=net.bandwidth,
                latency=net.latency, efficiency=net.efficiency,
                in_network_collectives=True,
            )
            sharp = best_time(sharp_net, "all_reduce", GRAD_BYTES, span)
            rows.append((taper, span, plain.time, sharp.time))
    return rows


def test_ablation_topology(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    banner("Ablation — fat-tree oversubscription vs DP all-reduce time")
    print(
        table(
            ["taper", "span", "all-reduce ms", "w/ in-network ms", "sharp gain"],
            [
                (taper, span, round(p * 1e3, 2), round(s * 1e3, 2),
                 f"{p / s:.2f}x")
                for taper, span, p, s in rows
            ],
        )
    )

    by = {(taper, span): (p, s) for taper, span, p, s in rows}

    # Inside one leaf (span 32) the taper is invisible.
    for taper in TAPERS:
        assert by[(taper, 32)][0] == pytest.approx(by[(1.0, 32)][0], rel=1e-9)

    # Across leaves, time scales with the taper (bandwidth-bound regime).
    t1 = by[(1.0, 2048)][0]
    t4 = by[(4.0, 2048)][0]
    t8 = by[(8.0, 2048)][0]
    assert t4 == pytest.approx(4 * t1, rel=0.05)
    assert t8 == pytest.approx(8 * t1, rel=0.05)

    # In-network reduction recovers close to 2x at every taper.
    for taper in TAPERS:
        p, s = by[(taper, 2048)]
        assert 1.7 < p / s < 2.1
