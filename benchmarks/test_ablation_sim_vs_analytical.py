"""Ablation: analytical pipeline bubble vs discrete-event simulation (Fig. 2).

The core model charges a closed-form bubble of ``(p-1) * (t_f + t_b) / v``.
The discrete-event simulator executes the interleaved 1F1B schedule with its
true dependencies.  This bench sweeps (p, v, M) and reports the relative
error of the closed form, validating the analytical shortcut that makes the
millisecond-scale model possible.
"""

import pytest

from repro.simulator import PipelineParams, analytical_bubble, simulate
from repro.viz import table

from _helpers import banner

SWEEP = [
    (2, 1, 8),
    (4, 1, 8),
    (4, 1, 16),
    (8, 1, 16),
    (4, 2, 8),
    (4, 2, 16),
    (4, 4, 16),
    (8, 2, 16),
]


def _run():
    rows = []
    for p, v, M in SWEEP:
        params = PipelineParams(
            num_stages=p,
            num_microbatches=M,
            interleaving=v,
            fw_time=1.0 / v,
            bw_time=2.0 / v,
        )
        stats = simulate(params)
        analytic = analytical_bubble(params)
        rows.append((p, v, M, stats, analytic))
    return rows


def test_ablation_sim_vs_analytical(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    banner("Ablation — simulated vs analytical pipeline bubble")
    print(
        table(
            ["p", "v", "M", "sim bubble", "analytic", "error"],
            [
                (p, v, M, round(s.bubble_time, 3), round(a, 3),
                 f"{(s.bubble_time / a - 1) * 100:+.1f}%" if a else "n/a")
                for p, v, M, s, a in rows
            ],
        )
    )

    for p, v, M, stats, analytic in rows:
        # The analytical bubble is the schedule's lower bound.
        assert stats.bubble_time >= analytic - 1e-9, (p, v, M)
        if v == 1:
            # Non-interleaved 1F1B: the closed form is exact.
            assert stats.bubble_time == pytest.approx(analytic, rel=1e-9), (p, v, M)
        else:
            # Interleaved: the greedy list schedule adds slack above the
            # ideal (p-1)(tf+tb)/v — bounded, and small in absolute terms
            # because the interleaved bubble itself is v times smaller.
            assert stats.bubble_time <= analytic * 1.8 + 1e-9, (p, v, M)
            plain = (p - 1) * (1.0 + 2.0)  # the v=1 bubble for these times
            assert stats.bubble_time < plain, (p, v, M)

    errors = [s.bubble_time / a - 1 for p, v, M, s, a in rows if a > 0]
    assert sum(errors) / len(errors) < 0.45
