"""Extension: inference scaling study (paper §2.3 covers inference; no
dedicated figure exists, so this bench exercises the serving model's shape).

Checks the canonical serving trade-offs the decode model must reproduce:
decode is memory-bandwidth-bound (weights + KV cache stream every step), so
batching is nearly free until the KV cache exhausts HBM; tensor parallelism
cuts latency sublinearly (collective latency floor); pipelining multiplies
throughput, not latency.
"""

import pytest

from repro.hardware import a100_system
from repro.inference import InferenceStrategy, calculate_inference, kv_cache_bytes
from repro.llm import GPT3_175B
from repro.viz import table

from _helpers import banner


def _run():
    out = {"batch": [], "tp": []}
    for batch in (1, 2, 4, 8, 16, 32, 64):
        strat = InferenceStrategy(tensor_par=8, pipeline_par=1, batch=batch)
        out["batch"].append(
            (
                batch,
                calculate_inference(
                    GPT3_175B,
                    a100_system(8),
                    strat,
                    prompt_len=2048,
                    generate_len=256,
                ),
            )
        )
    for t in (1, 2, 4, 8):
        strat = InferenceStrategy(tensor_par=t, pipeline_par=8 // t, batch=4)
        out["tp"].append(
            (
                t,
                calculate_inference(
                    GPT3_175B,
                    a100_system(8, hbm_gib=400),  # t=1 needs all weights local
                    strat,
                    prompt_len=2048,
                    generate_len=256,
                ),
            )
        )
    return out


def test_ext_inference_scaling(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    banner("Extension — GPT-3 175B serving: batch scaling at t=8")
    print(
        table(
            ["batch", "per-token ms", "tokens/s", "KV cache GiB"],
            [
                (b, round(r.decode_step_time * 1e3, 1),
                 round(r.tokens_per_second, 0),
                 round(r.kv_cache_bytes / 2**30, 1))
                for b, r in results["batch"]
                if r.feasible
            ],
        )
    )
    banner("Extension — GPT-3 175B serving: TP scaling at batch=4")
    print(
        table(
            ["t", "p", "TTFT s", "per-token ms", "tokens/s"],
            [
                (t, 8 // t, round(r.prefill_time, 2),
                 round(r.decode_step_time * 1e3, 1),
                 round(r.tokens_per_second, 0))
                for t, r in results["tp"]
                if r.feasible
            ],
        )
    )

    batch_rows = [(b, r) for b, r in results["batch"] if r.feasible]
    assert len(batch_rows) >= 5

    # Batching is nearly free: 16x the batch costs < 4x the step time.
    by_batch = dict(batch_rows)
    assert by_batch[16].decode_step_time < 4 * by_batch[1].decode_step_time
    # Throughput rises monotonically with batch.
    rates = [r.tokens_per_second for _, r in batch_rows]
    assert rates == sorted(rates)
    # KV cache grows linearly with batch.
    assert by_batch[16].kv_cache_bytes == pytest.approx(
        16 * by_batch[1].kv_cache_bytes, rel=1e-6
    )

    # TP cuts decode latency monotonically, but sublinearly (latency floor).
    tp_rows = [(t, r) for t, r in results["tp"] if r.feasible]
    lats = [r.decode_step_time for _, r in tp_rows]
    assert lats == sorted(lats, reverse=True)
    t1, t8 = tp_rows[0][1], tp_rows[-1][1]
    assert t1.decode_step_time / t8.decode_step_time < 8.0
