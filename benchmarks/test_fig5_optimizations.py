"""Fig. 5: best batch time per (t, p) cell under four optimization regimes.

Megatron-1T training on 4,096 A100s (NVLink domain 32), batch 4096:
(a) original Megatron optimizations (full recompute), 80 GiB HBM;
(b) + sequence parallelism & selective recompute, 80 GiB;
(c) all Table-1 optimizations, 80 GiB;
(d) all optimizations, 160 GiB.

Shape criteria: feasibility grows (fewer dashes) and the best cell moves
toward lower PP / higher DP as more optimizations are enabled; doubling
memory unlocks previously infeasible low-p cells.
"""

import math

import pytest

from repro.hardware import a100_system
from repro.llm import MEGATRON_1T
from repro.search import SearchOptions
from repro.viz import heat_grid

from _helpers import banner, best_over, grid_strategies

BATCH = 4096
NPROCS = 4096
T_VALUES = (1, 2, 4, 8, 16, 32)
P_VALUES = (1, 2, 4, 8, 16, 32, 64)

REGIMES = {
    "(a) original, 80 GiB": (SearchOptions.megatron_baseline(), 80),
    "(b) seq-par, 80 GiB": (SearchOptions.seq_par_regime(), 80),
    "(c) all opts, 80 GiB": (SearchOptions.all_optimizations(), 80),
    "(d) all opts, 160 GiB": (SearchOptions.all_optimizations(), 160),
}


def _grid(options: SearchOptions, hbm_gib: float):
    system = a100_system(NPROCS, hbm_gib=hbm_gib, nvlink_size=32)
    cells = {}
    for t in T_VALUES:
        for p in P_VALUES:
            if NPROCS % (t * p):
                continue
            d = NPROCS // (t * p)
            if BATCH % d:
                continue
            best = best_over(
                MEGATRON_1T, system, grid_strategies(MEGATRON_1T, BATCH, t, p, d, options)
            )
            cells[(t, p)] = best
    return cells


def _run_all():
    return {name: _grid(opts, hbm) for name, (opts, hbm) in REGIMES.items()}


def _print_grid(name, cells):
    banner(f"Fig. 5 {name} — best time (s) over required HBM (GiB)")
    rows = []
    for t in T_VALUES:
        row = []
        for p in P_VALUES:
            best = cells.get((t, p))
            if best is None:
                row.append("--")
            else:
                _, res = best
                row.append(f"{res.batch_time:.1f}/{res.mem1.total / 2**30:.0f}G")
        rows.append(row)
    print(
        heat_grid(
            [f"t={t}" for t in T_VALUES], [f"p={p}" for p in P_VALUES], rows
        )
    )


def test_fig5_optimizations(benchmark):
    grids = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    for name, cells in grids.items():
        _print_grid(name, cells)

    def feasible_count(cells):
        return sum(1 for v in cells.values() if v is not None)

    def best_cell(cells):
        return min(
            ((tp, v) for tp, v in cells.items() if v is not None),
            key=lambda kv: kv[1][1].batch_time,
        )

    a, b, c, d = (grids[k] for k in REGIMES)

    # Feasibility expands monotonically across regimes.
    assert feasible_count(a) <= feasible_count(b) <= feasible_count(c)
    assert feasible_count(c) <= feasible_count(d)

    # Each added regime improves (or matches) the overall best time.
    ta = best_cell(a)[1][1].batch_time
    tb = best_cell(b)[1][1].batch_time
    tc = best_cell(c)[1][1].batch_time
    td = best_cell(d)[1][1].batch_time
    assert tb <= ta * 1.001
    assert tc <= tb * 1.001
    assert td <= tc * 1.001

    # All-optimizations regime moves the optimum to lower PP (higher DP)
    # than the original regime (the paper: (8,32) -> (16,4)-ish).
    (ta_t, ta_p), _ = best_cell(a)
    (tc_t, tc_p), _ = best_cell(c)
    assert tc_p <= ta_p

    # Doubling memory unlocks at least one previously infeasible cell.
    unlocked = [tp for tp in d if d[tp] is not None and c.get(tp) is None]
    assert unlocked or feasible_count(d) == feasible_count(c)
