"""Bound pruning: top-k search speedup with bit-identical results.

Acceptance criterion for the bound-and-prune layer (ISSUE 5): a top-k
execution search over the paper's GPT-3 175B / 4,096-GPU / batch-4096 space
must run >= 1.3x faster with roofline bound pruning than without, while
retaining an identical top-k — every strategy and every float of every
retained result.  The measured numbers are written to ``BENCH_engine.json``
(CI uploads it as an artifact).

Both phases run serially (``workers=0``) and uninstrumented so the sweep is
a single chunk — the regime where one shared best-so-far threshold covers
the whole space and the measured ratio is the algorithm's, not the
dispatcher's.  Every search pins ``columnar=False``: this bench measures the
*scalar* bound-and-prune algorithm (the vectorized columnar path, which
makes pruning moot, is measured by ``test_engine_columnar.py`` against the
pruned scalar time recorded here).  A third, instrumented pruned run reads
the ``PruneStats`` counters the comparison rests on.
"""

import gc
import time
from pathlib import Path

from repro.engine import clear_caches
from repro.search import search

from _helpers import banner, gpt3_sweep_problem, merge_bench

TOP_K = 10
ROUNDS = 2  # best-of-N damps scheduler noise on shared CI runners


def _timed_search(bound_prune: bool):
    llm, system, batch = gpt3_sweep_problem()
    best_t = None
    result = None
    for _ in range(ROUNDS):
        clear_caches()
        gc.collect()
        t0 = time.perf_counter()
        result = search(
            llm, system, batch, top_k=TOP_K, workers=0,
            keep_rates=False, bound_prune=bound_prune, columnar=False,
        )
        dt = time.perf_counter() - t0
        best_t = dt if best_t is None else min(best_t, dt)
    return best_t, result


def _run():
    t_base, base = _timed_search(bound_prune=False)
    t_pruned, pruned = _timed_search(bound_prune=True)

    # One more pruned pass with the counters on, for the report (collecting
    # stats chunks the sweep differently, so it is kept out of the timing).
    clear_caches()
    gc.collect()
    llm, system, batch = gpt3_sweep_problem()
    counted = search(
        llm, system, batch, top_k=TOP_K, workers=0,
        keep_rates=False, bound_prune=True, columnar=False,
        collect_stats=True,
    )
    return t_base, base, t_pruned, pruned, counted


def test_bound_prune_speedup(benchmark):
    t_base, base, t_pruned, pruned, counted = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    speedup = t_base / t_pruned
    stats = counted.stats.engine

    banner("bound pruning — GPT-3 175B, a100:4096, batch 4096, top-10")
    print(stats.summary())
    print(f"unpruned search     {t_base:.2f} s")
    print(f"pruned search       {t_pruned:.2f} s")
    print(f"speedup             {speedup:.2f}x   (criterion: >= 1.3x)")

    # The top-k must be identical entry for entry: same strategies, and
    # results equal as frozen dataclasses (every float field compared).
    identical = len(base.top) == len(pruned.top) == TOP_K and all(
        s1 == s2 and r1 == r2
        for (s1, r1), (s2, r2) in zip(base.top, pruned.top)
    )
    assert identical
    assert base.num_feasible == pruned.num_feasible == counted.num_feasible

    # The counters must show pruning actually carried the speedup: a bound
    # per feasible memory bucket, most feasible candidates skipped.
    assert stats.bound_evals > 0
    assert stats.bound_pruned > 0
    assert stats.evaluated_full + stats.bound_pruned >= counted.num_feasible
    assert stats.bound_prune_rate > 0.5

    assert speedup >= 1.3

    # Merge (not overwrite): other benchmarks keep their own key groups in
    # the same record, and run orders vary.
    merge_bench(
        Path("BENCH_engine.json"),
        "bounds",
        {
            "baseline_s": t_base,
            "pruned_s": t_pruned,
            "speedup": speedup,
            "candidates": counted.num_evaluated,
            "feasible": counted.num_feasible,
            "top_k": TOP_K,
            "identical_topk": identical,
            "bound_evals": stats.bound_evals,
            "bound_pruned": stats.bound_pruned,
            "bound_prune_rate": stats.bound_prune_rate,
            "comm_cache_hits": stats.comm_cache_hits,
            "comm_cache_misses": stats.comm_cache_misses,
        },
    )
