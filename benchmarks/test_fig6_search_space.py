"""Fig. 6: the distribution of all execution strategies for GPT-3 175B.

The paper enumerates 10,957,376 configurations on 4,096 GPUs (1,974,902
feasible, ~18%) and shows (a) a 10-bin histogram of sample rate and (b) the
CDF of the top-100 configurations: good configurations are needles in a
haystack — under 0.002% of the space comes within 10% of the best.

The bench runs the same enumeration over the library's default option grid
(a restricted but same-shaped space so it finishes in seconds; the CLI's
``search`` command runs arbitrary grids).
"""

import numpy as np
import pytest

from repro.hardware import a100_system
from repro.llm import GPT3_175B
from repro.search import SearchOptions, search
from repro.viz import table

from _helpers import banner

NPROCS = 4096
BATCH = 4096


def _run():
    system = a100_system(NPROCS)
    return search(
        GPT3_175B,
        system,
        BATCH,
        SearchOptions(max_microbatch=8),
        top_k=100,
        workers=None,
        keep_rates=True,
    )


def test_fig6_search_space(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    rates = np.sort(result.sample_rates)
    best = rates[-1]
    hist, edges = np.histogram(rates, bins=10, range=(0, best))

    banner("Fig. 6(a) — sample-rate histogram over all feasible strategies")
    print(
        f"evaluated {result.num_evaluated}, feasible {result.num_feasible} "
        f"({result.feasible_fraction * 100:.1f}%)"
    )
    rows = [
        (f"{edges[i]:.0f}-{edges[i + 1]:.0f}", int(hist[i]),
         "#" * int(60 * hist[i] / max(hist.max(), 1)))
        for i in range(10)
    ]
    print(table(["sample rate", "count", ""], rows))

    banner("Fig. 6(b) — top-100 sample-rate CDF")
    top100 = rates[-100:] if len(rates) >= 100 else rates
    for q in (0.0, 0.25, 0.5, 0.75, 1.0):
        idx = min(int(q * (len(top100) - 1)), len(top100) - 1)
        print(f"  CDF {q:4.2f}: {top100[idx]:.1f} samples/s")

    within_10 = int((rates > 0.9 * best).sum())
    within_5 = int((rates > 0.95 * best).sum())
    print(
        f"\nwithin 10% of best: {within_10} of {result.num_feasible} feasible "
        f"({within_10 / result.num_evaluated * 100:.4f}% of the space); "
        f"within 5%: {within_5}"
    )

    # Shape criteria: a substantial fraction of the space is infeasible, and
    # near-optimal configurations are a tiny sliver of it.
    assert result.num_evaluated > 10_000
    assert 0.02 < result.feasible_fraction < 0.7
    assert within_10 / result.num_evaluated < 0.02
    assert within_10 >= 1
    # The histogram is spread out: the best bin is not the fullest.
    assert hist[-1] < hist.max()
    # Performance spread among feasible runs is large (paper: >6x).
    assert best / max(rates[0], 1e-9) > 4.0
