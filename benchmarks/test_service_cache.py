"""Service benchmark: warm-cache speedup and coalescing factor.

Acceptance criterion for the evaluation service (ISSUE 4): a warm-cache
repeat of a preset evaluation must be >= 10x faster than the cold pass
through the engine, and N concurrent identical queries must collapse to
one engine call.  The measured numbers are written to
``BENCH_service.json`` (CI uploads it as an artifact).

The benchmark drives the transport-free :class:`EvaluationService` — the
cache/coalesce/dispatch pipeline itself — so the recorded speedup is the
subsystem's, not the HTTP stack's.
"""

import json
import statistics
import threading
import time
from pathlib import Path

from repro.execution import ExecutionStrategy
from repro.fsutil import atomic_write_text
from repro.obs import MetricsRegistry
from repro.service import EvaluationService, MicroBatcher, ResultCache
from repro.service.dispatch import M_ENGINE_CALLS
from repro.service.server import M_COALESCED

STRATEGY = ExecutionStrategy(
    tensor_par=8, pipeline_par=8, data_par=1, batch=64, recompute="full"
)


def _payload(strategy=STRATEGY):
    return {"llm": "gpt3-175b", "system": "a100:64", "strategy": strategy.to_dict()}


def _service(window=0.002):
    metrics = MetricsRegistry()
    service = EvaluationService(
        cache=ResultCache(capacity=1024, metrics=metrics),
        batcher=MicroBatcher(window=window, metrics=metrics),
        metrics=metrics,
    )
    return service.start()


def test_warm_cache_speedup_and_coalescing():
    service = _service()
    try:
        # -- cold vs warm latency -------------------------------------------
        # Each cold query is a distinct strategy (so none hits the cache);
        # the warm pass repeats one cached query.
        cold_times = []
        for microbatch in (1, 2, 4, 8):
            payload = _payload(STRATEGY.evolve(microbatch=microbatch))
            t0 = time.perf_counter()
            response = service.evaluate_payload(payload)
            cold_times.append(time.perf_counter() - t0)
            assert response["cache"] == "miss"
        warm_times = []
        for _ in range(20):
            t0 = time.perf_counter()
            response = service.evaluate_payload(_payload())
            warm_times.append(time.perf_counter() - t0)
            assert response["cache"] == "memory"
        cold = statistics.median(cold_times)
        warm = statistics.median(warm_times)
        speedup = cold / warm

        # -- coalescing factor ----------------------------------------------
        slow_strategy = STRATEGY.evolve(microbatch=16)
        n_clients = 8
        barrier = threading.Barrier(n_clients)
        errors = []

        def worker():
            try:
                barrier.wait(timeout=5)
                service.evaluate_payload(_payload(slow_strategy))
            except Exception as err:  # pragma: no cover - failure reporting
                errors.append(err)

        calls_before = service.metrics.value(M_ENGINE_CALLS)
        threads = [threading.Thread(target=worker) for _ in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        engine_calls = service.metrics.value(M_ENGINE_CALLS) - calls_before
        coalesced = service.metrics.value(M_COALESCED)
        coalescing_factor = n_clients / max(engine_calls, 1)
    finally:
        service.stop()

    print(f"\ncold median      {cold * 1e3:8.3f} ms")
    print(f"warm median      {warm * 1e6:8.1f} us")
    print(f"warm speedup     {speedup:8.1f}x   (criterion: >= 10x)")
    print(f"coalescing       {n_clients} clients -> {engine_calls:.0f} engine call(s), "
          f"factor {coalescing_factor:.1f}")

    atomic_write_text(
        Path("BENCH_service.json"),
        json.dumps(
            {
                "cold_median_s": cold,
                "warm_median_s": warm,
                "warm_speedup": speedup,
                "concurrent_clients": n_clients,
                "engine_calls": engine_calls,
                "coalesced_requests": coalesced,
                "coalescing_factor": coalescing_factor,
            },
            indent=1,
        )
        + "\n",
    )

    assert speedup >= 10.0, f"warm cache only {speedup:.1f}x faster than cold"
    assert engine_calls == 1.0, f"expected 1 engine call, saw {engine_calls:.0f}"
    assert coalescing_factor >= n_clients
