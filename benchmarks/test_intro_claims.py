"""Paper §1 motivating claims: the cost of training Megatron-1T.

"a version of Megatron having one trillion parameters was recently trained
over 84 days on 450 billion tokens using 3,072 NVIDIA A100 GPUs and executing
more than 1,000 zettaFLOP ... roughly seven hundred years on a single GPU and
over six million dollars (US) assuming $1 per GPU-hour."

This bench projects the same campaign through the model and checks each
figure lands in the published ballpark.
"""

import pytest

from repro.analysis import plan_training_run
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import MEGATRON_1T

from _helpers import banner


def _run():
    system = a100_system(3072)
    strategy = ExecutionStrategy(
        tensor_par=8,
        pipeline_par=64,
        data_par=6,
        batch=2160,  # Megatron-1T's published global batch
        microbatch=1,
        recompute="full",
        optimizer_sharding=True,
    )
    return plan_training_run(MEGATRON_1T, system, strategy, tokens=450e9)


def test_intro_megatron_1t_campaign(benchmark):
    plan = benchmark.pedantic(_run, rounds=1, iterations=1)

    banner("Paper §1 — Megatron-1T campaign projection")
    print(plan.summary())
    print(
        "\npaper: 84 days, 3,072 GPUs, >1,000 zettaFLOP, "
        "~700 GPU-years, >$6M at $1/GPU-hour"
    )

    assert plan.num_procs == 3072
    assert 60 < plan.days < 120  # paper: 84 days
    assert plan.zetta_flops > 1000  # paper: "more than 1,000 zettaFLOP"
    assert 450 < plan.gpu_years < 1000  # paper: "roughly seven hundred years"
    assert 4.5e6 < plan.cost(1.0) < 9e6  # paper: "over six million dollars"
