"""Ablation: performance vs HBM capacity (the Fig. 5(a->d) capacity axis).

Fig. 5 shows feasibility and the optimum shifting as capacity doubles from
80 to 160 GiB.  This ablation sweeps capacity continuously for Megatron-1T
on 512 A100s and reports the best-achievable rate at each point — the
"memory frontier" a designer reads capacity decisions from.

Shape criteria: the frontier is monotone non-decreasing; below a floor
nothing runs; most of the benefit arrives by ~80 GiB (diminishing returns,
consistent with the paper's finding that high HBM capacity is not necessary
for efficient training when software is chosen well).
"""

import pytest

from repro.analysis import memory_frontier
from repro.hardware import a100_system
from repro.llm import MEGATRON_1T
from repro.search import SearchOptions
from repro.units import GiB
from repro.viz import table

from _helpers import banner

CAPS_GIB = (10, 20, 40, 60, 80, 120, 160, 240)
BATCH = 512

OPTS = SearchOptions(
    recompute=("none", "attn_only", "full"),
    seq_par_modes=((True, True, True),),
    tp_overlap=("none",),
    dp_overlap=(False,),
    optimizer_sharding=(True,),
    fused_activations=(True,),
    max_microbatch=4,
)


def _run():
    system = a100_system(512)
    return memory_frontier(
        MEGATRON_1T, system, BATCH, [g * GiB for g in CAPS_GIB], OPTS
    )


def test_ablation_memory_frontier(benchmark):
    frontier = benchmark.pedantic(_run, rounds=1, iterations=1)

    banner("Ablation — Megatron-1T on 512 A100: best rate vs HBM capacity")
    print(
        table(
            ["HBM GiB", "rate/s", "best config"],
            [
                (
                    int(p.capacity / GiB),
                    round(p.sample_rate, 2),
                    p.strategy.short_name() if p.strategy else "infeasible",
                )
                for p in frontier
            ],
        )
    )

    rates = [p.sample_rate for p in frontier]
    # Monotone non-decreasing in capacity.
    assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
    # A capacity floor exists below which the model cannot run at all.
    assert not frontier[0].feasible
    assert frontier[-1].feasible
    # Diminishing returns: 80 GiB already achieves most of 240 GiB's rate
    # (the paper: "high HBM capacity is not necessary for efficient LLM
    # training" once the right software is selected).
    by_cap = {int(p.capacity / GiB): p.sample_rate for p in frontier}
    assert by_cap[80] > 0.85 * by_cap[240]
