"""Ablation: the network processor-usage tax (§2.2, §6).

The paper charges ~15% of processor compute while NCCL drives NVLink at full
bandwidth (2% for InfiniBand), degrading overlapped computation.  This
ablation zeroes the tax and measures how much of the overlap benefit it
claws back — the mechanism behind the paper's observation that best
configurations prefer DP on the *slower* network (cheaper to drive).
"""

from dataclasses import replace

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import GPT3_175B
from repro.viz import table

from _helpers import banner

NPROCS = 64
BATCH = 64


def _system(tax: bool):
    sys_ = a100_system(NPROCS, hbm_gib=1_000_000)
    if tax:
        return sys_
    networks = tuple(replace(n, processor_usage=0.0) for n in sys_.networks)
    return replace(sys_, networks=networks)


def _run():
    strat = ExecutionStrategy(
        tensor_par=8,
        pipeline_par=2,
        data_par=4,
        batch=BATCH,
        microbatch=1,
        recompute="full",
        tp_overlap="ring",
        dp_overlap=True,
        optimizer_sharding=True,
    )
    taxed = calculate(GPT3_175B, _system(True), strat)
    free = calculate(GPT3_175B, _system(False), strat)
    no_overlap = calculate(
        GPT3_175B, _system(True), strat.evolve(tp_overlap="none", dp_overlap=False)
    )
    return taxed, free, no_overlap


def test_ablation_overlap_tax(benchmark):
    taxed, free, no_overlap = benchmark.pedantic(_run, rounds=1, iterations=1)

    banner("Ablation — processor tax of driving the network during overlap")
    print(
        table(
            ["variant", "batch s", "overlap tax s", "exposed TP s"],
            [
                ("overlap, taxed", round(taxed.batch_time, 3),
                 round(taxed.time.overlap_tax, 3),
                 round(taxed.time.tp_comm_exposed, 3)),
                ("overlap, tax-free", round(free.batch_time, 3),
                 round(free.time.overlap_tax, 3),
                 round(free.time.tp_comm_exposed, 3)),
                ("no overlap", round(no_overlap.batch_time, 3),
                 round(no_overlap.time.overlap_tax, 3),
                 round(no_overlap.time.tp_comm_exposed, 3)),
            ],
        )
    )

    # Overlap helps even when taxed, but the tax claws part of it back.
    assert free.batch_time < taxed.batch_time < no_overlap.batch_time
    assert taxed.time.overlap_tax > 0
    assert free.time.overlap_tax == 0
    # The tax is bounded by the hidden communication times (sanity).
    hidden = (
        taxed.time.tp_comm_total
        - taxed.time.tp_comm_exposed
        + taxed.time.dp_comm_total
        - taxed.time.dp_comm_exposed
    )
    assert taxed.time.overlap_tax <= hidden
