"""Fig. 3: time and memory breakdown for GPT-3 175B on 4,096 A100s.

Paper: TP=8, PP=64, DP=8; batch time 16.7 s with ~20% spent recomputing
activations; 17.4 GiB of the 80 GiB HBM used, 29% of it optimizer state.
"""

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import GPT3_175B
from repro.viz import stacked_bars

from _helpers import banner


def _run():
    system = a100_system(4096)
    strategy = ExecutionStrategy(
        tensor_par=8,
        pipeline_par=64,
        data_par=8,
        batch=4096,
        microbatch=1,
        recompute="full",
    )
    return calculate(GPT3_175B, system, strategy)


def test_fig3_breakdown(benchmark):
    res = benchmark.pedantic(_run, rounds=3, iterations=1)

    banner("Fig. 3 — GPT-3 175B on 4,096 A100, TP=8 PP=64 DP=8 (paper: 16.7 s)")
    print(res.summary())
    print()
    print(stacked_bars([("Batch time", res.time.stacked())], unit=" s"))
    print(stacked_bars([("HBM", res.mem1.stacked())], unit=" B"))

    assert res.feasible
    # Batch time in the paper's ballpark (testbed-independent band).
    assert 10.0 < res.batch_time < 30.0
    # ~20% of the batch time is forward recomputation.
    recompute_share = res.time.fw_recompute / res.batch_time
    assert 0.10 < recompute_share < 0.30
    # HBM usage far below the 80 GiB capacity, in the paper's range.
    assert 8 * 2**30 < res.mem1.total < 30 * 2**30
    # Optimizer state is the largest or second-largest memory consumer.
    parts = dict(res.mem1.stacked())
    assert parts["Optimizer space"] >= 0.2 * res.mem1.total
    # Backward pass dominates forward (roughly 2x).
    assert res.time.bw_pass > res.time.fw_pass
