"""Fig. 2: the interleaved 1F1B pipeline schedule.

The paper's Fig. 2 draws the schedule for 12 blocks on 4 pipeline stages with
interleaving factor 2 and microbatches m1..m3(+): a prologue of staggered
forward chunks, a steady 1F1B phase, and an epilogue of backward chunks
(where DP communication overlaps).  This bench regenerates the chart with
the discrete-event simulator and checks its structural properties.
"""

import pytest

from repro.simulator import PipelineParams, render_gantt, simulate_timeline

from _helpers import banner

P, V, M = 4, 2, 6
FW, BW = 1.0, 2.0


def _run():
    return simulate_timeline(
        PipelineParams(num_stages=P, num_microbatches=M, interleaving=V,
                       fw_time=FW, bw_time=BW)
    )


def test_fig2_schedule(benchmark):
    tl = benchmark.pedantic(_run, rounds=1, iterations=1)

    banner(f"Fig. 2 — interleaved 1F1B schedule (p={P}, v={V}, M={M})")
    print(render_gantt(tl, cell_width=4))
    print(
        f"\nmakespan {tl.stats.makespan:.1f}  bubble {tl.stats.bubble_time:.1f} "
        f"({tl.stats.bubble_fraction * 100:.1f}%)"
    )

    # Every (microbatch, vstage, phase) executed exactly once.
    assert len(tl.items) == M * P * V * 2
    seen = {(it.microbatch, it.vstage, it.phase) for it in tl.items}
    assert len(seen) == len(tl.items)

    # Prologue staggering: device k's first forward starts k*fw later.
    for dev in range(P):
        first = min(tl.device_items(dev), key=lambda it: it.start)
        assert first.start == pytest.approx(dev * FW)
        assert first.phase == "f"
        assert first.microbatch == 0
        assert tl.chunk_of(first.vstage) == 0

    # Dependencies hold: forward of (m, k) never precedes forward of (m, k-1).
    fw_finish = {
        (it.microbatch, it.vstage): it.finish for it in tl.items if it.phase == "f"
    }
    fw_start = {
        (it.microbatch, it.vstage): it.start for it in tl.items if it.phase == "f"
    }
    for (m, k), start in fw_start.items():
        if k > 0:
            assert start >= fw_finish[(m, k - 1)] - 1e-9

    # Backward pass runs in reverse vstage order per microbatch.
    bw_start = {
        (it.microbatch, it.vstage): it.start for it in tl.items if it.phase == "b"
    }
    for m in range(M):
        starts = [bw_start[(m, k)] for k in range(P * V)]
        assert starts == sorted(starts, reverse=True)

    # The epilogue ends with backward work (where Fig. 2(b) overlaps DP comm).
    last = max(tl.items, key=lambda it: it.finish)
    assert last.phase == "b"
    assert tl.chunk_of(last.vstage) == 0  # first chunk drains last

    # No device ever runs two items at once.
    for dev in range(P):
        items = tl.device_items(dev)
        for a, b in zip(items, items[1:]):
            assert b.start >= a.finish - 1e-9
