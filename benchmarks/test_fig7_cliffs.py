"""Fig. 7: LLM training scalability and "efficiency cliffs" (no offloading).

For each of GPT-3 175B, Turing-NLG 530B and Megatron-1T, the best execution
strategy is searched at each system size; relative per-GPU efficiency is
plotted against size.  The paper sweeps every multiple of 8 up to 8,192; the
bench uses a coarser grid (multiples of 384 plus deliberately awkward sizes)
that still exposes the cliffs.

Shape criteria: the envelope rises with size; variability among neighbouring
sizes grows; Turing-NLG (105 blocks, non-power-of-two) shows deeper cliffs;
some sizes are entirely infeasible for the big models.
"""

import numpy as np
import pytest

from repro.hardware import a100_system
from repro.llm import GPT3_175B, MEGATRON_1T, TURING_530B
from repro.search import SearchOptions, scaling_sweep
from repro.viz import scaling_plot, table

from _helpers import banner

# Coarse grid: regular sizes plus awkward ones (not divisible by large powers
# of two) that trigger the mapping cliffs.
SIZES = [256, 512, 768, 1024, 1536, 2048, 2560, 3072, 4096, 5120, 6144, 7168, 8192,
         1100, 2200, 4400, 6600]
SIZES = sorted(s - s % 8 for s in SIZES)
BATCH = 3072  # divisible by many d values but not all, as in practice

OPTS = SearchOptions(
    recompute=("attn_only", "full"),
    seq_par_modes=((True, True, True),),
    tp_overlap=("none",),
    dp_overlap=(False,),
    optimizer_sharding=(True,),
    fused_activations=(False,),
    max_microbatch=8,
)


def _run():
    out = {}
    for llm in (GPT3_175B, TURING_530B, MEGATRON_1T):
        out[llm.name] = scaling_sweep(
            llm, lambda n: a100_system(n), SIZES, BATCH, OPTS, workers=0
        )
    return out


def test_fig7_cliffs(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)

    for name, curve in curves.items():
        banner(f"Fig. 7 — {name}: relative scaling vs system size (no offload)")
        rel = curve.relative_scaling()
        print(scaling_plot(list(curve.sizes()), list(rel)))
        rows = [
            (p.num_procs, round(p.sample_rate, 1), f"{r:.3f}",
             p.strategy.short_name() if p.strategy else "infeasible")
            for p, r in zip(curve.points, rel)
        ]
        print(table(["size", "rate/s", "rel", "best config"], rows))

    gpt = curves["gpt3-175b"]
    tng = curves["turing-530b"]
    m1t = curves["megatron-1t"]

    # Envelope rises with system size for every model.
    for curve in (gpt, tng, m1t):
        rates = curve.rates()
        assert rates[-1] > rates[0]
        assert np.argmax(rates) >= len(rates) // 2

    # Efficiency cliffs exist: some point sits well below the envelope.
    for curve in (tng, m1t):
        assert curve.cliff_depths().max() > 0.10

    # The awkward-shaped Turing-NLG shows cliffs at least as deep as GPT-3's.
    assert tng.cliff_depths().max() >= gpt.cliff_depths().max() - 0.05

    # Small systems cannot host the 1T model at all without offloading
    # (the paper's zero-relative-performance points).
    smallest_1t = m1t.points[0]
    assert not smallest_1t.feasible or smallest_1t.per_proc_rate < max(
        p.per_proc_rate for p in m1t.points
    )
