"""Network-topology derating tests (fat-tree / dragonfly)."""

import pytest

from repro.hardware import Network
from repro.hardware.topology import Dragonfly, FatTree, effective_network
from repro.units import GB

NET = Network(name="ib", size=4096, bandwidth=50 * GB, latency=2e-6,
              efficiency=0.85)


def test_full_bisection_fat_tree_never_derates():
    ft = FatTree(leaf_size=32, oversubscription=1.0)
    for span in (2, 32, 1024, 4096):
        assert ft.bandwidth_factor(span) == 1.0


def test_oversubscribed_fat_tree_derates_beyond_leaf():
    ft = FatTree(leaf_size=32, oversubscription=4.0)
    assert ft.bandwidth_factor(32) == 1.0
    assert ft.bandwidth_factor(33) == pytest.approx(0.25)
    assert ft.bandwidth_factor(4096) == pytest.approx(0.25)


def test_fat_tree_latency_grows_with_levels():
    shallow = FatTree(leaf_size=32, levels=2, per_hop_latency=1e-6)
    deep = FatTree(leaf_size=32, levels=3, per_hop_latency=1e-6)
    assert deep.extra_latency(1000) > shallow.extra_latency(1000)
    assert shallow.extra_latency(8) == pytest.approx(1e-6)  # one leaf hop


def test_dragonfly_in_group_is_cheap():
    df = Dragonfly(group_size=64, global_taper=2.0)
    assert df.bandwidth_factor(64) == 1.0
    assert df.bandwidth_factor(65) == pytest.approx(0.5)
    assert df.extra_latency(64) < df.extra_latency(65)


def test_effective_network_scales_bandwidth_and_latency():
    ft = FatTree(leaf_size=32, oversubscription=4.0, per_hop_latency=1e-6)
    inside = effective_network(NET, ft, 16)
    outside = effective_network(NET, ft, 1024)
    assert inside.bandwidth == pytest.approx(NET.bandwidth)
    assert outside.bandwidth == pytest.approx(NET.bandwidth / 4)
    assert outside.latency > inside.latency


def test_effective_network_collectives_slow_down_across_the_taper():
    ft = FatTree(leaf_size=32, oversubscription=4.0)
    inside = effective_network(NET, ft, 32)
    outside = effective_network(NET, ft, 256)
    t_in = inside.collective_time("all_reduce", 1e9, 32)
    t_out = outside.collective_time("all_reduce", 1e9, 256)
    assert t_out > t_in
    # Bandwidth term scales by about the oversubscription ratio.
    assert t_out / t_in > 3.0


def test_validation():
    with pytest.raises(ValueError):
        FatTree(leaf_size=0)
    with pytest.raises(ValueError):
        FatTree(leaf_size=8, oversubscription=0.5)
    with pytest.raises(ValueError):
        Dragonfly(group_size=8, global_taper=0.9)
    with pytest.raises(ValueError):
        FatTree(leaf_size=8).bandwidth_factor(0)


def test_topologies_compose_with_existing_models():
    """The derated copy is a plain Network — hierarchical collectives work."""
    from repro.hardware import hierarchical_all_reduce

    nvl = Network(name="nvl", size=8, bandwidth=300 * GB, latency=0.7e-6)
    ft = FatTree(leaf_size=256, oversubscription=2.0)
    derated = effective_network(NET, ft, 2048)
    t = hierarchical_all_reduce(nvl, derated, 1e9, 8, 256)
    assert t > 0
