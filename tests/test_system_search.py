"""System-size search and scaling-curve tests (paper §5.2, Figs. 7/10/11)."""

import math

import pytest

from repro.hardware import a100_system, ddr5_offload
from repro.llm import LLMConfig
from repro.search import (
    SearchOptions,
    ScalingCurve,
    ScalingPoint,
    best_at_size,
    offload_speedups,
    scaling_sweep,
)

LLM = LLMConfig(name="scale-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=12)

OPTS = SearchOptions(
    recompute=("full",),
    seq_par_modes=((False, False, False),),
    tp_overlap=("none",),
    dp_overlap=(False,),
    optimizer_sharding=(True,),
    fused_activations=(False,),
    max_microbatch=4,
)


def factory(n):
    return a100_system(n)


def offload_factory(n):
    return a100_system(n, offload=ddr5_offload(512))


def test_best_at_size_returns_feasible_point():
    point = best_at_size(LLM, factory, 8, 32, OPTS)
    assert point.feasible
    assert point.num_procs == 8
    assert point.sample_rate > 0
    assert point.strategy is not None
    assert point.strategy.num_procs == 8


def test_infeasible_size_flagged():
    def tiny(n):
        return a100_system(n, hbm_gib=0.01)

    point = best_at_size(LLM, tiny, 8, 32, OPTS)
    assert not point.feasible
    assert point.sample_rate == 0.0


def test_scaling_sweep_shapes():
    sizes = [4, 8, 12, 16]
    curve = scaling_sweep(LLM, factory, sizes, 32, OPTS)
    assert [p.num_procs for p in curve.points] == sizes
    assert len(curve.rates()) == 4
    assert curve.llm_name == LLM.name


def test_bigger_systems_are_not_slower_in_envelope():
    # Overall envelope increases with size (Fig. 7's trend), even if
    # individual points dip (cliffs).
    sizes = [4, 8, 16]
    curve = scaling_sweep(LLM, factory, sizes, 32, OPTS)
    rates = curve.rates()
    assert rates[-1] >= rates[0]


def test_relative_scaling_normalized():
    curve = scaling_sweep(LLM, factory, [4, 8, 16], 32, OPTS)
    rel = curve.relative_scaling()
    assert rel.max() == pytest.approx(1.0)
    assert (rel >= 0).all()


def test_cliff_depths_nonnegative():
    curve = scaling_sweep(LLM, factory, [4, 8, 12, 16], 32, OPTS)
    depths = curve.cliff_depths()
    assert (depths >= -1e-12).all()


def test_awkward_sizes_create_cliffs():
    # Sizes that do not factor nicely for the LLM shape score worse per-proc.
    curve = scaling_sweep(LLM, factory, [16, 28], 112, OPTS)
    even, odd = curve.points
    assert even.per_proc_rate >= odd.per_proc_rate * 0.9


def test_offload_speedups_alignment_required():
    a = ScalingCurve("x", [ScalingPoint(8, 1.0, 1.0, 0.5, None, True)])
    b = ScalingCurve("x", [ScalingPoint(16, 1.0, 1.0, 0.5, None, True)])
    with pytest.raises(ValueError, match="identical size grids"):
        offload_speedups(a, b)


def test_offload_speedups_reports_infinite_for_newly_feasible():
    base = ScalingCurve(
        "x",
        [
            ScalingPoint(8, 0.0, math.inf, 0.0, None, False),
            ScalingPoint(16, 10.0, 1.0, 0.5, None, True),
        ],
    )
    off = ScalingCurve(
        "x",
        [
            ScalingPoint(8, 5.0, 2.0, 0.5, None, True),
            ScalingPoint(16, 12.0, 0.9, 0.55, None, True),
        ],
    )
    out = dict(offload_speedups(base, off))
    assert out[8] == math.inf
    assert out[16] == pytest.approx(20.0)


def test_per_proc_rate():
    p = ScalingPoint(8, 16.0, 1.0, 0.5, None, True)
    assert p.per_proc_rate == pytest.approx(2.0)
